#!/usr/bin/env python
"""Degraded-mode I/O: what server failure costs under chained declustering.

With replication r, every stripe has copies on r consecutive servers
(stripe s: servers s % n .. (s+r-1) % n).  Three regimes are measured
against the fault-free baseline, per replication factor:

* **fan-out write** — a write must land on every replica, so the
  simulated transfer volume grows r-fold;
* **degraded read**  — with one server down, its share of the stripes
  fails over to the next server in the chain, which now serves roughly
  a double load (the max-of-servers elapsed time grows accordingly);
* **rebuild-concurrent read** — reads issued while ``rebuild_steps``
  batches copy the dead server's objects back from their partners.

Simulated time comes from the PFS cost model (seek + per-byte transfer),
so the numbers are deterministic.  Run as a script this writes
``BENCH_degraded_read.json`` next to the repo root copy committed with
the change.
"""

from __future__ import annotations

import json
import pathlib

from repro.bench import Table, format_bytes, speedup
from repro.core.errors import ServerDownError
from repro.pfs import ParallelFileSystem

NSERVERS = 4
STRIPE = 16 * 1024
FILE_BYTES = 1 << 20            # 64 stripes, 16 per server
READ_CHUNK = 128 * 1024         # 8 extents per full-file read
VICTIM = 0
REPLICATIONS = (1, 2, 3)


def payload() -> bytes:
    return bytes((i * 17 + 3) % 256 for i in range(FILE_BYTES))


def extents():
    return [(off, READ_CHUNK) for off in range(0, FILE_BYTES, READ_CHUNK)]


def full_read(f) -> float:
    data, elapsed = f.readv(extents())
    assert data == payload()
    return elapsed


def measure(replication: int) -> dict:
    fs = ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE,
                            replication=replication)
    f = fs.create("bench")
    row: dict = {"replication": replication}

    write_time = f.writev([(0, FILE_BYTES)], payload())
    row["write_time"] = write_time
    row["write_bytes"] = fs.total_stats().bytes_written

    row["fault_free_read_time"] = full_read(f)

    fs.kill_server(VICTIM)
    try:
        row["degraded_read_time"] = full_read(f)
    except ServerDownError:
        row["degraded_read_time"] = None    # replication 1: data is gone

    if replication > 1:
        fs.revive_server(VICTIM)
        # deterministic interleave: one rebuild batch, one full read
        rebuild_time = 0.0
        concurrent_read_time = 0.0
        nreads = 0
        for step in f.rebuild_steps(VICTIM, batch_bytes=256 * 1024):
            rebuild_time += step
            concurrent_read_time += full_read(f)
            nreads += 1
        fs.servers[VICTIM].mark_rebuilt()
        assert f.verify_replicas() == []
        row["rebuild_time"] = rebuild_time
        row["rebuild_bytes"] = fs.replica_stats().rebuild_bytes
        row["rebuild_concurrent_read_time"] = concurrent_read_time / nreads
    else:
        row["rebuild_time"] = None
        row["rebuild_bytes"] = 0
        row["rebuild_concurrent_read_time"] = None
    return row


def run_experiment() -> tuple[Table, list[dict]]:
    table = Table(
        f"degraded-mode I/O on {NSERVERS} servers, "
        f"{format_bytes(FILE_BYTES)} file, {format_bytes(STRIPE)} stripes "
        f"(simulated time, one server killed)",
        ["r", "write", "write bytes", "read ok", "read degraded",
         "read@rebuild", "rebuild", "degraded slowdown"],
    )
    rows = []
    for r in REPLICATIONS:
        row = measure(r)
        rows.append(row)

        def ms(v):
            return "-" if v is None else f"{v * 1e3:.1f} ms"

        table.add(r, ms(row["write_time"]),
                  format_bytes(row["write_bytes"]),
                  ms(row["fault_free_read_time"]),
                  ms(row["degraded_read_time"]),
                  ms(row["rebuild_concurrent_read_time"]),
                  ms(row["rebuild_time"]),
                  "-" if row["degraded_read_time"] is None else
                  speedup(row["degraded_read_time"],
                          row["fault_free_read_time"]))
    table.note("replication 1 loses the file with the server; with "
               "chained declustering the dead server's load falls on one "
               "neighbour, so degraded reads run at roughly half the "
               "aggregate bandwidth while writes pay an r-fold fan-out")
    return table, rows


def result_document(rows: list[dict]) -> dict:
    return {
        "benchmark": "bench_degraded_read",
        "config": {
            "nservers": NSERVERS,
            "stripe_size": STRIPE,
            "file_bytes": FILE_BYTES,
            "read_extent": READ_CHUNK,
            "killed_server": VICTIM,
            "time_unit": "simulated seconds (PFS cost model)",
        },
        "results": rows,
    }


# ---------------------------------------------------------------------------
# shape tests (run under pytest benchmarks/)
# ---------------------------------------------------------------------------

def test_shape_fanout_write_scales_with_replication():
    rows = {r: measure(r) for r in (1, 2)}
    assert rows[2]["write_bytes"] == 2 * rows[1]["write_bytes"]
    assert rows[2]["write_time"] >= rows[1]["write_time"]


def test_shape_degraded_read_costs_more_but_works():
    row = measure(2)
    assert row["degraded_read_time"] is not None
    assert row["degraded_read_time"] >= row["fault_free_read_time"]
    assert row["rebuild_time"] > 0


def test_shape_replication_one_loses_data():
    row = measure(1)
    assert row["degraded_read_time"] is None


def test_result_document_round_trips():
    doc = result_document([measure(2)])
    assert json.loads(json.dumps(doc)) == doc


if __name__ == "__main__":
    table, rows = run_experiment()
    table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_degraded_read.json"
    out.write_text(json.dumps(result_document(rows), indent=2) + "\n")
    print(f"\nwrote {out}")
