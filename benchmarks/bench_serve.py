#!/usr/bin/env python
"""Service daemon under multi-tenant load: throughput, tail latency,
and the admission-control trade.

One in-process :class:`~repro.serve.server.DRXServer` (PFS-backed, so
the whole experiment is deterministic and diskless) is driven by
1 / 8 / 32 concurrent :class:`~repro.serve.client.DRXClient` threads.
Every tenant owns a disjoint row band of one shared array (its band is
exactly one chunk row, so the per-chunk range locks never force two
tenants to serialize) and alternates band writes with read-backs.

Swept: client count x admission policy —

* ``bounded``   — the daemon defaults (8 in flight globally, 4 per
  client, 16 queued); the overflow gets explicit ``RETRY_LATER`` and
  the stub's jittered backoff spreads it out, so the daemon's own
  queue depth stays bounded no matter how many tenants pile on;
* ``unbounded`` — limits raised far above the offered load, i.e. the
  classic thread-per-client free-for-all the admission layer replaces.

Every run is checked for correctness (each band reads back exactly the
tenant's last acked write) and for the QoS conservation invariant
(``requests == ok + errors + retry_later + deadline_misses``).  The
acceptance assertion is the robustness one: under the bounded policy
the high-water queue depth never exceeds ``max_queue`` and the
high-water in-flight count never exceeds ``max_inflight``, even at
4x oversubscription (32 tenants).  Run as a script this writes
``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import numpy as np

from repro.bench import Table
from repro.pfs import ParallelFileSystem
from repro.serve import DRXClient, DRXServer

NSERVERS = 4
STRIPE = 8 * 1024
BAND_ROWS = 8                       # one chunk row per tenant
COLS = 256
CHUNK = (BAND_ROWS, 64)
MAX_CLIENTS = 32
BOUNDS = (MAX_CLIENTS * BAND_ROWS, COLS)
OPS = 24                            # write+read pairs per tenant
CLIENT_COUNTS = (1, 8, 32)

#: the daemon's stock admission policy vs. "just let everyone in"
POLICIES = {
    "bounded": dict(max_inflight=8, max_inflight_per_client=4,
                    max_queue=16),
    "unbounded": dict(max_inflight=1024, max_inflight_per_client=1024,
                      max_queue=65536),
}


def band(idx: int) -> tuple[int, int]:
    lo = idx * BAND_ROWS
    return lo, lo + BAND_ROWS


def band_image(idx: int, step: int) -> np.ndarray:
    base = float(idx * 10_000 + step)
    return base + np.arange(BAND_ROWS * COLS,
                            dtype="<f8").reshape(BAND_ROWS, COLS)


def _tenant(address, idx: int, latencies: list[float],
            errors: list[BaseException]) -> None:
    try:
        with DRXClient(address, client_id=f"tenant-{idx:02d}",
                       timeout=30.0, seed=idx, max_retries=64) as c:
            lo, _hi = band(idx)
            for step in range(OPS):
                t0 = time.perf_counter()
                c.write("shared", (lo, 0), band_image(idx, step))
                latencies.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                got = c.read("shared", (lo, 0), (lo + BAND_ROWS, COLS))
                latencies.append(time.perf_counter() - t0)
                if not np.array_equal(got, band_image(idx, step)):
                    raise AssertionError(
                        f"tenant {idx} read back a torn band at "
                        f"step {step}")
    except BaseException as exc:       # surfaced by the driver
        errors.append(exc)


def run_load(nclients: int, policy: str) -> dict:
    fs = ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE)
    srv = DRXServer(fs=fs, **POLICIES[policy]).start()
    try:
        with DRXClient(srv.address, client_id="setup") as c:
            c.create("shared", BOUNDS, CHUNK)
        per_client: list[list[float]] = [[] for _ in range(nclients)]
        errors: list[BaseException] = []
        threads = [
            threading.Thread(target=_tenant,
                             args=(srv.address, i, per_client[i], errors),
                             name=f"tenant-{i:02d}")
            for i in range(nclients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        wall = time.perf_counter() - t0
        assert not any(t.is_alive() for t in threads), "wedged tenant"
        if errors:
            raise errors[0]

        # final correctness sweep: every band holds its last acked write
        with DRXClient(srv.address, client_id="checker") as c:
            for i in range(nclients):
                lo, hi = band(i)
                got = c.read("shared", (lo, 0), (hi, COLS))
                assert np.array_equal(got, band_image(i, OPS - 1)), \
                    f"tenant {i}'s band diverged after the run"

        snap = srv.stats_snapshot()
    finally:
        srv.shutdown(drain=True)

    qos = snap["qos"]
    tenants = {k: v for k, v in qos["clients"].items()
               if k.startswith("tenant-")}
    for name, row in tenants.items():
        assert row["requests"] == (row["ok"] + row["errors"]
                                   + row["retry_later"]
                                   + row["deadline_misses"]), \
            f"QoS conservation violated for {name}"
    lats = np.array(sorted(x for c in per_client for x in c))
    ops = len(lats)
    return {
        "clients": nclients,
        "policy": policy,
        "wall_s": wall,
        "ops": ops,
        "throughput_ops_s": ops / wall,
        "p50_ms": float(np.percentile(lats, 50) * 1e3),
        "p99_ms": float(np.percentile(lats, 99) * 1e3),
        "max_ms": float(lats[-1] * 1e3),
        "retry_later": qos["totals"]["retry_later"],
        "retries": sum(r["retries"] for r in tenants.values()),
        "deadline_misses": qos["totals"]["deadline_misses"],
        "queue_depth_hw": qos["queue_depth_hw"],
        "inflight_hw": qos["inflight_hw"],
    }


def run_experiment():
    table = Table(
        f"Multi-tenant daemon, {OPS} write+read pairs/tenant, "
        f"{BAND_ROWS}x{COLS} f8 bands",
        ["clients", "policy", "ops/s", "p50", "p99", "RETRY_LATER",
         "queue hw", "inflight hw"],
    )
    results = []
    for nclients in CLIENT_COUNTS:
        for policy in POLICIES:
            r = run_load(nclients, policy)
            results.append(r)
            table.add(nclients, policy, f"{r['throughput_ops_s']:.0f}",
                      f"{r['p50_ms']:.2f} ms", f"{r['p99_ms']:.2f} ms",
                      r["retry_later"], r["queue_depth_hw"],
                      r["inflight_hw"])
            bounded = POLICIES[policy]["max_queue"] <= 16
            if bounded:
                assert r["queue_depth_hw"] <= POLICIES[policy]["max_queue"]
                assert r["inflight_hw"] <= POLICIES[policy]["max_inflight"]
            assert r["deadline_misses"] == 0
    table.note("bounded = stock admission (8 global / 4 per client / "
               "16 queued): overflow is refused with RETRY_LATER and "
               "absorbed by client backoff, so daemon-side queue depth "
               "and in-flight stay capped even at 4x oversubscription; "
               "unbounded admits everything and the same load lands on "
               "the shared Mpool/executor at once")
    doc = {
        "benchmark": "bench_serve",
        "config": {
            "nservers": NSERVERS, "stripe_size": STRIPE,
            "bounds": list(BOUNDS), "chunk": list(CHUNK),
            "band_rows": BAND_ROWS, "ops_per_tenant": OPS,
            "clients_swept": list(CLIENT_COUNTS),
            "policies": {k: dict(v) for k, v in POLICIES.items()},
            "time_unit": "wall-clock seconds (loopback TCP, in-process "
                         "daemon)",
        },
        "acceptance": {
            "bounded_queue_depth_hw": max(
                r["queue_depth_hw"] for r in results
                if r["policy"] == "bounded"),
            "max_queue": POLICIES["bounded"]["max_queue"],
            "bounded_inflight_hw": max(
                r["inflight_hw"] for r in results
                if r["policy"] == "bounded"),
            "max_inflight": POLICIES["bounded"]["max_inflight"],
        },
        "runs": results,
    }
    return table, doc


def test_bounded_admission_caps_daemon_load():
    """Acceptance: at 4x oversubscription (32 tenants vs. 8 in-flight
    slots) the bounded policy keeps the daemon-side queue depth and
    in-flight high-water marks within the configured limits, every
    band reads back bit-identical, and overflow shows up as explicit
    RETRY_LATER — not as deadline misses or errors."""
    r = run_load(32, "bounded")
    assert r["queue_depth_hw"] <= POLICIES["bounded"]["max_queue"]
    assert r["inflight_hw"] <= POLICIES["bounded"]["max_inflight"]
    assert r["deadline_misses"] == 0
    assert r["ops"] == 32 * OPS * 2


def test_unbounded_policy_still_correct():
    """The free-for-all policy is the baseline, not a failure mode:
    correctness (band read-back, QoS conservation) must hold there
    too — only the bounded-depth guarantee is forfeited."""
    r = run_load(8, "unbounded")
    assert r["deadline_misses"] == 0
    assert r["ops"] == 8 * OPS * 2


if __name__ == "__main__":
    table, doc = run_experiment()
    table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_serve.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
