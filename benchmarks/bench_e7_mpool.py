#!/usr/bin/env python
"""E7: the Mpool buffer cache on serial DRX element access.

DRX uses a BerkeleyDB-Mpool-style chunk cache for its serial element
accesses.  This bench sweeps the pool size against two access
localities — a chunk-coherent walk and a uniformly random scatter — and
reports hit ratio plus the simulated disk time of the misses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table
from repro.core.metadata import DRXMeta
from repro.drx import PFSByteStore
from repro.drx.drxfile import DRXFile
from repro.pfs import ParallelFileSystem

SHAPE = (128, 128)
CHUNK = (16, 16)
N_ACCESS = 3000


def make(cache_pages: int):
    fs = ParallelFileSystem(nservers=2, stripe_size=64 * 1024)
    meta = DRXMeta.create(SHAPE, CHUNK)
    a = DRXFile(meta, PFSByteStore(fs.create("e7.xta")), None,
                writable=True, cache_pages=cache_pages)
    a.write((0, 0), np.zeros(SHAPE))
    a.flush()
    a._pool.invalidate()
    a.cache_stats.hits = a.cache_stats.misses = 0
    fs.reset_stats()
    return fs, a


def local_walk():
    """Chunk-coherent accesses: sweep each chunk's elements in turn."""
    rng = np.random.default_rng(1)
    out = []
    for _ in range(N_ACCESS // 10):
        ci = rng.integers(0, SHAPE[0] // CHUNK[0], 2)
        base = (int(ci[0]) * CHUNK[0], int(ci[1]) * CHUNK[1])
        for _ in range(10):
            off = rng.integers(0, CHUNK[0], 2)
            out.append((base[0] + int(off[0]), base[1] + int(off[1])))
    return out


def random_scatter():
    rng = np.random.default_rng(2)
    return [(int(i), int(j))
            for i, j in zip(rng.integers(0, SHAPE[0], N_ACCESS),
                            rng.integers(0, SHAPE[1], N_ACCESS))]


def run_pattern(cache_pages: int, pattern) -> tuple[float, float]:
    fs, a = make(cache_pages)
    for idx in pattern:
        a.get(idx)
    ratio = a.cache_stats.hit_ratio
    t = fs.total_stats().busy_time
    a.close()
    return ratio, t


def run_experiment() -> Table:
    table = Table(
        f"E7: Mpool cache, {N_ACCESS} element gets on a 128x128 array "
        "(64 chunks total)",
        ["pool pages", "local walk hit%", "local time",
         "random hit%", "random time"],
    )
    lw = local_walk()
    rs = random_scatter()
    for pages in (1, 4, 16, 64):
        lh, lt = run_pattern(pages, lw)
        rh, rt = run_pattern(pages, rs)
        table.add(pages, f"{lh * 100:.1f}%", f"{lt * 1e3:.1f} ms",
                  f"{rh * 100:.1f}%", f"{rt * 1e3:.1f} ms")
    table.note("64 pages hold the whole array: every pattern converges "
               "to one fault per chunk")
    return table


def test_shape_cache_monotonic():
    rs = random_scatter()
    ratios = [run_pattern(p, rs)[0] for p in (1, 4, 16, 64)]
    assert ratios == sorted(ratios)
    lw = local_walk()
    # locality beats scatter at small pool sizes
    assert run_pattern(2, lw)[0] > run_pattern(2, rs)[0]


def test_local_walk_small_pool(benchmark):
    lw = local_walk()
    benchmark(lambda: run_pattern(4, lw))


def test_random_scatter_small_pool(benchmark):
    rs = random_scatter()
    benchmark(lambda: run_pattern(4, rs))


if __name__ == "__main__":
    run_experiment().show()
