#!/usr/bin/env python
"""E3: collective vs independent zone I/O, scaling with process count.

"Efficient collective sub-arrays I/O is done from the respective
processes of a parallel program by combining irregular distributed
array access methods of MPI-2 with the mapping function."  This bench
reads BLOCK zones of one principal array with P = 1..8 processes, via
MPI_File_read_at_all vs independent reads, reporting server requests
and simulated time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.bench import Table, speedup
from repro.drxmp import DRXMPFile
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array

SHAPE = (96, 96)
CHUNK = (8, 8)


def setup_fs() -> ParallelFileSystem:
    fs = ParallelFileSystem(nservers=4, stripe_size=16 * 1024)

    def init(comm):
        a = DRXMPFile.create(comm, fs, "E3", SHAPE, CHUNK)
        a.write((0, 0), pattern_array(SHAPE))
        a.close()
        return True

    mpi.mpiexec(1, init)
    return fs


def read_zones(fs, nproc: int, collective: bool):
    def body(comm):
        a = DRXMPFile.open(comm, fs, "E3")
        mem = a.read_zone(collective=collective)
        total = float(mem.array.sum())
        a.close()
        return total

    fs.reset_stats()
    sums = mpi.mpiexec(nproc, body, timeout=120)
    expect = float(pattern_array(SHAPE).sum())
    assert sum(sums) == pytest.approx(expect)
    return fs.total_stats()


def run_experiment() -> Table:
    table = Table(
        "E3: reading all BLOCK zones of a 96x96 array (8x8 chunks)",
        ["P", "collective reqs", "collective time", "independent reqs",
         "independent time", "collective speedup"],
    )
    fs = setup_fs()
    for nproc in (1, 2, 4, 8):
        coll = read_zones(fs, nproc, collective=True)
        indep = read_zones(fs, nproc, collective=False)
        table.add(nproc, coll.read_requests,
                  f"{coll.busy_time * 1e3:.1f} ms",
                  indep.read_requests,
                  f"{indep.busy_time * 1e3:.1f} ms",
                  speedup(indep.busy_time, coll.busy_time))
    table.note("zones interleave in the file as P grows, so independent "
               "reads fragment while the two-phase collective path stays "
               "at a handful of whole-file runs")
    return table


def test_shape_collective_wins_at_scale():
    fs = setup_fs()
    coll = read_zones(fs, 8, collective=True)
    indep = read_zones(fs, 8, collective=False)
    assert coll.read_requests < indep.read_requests
    assert coll.busy_time < indep.busy_time
    # at P=1 there is nothing to aggregate: both paths look alike
    coll1 = read_zones(fs, 1, collective=True)
    indep1 = read_zones(fs, 1, collective=False)
    assert coll1.read_requests == indep1.read_requests


def test_collective_read_p4(benchmark):
    fs = setup_fs()
    benchmark(lambda: read_zones(fs, 4, True))


def test_independent_read_p4(benchmark):
    fs = setup_fs()
    benchmark(lambda: read_zones(fs, 4, False))


if __name__ == "__main__":
    run_experiment().show()
