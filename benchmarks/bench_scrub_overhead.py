#!/usr/bin/env python
"""Checksum overhead: plain vs CRC32-verified reads, plus scrub cost.

The fault-tolerance layer stores a CRC32 per chunk in the meta-data and
verifies it on every pool fault-in and streamed read.  This benchmark
quantifies what that costs on real files: cold full-array reads with and
without checksums (the verified path should stay within a few percent —
zlib's CRC32 runs at multiple GB/s, far faster than storage), the same
for writes (which record rather than verify), and the wall-clock price
of a full ``scrub()`` pass.
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro.bench import Table, wallclock
from repro.drx import DRXFile

ARRAY = (256, 256)               # doubles: 512 KiB on disk
CACHE_PAGES = 8
CHUNKS = [(8, 8), (16, 16), (32, 32)]


def _make(path: pathlib.Path, chunk, checksums: bool,
          data: np.ndarray) -> DRXFile:
    a = DRXFile.create(path, ARRAY, chunk, overwrite=True,
                       cache_pages=CACHE_PAGES, checksums=checksums)
    a.write((0, 0), data)
    a.flush()
    return a


def measure_read(path: pathlib.Path, chunk, checksums: bool,
                 data: np.ndarray, repeat: int = 5) -> float:
    """Best-of-``repeat`` cold full-array read, in seconds."""
    a = _make(path, chunk, checksums, data)

    def once():
        a._pool.invalidate()          # cold cache (pages are clean)
        return a.read()

    secs, out = wallclock(once, repeat)
    assert np.allclose(out, data)
    if checksums:
        assert a._guard is not None and a._guard.failures == 0
    a.close()
    return secs


def measure_write(path: pathlib.Path, chunk, checksums: bool,
                  data: np.ndarray, repeat: int = 5) -> float:
    """Best-of-``repeat`` full-array write+flush, in seconds."""

    def once():
        a = DRXFile.create(path, ARRAY, chunk, overwrite=True,
                           cache_pages=CACHE_PAGES, checksums=checksums)
        a.write((0, 0), data)
        a.flush()
        a.close()

    secs, _ = wallclock(once, repeat)
    return secs


def measure_scrub(path: pathlib.Path, chunk, data: np.ndarray,
                  repeat: int = 5) -> float:
    """Best-of-``repeat`` full scrub of a checksummed array."""
    a = _make(path, chunk, True, data)

    def once():
        report = a.scrub()
        assert report.ok and report.checked == a.num_chunks
        return report

    secs, _ = wallclock(once, repeat)
    a.close()
    return secs


def _mb_s(nbytes: int, secs: float) -> str:
    return f"{nbytes / secs / 1e6:.0f} MB/s" if secs > 0 else "-"


def run_experiment(workdir: pathlib.Path) -> list[Table]:
    rng = np.random.default_rng(11)
    data = rng.random(ARRAY)
    nbytes = ARRAY[0] * ARRAY[1] * 8
    tab = Table(
        f"CRC32 checksum overhead on a {ARRAY[0]}x{ARRAY[1]} double "
        f"array (pool {CACHE_PAGES} pages)",
        ["chunk", "read/plain", "read/crc", "read overhead",
         "write/plain", "write/crc", "scrub", "scrub thru"],
    )
    for chunk in CHUNKS:
        rp = measure_read(workdir / "rp", chunk, False, data)
        rc = measure_read(workdir / "rc", chunk, True, data)
        wp = measure_write(workdir / "wp", chunk, False, data)
        wc = measure_write(workdir / "wc", chunk, True, data)
        sc = measure_scrub(workdir / "sc", chunk, data)
        tab.add(f"{chunk[0]}x{chunk[1]}",
                _mb_s(nbytes, rp), _mb_s(nbytes, rc),
                f"{(rc / rp - 1) * 100:+.1f}%",
                _mb_s(nbytes, wp), _mb_s(nbytes, wc),
                f"{sc * 1e3:.2f} ms", _mb_s(nbytes, sc))
    tab.note("read overhead = extra wall-clock of the verified cold "
             "read; scrub = one full verification pass in coalesced "
             "batches")
    return [tab]


# ----------------------------------------------------------------------
# tier-1 assertions
# ----------------------------------------------------------------------
def test_checksummed_read_overhead_is_bounded(tmp_path, rng):
    """The target is ~5%; the assertion allows 50% so shared-CI noise
    cannot flake it, while still catching accidental O(n) blowups."""
    data = rng.random(ARRAY)
    plain = measure_read(tmp_path / "p", (16, 16), False, data, repeat=3)
    crc = measure_read(tmp_path / "c", (16, 16), True, data, repeat=3)
    assert crc <= plain * 1.5, (plain, crc)


def test_scrub_visits_every_chunk_in_batches(tmp_path, rng):
    data = rng.random(ARRAY)
    a = _make(tmp_path / "s", (16, 16), True, data)
    a._data.stats.reset()
    report = a.scrub(batch_chunks=64)
    assert report.ok
    assert report.checked == a.num_chunks == 256
    # 256 chunks in 64-chunk batches -> 4 vectored calls, not 256 reads
    assert a._data.stats.readv_calls == 4
    assert a._data.stats.bytes_read == 256 * 256 * 8
    a.close()


def test_scrub_overhead_benchmark(benchmark, tmp_path, rng):
    data = rng.random(ARRAY)
    a = _make(tmp_path / "b", (16, 16), True, data)
    benchmark(a.scrub)
    a.close()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as td:
        for table in run_experiment(pathlib.Path(td)):
            table.show()
