"""Shared fixtures for the benchmark suite.

Every ``bench_*.py`` is both a pytest-benchmark module (run with
``pytest benchmarks/ --benchmark-only``) and a standalone script that
prints its experiment table (``python benchmarks/bench_e1_extension.py``)
— the tables recorded in EXPERIMENTS.md come from the script runs.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(2007)
