#!/usr/bin/env python
"""FIG1/LIST1 bench: the paper's 4-process collective chunk read.

Runs the section IV-B listing (indexed filetype + indexed memtype,
MPI_File_read_all) over the Fig. 1 array on the simulated PFS, and
compares the collective path against independent reads: server
requests, seeks and simulated time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.bench import Table
from repro.core import ExtendibleChunkIndex, f_star_inv_many, f_star_many
from repro.drxmp.partition import BlockPartition
from repro.pfs import ParallelFileSystem

CHUNK_SIZE = 6


def build_setup():
    fs = ParallelFileSystem(nservers=4, stripe_size=1024)
    eci = ExtendibleChunkIndex([1, 1])
    for dim in (1, 0, 0, 1, 0, 1, 0):
        eci.extend(dim)
    data = fs.create("chunkedArray4.dat")
    data.write(0, np.arange(20 * CHUNK_SIZE, dtype=np.float64).tobytes())
    return fs, eci


def listing_read(comm, fs, eci_doc, collective: bool):
    eci = ExtendibleChunkIndex.from_dict(eci_doc)
    part = BlockPartition(eci.bounds, comm.size, pgrid=(2, 2))
    zone = part.zone_of(comm.rank)
    addrs = np.sort(f_star_many(eci, zone.chunk_indices()))
    rel = f_star_inv_many(eci, addrs) - np.asarray(zone.lo)
    inmem = (rel[:, 0] * zone.shape[1] + rel[:, 1]).tolist()

    fh = mpi.File.Open(comm, "chunkedArray4.dat", mpi.MODE_RDONLY, fs)
    chunk = mpi.DOUBLE.Create_contiguous(CHUNK_SIZE).Commit()
    ft = chunk.Create_indexed([1] * len(addrs), addrs.tolist()).Commit()
    mt = chunk.Create_indexed([1] * len(inmem), inmem).Commit()
    fh.Set_view(0, chunk, ft)
    buf = np.full(len(addrs) * CHUNK_SIZE, -1.0)
    if collective:
        fh.Read_at_all(0, (buf, 1, mt))
    else:
        fh.Read_at(0, (buf, 1, mt))
    fh.Close()
    return float(buf.sum())


def run_experiment() -> Table:
    table = Table(
        "FIG1/LIST1: collective vs independent chunk read (4 procs, "
        "20 chunks)",
        ["path", "server reqs", "seeks", "simulated time"],
    )
    for label, collective in [("MPI_File_read_all (two-phase)", True),
                              ("independent MPI_File_read_at", False)]:
        fs, eci = build_setup()
        fs.reset_stats()
        sums = mpi.mpiexec(4, listing_read, fs, eci.to_dict(), collective)
        st = fs.total_stats()
        table.add(label, st.read_requests, st.seeks,
                  f"{st.busy_time * 1e3:.2f} ms")
        assert sum(sums) == pytest.approx(
            float(np.arange(20 * CHUNK_SIZE).sum()))
    table.note("collective I/O coalesces the interleaved zone chunks "
               "into a handful of contiguous striped reads")
    return table


def test_shape_collective_fewer_requests():
    fs, eci = build_setup()
    fs.reset_stats()
    mpi.mpiexec(4, listing_read, fs, eci.to_dict(), True)
    coll = fs.total_stats().read_requests

    fs2, eci2 = build_setup()
    fs2.reset_stats()
    mpi.mpiexec(4, listing_read, fs2, eci2.to_dict(), False)
    indep = fs2.total_stats().read_requests
    assert coll < indep


def test_listing_collective(benchmark):
    fs, eci = build_setup()
    doc = eci.to_dict()
    benchmark(lambda: mpi.mpiexec(4, listing_read, fs, doc, True))


def test_listing_independent(benchmark):
    fs, eci = build_setup()
    doc = eci.to_dict()
    benchmark(lambda: mpi.mpiexec(4, listing_read, fs, doc, False))


if __name__ == "__main__":
    run_experiment().show()
