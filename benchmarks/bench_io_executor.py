#!/usr/bin/env python
"""Concurrent I/O executor: wall-clock speedup of overlapped transfers.

The simulator's analytic cost model always *charged* the max-of-servers
elapsed time, but execution used to be strictly serial Python.  This
benchmark makes the difference observable: every :class:`IOServer` runs
with ``realtime_factor=1.0``, so serving a batch really sleeps for the
cost model's per-server elapsed time (the sleep releases the GIL — one
server is one busy disk; different servers can overlap).  Measured
wall-clock time then shows whether per-server batches actually ran
concurrently.

Swept: executor width (0 = serial) x access pattern —

* ``contiguous readv``  — one extent spanning every server,
* ``strided readv``     — every other stripe (the acceptance pattern:
  many per-server batches, all independent),
* ``replicated writev`` — full-file fan-out to 2 copies,
* ``drx streamed read`` — a PFS-backed DRX array read through the
  double-buffered streaming pipeline,
* ``mpool sequential``  — a sequential page scan with read-ahead.

Every threaded run is checked bit-identical to its serial baseline, and
the simulated ``io_time`` is asserted unchanged (the executor moves wall
clock, never the model).  Run as a script this writes
``BENCH_io_executor.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.bench import Table, speedup
from repro.core.executor import IOExecutor
from repro.drx.drxfile import DRXFile
from repro.drx.mpool import Mpool
from repro.drx.storage import PFSByteStore
from repro.pfs import ParallelFileSystem

NSERVERS = 4
STRIPE = 64 * 1024
FILE_BYTES = 4 << 20            # 64 stripes, 16 per server
REALTIME = 1.0                  # sleep 1:1 with the cost model
THREADS = (0, 2, 4)


def payload(n: int = FILE_BYTES, salt: int = 0) -> bytes:
    return bytes((i * 17 + salt) % 256 for i in range(n))


def make_fs(executor, replication: int = 1) -> ParallelFileSystem:
    return ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE,
                              replication=replication, executor=executor,
                              realtime_factor=REALTIME)


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


# ---------------------------------------------------------------------------
# patterns: each returns (wall_time, simulated_io_time, digest)
# ---------------------------------------------------------------------------

def pat_contiguous_readv(pfs_ex, drx_ex):
    fs = make_fs(pfs_ex)
    f = fs.create("bench")
    f.writev([(0, FILE_BYTES)], payload())
    f.io_time = 0.0
    wall, (data, _t) = timed(lambda: f.readv([(0, FILE_BYTES)]))
    return wall, f.io_time, data


def pat_strided_readv(pfs_ex, drx_ex):
    fs = make_fs(pfs_ex)
    f = fs.create("bench")
    f.writev([(0, FILE_BYTES)], payload())
    extents = [(off, STRIPE)
               for off in range(0, FILE_BYTES, 2 * STRIPE)]
    f.io_time = 0.0
    wall, (data, _t) = timed(lambda: f.readv(extents))
    return wall, f.io_time, data


def pat_replicated_writev(pfs_ex, drx_ex):
    fs = make_fs(pfs_ex, replication=2)
    f = fs.create("bench")
    blob = payload(salt=3)
    wall, _ = timed(lambda: f.writev([(0, FILE_BYTES)], blob))
    return wall, f.io_time, f.read(0, FILE_BYTES)


def pat_drx_streamed_read(pfs_ex, drx_ex):
    fs = make_fs(pfs_ex)
    a = DRXFile.create_pfs(fs, "arr", (512, 512), (64, 64),
                           cache_pages=8, executor=drx_ex)
    ref = np.arange(512 * 512, dtype=np.float64).reshape(512, 512)
    a.write((0, 0), ref)
    a.flush()
    wall, out = timed(lambda: a.read((0, 0), (512, 256)))
    assert np.array_equal(out, ref[:, :256])
    return wall, a._data.stats.bytes_read, out.tobytes()


def pat_mpool_sequential(pfs_ex, drx_ex):
    fs = make_fs(pfs_ex)
    f = fs.create("pool")
    f.writev([(0, FILE_BYTES)], payload(salt=9))
    store = PFSByteStore(f)
    pool = Mpool(store, STRIPE, max_pages=16, executor=drx_ex,
                 readahead=8)

    def scan():
        out = bytearray()
        for p in range(FILE_BYTES // STRIPE):
            buf = pool.get(p)
            out += bytes(buf[:16])
            pool.put(p)
        pool.flush()
        return bytes(out)

    wall, digest = timed(scan)
    return wall, pool.stats.prefetch_hits, digest


PATTERNS = [
    ("contiguous readv", pat_contiguous_readv),
    ("strided readv", pat_strided_readv),
    ("replicated writev", pat_replicated_writev),
    ("drx streamed read", pat_drx_streamed_read),
    ("mpool sequential", pat_mpool_sequential),
]


def run_experiment() -> tuple[Table, dict]:
    table = Table(
        title="concurrent I/O executor (wall-clock, realtime servers)",
        headers=["pattern", "threads", "wall s", "vs serial"],
    )
    results = []
    for name, fn in PATTERNS:
        serial_wall = None
        serial_digest = None
        serial_sim = None
        for threads in THREADS:
            # one executor per tier, as in production (`"auto"` builds a
            # separate pfs- and drx-tier pool)
            pfs_ex = IOExecutor(threads, name="pfs") if threads else None
            drx_ex = IOExecutor(threads, name="drx") if threads else None
            try:
                wall, sim, digest = fn(pfs_ex, drx_ex)
            finally:
                for ex in (pfs_ex, drx_ex):
                    if ex is not None:
                        ex.shutdown()
            if threads == 0:
                serial_wall, serial_digest, serial_sim = wall, digest, sim
                rel = "1.00x"
            else:
                assert digest == serial_digest, \
                    f"{name}: threaded bytes differ from serial"
                if name in ("contiguous readv", "strided readv",
                            "replicated writev"):
                    assert sim == serial_sim, \
                        f"{name}: simulated io_time changed under threads"
                rel = speedup(serial_wall, wall)
            table.add(name, threads, wall, rel)
            results.append({
                "pattern": name,
                "threads": threads,
                "wall_time": wall,
                "speedup_vs_serial": (serial_wall / wall)
                if threads and wall > 0 else 1.0,
            })
    table.note("bytes bit-identical across all thread counts")
    table.note("simulated io_time unchanged (executor moves wall clock "
               "only)")
    doc = {
        "benchmark": "bench_io_executor",
        "config": {
            "nservers": NSERVERS,
            "stripe_size": STRIPE,
            "file_bytes": FILE_BYTES,
            "realtime_factor": REALTIME,
            "threads_swept": list(THREADS),
            "time_unit": "measured wall-clock seconds",
        },
        "results": results,
    }
    return table, doc


def test_strided_read_speeds_up():
    """Acceptance: >= 1.5x wall-clock at 4 threads for strided
    multi-server reads, bit-identical output."""
    wall_ser, _sim, digest_ser = pat_strided_readv(None, None)
    ex = IOExecutor(4)
    try:
        wall_par, _sim2, digest_par = pat_strided_readv(ex, None)
    finally:
        ex.shutdown()
    assert digest_par == digest_ser
    assert wall_ser / wall_par >= 1.5, \
        f"only {wall_ser / wall_par:.2f}x at 4 threads"


if __name__ == "__main__":
    table, doc = run_experiment()
    table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_io_executor.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
