#!/usr/bin/env python
"""E1: the cost of extending an array, by storage scheme.

The paper's headline property: "Any arbitrary dimension of the out-of-
core array can be extended by appending new array elements to the file
without reorganizing already allocated array elements."  This bench
grows a populated 2-D array along each dimension in turn and charges
each scheme the bytes it must move:

* DRX (axial)        — appends only; zero bytes of existing data move;
* HDF5-like (B-tree) — metadata-only extension (cheap too; its cost
                       shows up in E4's per-access index traversals);
* NetCDF-like flat   — free along the record dimension, full-file
                       rewrite along any other;
* DRA                — no extension at all: create bigger + copy all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.baselines import ChunkedBTreeFile, ConventionalArrayFile, DRAFile, grow_by_copy
from repro.bench import Table, format_bytes
from repro.drx import DRXFile
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array

SHAPE = (128, 128)
CHUNK = (16, 16)
GROWTH = [(0, 32), (1, 32), (0, 32), (1, 32)]   # alternating dims


def drx_bytes_moved() -> int:
    a = DRXFile.create(None, SHAPE, CHUNK)
    a.write((0, 0), pattern_array(SHAPE))
    a.flush()
    before = a._data.read(0, a.meta.data_nbytes)
    moved = 0
    for dim, by in GROWTH:
        a.extend(dim, by)
        a.flush()
        now = a._data.read(0, len(before))
        assert now == before            # nothing moved, ever
    a.close()
    return moved


def hdf5_bytes_moved() -> int:
    h = ChunkedBTreeFile(SHAPE, CHUNK)
    h.write((0, 0), pattern_array(SHAPE))
    for dim, by in GROWTH:
        h.extend(dim, by)               # metadata only
    return 0


def netcdf_bytes_moved() -> int:
    c = ConventionalArrayFile(SHAPE)
    c.write((0, 0), pattern_array(SHAPE))
    for dim, by in GROWTH:
        c.extend(dim, by)
    return c.reorg_stats.bytes_moved


def dra_bytes_moved() -> int:
    fs = ParallelFileSystem(nservers=4, stripe_size=64 * 1024)

    def body(comm):
        a = DRAFile.create(comm, fs, "dra0", SHAPE, CHUNK)
        if comm.rank == 0:
            a.write((0, 0), pattern_array(SHAPE))
        comm.barrier()
        bounds = list(SHAPE)
        old = a
        for i, (dim, by) in enumerate(GROWTH):
            bounds[dim] += by
            new = grow_by_copy(comm, fs, old, f"dra{i + 1}",
                               tuple(bounds))
            old.close()
            old = new
        old.close()
        return True

    fs.reset_stats()
    mpi.mpiexec(4, body, timeout=120)
    st = fs.total_stats()
    # moved data = everything read plus rewritten during the copies
    return st.bytes_read + st.bytes_written


def run_experiment() -> Table:
    table = Table(
        "E1: bytes of existing data moved while growing 128x128 "
        "by +32 on each dim twice (alternating)",
        ["scheme", "bytes moved", "relative"],
    )
    results = [
        ("DRX-MP (axial, paper)", drx_bytes_moved()),
        ("HDF5-like (B-tree chunks)", hdf5_bytes_moved()),
        ("NetCDF-like flat row-major", netcdf_bytes_moved()),
        ("DRA (create bigger + copy)", dra_bytes_moved()),
    ]
    base = SHAPE[0] * SHAPE[1] * 8
    for name, moved in results:
        table.add(name, format_bytes(moved),
                  "0" if moved == 0 else f"{moved / base:.1f}x array size")
    table.note("DRX and HDF5-style chunking both avoid reorganization; "
               "the flat format rewrites the file for every non-record "
               "dim, DRA copies everything for any growth")
    return table


def test_shape_drx_moves_nothing():
    assert drx_bytes_moved() == 0
    assert netcdf_bytes_moved() > 0
    assert dra_bytes_moved() > netcdf_bytes_moved() * 0  # both positive


def test_drx_extend(benchmark):
    def grow():
        a = DRXFile.create(None, SHAPE, CHUNK)
        for dim, by in GROWTH:
            a.extend(dim, by)
        a.close()
    benchmark(grow)


def test_netcdf_extend_with_reorg(benchmark):
    data = pattern_array(SHAPE)

    def grow():
        c = ConventionalArrayFile(SHAPE)
        c.write((0, 0), data)
        for dim, by in GROWTH:
            c.extend(dim, by)
        return c.reorg_stats.bytes_moved
    moved = benchmark(grow)
    assert moved > 0


if __name__ == "__main__":
    run_experiment().show()
