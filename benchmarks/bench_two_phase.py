#!/usr/bin/env python
"""Two-phase collective I/O vs the legacy rank-0 funnel.

The E3-style strided pattern at 8 ranks: each rank owns K interleaved
blocks, and in the *holey* variant the union of all ranks covers only
every other block of the file, so the pre-engine path degenerates into
one seek-laden request per 512-byte run.  The two-phase engine merges
each aggregator's file domain into data-sieved covering windows — a
couple of large requests instead of hundreds of small ones — and ships
each byte point-to-point exactly once instead of broadcasting every
rank's result to all P ranks.

Sweeps ``cb_nodes`` x ``cb_buffer_size`` x access pattern, checks every
configuration bit-identical to the serial reference, and writes
``BENCH_two_phase.json``.
"""

from __future__ import annotations

import json
import pathlib

from repro import mpi
from repro.bench import Table
from repro.mpi.file import FileView
from repro.pfs import ParallelFileSystem

P = 8                       # ranks
K = 16                      # blocks per rank
BLOCK = 512                 # bytes per block
NBLOCKS = 2 * K * P         # file holds 256 blocks = 128 KiB
FILE_SIZE = NBLOCKS * BLOCK
PATTERN = bytes(range(256)) * (FILE_SIZE // 256)
STRIPE = 64 * 1024
NSERVERS = 4

#: access patterns: rank -> block displacements (in BLOCK units)
PATTERNS = {
    # every other block globally: 512-byte runs with 512-byte holes
    "strided-holey": lambda r: [2 * (j * P + r) for j in range(K)],
    # dense interleave: the union is one contiguous run (E3 proper)
    "interleaved-dense": lambda r: [j * P + r for j in range(K)],
}


def full_info(**over):
    """Every steering knob explicit, so CI env overrides cannot skew."""
    info = {"cb_nodes": 1, "cb_buffer_size": 4 << 20,
            "ind_rd_buffer_size": 4 << 20, "ind_wr_buffer_size": 512 << 10,
            "romio_cb_read": "auto", "romio_cb_write": "auto",
            "romio_ds_read": "auto", "romio_ds_write": "auto",
            "ds_hole_threshold": 4096}
    info.update(over)
    return info


def make_view(rank: int, pattern: str):
    blk = mpi.BYTE.Create_contiguous(BLOCK)
    disps = PATTERNS[pattern](rank)
    return blk.Create_indexed([1] * K, disps).Commit()


def rank_extents(rank: int, pattern: str):
    return FileView(0, mpi.BYTE, make_view(rank, pattern)) \
        .extents(0, K * BLOCK)


def serial_read_reference(rank: int, pattern: str) -> bytes:
    return b"".join(PATTERN[o:o + n] for o, n in rank_extents(rank, pattern))


def serial_write_reference(pattern: str) -> bytes:
    """Ranks write their payloads one after the other, in rank order."""
    img = bytearray(FILE_SIZE)
    for rank in range(P):
        payload = bytes([rank + 1]) * (K * BLOCK)
        pos = 0
        for off, n in rank_extents(rank, pattern):
            img[off:off + n] = payload[pos:pos + n]
            pos += n
    return bytes(img)


def run_read(pattern: str, info: dict) -> dict:
    fs = ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE)
    fs.create("f").write(0, PATTERN)
    fs.reset_stats()

    def body(comm):
        fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs, info=info)
        fh.Set_view(0, mpi.BYTE, make_view(comm.rank, pattern))
        buf = bytearray(K * BLOCK)
        fh.Read_at_all(0, buf)
        fh.Close()
        return bytes(buf)

    out = mpi.mpiexec(P, body, timeout=120)
    for rank, got in enumerate(out):
        assert got == serial_read_reference(rank, pattern), \
            f"rank {rank} diverged from serial under {info}"
    st, cs = fs.total_stats(), fs.collective_stats()
    return {"requests": st.read_requests, "io_time": st.busy_time,
            "seeks": st.seeks, "exchange_bytes": cs.exchange_bytes,
            "wasted_bytes": cs.wasted_bytes}


def run_write(pattern: str, info: dict) -> dict:
    fs = ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE)
    fs.create("f")
    fs.reset_stats()

    def body(comm):
        fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR, fs, info=info)
        fh.Set_view(0, mpi.BYTE, make_view(comm.rank, pattern))
        fh.Write_at_all(0, bytearray(bytes([comm.rank + 1]) * (K * BLOCK)))
        fh.Close()
        return True

    assert all(mpi.mpiexec(P, body, timeout=120))
    st, cs = fs.total_stats(), fs.collective_stats()
    got = fs.open("f").read(0, FILE_SIZE)
    assert got == serial_write_reference(pattern), \
        f"write image diverged from serial under {info}"
    return {"requests": st.write_requests + st.read_requests,  # + r-m-w
            "io_time": st.busy_time, "seeks": st.seeks,
            "exchange_bytes": cs.exchange_bytes,
            "wasted_bytes": cs.wasted_bytes}


def run_experiment():
    table = Table(
        f"Two-phase collective read, P={P}, {K} x {BLOCK}B blocks/rank",
        ["pattern", "path", "cb_nodes", "cb_buffer", "PFS reqs",
         "io_time", "exchange", "vs legacy"],
    )
    results = []
    for pattern in PATTERNS:
        legacy = run_read(pattern, full_info(romio_cb_read="legacy",
                                             romio_cb_write="legacy"))
        results.append({"pattern": pattern, "path": "legacy", **legacy})
        table.add(pattern, "legacy", "-", "-", legacy["requests"],
                  f"{legacy['io_time'] * 1e3:.1f} ms",
                  f"{legacy['exchange_bytes'] // 1024} KiB", "1.0x")
        for cb_nodes in (1, 2, 4, 8):
            for cb_buf in (64 * 1024, 1 << 20):
                r = run_read(pattern, full_info(cb_nodes=cb_nodes,
                                                cb_buffer_size=cb_buf))
                results.append({"pattern": pattern, "path": "two-phase",
                                "cb_nodes": cb_nodes,
                                "cb_buffer_size": cb_buf, **r})
                table.add(pattern, "two-phase", cb_nodes,
                          f"{cb_buf // 1024} KiB", r["requests"],
                          f"{r['io_time'] * 1e3:.1f} ms",
                          f"{r['exchange_bytes'] // 1024} KiB",
                          f"{legacy['requests'] / r['requests']:.0f}x")

    wlegacy = run_write("strided-holey",
                        full_info(romio_cb_read="legacy",
                                  romio_cb_write="legacy"))
    wtp = run_write("strided-holey", full_info(cb_nodes=2))
    writes = [{"pattern": "strided-holey", "path": "legacy", **wlegacy},
              {"pattern": "strided-holey", "path": "two-phase",
               "cb_nodes": 2, **wtp}]
    table.add("strided-holey", "legacy write", "-", "-",
              wlegacy["requests"], f"{wlegacy['io_time'] * 1e3:.1f} ms",
              f"{wlegacy['exchange_bytes'] // 1024} KiB", "1.0x")
    table.add("strided-holey", "two-phase write", 2, "4096 KiB",
              wtp["requests"], f"{wtp['io_time'] * 1e3:.1f} ms",
              f"{wtp['exchange_bytes'] // 1024} KiB",
              f"{wlegacy['requests'] / wtp['requests']:.0f}x")
    table.note("every row is bit-identical to the serial reference; "
               "the holey pattern is where sieved covering windows pay "
               "(wasted hole bytes buy back seeks), and exchange volume "
               "drops from P*data (broadcast) to data (point-to-point)")

    doc = {
        "benchmark": "bench_two_phase",
        "config": {
            "ranks": P, "blocks_per_rank": K, "block_bytes": BLOCK,
            "file_bytes": FILE_SIZE, "nservers": NSERVERS,
            "stripe_size": STRIPE,
            "cb_nodes_swept": [1, 2, 4, 8],
            "cb_buffer_swept": [64 * 1024, 1 << 20],
            "patterns": list(PATTERNS),
            "time_unit": "simulated busy_time seconds (cost model)",
        },
        "acceptance": {
            "pattern": "strided-holey", "cb_nodes": 2,
            "legacy_requests": next(
                r["requests"] for r in results
                if r["pattern"] == "strided-holey" and r["path"] == "legacy"),
            "two_phase_requests": next(
                r["requests"] for r in results
                if r["pattern"] == "strided-holey"
                and r.get("cb_nodes") == 2
                and r.get("cb_buffer_size") == 1 << 20),
        },
        "reads": results,
        "writes": writes,
    }
    doc["acceptance"]["request_reduction"] = (
        doc["acceptance"]["legacy_requests"]
        / doc["acceptance"]["two_phase_requests"])
    return table, doc


def test_two_phase_read_beats_legacy_5x():
    """Acceptance: the strided collective pattern at 8 ranks with 2
    aggregators issues >=5x fewer PFS requests (and less simulated
    io_time) than the pre-engine funnel, bit-identical to serial."""
    legacy = run_read("strided-holey",
                      full_info(romio_cb_read="legacy"))
    tp = run_read("strided-holey", full_info(cb_nodes=2))
    ratio = legacy["requests"] / tp["requests"]
    assert ratio >= 5.0, f"only {ratio:.1f}x fewer requests"
    assert tp["io_time"] < legacy["io_time"]
    assert tp["exchange_bytes"] < legacy["exchange_bytes"]


def test_two_phase_write_beats_legacy_5x():
    legacy = run_write("strided-holey",
                       full_info(romio_cb_write="legacy"))
    tp = run_write("strided-holey", full_info(cb_nodes=2))
    ratio = legacy["requests"] / tp["requests"]
    assert ratio >= 5.0, f"only {ratio:.1f}x fewer requests"
    assert tp["io_time"] < legacy["io_time"]


def test_dense_pattern_no_regression():
    """Where the legacy funnel already aggregated perfectly (one
    contiguous union run) the engine must match it, not regress."""
    legacy = run_read("interleaved-dense",
                      full_info(romio_cb_read="legacy"))
    tp = run_read("interleaved-dense", full_info(cb_nodes=1))
    assert tp["requests"] <= legacy["requests"] + 1


if __name__ == "__main__":
    table, doc = run_experiment()
    table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_two_phase.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
