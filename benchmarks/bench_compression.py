#!/usr/bin/env python
"""Transparent per-chunk compression: bytes moved and simulated I/O time.

Compression trades CPU (deflate) for I/O volume: every chunk is framed
through the array's codec before it reaches the byte store, so the PFS
sees the *compressed* payloads.  This benchmark makes the trade
observable on the simulator's analytic cost model:

* ``bytes moved``      — physical bytes through the ByteStore/PFS layer
  (the shared :class:`StoreStats` counters sit *below* the codec
  adapter, so they count what actually travelled),
* ``simulated io_time``— the cost model's max-of-servers elapsed time
  for the same transfers,
* ``codec time``       — wall-clock spent in encode/decode,
* ``ratio``            — logical bytes / stored bytes.

Swept: codec (none, zlib:1, zlib, delta+zlib) x workload (banded
"science" data that deflates well; random bytes that do not).  Every
compressed round-trip is checked bit-identical against the uncompressed
baseline.  A second table sweeps ``DRX_EXECUTOR_THREADS`` to show the
executor-offloaded batch (de)compression overlapping across chunks.

Run as a script this writes ``BENCH_compression.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.bench import Table
from repro.core.executor import reset_default_executors
from repro.drx.drxfile import DRXFile
from repro.pfs import ParallelFileSystem

NSERVERS = 4
STRIPE = 64 * 1024
SHAPE = (512, 512)              # 2 MiB of float64
CHUNK = (64, 64)
CODECS = ("none", "zlib:1", "zlib", "delta+zlib")
THREADS = (0, 4)


def make_fs() -> ParallelFileSystem:
    return ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE)


def banded(shape=SHAPE) -> np.ndarray:
    """Banded/smooth scientific data: long runs of equal bytes after a
    delta, deflate-friendly — the workload compression exists for."""
    rows = np.repeat(np.arange(shape[0], dtype=np.float64), shape[1])
    return (rows.reshape(shape) + np.add.outer(
        np.zeros(shape[0]), np.arange(shape[1]) % 8))


def random_data(shape=SHAPE) -> np.ndarray:
    rng = np.random.default_rng(17)
    return rng.random(shape)


def pfile_of(arr: DRXFile):
    store = arr._data
    if hasattr(store, "inner"):     # CompressedByteStore -> PFSByteStore
        store = store.inner
    return store._pfile


def run_pass(codec: str, data: np.ndarray) -> dict:
    """Write + read the workload through one codec; return the counters."""
    fs = make_fs()
    a = DRXFile.create_pfs(fs, "arr", data.shape, CHUNK, codec=codec,
                           checksums=True)
    pf = pfile_of(a)

    t0 = time.perf_counter()
    a.write((0, 0), data)
    a.flush()
    write_wall = time.perf_counter() - t0
    write_sim = pf.io_time
    write_bytes = a._data.stats.bytes_written
    codec_time = a.codec_stats.codec_time if a.codec_stats else 0.0
    a.close()

    # reopen: cold pool, so the read pass really hits the byte store
    b = DRXFile.open_pfs(fs, "arr")
    pf = pfile_of(b)
    pf.io_time = 0.0
    t0 = time.perf_counter()
    out = b.read()
    read_wall = time.perf_counter() - t0
    read_sim = pf.io_time
    read_bytes = b._data.stats.bytes_read

    assert np.array_equal(out, data), f"{codec}: round trip not identical"
    assert not b.scrub().corrupt

    st = b.codec_stats
    codec_time += st.codec_time if st is not None else 0.0
    physical = b.data_extent_nbytes()
    ratio = b.meta.data_nbytes / physical if physical else 1.0
    b.close()
    return {
        "codec": codec,
        "bytes_written": write_bytes,
        "bytes_read": read_bytes,
        "sim_io_time_write": write_sim,
        "sim_io_time_read": read_sim,
        "wall_write": write_wall,
        "wall_read": read_wall,
        "ratio": ratio,
        "codec_time": codec_time,
        "physical_extent": physical,
    }


def run_experiment() -> tuple[Table, dict]:
    table = Table(
        title="per-chunk compression (bytes moved / simulated io_time)",
        headers=["workload", "codec", "MB moved", "sim io_time s",
                 "ratio", "codec s"],
    )
    results = []
    acceptance = {}
    for wname, data in (("banded", banded()), ("random", random_data())):
        base = None
        for codec in CODECS:
            r = run_pass(codec, data)
            moved = r["bytes_written"] + r["bytes_read"]
            sim = r["sim_io_time_write"] + r["sim_io_time_read"]
            if codec == "none":
                base = {"moved": moved, "sim": sim}
            r.update(workload=wname, total_bytes_moved=moved,
                     total_sim_io_time=sim,
                     bytes_reduction=(base["moved"] / moved) if moved else 0,
                     sim_speedup=(base["sim"] / sim) if sim else 0)
            table.add(wname, codec, f"{moved / 1e6:.2f}",
                      f"{sim:.4f}", f"{r['ratio']:.2f}x",
                      f"{r['codec_time']:.3f}")
            results.append(r)
            if wname == "banded" and codec == "zlib":
                acceptance = {
                    "bytes_reduction_zlib": r["bytes_reduction"],
                    "sim_io_speedup_zlib": r["sim_speedup"],
                }
    table.note("round trips bit-identical across every codec")
    table.note(f"acceptance: banded/zlib moves "
               f"{acceptance['bytes_reduction_zlib']:.1f}x fewer bytes, "
               f"{acceptance['sim_io_speedup_zlib']:.1f}x lower simulated "
               f"io_time (targets: >=2x, >=1.5x)")

    # executor offload: batch (de)compression across worker threads
    offload = Table(
        title="executor-offloaded (de)compression (banded, zlib)",
        headers=["threads", "wall write s", "wall read s"],
    )
    offload_rows = []
    data = banded()
    for threads in THREADS:
        os.environ["DRX_EXECUTOR_THREADS"] = str(threads)
        reset_default_executors()
        try:
            r = run_pass("zlib", data)
        finally:
            os.environ.pop("DRX_EXECUTOR_THREADS", None)
            reset_default_executors()
        offload.add(threads, f"{r['wall_write']:.3f}",
                    f"{r['wall_read']:.3f}")
        offload_rows.append({"threads": threads,
                             "wall_write": r["wall_write"],
                             "wall_read": r["wall_read"]})

    doc = {
        "benchmark": "bench_compression",
        "config": {
            "nservers": NSERVERS,
            "stripe_size": STRIPE,
            "shape": list(SHAPE),
            "chunk_shape": list(CHUNK),
            "codecs_swept": list(CODECS),
            "threads_swept": list(THREADS),
            "time_unit": "simulated io_time seconds (cost model) and "
                         "measured wall-clock seconds",
        },
        "acceptance": acceptance,
        "results": results,
        "executor_offload": offload_rows,
    }
    return (table, offload), doc


def test_compression_reduces_bytes_and_io_time():
    """Acceptance: on the compressible workload, zlib moves >=2x fewer
    bytes through the PFS and charges >=1.5x less simulated io_time than
    codec=none, with bit-identical round trips."""
    data = banded()
    base = run_pass("none", data)
    comp = run_pass("zlib", data)
    moved_base = base["bytes_written"] + base["bytes_read"]
    moved_comp = comp["bytes_written"] + comp["bytes_read"]
    sim_base = base["sim_io_time_write"] + base["sim_io_time_read"]
    sim_comp = comp["sim_io_time_write"] + comp["sim_io_time_read"]
    assert moved_base / moved_comp >= 2.0, \
        f"only {moved_base / moved_comp:.2f}x fewer bytes"
    assert sim_base / sim_comp >= 1.5, \
        f"only {sim_base / sim_comp:.2f}x lower simulated io_time"


def test_incompressible_passthrough_is_cheap():
    """Random data: raw passthrough keeps the overhead to the 1-byte
    frame tag per chunk (< 0.1% volume)."""
    data = random_data()
    base = run_pass("none", data)
    comp = run_pass("zlib", data)
    overhead = (comp["bytes_written"] + comp["bytes_read"]) / \
        (base["bytes_written"] + base["bytes_read"])
    assert overhead < 1.001, f"passthrough overhead {overhead:.4f}x"


if __name__ == "__main__":
    (table, offload), doc = run_experiment()
    table.show()
    print()
    offload.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_compression.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
