#!/usr/bin/env python
"""FIG3 bench: throughput of the mapping function F* and its inverse.

The paper's computed-access claim is that addressing is "equivalent to a
hashing scheme": O(k + log E) arithmetic per chunk.  This bench measures
the scalar and vectorized forms on the exact Fig. 3 growth history and
on much longer histories (larger E), confirming the log-E scaling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, wallclock
from repro.core import (
    ExtendibleChunkIndex,
    f_star_inv_many,
    f_star_many,
    replay_history,
)
from repro.workloads import round_robin_growth

BATCH = 4096


def fig3_index() -> ExtendibleChunkIndex:
    eci = ExtendibleChunkIndex([4, 3, 1])
    for dim, by in [(2, 1), (2, 1), (1, 1), (0, 2), (2, 1)]:
        eci.extend(dim, by)
    return eci


def sample_indices(eci: ExtendibleChunkIndex, n: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    return np.stack([rng.integers(0, b, n) for b in eci.bounds], axis=1)


def run_experiment() -> Table:
    table = Table(
        "FIG3 / E4a: mapping-function throughput (addresses/second)",
        ["history", "E", "F* scalar", "F* vector", "F*^-1 vector"],
    )
    cases = [
        ("Fig. 3 (5 extensions)", fig3_index()),
        ("round-robin 30 ext, k=3",
         replay_history([2, 2, 2], round_robin_growth(3, 30))),
        ("round-robin 120 ext, k=3",
         replay_history([2, 2, 2], round_robin_growth(3, 120))),
        ("alternating 1000 ext, k=2",
         replay_history([1, 1], [(s % 2, 1) for s in range(1000)])),
    ]
    for name, eci in cases:
        idx = sample_indices(eci, BATCH)
        t_scalar, _ = wallclock(
            lambda: [eci.address(tuple(row)) for row in idx[:256]], 3)
        t_vec, addrs = wallclock(lambda: f_star_many(eci, idx), 5)
        t_inv, _ = wallclock(lambda: f_star_inv_many(eci, addrs), 5)
        table.add(name, eci.num_records,
                  f"{256 / t_scalar:,.0f}/s",
                  f"{BATCH / t_vec:,.0f}/s",
                  f"{BATCH / t_inv:,.0f}/s")
    table.note("vectorized forms amortize the per-call overhead the "
               "scalar Python path pays; E enters only via binary search")
    return table


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_f_star_vectorized(benchmark):
    eci = fig3_index()
    idx = sample_indices(eci, BATCH)
    out = benchmark(f_star_many, eci, idx)
    assert out.shape == (BATCH,)


def test_f_star_inverse_vectorized(benchmark):
    eci = fig3_index()
    q = np.arange(eci.num_chunks)
    out = benchmark(f_star_inv_many, eci, q)
    assert out.shape == (eci.num_chunks, 3)


def test_f_star_scalar(benchmark):
    eci = fig3_index()
    result = benchmark(eci.address, (4, 2, 2))
    assert result == 56


def test_f_star_scalar_large_history(benchmark):
    eci = replay_history([2, 2, 2], round_robin_growth(3, 120))
    idx = tuple(b - 1 for b in eci.bounds)
    benchmark(eci.address, idx)


if __name__ == "__main__":
    run_experiment().show()
