#!/usr/bin/env python
"""E6: BLOCK vs BLOCK_CYCLIC(k) distribution under growth.

The paper's future work: "we intend to explore how the array
distribution method can be generalized to ensure relative balanced data
distribution and how to distribute the array by BLOCK Cyclic(K)
methods."

Two balance metrics matter for a *growing* array:

* **steady-state imbalance** — max-min chunks per rank after the
  partition is recomputed for the grown grid (both schemes do fine);
* **new-segment concentration** — when a dimension is extended, which
  ranks receive the freshly adjoined segment's chunks?  Under BLOCK the
  whole segment lands on the trailing slab of the process grid (those
  ranks absorb all new I/O and all re-shuffling); under BLOCK_CYCLIC
  the segment deals out across every rank.  This bench measures the
  fraction of each new segment owned by the most-loaded rank.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table
from repro.core import ExtendibleChunkIndex, f_star_inv_many, replay_history
from repro.drxmp.partition import BlockCyclicPartition, BlockPartition
from repro.workloads import random_growth

NPROC = 4


def segment_concentration(eci: ExtendibleChunkIndex, partition) -> float:
    """Fraction of the LAST adjoined segment owned by the busiest rank
    (1/NPROC is perfect spreading, 1.0 is total concentration)."""
    seg = eci.segments[-1]
    addrs = np.arange(seg.start_address, seg.end_address)
    indices = f_star_inv_many(eci, addrs)
    owners = partition.owners_of(indices)
    counts = np.bincount(owners, minlength=NPROC)
    return counts.max() / len(addrs)


def grow_and_measure(history) -> tuple[float, float, int, int]:
    eci = replay_history([4, 4], history)
    blk = BlockPartition(eci.bounds, NPROC)
    cyc = BlockCyclicPartition(eci.bounds, NPROC, block=1)
    conc_blk = segment_concentration(eci, blk)
    conc_cyc = segment_concentration(eci, cyc)
    imb_blk = max(blk.chunk_counts()) - min(blk.chunk_counts())
    imb_cyc = max(cyc.chunk_counts()) - min(cyc.chunk_counts())
    return conc_blk, conc_cyc, imb_blk, imb_cyc


def histories():
    yield "extend dim 0 by 8 (one segment)", [(0, 8)]
    yield "extend dim 1 by 8 (one segment)", [(1, 8)]
    yield "random growth then +dim0", random_growth(2, 10, seed=3) + [(0, 4)]
    yield "random growth then +dim1", random_growth(2, 10, seed=9) + [(1, 4)]


def run_experiment() -> Table:
    table = Table(
        f"E6: where do newly adjoined chunks land? ({NPROC} processes; "
        f"perfect spread = {1 / NPROC:.2f})",
        ["growth", "final grid", "BLOCK seg. share", "CYCLIC seg. share",
         "BLOCK imb.", "CYCLIC imb."],
    )
    for name, hist in histories():
        eci = replay_history([4, 4], hist)
        conc_b, conc_c, imb_b, imb_c = grow_and_measure(hist)
        table.add(name, f"{eci.bounds[0]}x{eci.bounds[1]}",
                  f"{conc_b:.2f}", f"{conc_c:.2f}", imb_b, imb_c)
    table.note("BLOCK hands each new segment to the trailing process "
               "slab (share -> 0.5 on a 2x2 grid); CYCLIC deals it to "
               "all ranks (share -> 0.25)")
    return table


def test_shape_cyclic_spreads_new_segments():
    for _name, hist in histories():
        conc_b, conc_c, _ib, _ic = grow_and_measure(hist)
        assert conc_c <= conc_b + 1e-9
    # the single-extension cases are strict
    conc_b, conc_c, _i, _c = grow_and_measure([(0, 8)])
    assert conc_b >= 0.35 and conc_c <= 0.26


def test_block_partition_build(benchmark):
    eci = replay_history([2, 2], random_growth(2, 20, seed=3))
    benchmark(lambda: BlockPartition(eci.bounds, NPROC).chunk_counts())


def test_cyclic_partition_build(benchmark):
    eci = replay_history([2, 2], random_growth(2, 20, seed=3))
    benchmark(lambda: BlockCyclicPartition(eci.bounds, NPROC,
                                           block=1).chunk_counts())


def test_segment_concentration_kernel(benchmark):
    eci = replay_history([4, 4], [(0, 8)])
    part = BlockCyclicPartition(eci.bounds, NPROC, block=1)
    benchmark(segment_concentration, eci, part)


if __name__ == "__main__":
    run_experiment().show()
