#!/usr/bin/env python
"""Raw-speed pass: vectorized kernels + cost-model auto-tuning.

Two acceptance gates over the paper's E1–E8 experiment shapes:

**Part A — vectorization alone.**  The dense-grid scatter/gather
kernels (:mod:`repro.core.scatter`) and the vectorized datatype
pack/unpack replace per-chunk Python loops.  Per shape, the whole-array
scatter+gather round trip and the indexed-filetype pack/unpack run with
``set_vectorized(True)`` and ``(False)`` — same inputs, executor
threads 0, so the measured ratio is the pure-CPU win with no overlap
confounder.  Outputs are asserted bit-identical between the two paths.

**Part B — advisor vs. naive defaults.**  Per shape, a sequential
tile scan (fixed 64x64-element read requests, the access pattern E5
prices) runs on the simulated PFS twice: once with the naive defaults
a user starts from (the experiment's original chunk shape on the stock
64 KiB stripe) and once with the advisor's chunk/stripe choice for
that workload (``repro.tuning.advise`` with ``request_shape`` set).
The metric is the simulator's deterministic total server busy time —
the E5 resource cost (requests + seeks + bytes moved) the advisor's
model minimizes — so the comparison is exact and reproducible;
request counts and parallel ``io_time`` are recorded alongside.

Run as a script this writes ``BENCH_autotune.json`` at the repo root;
under pytest the two ``test_*`` functions enforce the acceptance
criteria (≥2× vectorization win on at least two shapes, advisor beats
naive on every shape).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.bench import Table, speedup
from repro.core.inverse import f_star_inv_many
from repro.core.mapping import f_star_many
from repro.core.metadata import DRXMeta
from repro.core.scatter import gather_chunks, scatter_chunks, set_vectorized
from repro.drx.drxfile import DRXFile
from repro.drxmp.subarray import chunk_datatype, indexed_filetype
from repro.pfs import ParallelFileSystem
from repro.tuning import Workload, advise

#: The paper's experiment geometries (bounds, chunk shape).  E4 probes
#: chunk *location* and E6 growth distribution — neither pins an array
#: shape, so they get representative grids of the same scale.
SHAPES = {
    "E1": ((128, 128), (16, 16)),
    "E2": ((256, 256), (32, 32)),
    "E3": ((96, 96), (8, 8)),
    "E4": ((256, 256), (16, 16)),
    "E5": ((512, 512), (32, 32)),
    "E6": ((160, 160), (8, 8)),
    "E7": ((128, 128), (16, 16)),
    "E8": ((64, 64), (8, 8)),
}

STRIPE = 64 * 1024
NSERVERS = 4


def _timed(fn, min_time: float = 0.2) -> float:
    """Seconds per call, repeated until ``min_time`` total elapsed."""
    fn()                                   # warm caches / allocators
    calls = 0
    t0 = time.perf_counter()
    while True:
        fn()
        calls += 1
        dt = time.perf_counter() - t0
        if dt >= min_time and calls >= 3:
            return dt / calls


# ---------------------------------------------------------------------------
# part A: vectorization alone (pure CPU, executor threads 0)
# ---------------------------------------------------------------------------

def _hot_path_inputs(bounds, chunk):
    """The whole-array scatter/gather + pack/unpack working set."""
    meta = DRXMeta.create(bounds, chunk)
    addrs = np.sort(f_star_many(
        meta.eci, np.stack(np.meshgrid(
            *[np.arange(b) for b in meta.eci.bounds],
            indexing="ij"), axis=-1).reshape(-1, meta.rank)))
    indices = f_star_inv_many(meta.eci, addrs)
    rng = np.random.default_rng(42)
    staging = rng.random((len(addrs), *chunk))
    out = np.zeros(bounds)
    payload = staging.tobytes()
    ft = indexed_filetype(meta, addrs)
    dt = chunk_datatype(meta)
    return meta, addrs, indices, staging, out, payload, ft, dt


def measure_vectorization(bounds, chunk) -> dict:
    meta, addrs, indices, staging, out, payload, ft, dt = \
        _hot_path_inputs(bounds, chunk)
    cs = meta.chunk_shape
    eb = meta.element_bounds
    unpack_buf = bytearray(len(payload))

    def round_trip():
        scatter_chunks(staging, indices, cs, eb, out, (0,) * meta.rank)
        gather_chunks(indices, cs, eb, out, (0,) * meta.rank,
                      staging=staging)
        dt.unpack(unpack_buf, payload, count=len(addrs))
        dt.pack(unpack_buf, count=len(addrs))

    digests = {}
    times = {}
    for on in (True, False):
        prev = set_vectorized(on)
        try:
            out[...] = 0
            times[on] = _timed(round_trip)
            digests[on] = (out.tobytes(),
                           dt.pack(unpack_buf, count=len(addrs)))
        finally:
            set_vectorized(prev)
    assert digests[True] == digests[False], \
        f"vectorized path not bit-identical for {bounds}/{chunk}"
    return {
        "chunks": len(addrs),
        "vectorized_s": times[True],
        "scalar_s": times[False],
        "speedup": times[False] / times[True],
    }


# ---------------------------------------------------------------------------
# part B: advisor-chosen settings vs naive defaults (simulated tile scan)
# ---------------------------------------------------------------------------

def _tiles(bounds, tile):
    for r in range(0, bounds[0], tile[0]):
        for c in range(0, bounds[1], tile[1]):
            yield ((r, c), (min(r + tile[0], bounds[0]),
                            min(c + tile[1], bounds[1])))


def _tile_scan_cost(bounds, chunk, stripe, tile) -> dict:
    """Deterministic simulated cost of a sequential tile scan.

    ``busy_time`` sums every server's service seconds — the E5-style
    resource cost (requests + seeks + bytes) the advisor's model is
    monotone in; ``io_time`` (max-over-servers per call) is recorded
    alongside as the parallel-completion view.
    """
    fs = ParallelFileSystem(nservers=NSERVERS, stripe_size=stripe)
    a = DRXFile.create_pfs(fs, "arr", bounds, chunk, cache_pages=4,
                           executor=None)
    ref = np.arange(np.prod(bounds), dtype=np.float64).reshape(bounds)
    a.write((0, 0), ref)
    a.flush()
    a._pool.invalidate()
    fs.reset_stats()
    pfile = a._data._pfile
    pfile.io_time = 0.0
    for lo, hi in _tiles(bounds, tile):
        out = a.read(lo, hi)
        assert np.array_equal(out, ref[lo[0]:hi[0], lo[1]:hi[1]])
    st = fs.total_stats()
    res = {"busy_time": st.busy_time, "io_time": pfile.io_time,
           "read_requests": st.read_requests}
    a.close()
    return res


def measure_advisor(bounds, chunk) -> dict:
    tile = tuple(min(64, b // 2 if b <= 64 else 64) for b in bounds)
    ntiles = int(np.prod([-(-b // t) for b, t in zip(bounds, tile)]))
    w = Workload(bounds=bounds, chunk_shape=chunk, stripe_size=STRIPE,
                 nservers=NSERVERS, request_shape=tile, requests=ntiles)
    advice = advise(w)
    tuned_chunk = tuple(advice.chosen("chunk_shape"))
    tuned_stripe = int(advice.chosen("stripe_size"))
    naive = _tile_scan_cost(bounds, chunk, STRIPE, tile)
    tuned = _tile_scan_cost(bounds, tuned_chunk, tuned_stripe, tile)
    pred = {c.value if not isinstance(c.value, tuple) else
            tuple(c.value): c.predicted_cost
            for c in advice.candidates if c.knob == "chunk_shape"}
    return {
        "tile": list(tile),
        "naive_chunk": list(chunk),
        "tuned_chunk": list(tuned_chunk),
        "naive_stripe": STRIPE,
        "tuned_stripe": tuned_stripe,
        "naive_busy_time": naive["busy_time"],
        "tuned_busy_time": tuned["busy_time"],
        "naive_io_time": naive["io_time"],
        "tuned_io_time": tuned["io_time"],
        "naive_requests": naive["read_requests"],
        "tuned_requests": tuned["read_requests"],
        "busy_ratio": naive["busy_time"] / tuned["busy_time"]
        if tuned["busy_time"] else float("inf"),
        "predicted_naive_cost": pred.get(tuple(chunk)),
        "predicted_tuned_cost": pred.get(tuned_chunk),
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def run_experiment() -> tuple[Table, dict]:
    table = Table(
        title="autotune: vectorization win + advisor vs naive (E1-E8)",
        headers=["shape", "chunks", "vector speedup",
                 "naive busy", "tuned busy", "busy win"],
    )
    results = []
    for name, (bounds, chunk) in SHAPES.items():
        vec = measure_vectorization(bounds, chunk)
        adv = measure_advisor(bounds, chunk)
        table.add(f"{name} {bounds[0]}x{bounds[1]}/{chunk[0]}x{chunk[1]}",
                  vec["chunks"],
                  speedup(vec["scalar_s"], vec["vectorized_s"]),
                  f"{adv['naive_busy_time']:.4f}s",
                  f"{adv['tuned_busy_time']:.4f}s",
                  f"{adv['busy_ratio']:.2f}x")
        results.append({"shape": name, "bounds": list(bounds),
                        "chunk": list(chunk), **vec, **adv})
    wins = sum(1 for r in results if r["speedup"] >= 2.0)
    table.note(f"{wins}/{len(results)} shapes with >= 2x vectorization "
               f"win at executor threads 0")
    table.note("busy time is the simulator's deterministic per-server "
               "service cost summed over servers (requests + seeks + "
               "bytes), the objective the advisor's model minimizes")
    doc = {
        "benchmark": "bench_autotune",
        "config": {
            "shapes": {k: [list(b), list(c)] for k, (b, c)
                       in SHAPES.items()},
            "stripe_size": STRIPE,
            "nservers": NSERVERS,
            "executor_threads": 0,
            "time_unit": "wall-clock seconds (part A), simulated "
                         "busy-time seconds (part B)",
        },
        "results": results,
    }
    return table, doc


# ---------------------------------------------------------------------------
# acceptance tests
# ---------------------------------------------------------------------------

def test_vectorization_speedup():
    """>= 2x pure-CPU win on at least two E-shapes, bit-identical."""
    ratios = {}
    for name in ("E3", "E5", "E2", "E6"):
        bounds, chunk = SHAPES[name]
        ratios[name] = measure_vectorization(bounds, chunk)["speedup"]
        if sum(1 for r in ratios.values() if r >= 2.0) >= 2:
            return
    raise AssertionError(
        f"fewer than two shapes reached 2x vectorization win: {ratios}")


def test_advisor_beats_naive_everywhere():
    """Advisor chunk/stripe strictly reduces simulated server busy time
    on every benchmarked shape."""
    for name, (bounds, chunk) in SHAPES.items():
        adv = measure_advisor(bounds, chunk)
        assert adv["tuned_busy_time"] < adv["naive_busy_time"], \
            (name, adv)


if __name__ == "__main__":
    table, doc = run_experiment()
    table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_autotune.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
