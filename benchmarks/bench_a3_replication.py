#!/usr/bin/env python
"""A3 (ablation): replicated meta-data vs a central directory.

The paper: "By replicating the meta-data information over the nodes and
storing the distribution information on each node, the address of any
element of the principal array can be computed and each node can
determine whether the element is local or remote."  The alternative a
B-tree-indexed format implies is a directory service: ask the rank that
owns the index where a chunk lives (two messages per lookup).

This ablation resolves the same random element batch both ways and
counts messages and wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.bench import Table
from repro.core import ExtendibleChunkIndex, replay_history
from repro.core.chunking import chunk_of
from repro.drxmp.partition import BlockPartition
from repro.workloads import random_growth

NPROC = 4
N_LOOKUPS = 300
DIRECTORY_RANK = 0


def build_doc():
    eci = replay_history([3, 3], random_growth(2, 12, seed=6))
    return eci.to_dict(), eci.bounds


def queries(bounds, chunk_shape=(4, 4)):
    rng = np.random.default_rng(17)
    shape = tuple(b * c for b, c in zip(bounds, chunk_shape))
    return [(int(rng.integers(0, shape[0])), int(rng.integers(0, shape[1])))
            for _ in range(N_LOOKUPS)]


def replicated(comm, doc, bounds):
    """Every rank resolves owner+address locally. Zero messages."""
    eci = ExtendibleChunkIndex.from_dict(doc)
    part = BlockPartition(eci.bounds, comm.size)
    out = []
    for q in queries(bounds):
        ci, _local = chunk_of(q, (4, 4))
        out.append((part.owner_of(ci), eci.address(ci)))
    comm.barrier()
    return len(out), 0            # lookups, messages sent


def directory(comm, doc, bounds):
    """Only DIRECTORY_RANK holds the meta-data; everyone else asks it."""
    eci = ExtendibleChunkIndex.from_dict(doc) \
        if comm.rank == DIRECTORY_RANK else None
    part = BlockPartition(
        ExtendibleChunkIndex.from_dict(doc).bounds, comm.size) \
        if comm.rank == DIRECTORY_RANK else None
    msgs = 0
    if comm.rank == DIRECTORY_RANK:
        # serve (size-1) clients x N_LOOKUPS requests, then stop tokens
        open_clients = comm.size - 1
        while open_clients:
            st = mpi.Status()
            req = comm.recv(source=mpi.ANY_SOURCE, tag=1, status=st)
            if req is None:
                open_clients -= 1
                continue
            ci, _local = chunk_of(req, (4, 4))
            comm.send((part.owner_of(ci), eci.address(ci)),
                      dest=st.source, tag=2)
            msgs += 1
        comm.barrier()
        return 0, msgs
    out = []
    for q in queries(bounds):
        comm.send(q, dest=DIRECTORY_RANK, tag=1)
        out.append(comm.recv(source=DIRECTORY_RANK, tag=2))
        msgs += 1
    comm.send(None, dest=DIRECTORY_RANK, tag=1)
    comm.barrier()
    return len(out), msgs


def run_experiment() -> Table:
    doc, bounds = build_doc()
    table = Table(
        f"A3 (ablation): owner/address resolution for {N_LOOKUPS} "
        f"random elements on {NPROC} ranks",
        ["scheme", "messages total", "wall time", "per-lookup"],
    )
    import time
    for label, fn in [("replicated meta-data (paper)", replicated),
                      ("central directory", directory)]:
        t0 = time.perf_counter()
        res = mpi.mpiexec(NPROC, fn, doc, bounds, timeout=120)
        dt = time.perf_counter() - t0
        msgs = sum(m for _n, m in res)
        lookups = sum(n for n, _m in res)
        table.add(label, msgs, f"{dt * 1e3:.1f} ms",
                  f"{dt / max(lookups, 1) * 1e6:.1f} us")
    table.note("replication trades a few KiB of meta-data per rank for "
               "zero-communication lookups; the directory serializes on "
               "one rank and pays 2 messages per lookup")
    return table


def test_shape_replication_eliminates_messages():
    doc, bounds = build_doc()
    rep = mpi.mpiexec(NPROC, replicated, doc, bounds, timeout=120)
    assert sum(m for _n, m in rep) == 0
    dirr = mpi.mpiexec(NPROC, directory, doc, bounds, timeout=120)
    assert sum(m for _n, m in dirr) >= 2 * (NPROC - 1) * N_LOOKUPS - 1
    # both give identical answers
    def answers_rep(comm, doc, bounds):
        eci = ExtendibleChunkIndex.from_dict(doc)
        part = BlockPartition(eci.bounds, comm.size)
        return [(part.owner_of(chunk_of(q, (4, 4))[0]),
                 eci.address(chunk_of(q, (4, 4))[0]))
                for q in queries(bounds)]
    a = mpi.mpiexec(NPROC, answers_rep, doc, bounds, timeout=120)
    assert all(x == a[0] for x in a)


def test_replicated_lookup(benchmark):
    doc, bounds = build_doc()
    benchmark(lambda: mpi.mpiexec(NPROC, replicated, doc, bounds,
                                  timeout=120))


def test_directory_lookup(benchmark):
    doc, bounds = build_doc()
    benchmark(lambda: mpi.mpiexec(NPROC, directory, doc, bounds,
                                  timeout=120))


if __name__ == "__main__":
    run_experiment().show()
