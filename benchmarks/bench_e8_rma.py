#!/usr/bin/env python
"""E8: remote element access through zone ownership (the GA model).

"An element can be accessed either directly from the file or via a
remote memory access of participating and cooperating processes."  This
bench loads a principal array into a GlobalArray and measures get/put/
accumulate on boxes that are local to the calling rank vs owned by
another rank, plus the all-local vs all-remote extremes of a sweep.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import mpi
from repro.bench import Table
from repro.drxmp import DRXMPFile, GlobalArray
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array

SHAPE = (64, 64)
CHUNK = (8, 8)
REPS = 100


def timed_ops(comm, which: str):
    fs = timed_ops.fs
    a = DRXMPFile.open(comm, fs, "E8")
    ga = GlobalArray.from_file(a)
    # rank 0's zone starts at (0, 0); the last rank's zone is remote to 0
    part = ga.partition
    my = part.zone_of(comm.rank)
    other = part.zone_of((comm.rank + comm.size // 2) % comm.size)
    my_lo = my.element_box(CHUNK, SHAPE)[0]
    other_lo = other.element_box(CHUNK, SHAPE)[0]
    box = (CHUNK[0], CHUNK[1])
    payload = np.ones(box)

    t = {}
    for name, lo in [("local", my_lo), ("remote", other_lo)]:
        t0 = time.perf_counter()
        for _ in range(REPS):
            if which == "get":
                ga.get(lo, (lo[0] + box[0], lo[1] + box[1]))
            elif which == "put":
                ga.put(lo, payload)
            else:
                ga.acc(lo, payload)
        t[name] = (time.perf_counter() - t0) / REPS
    ga.sync()
    a.close()
    return t


def setup():
    fs = ParallelFileSystem(nservers=4, stripe_size=16 * 1024)

    def init(comm):
        a = DRXMPFile.create(comm, fs, "E8", SHAPE, CHUNK)
        a.write((0, 0), pattern_array(SHAPE))
        a.close()
        return True

    mpi.mpiexec(1, init)
    timed_ops.fs = fs
    return fs


def run_experiment() -> Table:
    table = Table(
        "E8: one-chunk GA operations, local vs remote owner "
        "(4 procs, mean us/op)",
        ["op", "local", "remote", "remote/local"],
    )
    setup()
    for which in ("get", "put", "acc"):
        per_rank = mpi.mpiexec(4, timed_ops, which, timeout=120)
        local = float(np.mean([t["local"] for t in per_rank]))
        remote = float(np.mean([t["remote"] for t in per_rank]))
        table.add(which, f"{local * 1e6:.1f}", f"{remote * 1e6:.1f}",
                  f"{remote / local:.2f}x")
    table.note("remote ops add lock + window transfer over the local "
               "slice copy; both stay micro-seconds because meta-data "
               "is replicated (no owner round-trip to find the chunk)")
    return table


def test_shape_results_correct_and_remote_costlier():
    setup()
    per_rank = mpi.mpiexec(4, timed_ops, "get", timeout=120)
    local = float(np.mean([t["local"] for t in per_rank]))
    remote = float(np.mean([t["remote"] for t in per_rank]))
    assert remote >= local * 0.5   # noisy, but remote is never dominant-free
    # correctness: a remote get returns the true data
    fs = timed_ops.fs

    def check(comm):
        a = DRXMPFile.open(comm, fs, "E8")
        ga = GlobalArray.from_file(a)
        got = ga.get((0, 0), SHAPE)
        a.close()
        return bool(np.array_equal(got, pattern_array(SHAPE)))
    assert all(mpi.mpiexec(4, check, timeout=120))


def test_ga_remote_get(benchmark):
    setup()
    fs = timed_ops.fs

    def once():
        def body(comm):
            a = DRXMPFile.open(comm, fs, "E8")
            ga = GlobalArray.from_file(a)
            peer = (comm.rank + 1) % comm.size
            lo = ga.partition.zone_of(peer).element_box(CHUNK, SHAPE)[0]
            ga.get(lo, (lo[0] + 8, lo[1] + 8))
            ga.sync()
            a.close()
            return True
        return mpi.mpiexec(4, body, timeout=60)
    benchmark(once)


if __name__ == "__main__":
    run_experiment().show()
