#!/usr/bin/env python
"""Write-ahead journal cost under multi-tenant write load, and the
group-commit batch-size trade.

One in-process PFS-backed :class:`~repro.serve.server.DRXServer` is
driven by 32 concurrent write-only tenants (disjoint one-chunk-row
bands, so range locks never serialize two tenants).  Swept:

* ``journal=off`` — PR 7 behaviour: acked writes live only in the
  Mpool until the next flush (the baseline the durability layer must
  stay close to);
* ``journal=on`` with a group-commit window of 0 / 1 / 5 ms — every
  OK is preceded by a journal fsync; the window is how long a sync
  leader lingers so concurrent committers share one physical fsync.

Reported per run: throughput, physical fsyncs vs. logical sync
requests (the batching ratio), and journal bytes appended.  The
acceptance assertion is the tentpole's cost bound: with the journal on
(window 0) the 32-tenant write throughput stays within ~30% of the
journal-off baseline.  Run as a script this writes
``BENCH_journal.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import numpy as np

from repro.bench import Table
from repro.pfs import ParallelFileSystem
from repro.serve import DRXClient, DRXServer

NSERVERS = 4
STRIPE = 8 * 1024
BAND_ROWS = 8                       # one chunk row per tenant
COLS = 256
CHUNK = (BAND_ROWS, 64)
NCLIENTS = 32
BOUNDS = (NCLIENTS * BAND_ROWS, COLS)
OPS = 16                            # writes per tenant

#: journal configurations swept (label -> DRXServer kwargs)
CONFIGS = {
    "off": dict(journal=False),
    "on/0ms": dict(journal=True, journal_window=0.0),
    "on/1ms": dict(journal=True, journal_window=0.001),
    "on/5ms": dict(journal=True, journal_window=0.005),
}

#: the acceptance bound: journal-on (window 0) vs journal-off
MAX_OVERHEAD = 0.30


def band(idx: int) -> int:
    return idx * BAND_ROWS


def band_image(idx: int, step: int) -> np.ndarray:
    base = float(idx * 10_000 + step)
    return base + np.arange(BAND_ROWS * COLS,
                            dtype="<f8").reshape(BAND_ROWS, COLS)


def _tenant(address, idx: int, errors: list[BaseException]) -> None:
    try:
        with DRXClient(address, client_id=f"tenant-{idx:02d}",
                       timeout=60.0, seed=idx, max_retries=64) as c:
            lo = band(idx)
            for step in range(OPS):
                c.write("shared", (lo, 0), band_image(idx, step))
    except BaseException as exc:       # surfaced by the driver
        errors.append(exc)


def run_load(config: str) -> dict:
    fs = ParallelFileSystem(nservers=NSERVERS, stripe_size=STRIPE)
    srv = DRXServer(fs=fs, max_inflight=16, max_inflight_per_client=4,
                    max_queue=64, **CONFIGS[config]).start()
    try:
        with DRXClient(srv.address, client_id="setup") as c:
            c.create("shared", BOUNDS, CHUNK)
        errors: list[BaseException] = []
        threads = [
            threading.Thread(target=_tenant,
                             args=(srv.address, i, errors),
                             name=f"tenant-{i:02d}")
            for i in range(NCLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        wall = time.perf_counter() - t0
        assert not any(t.is_alive() for t in threads), "wedged tenant"
        if errors:
            raise errors[0]

        # correctness sweep: every band holds its last acked write
        with DRXClient(srv.address, client_id="checker") as c:
            for i in range(NCLIENTS):
                lo = band(i)
                got = c.read("shared", (lo, 0), (lo + BAND_ROWS, COLS))
                assert np.array_equal(got, band_image(i, OPS - 1)), \
                    f"tenant {i}'s band diverged after the run"

        snap = srv.stats_snapshot()
    finally:
        srv.shutdown(drain=True)

    qos = snap["qos"]
    for name, row in qos["clients"].items():
        assert row["requests"] == (row["ok"] + row["errors"]
                                   + row["retry_later"]
                                   + row["deadline_misses"]), \
            f"QoS conservation violated for {name}"
    jstats = snap["journal"].get("shared", {}).get("stats", {})
    ops = NCLIENTS * OPS
    syncs = jstats.get("syncs", 0)
    requests = jstats.get("sync_requests", 0)
    return {
        "config": config,
        "clients": NCLIENTS,
        "wall_s": wall,
        "ops": ops,
        "throughput_ops_s": ops / wall,
        "sync_requests": requests,
        "syncs": syncs,
        "batched_syncs": jstats.get("batched_syncs", 0),
        "batch_ratio": (requests / syncs) if syncs else None,
        "journal_bytes": jstats.get("bytes_appended", 0),
        "retry_later": qos["totals"]["retry_later"],
    }


def run_experiment():
    table = Table(
        f"Journal cost, {NCLIENTS} write-only tenants x {OPS} "
        f"{BAND_ROWS}x{COLS} f8 band writes",
        ["journal", "ops/s", "overhead", "fsyncs", "sync reqs",
         "batch ratio", "journal MiB"],
    )
    results = []
    baseline = None
    for config in CONFIGS:
        r = run_load(config)
        if config == "off":
            baseline = r["throughput_ops_s"]
        r["overhead_vs_off"] = (
            (baseline - r["throughput_ops_s"]) / baseline
            if baseline else None)
        results.append(r)
        table.add(config, f"{r['throughput_ops_s']:.0f}",
                  "-" if config == "off"
                  else f"{r['overhead_vs_off'] * 100:+.1f}%",
                  r["syncs"], r["sync_requests"],
                  "-" if r["batch_ratio"] is None
                  else f"{r['batch_ratio']:.1f}x",
                  f"{r['journal_bytes'] / 2**20:.1f}")
    table.note("on/N = journal enabled with an N-ms group-commit "
               "window: a sync leader lingers N ms so concurrent "
               "committers ride one physical fsync — fewer fsyncs per "
               "OK at the cost of added ack latency.  overhead is "
               "throughput lost vs. the journal-off baseline; the "
               "acceptance bound is the window-0 row")
    on0 = next(r for r in results if r["config"] == "on/0ms")
    assert on0["overhead_vs_off"] < MAX_OVERHEAD, \
        f"journal overhead {on0['overhead_vs_off']:.0%} exceeds " \
        f"{MAX_OVERHEAD:.0%}"
    assert on0["syncs"] >= 1 and on0["sync_requests"] >= NCLIENTS * OPS
    doc = {
        "benchmark": "bench_journal",
        "config": {
            "nservers": NSERVERS, "stripe_size": STRIPE,
            "bounds": list(BOUNDS), "chunk": list(CHUNK),
            "band_rows": BAND_ROWS, "ops_per_tenant": OPS,
            "clients": NCLIENTS,
            "configs": {k: dict(v) for k, v in CONFIGS.items()},
            "time_unit": "wall-clock seconds (loopback TCP, in-process "
                         "daemon, in-memory PFS)",
        },
        "acceptance": {
            "journal_overhead_vs_off": on0["overhead_vs_off"],
            "max_overhead": MAX_OVERHEAD,
        },
        "runs": results,
    }
    return table, doc


def test_journal_overhead_within_bound():
    """Acceptance: the durability tax — journal append + group-commit
    fsync before every OK — costs less than ~30% of the journal-off
    write throughput at 32 tenants."""
    off = run_load("off")
    on = run_load("on/0ms")
    overhead = (off["throughput_ops_s"] - on["throughput_ops_s"]) \
        / off["throughput_ops_s"]
    assert overhead < MAX_OVERHEAD
    assert on["sync_requests"] >= NCLIENTS * OPS


def test_group_commit_window_batches_fsyncs():
    """A non-zero group-commit window amortizes fsyncs: strictly fewer
    physical syncs than logical sync requests."""
    r = run_load("on/5ms")
    assert r["syncs"] < r["sync_requests"]
    assert r["batched_syncs"] >= r["sync_requests"] - r["syncs"]


if __name__ == "__main__":
    table, doc = run_experiment()
    table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_journal.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
