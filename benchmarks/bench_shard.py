#!/usr/bin/env python
"""The sharded service under load: shard scaling and pipelining wins.

Two experiments, both against in-process
:class:`~repro.serve.shard.ShardSet` daemons.  Per-op service time is
pinned with the daemon's ``_delay`` knob — a GIL-releasing sleep paid
inside the request, while its admission slot is held — so each shard
models a device with fixed service time and a queue depth equal to its
admission window.  A shard's capacity is then window/service-time
ops/s, a resource that genuinely multiplies with shard count even on
one CPU, exactly as N daemon processes on N disks would (the CPU cost
of the protocol work itself stays visible as the flattening of the
8-shard leg).

**Shard scaling** — ``DRX_BENCH_CLIENTS`` tenants (default 128; the CI
leg turns it up) each own one array and hammer it with chunk writes,
against 1 / 2 / 4 / 8 shards.  The ``rpc`` legs drive one op per
round trip per tenant; the ``pipelined`` legs push the *same total op
count* through 4x fewer connections, each holding a window of 4 in
flight — the operational claim of pipelining at scale is connection
economy at equal aggregate load, not extra throughput from a shard
that is already capacity-saturated.  Recorded per leg: aggregate
ops/s, p50/p99 per-op latency, per-shard balance of completed ops,
and queue-depth high-water marks.  Acceptance: 4 shards deliver
>= 2x the aggregate write throughput of 1 shard.

**Pipelining** — one 256-op sequential workload (one chunk write per
op, distinct chunks) against a single shard, three ways: ``rpc`` (one
op per round trip), ``pipelined`` (rid-tagged window of 32 in flight,
replies matched by id), ``batch`` (frames of 32 ops).  Per-op service
time is pinned at 10 ms with the daemon's ``_delay`` knob (a
GIL-releasing stand-in for device latency, decoupled from write-back
cache timing), so the experiment isolates exactly what the protocol
controls: how much service time overlaps.  Acceptance: pipelining
cuts wall-clock >= 3x vs RPC — the window overlaps service time that
RPC pays serially.  Batching collapses 256 frames to 8 — its win is
framing/round-trip overhead, not concurrency (ops in one frame
execute in list order), and the table says so honestly.

Every leg ends with a full read-back asserted bit-identical against
the last acked write, and QoS conservation checked on the merged
stats.  Run as a script this writes ``BENCH_shard.json`` at the repo
root.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np

from repro.bench import Table
from repro.pfs import ParallelFileSystem
from repro.serve.shard import ShardSet, merge_stats

NCLIENTS = int(os.environ.get("DRX_BENCH_CLIENTS", "128"))
OPS_PER_CLIENT = int(os.environ.get("DRX_BENCH_OPS", "4"))
SHARD_COUNTS = (1, 2, 4, 8)
CHUNK = 64                          #: chunk edge (64x64 f8 = 32 KiB)
CHUNK_BYTES = CHUNK * CHUNK * 8

DEV_DELAY = 0.025                   #: pinned service time, scaling leg
#: per-shard admission window for the scaling leg: the modeled device
#: queue depth — a shard's capacity is window / DEV_DELAY ops/s
SCALE_ADMISSION = dict(max_inflight=4, max_inflight_per_client=4,
                       max_queue=2048)
PIPE_WINDOW = 4                     #: per-connection window, scaling leg

SEQ_OPS = 256                       #: the sequential-workload length
OP_DELAY = 0.010                    #: pinned service time per seq op
PIPE_DEPTH = 32                     #: == per-client admission window
BATCH_OPS = 32
SEQ_ADMISSION = dict(max_inflight=32, max_inflight_per_client=32,
                     max_queue=512)


def make_set(nshards: int, nservers: int, admission: dict) -> ShardSet:
    return ShardSet(
        nshards,
        fs_factory=lambda i: ParallelFileSystem(
            nservers=nservers, stripe_size=CHUNK_BYTES),
        journal=False,              # pure data-path throughput
        **admission)


def block(i: int, step: int) -> np.ndarray:
    return np.full((CHUNK, CHUNK), float(i * 1000 + step))


# ---------------------------------------------------------------------------
# experiment 1: shard scaling
# ---------------------------------------------------------------------------
def _tenant_rpc(ss, i, nops, lats, errors):
    try:
        with ss.client(f"t{i:04d}", timeout=120.0, max_retries=200,
                       seed=i) as c:
            for step in range(nops):
                t0 = time.perf_counter()
                c.write(f"t{i:04d}", (step * CHUNK, 0), block(i, step),
                        _delay=DEV_DELAY)
                lats.append(time.perf_counter() - t0)
    except BaseException as exc:        # surfaced by the driver
        errors.append(exc)


def _tenant_pipelined(ss, i, nops, lats, errors):
    try:
        with ss.client(f"t{i:04d}", timeout=120.0, max_retries=200,
                       seed=i) as c:
            with c.pipeline(depth=PIPE_WINDOW) as pipe:
                t0 = time.perf_counter()
                pends = [pipe.write(f"t{i:04d}", (step * CHUNK, 0),
                                    block(i, step), _delay=DEV_DELAY)
                         for step in range(nops)]
                for p in pends:
                    p.result()
                    lats.append(time.perf_counter() - t0)
    except BaseException as exc:
        errors.append(exc)


def run_scaling(nshards: int, mode: str) -> dict:
    if mode == "rpc":
        tenant, nclients, nops = _tenant_rpc, NCLIENTS, OPS_PER_CLIENT
    else:
        # same total op count through 4x fewer connections, each
        # keeping a window of PIPE_WINDOW requests in flight
        tenant = _tenant_pipelined
        nclients = max(1, NCLIENTS // PIPE_WINDOW)
        nops = OPS_PER_CLIENT * PIPE_WINDOW
    with make_set(nshards, nservers=1,
                  admission=SCALE_ADMISSION) as ss:
        with ss.client("setup", timeout=60.0) as setup:
            for i in range(nclients):
                setup.create(f"t{i:04d}",
                             bounds=[nops * CHUNK, CHUNK],
                             chunk=[CHUNK, CHUNK])
        per_client: list[list[float]] = [[] for _ in range(nclients)]
        errors: list[BaseException] = []
        threads = [threading.Thread(target=tenant,
                                    args=(ss, i, nops, per_client[i],
                                          errors),
                                    name=f"tenant-{i:04d}")
                   for i in range(nclients)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - t0
        assert not any(t.is_alive() for t in threads), "wedged tenant"
        if errors:
            raise errors[0]

        # read-back: every chunk bit-identical to its acked write
        with ss.client("checker", timeout=60.0) as c:
            for i in range(0, nclients, max(1, nclients // 16)):
                for step in range(nops):
                    got = c.read(f"t{i:04d}", (step * CHUNK, 0),
                                 ((step + 1) * CHUNK, CHUNK))
                    assert np.array_equal(got, block(i, step)), \
                        f"tenant {i} step {step} diverged"

        snaps = [srv.stats_snapshot() for srv in ss.servers]
    merged = merge_stats(snaps)
    tot = merged["aggregate"]["qos_totals"]
    assert tot["requests"] == (tot["ok"] + tot["errors"]
                               + tot["retry_later"]
                               + tot["deadline_misses"]), \
        "QoS conservation violated across the shard set"
    per_shard_ok = [s["qos"]["totals"]["ok"] for s in snaps]
    lats = np.array(sorted(x for c in per_client for x in c))
    ops = nclients * nops
    return {
        "experiment": "scaling",
        "nshards": nshards,
        "mode": mode,
        "clients": nclients,
        "ops": ops,
        "wall_s": wall,
        "throughput_ops_s": ops / wall,
        "p50_ms": float(np.percentile(lats, 50) * 1e3),
        "p99_ms": float(np.percentile(lats, 99) * 1e3),
        "per_shard_ok": per_shard_ok,
        "balance_ratio": (max(per_shard_ok) / max(1, min(per_shard_ok))
                          if nshards > 1 else 1.0),
        "queue_depth_hw": max(s["qos"]["queue_depth_hw"] for s in snaps),
        "inflight_hw": max(s["qos"]["inflight_hw"] for s in snaps),
        "retry_later": tot["retry_later"],
    }


# ---------------------------------------------------------------------------
# experiment 2: pipelining vs one-op-per-round-trip vs batch frames
# ---------------------------------------------------------------------------
def run_sequential(mode: str) -> dict:
    with make_set(1, nservers=4, admission=SEQ_ADMISSION) as ss:
        with ss.client("setup", timeout=60.0) as setup:
            setup.create("seq", bounds=[SEQ_OPS * CHUNK, CHUNK],
                         chunk=[CHUNK, CHUNK])
        frames = 0
        with ss.client("seq-driver", timeout=300.0,
                       max_retries=200) as c:
            t0 = time.perf_counter()
            if mode == "rpc":
                for step in range(SEQ_OPS):
                    c.write("seq", (step * CHUNK, 0), block(0, step),
                            _delay=OP_DELAY)
                frames = SEQ_OPS
            elif mode == "pipelined":
                raw = c.client_for("seq")
                with raw.pipeline(depth=PIPE_DEPTH) as pipe:
                    pends = [pipe.submit(
                        "write",
                        {"name": "seq", "lo": [step * CHUNK, 0],
                         "shape": [CHUNK, CHUNK], "dtype": "<f8",
                         "_delay": OP_DELAY},
                        block(0, step).tobytes())
                        for step in range(SEQ_OPS)]
                    for p in pends:
                        p.result()
                frames = SEQ_OPS
            else:                   # batch
                for lo in range(0, SEQ_OPS, BATCH_OPS):
                    ops = [{"verb": "write", "name": "seq",
                            "lo": [step * CHUNK, 0],
                            "shape": [CHUNK, CHUNK], "dtype": "<f8",
                            "_delay": OP_DELAY,
                            "payload": block(0, step).tobytes()}
                           for step in range(lo, lo + BATCH_OPS)]
                    c.batch(ops)
                    frames += 1
            wall = time.perf_counter() - t0

            # full read-back, bit-identical
            for step in range(SEQ_OPS):
                got = c.read("seq", (step * CHUNK, 0),
                             ((step + 1) * CHUNK, CHUNK))
                assert np.array_equal(got, block(0, step)), \
                    f"step {step} diverged under {mode}"
        snap = ss.servers[0].stats_snapshot()
    tot = snap["qos"]["totals"]
    assert tot["requests"] == (tot["ok"] + tot["errors"]
                               + tot["retry_later"]
                               + tot["deadline_misses"])
    return {
        "experiment": "sequential",
        "mode": mode,
        "ops": SEQ_OPS,
        "frames": frames,
        "wall_s": wall,
        "throughput_ops_s": SEQ_OPS / wall,
        "queue_depth_hw": snap["qos"]["queue_depth_hw"],
        "inflight_hw": snap["qos"]["inflight_hw"],
        "retry_later": tot["retry_later"],
    }


# ---------------------------------------------------------------------------
def run_experiment():
    scaling_table = Table(
        f"Shard scaling: {NCLIENTS} tenants x {OPS_PER_CLIENT} chunk "
        f"writes ({CHUNK}x{CHUNK} f8), {DEV_DELAY * 1e3:.0f} ms service "
        f"time, window {SCALE_ADMISSION['max_inflight']}/shard",
        ["shards", "mode", "ops/s", "p50", "p99", "balance",
         "queue hw"],
    )
    runs = []
    for nshards in SHARD_COUNTS:
        for mode in ("rpc", "pipelined"):
            r = run_scaling(nshards, mode)
            runs.append(r)
            scaling_table.add(
                nshards, mode, f"{r['throughput_ops_s']:.0f}",
                f"{r['p50_ms']:.1f} ms", f"{r['p99_ms']:.1f} ms",
                f"{r['balance_ratio']:.2f}", r["queue_depth_hw"])
    scaling_table.note(
        "each shard = one daemon modeling a device with fixed service "
        "time and queue depth = its admission window (GIL-releasing "
        "sleeps), so aggregate ops/s is capacity-bound and scales "
        "with shard count on one CPU until protocol CPU flattens it; "
        "pipelined legs move the same total ops over 4x fewer "
        "connections (window 4 each) — connection economy at equal "
        "load, paid for with the extra per-request dispatch hop on a "
        "saturated shard (pipelining buys wall-clock when latency "
        "dominates, see the sequential table, not when the shard is "
        "already capacity-bound); balance = busiest/quietest shard "
        "in completed ops (consistent hashing of tenant array names)")

    seq_table = Table(
        f"Sequential {SEQ_OPS}-op workload, 1 shard, "
        f"{OP_DELAY * 1e3:.0f} ms pinned service time per op",
        ["mode", "frames", "wall", "ops/s", "speedup vs rpc"],
    )
    seq = {}
    for mode in ("rpc", "pipelined", "batch"):
        r = run_sequential(mode)
        seq[mode] = r
        runs.append(r)
    for mode, r in seq.items():
        seq_table.add(mode, r["frames"], f"{r['wall_s']:.2f} s",
                      f"{r['throughput_ops_s']:.0f}",
                      f"{seq['rpc']['wall_s'] / r['wall_s']:.2f}x")
    seq_table.note(
        "rpc pays every op's service time serially (one round trip "
        "each); the pipeline's in-flight window overlaps service time "
        "across ops, bounded by the admission window; batch collapses "
        "256 frames to 8 but executes a frame's ops in list order — "
        "it buys framing/round-trip overhead, not concurrency")

    # acceptance
    def tput(nshards, mode):
        return next(r["throughput_ops_s"] for r in runs
                    if r.get("nshards") == nshards
                    and r["mode"] == mode
                    and r["experiment"] == "scaling")

    scale_x = tput(4, "rpc") / tput(1, "rpc")
    pipe_x = seq["rpc"]["wall_s"] / seq["pipelined"]["wall_s"]
    assert scale_x >= 2.0, \
        f"4 shards only {scale_x:.2f}x the 1-shard write throughput"
    assert pipe_x >= 3.0, \
        f"pipelining only cut the sequential wall-clock {pipe_x:.2f}x"

    doc = {
        "benchmark": "bench_shard",
        "config": {
            "clients": NCLIENTS, "ops_per_client": OPS_PER_CLIENT,
            "chunk": [CHUNK, CHUNK], "shard_counts": list(SHARD_COUNTS),
            "scaling_op_delay_s": DEV_DELAY,
            "scaling_admission": dict(SCALE_ADMISSION),
            "sequential_ops": SEQ_OPS,
            "sequential_op_delay_s": OP_DELAY,
            "pipeline_depth": PIPE_DEPTH,
            "batch_ops_per_frame": BATCH_OPS,
            "sequential_admission": dict(SEQ_ADMISSION),
            "journal": False,
            "time_unit": "wall-clock seconds (loopback TCP, in-process "
                         "daemons, GIL-releasing pinned service times)",
        },
        "acceptance": {
            "shards4_vs_1_write_throughput_x": round(scale_x, 2),
            "required_x": 2.0,
            "pipelining_vs_rpc_wall_x": round(pipe_x, 2),
            "required_pipelining_x": 3.0,
            "readback_bit_identical": True,
        },
        "runs": runs,
    }
    return scaling_table, seq_table, doc


def test_four_shards_double_write_throughput():
    """Acceptance: the same tenant population pushes >= 2x the
    aggregate write throughput through 4 shards as through 1 — the
    shards' devices (and admission windows) genuinely parallelize."""
    one = run_scaling(1, "rpc")
    four = run_scaling(4, "rpc")
    ratio = four["throughput_ops_s"] / one["throughput_ops_s"]
    assert ratio >= 2.0, f"4 shards only {ratio:.2f}x of 1 shard"


def test_pipelining_cuts_sequential_wall_3x():
    """Acceptance: a 256-op sequential workload completes >= 3x faster
    through the pipelined window than one-op-per-round-trip, with the
    read-back bit-identical (asserted inside run_sequential)."""
    rpc = run_sequential("rpc")
    piped = run_sequential("pipelined")
    ratio = rpc["wall_s"] / piped["wall_s"]
    assert ratio >= 3.0, f"pipelining only {ratio:.2f}x vs rpc"


if __name__ == "__main__":
    scaling_table, seq_table, doc = run_experiment()
    scaling_table.show()
    print()
    seq_table.show()
    out = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_shard.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out}")
