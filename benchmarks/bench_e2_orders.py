#!/usr/bin/env python
"""E2: access-order performance — the on-the-fly transposition claim.

"There is no need for out-of-core array element transposition since
this can be done on the fly as the array elements are read into core"
and, conversely, conventional mappings give "abysmal performance" when
read against the file's own order.

Both stores live on the simulated PFS so the comparison is in server
requests, seeks and simulated time for full scans in row order and in
column order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ConventionalArrayFile
from repro.bench import Table
from repro.drx import DRXFile, PFSByteStore
from repro.drx.drxfile import DRXFile as _DRXFile
from repro.pfs import ParallelFileSystem
from repro.workloads import column_scan_boxes, pattern_array, row_scan_boxes

SHAPE = (256, 256)
CHUNK = (32, 32)
SLAB = 32


def make_flat():
    fs = ParallelFileSystem(nservers=4, stripe_size=64 * 1024)
    store = PFSByteStore(fs.create("flat.dat"))
    c = ConventionalArrayFile(SHAPE, store=store)
    c.write((0, 0), pattern_array(SHAPE))
    return fs, c


def make_drx():
    fs = ParallelFileSystem(nservers=4, stripe_size=64 * 1024)
    meta_store = None
    from repro.core.metadata import DRXMeta
    meta = DRXMeta.create(SHAPE, CHUNK)
    store = PFSByteStore(fs.create("drx.xta"))
    a = _DRXFile(meta, store, meta_store, writable=True, cache_pages=16)
    a.write((0, 0), pattern_array(SHAPE))
    a.flush()
    return fs, a


def scan(fs, read, boxes, order="C"):
    fs.reset_stats()
    for lo, hi in boxes:
        read(lo, hi, order)
    return fs.total_stats()


def run_experiment() -> Table:
    table = Table(
        "E2: full scans of a 256x256 array by access order "
        "(simulated PFS: requests / seeks / time)",
        ["store", "row-order scan", "column-order scan", "column/row"],
    )

    fs, flat = make_flat()
    st_row = scan(fs, flat.read, row_scan_boxes(SHAPE, SLAB))
    st_col = scan(fs, flat.read, column_scan_boxes(SHAPE, SLAB))
    table.add("flat row-major",
              f"{st_row.requests} req / {st_row.busy_time * 1e3:.1f} ms",
              f"{st_col.requests} req / {st_col.busy_time * 1e3:.1f} ms",
              f"{st_col.busy_time / st_row.busy_time:.1f}x slower")
    flat_ratio = st_col.busy_time / st_row.busy_time

    fs, drx = make_drx()
    def read(lo, hi, order):
        drx._pool.invalidate()
        drx.read(lo, hi, order)
    st_row = scan(fs, read, row_scan_boxes(SHAPE, SLAB))
    st_colf = scan(fs, read, column_scan_boxes(SHAPE, SLAB), order="F")
    table.add("DRX chunked (reads in F order!)",
              f"{st_row.requests} req / {st_row.busy_time * 1e3:.1f} ms",
              f"{st_colf.requests} req / {st_colf.busy_time * 1e3:.1f} ms",
              f"{st_colf.busy_time / st_row.busy_time:.1f}x")
    drx_ratio = st_colf.busy_time / st_row.busy_time
    drx.close()

    table.note("the flat file pays per-row seeks for transposed scans; "
               "the chunked file touches each chunk once regardless of "
               "order and can deliver either memory order")
    assert flat_ratio > 2 * drx_ratio
    return table


def test_shape_order_insensitivity():
    fs, flat = make_flat()
    st = scan(fs, flat.read, row_scan_boxes(SHAPE, SLAB))
    flat_row, flat_row_req = st.busy_time, st.requests
    st = scan(fs, flat.read, column_scan_boxes(SHAPE, SLAB))
    flat_col, flat_col_req = st.busy_time, st.requests
    fs, drx = make_drx()
    def read(lo, hi, order):
        drx._pool.invalidate()
        drx.read(lo, hi, order)
    st = scan(fs, read, row_scan_boxes(SHAPE, SLAB))
    drx_row, drx_row_req = st.busy_time, st.requests
    st = scan(fs, read, column_scan_boxes(SHAPE, SLAB), "F")
    drx_col, drx_col_req = st.busy_time, st.requests
    drx.close()
    # the flat file's transposed request count explodes; the chunked
    # file touches every chunk exactly once regardless of order
    assert flat_col_req / flat_row_req > 50
    assert drx_col_req == drx_row_req
    # time: DRX's residual transposed penalty (pure seek ordering) stays
    # far below the flat file's collapse, and DRX wins outright there
    assert (drx_col / drx_row) < (flat_col / flat_row) / 5
    assert drx_col < flat_col


def test_drx_row_scan(benchmark):
    fs, drx = make_drx()
    def once():
        for lo, hi in row_scan_boxes(SHAPE, SLAB):
            drx.read(lo, hi)
    benchmark(once)
    drx.close()


def test_drx_column_scan_f_order(benchmark):
    fs, drx = make_drx()
    def once():
        for lo, hi in column_scan_boxes(SHAPE, SLAB):
            drx.read(lo, hi, order="F")
    benchmark(once)
    drx.close()


def test_flat_column_scan(benchmark):
    fs, flat = make_flat()
    def once():
        for lo, hi in column_scan_boxes(SHAPE, SLAB):
            flat.read(lo, hi)
    benchmark(once)


if __name__ == "__main__":
    run_experiment().show()
