#!/usr/bin/env python
"""E5: reconciling chunk size with the PFS stripe size.

The paper's closing line of future work: "Optimizing the access by
reconciling the chunk size with the strip size of the parallel file
system for optimal chunk accesses."  This bench fixes a 64 KiB stripe
and sweeps the chunk size through, below and above it, reading the
array chunk by chunk and reporting how many server requests each chunk
access costs and how evenly the load spreads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table
from repro.core.metadata import DRXMeta
from repro.drx import PFSByteStore
from repro.drx.drxfile import DRXFile
from repro.pfs import ParallelFileSystem

STRIPE = 64 * 1024
N_ELEMS = 512            # 512x512 doubles = 2 MiB


def make(chunk_edge: int):
    fs = ParallelFileSystem(nservers=4, stripe_size=STRIPE)
    meta = DRXMeta.create((N_ELEMS, N_ELEMS), (chunk_edge, chunk_edge))
    store = PFSByteStore(fs.create("e5.xta"))
    a = DRXFile(meta, store, None, writable=True, cache_pages=4)
    a.write((0, 0), np.zeros((N_ELEMS, N_ELEMS)))
    a.flush()
    return fs, a


def chunk_scan(fs, a):
    """Read every chunk once, bypassing the cache."""
    fs.reset_stats()
    ce = a.chunk_shape[0]
    for i in range(0, N_ELEMS, ce):
        a._pool.invalidate()
        a.read((i, 0), (min(i + ce, N_ELEMS), ce))
    return fs.total_stats()


def run_experiment() -> Table:
    table = Table(
        f"E5: chunk size vs stripe size (stripe = {STRIPE // 1024} KiB, "
        "4 servers)",
        ["chunk", "chunk bytes", "chunk/stripe", "reqs per chunk",
         "time per chunk"],
    )
    for edge in (32, 64, 90, 128, 181):
        fs, a = make(edge)
        st = chunk_scan(fs, a)
        nchunks = -(-N_ELEMS // edge)
        chunk_bytes = edge * edge * 8
        table.add(f"{edge}x{edge}", chunk_bytes,
                  f"{chunk_bytes / STRIPE:.2f}",
                  f"{st.read_requests / nchunks:.1f}",
                  f"{st.busy_time / nchunks * 1e3:.2f} ms")
        a.close()
    table.note("chunks no larger than a stripe land on one server in "
               "one request; stripe-crossing chunks split across "
               "servers (more requests, but parallel service)")
    return table


def test_shape_aligned_chunks_fewest_requests_each():
    fs, a = make(64)                 # 64x64 doubles = 32 KiB < stripe
    st_small = chunk_scan(fs, a)
    n_small = -(-N_ELEMS // 64)
    a.close()
    fs, a = make(181)                # ~256 KiB > stripe: must split
    st_big = chunk_scan(fs, a)
    n_big = -(-N_ELEMS // 181)
    a.close()
    assert st_small.read_requests / n_small < \
        st_big.read_requests / n_big


def test_chunk_scan_small(benchmark):
    fs, a = make(64)
    benchmark(lambda: chunk_scan(fs, a))
    a.close()


def test_chunk_scan_large(benchmark):
    fs, a = make(181)
    benchmark(lambda: chunk_scan(fs, a))
    a.close()


if __name__ == "__main__":
    run_experiment().show()
