#!/usr/bin/env python
"""Run coalescing: per-chunk vs vectored store traffic on real files.

Sweeps chunk sizes and zone shapes over a disk-resident array and
compares the legacy one-store-call-per-chunk execution
(``coalesce=False``) against the run-coalesced planner: physical store
calls, coalesced runs, mean bytes per call, and wall-clock throughput
for both reads and writes.

``F*`` lays any rectilinear zone out as a few contiguous address runs,
so the coalesced engine moves whole runs with one positioned transfer
each — a full-array scan becomes a single vectored call — while the
legacy path pays one call per chunk.
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro.bench import Table, wallclock
from repro.drx import DRXFile

ARRAY = (256, 256)               # doubles: 512 KiB on disk
CACHE_PAGES = 8
CHUNKS = [(8, 8), (16, 16), (32, 32)]
ZONES = [
    ("full scan", (0, 0), ARRAY),
    ("row band", (96, 0), (160, 256)),
    ("col band", (0, 96), (256, 160)),
    ("interior box", (50, 50), (200, 200)),
]


def _make(path: pathlib.Path, chunk, coalesce: bool,
          data: np.ndarray) -> DRXFile:
    a = DRXFile.create(path, ARRAY, chunk, overwrite=True,
                       cache_pages=CACHE_PAGES, coalesce=coalesce)
    a.write((0, 0), data)
    a.flush()
    return a


def measure_read(path: pathlib.Path, chunk, coalesce: bool,
                 data: np.ndarray, lo, hi, repeat: int = 5):
    """Best-of-``repeat`` cold read of ``[lo, hi)``; returns
    ``(seconds, StoreStats of the last run)``."""
    a = _make(path, chunk, coalesce, data)

    def once():
        a._pool.invalidate()          # cold cache (pages are clean)
        a._data.stats.reset()
        return a.read(lo, hi)

    secs, out = wallclock(once, repeat)
    assert np.allclose(out, data[lo[0]:hi[0], lo[1]:hi[1]])
    stats = a._data.stats.snapshot()
    a.close()
    return secs, stats


def measure_write(path: pathlib.Path, chunk, coalesce: bool,
                  data: np.ndarray, repeat: int = 5):
    """Best-of-``repeat`` full-array write+flush; returns
    ``(seconds, StoreStats of the last run)``."""
    stats = None

    def once():
        nonlocal stats
        a = DRXFile.create(path, ARRAY, chunk, overwrite=True,
                           cache_pages=CACHE_PAGES, coalesce=coalesce)
        a._data.stats.reset()
        a.write((0, 0), data)
        a.flush()
        stats = a._data.stats.snapshot()
        a.close()

    secs, _ = wallclock(once, repeat)
    return secs, stats


def _mb_s(nbytes: int, secs: float) -> str:
    return f"{nbytes / secs / 1e6:.0f} MB/s" if secs > 0 else "-"


def run_experiment(workdir: pathlib.Path) -> list[Table]:
    rng = np.random.default_rng(7)
    data = rng.random(ARRAY)
    read_tab = Table(
        f"Sub-array reads on a {ARRAY[0]}x{ARRAY[1]} double array "
        f"(pool {CACHE_PAGES} pages): per-chunk vs coalesced",
        ["chunk", "zone", "calls/chunk-wise", "calls/coalesced",
         "runs", "B/call", "thru/chunk-wise", "thru/coalesced"],
    )
    for chunk in CHUNKS:
        for zone, lo, hi in ZONES:
            nbytes = (hi[0] - lo[0]) * (hi[1] - lo[1]) * 8
            pt, ps = measure_read(workdir / "per", chunk, False,
                                  data, lo, hi)
            ct, cs = measure_read(workdir / "coa", chunk, True,
                                  data, lo, hi)
            read_tab.add(f"{chunk[0]}x{chunk[1]}", zone,
                         ps.syscalls, cs.syscalls, cs.coalesced_runs,
                         f"{cs.bytes_per_call:.0f}",
                         _mb_s(nbytes, pt), _mb_s(nbytes, ct))
    read_tab.note("calls = physical store transfers for one cold read; "
                  "runs = contiguous extents the coalesced plan moved "
                  "with vectored I/O")

    write_tab = Table(
        "Full-array write+flush: per-chunk vs coalesced",
        ["chunk", "calls/chunk-wise", "calls/coalesced",
         "thru/chunk-wise", "thru/coalesced"],
    )
    nbytes = ARRAY[0] * ARRAY[1] * 8
    for chunk in CHUNKS:
        pt, ps = measure_write(workdir / "per", chunk, False, data)
        ct, cs = measure_write(workdir / "coa", chunk, True, data)
        write_tab.add(f"{chunk[0]}x{chunk[1]}", ps.syscalls, cs.syscalls,
                      _mb_s(nbytes, pt), _mb_s(nbytes, ct))
    write_tab.note("per-chunk writes fault + write back every chunk "
                   "through the pool; coalesced streams full chunks as "
                   "whole runs")
    return [read_tab, write_tab]


# ----------------------------------------------------------------------
# tier-1 assertions
# ----------------------------------------------------------------------
def test_full_scan_read_coalesces_4x(tmp_path, rng):
    data = rng.random(ARRAY)
    _, per = measure_read(tmp_path / "p", (16, 16), False, data,
                          (0, 0), ARRAY, repeat=1)
    _, coa = measure_read(tmp_path / "c", (16, 16), True, data,
                          (0, 0), ARRAY, repeat=1)
    # 256 chunks per-chunk vs one vectored run
    assert coa.syscalls * 4 <= per.syscalls
    assert coa.readv_calls == 1
    assert coa.coalesced_runs == 1
    assert coa.bytes_read == per.bytes_read == ARRAY[0] * ARRAY[1] * 8
    assert coa.bytes_per_call >= 4 * per.bytes_per_call


def test_full_array_write_coalesces_4x(tmp_path, rng):
    data = rng.random(ARRAY)
    _, per = measure_write(tmp_path / "p", (16, 16), False, data,
                           repeat=1)
    _, coa = measure_write(tmp_path / "c", (16, 16), True, data,
                           repeat=1)
    assert coa.syscalls * 4 <= per.syscalls
    assert coa.writev_calls >= 1


def test_every_zone_no_more_calls_than_per_chunk(tmp_path, rng):
    data = rng.random(ARRAY)
    for chunk in CHUNKS:
        for zone, lo, hi in ZONES:
            _, per = measure_read(tmp_path / "p", chunk, False, data,
                                  lo, hi, repeat=1)
            _, coa = measure_read(tmp_path / "c", chunk, True, data,
                                  lo, hi, repeat=1)
            assert coa.syscalls <= per.syscalls, (chunk, zone)


def test_read_benchmark(benchmark, tmp_path, rng):
    data = rng.random(ARRAY)
    a = _make(tmp_path / "b", (16, 16), True, data)

    def scan():
        a._pool.invalidate()
        return a.read()

    benchmark(scan)
    a.close()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as td:
        for table in run_experiment(pathlib.Path(td)):
            table.show()
