#!/usr/bin/env python
"""A1 (ablation): sorted-address chunk access vs index-order access.

DESIGN.md design choice: sub-array transfers visit chunks "in increasing
order of the linear addresses" so that "independent I/O of sub-array
regions are done as sequential scan of the chunks on disk" (paper §II-A).
This ablation reads the same zone's chunks in (a) sorted linear-address
order and (b) naive row-major chunk-index order, on an array whose
growth history has scattered the index order across the file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table
from repro.core import f_star_many, replay_history
from repro.core.metadata import DRXMeta
from repro.drxmp.partition import BlockPartition
from repro.pfs import ParallelFileSystem
from repro.workloads import round_robin_growth

CHUNK_NBYTES = 8 * 1024


def build():
    """A 16x16 chunk grid grown round-robin (addresses well scattered)."""
    eci = replay_history([2, 2], round_robin_growth(2, 28))
    fs = ParallelFileSystem(nservers=4, stripe_size=64 * 1024)
    f = fs.create("a1.xta")
    f.set_size(eci.num_chunks * CHUNK_NBYTES)
    f.write(0, bytes(eci.num_chunks * CHUNK_NBYTES))
    return fs, f, eci


def read_zone(fs, f, eci, rank: int, sort: bool):
    part = BlockPartition(eci.bounds, 4)
    chunks = part.chunks_of(rank)
    addrs = f_star_many(eci, chunks)
    if sort:
        addrs = np.sort(addrs)
    fs.reset_stats()
    f.readv([(int(a) * CHUNK_NBYTES, CHUNK_NBYTES) for a in addrs])
    return fs.total_stats()


def run_experiment() -> Table:
    table = Table(
        "A1 (ablation): zone chunk reads, sorted vs index order "
        "(16x16 grid grown round-robin, 4 zones)",
        ["order", "requests", "seeks", "simulated time"],
    )
    fs, f, eci = build()
    for label, sort in [("sorted by linear address (paper)", True),
                        ("row-major chunk-index order", False)]:
        tot_req = tot_seek = 0
        tot_time = 0.0
        for rank in range(4):
            st = read_zone(fs, f, eci, rank, sort)
            tot_req += st.read_requests
            tot_seek += st.seeks
            tot_time += st.busy_time
        table.add(label, tot_req, tot_seek, f"{tot_time * 1e3:.1f} ms")
    table.note("sorting turns the zone's scattered chunks into forward "
               "runs: adjacent addresses coalesce and seeks drop")
    return table


def test_shape_sorted_cheaper():
    fs, f, eci = build()
    sorted_time = unsorted_time = 0.0
    sorted_seeks = unsorted_seeks = 0
    for rank in range(4):
        st = read_zone(fs, f, eci, rank, True)
        sorted_time += st.busy_time
        sorted_seeks += st.seeks
        st = read_zone(fs, f, eci, rank, False)
        unsorted_time += st.busy_time
        unsorted_seeks += st.seeks
    assert sorted_seeks < unsorted_seeks
    assert sorted_time < unsorted_time


def test_sorted_zone_read(benchmark):
    fs, f, eci = build()
    benchmark(lambda: read_zone(fs, f, eci, 2, True))


def test_unsorted_zone_read(benchmark):
    fs, f, eci = build()
    benchmark(lambda: read_zone(fs, f, eci, 2, False))


if __name__ == "__main__":
    run_experiment().show()
