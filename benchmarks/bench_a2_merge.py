#!/usr/bin/env python
"""A2 (ablation): the uninterrupted-extension merge rule.

The paper treats "repeated extensions of the same dimension, with no
intervening extension of a different dimension" as ONE expansion record.
Without merging, every extension call appends a record, inflating E —
the meta-data size and the log E term of every address computation.
This ablation replays bursty growth with and without the rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, wallclock
from repro.core import ExtendibleChunkIndex, all_addresses, f_star_many
from repro.workloads import bursty_growth

BURSTS = 6
BURST_LEN = 40
N_LOOKUPS = 4096


def grow(merge: bool) -> ExtendibleChunkIndex:
    eci = ExtendibleChunkIndex([2, 2, 2])
    for dim, by in bursty_growth(3, BURSTS, BURST_LEN, seed=21):
        eci.extend(dim, by, merge=merge)
    return eci


def run_experiment() -> Table:
    table = Table(
        f"A2 (ablation): merge rule under bursty growth "
        f"({BURSTS} bursts x {BURST_LEN} extensions)",
        ["variant", "E (records)", "meta-data bytes", "F* Mlookups/s"],
    )
    rng = np.random.default_rng(3)
    for label, merge in [("merged (paper)", True), ("no merging", False)]:
        eci = grow(merge)
        idx = np.stack([rng.integers(0, b, N_LOOKUPS)
                        for b in eci.bounds], axis=1)
        t, _ = wallclock(lambda: f_star_many(eci, idx), 5)
        import json
        meta_bytes = len(json.dumps(eci.to_dict()))
        table.add(label, eci.num_records, meta_bytes,
                  f"{N_LOOKUPS / t / 1e6:.2f}")
    table.note("identical addresses either way; merging keeps E at the "
               "number of bursts instead of the number of extensions")
    return table


def test_shape_merge_preserves_addresses_and_shrinks_e():
    a = grow(True)
    b = grow(False)
    assert a.bounds == b.bounds
    assert np.array_equal(all_addresses(a), all_addresses(b))
    assert a.num_records <= BURSTS + a.rank
    assert b.num_records >= BURSTS * BURST_LEN * 0.9


def test_lookup_merged(benchmark):
    eci = grow(True)
    idx = np.stack([np.random.default_rng(1).integers(0, b, N_LOOKUPS)
                    for b in eci.bounds], axis=1)
    benchmark(f_star_many, eci, idx)


def test_lookup_unmerged(benchmark):
    eci = grow(False)
    idx = np.stack([np.random.default_rng(1).integers(0, b, N_LOOKUPS)
                    for b in eci.bounds], axis=1)
    benchmark(f_star_many, eci, idx)


if __name__ == "__main__":
    run_experiment().show()
