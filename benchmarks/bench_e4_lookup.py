#!/usr/bin/env python
"""E4: computed access (F*) vs B-tree chunk index (HDF5 model).

"Instead of managing the chunks by an index scheme, the chunks can be
addressed by a computed access function in a manner similar to
hashing."  This bench compares per-chunk location cost:

* DRX — O(k + log E) arithmetic on tiny replicated meta-data (measured
  in wall clock; no I/O at all);
* B-tree — a root-to-leaf descent whose nodes live on disk pages behind
  a bounded cache (measured in wall clock *and* node reads).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BTree
from repro.bench import Table, wallclock
from repro.core import f_star_many, replay_history
from repro.workloads import round_robin_growth

N_LOOKUPS = 2000


def build_pair(grid: int, extensions: int):
    """A DRX index and a B-tree over the same chunk population."""
    eci = replay_history([grid, grid],
                         round_robin_growth(2, extensions, by=2))
    bt = BTree(order=16, cache_nodes=32)
    for i in range(eci.bounds[0]):
        for j in range(eci.bounds[1]):
            bt.put((i, j), eci.address((i, j)))
    return eci, bt


def sample(eci, n):
    rng = np.random.default_rng(13)
    return np.stack([rng.integers(0, b, n) for b in eci.bounds], axis=1)


def run_experiment() -> Table:
    table = Table(
        "E4: chunk-location throughput — computed F* vs B-tree descent",
        ["chunk grid", "E (axial recs)", "btree height",
         "F* lookups/s", "btree lookups/s", "btree node reads"],
    )
    for grid, ext in [(4, 8), (8, 16), (8, 48)]:
        eci, bt = build_pair(grid, ext)
        idx = sample(eci, N_LOOKUPS)
        t_f, _ = wallclock(lambda: f_star_many(eci, idx), 3)
        keys = [tuple(int(x) for x in row) for row in idx]
        bt.stats.node_reads = 0
        t_b, _ = wallclock(lambda: [bt.get(k) for k in keys], 3)
        table.add(f"{eci.bounds[0]}x{eci.bounds[1]}", eci.num_records,
                  bt.height,
                  f"{N_LOOKUPS / t_f:,.0f}",
                  f"{N_LOOKUPS / t_b:,.0f}",
                  bt.stats.node_reads)
    table.note("the computed path touches no storage; the index path "
               "pays node reads whenever the tree outgrows its cache")
    return table


def test_shape_computed_access_faster():
    eci, bt = build_pair(8, 48)
    idx = sample(eci, N_LOOKUPS)
    keys = [tuple(int(x) for x in row) for row in idx]
    t_f, addrs = wallclock(lambda: f_star_many(eci, idx), 3)
    t_b, _ = wallclock(lambda: [bt.get(k) for k in keys], 3)
    assert t_f < t_b
    # both agree on every address
    assert all(bt.get(k) == int(a) for k, a in zip(keys, addrs))


def test_f_star_batch(benchmark):
    eci, _bt = build_pair(8, 48)
    idx = sample(eci, N_LOOKUPS)
    benchmark(f_star_many, eci, idx)


def test_btree_batch(benchmark):
    eci, bt = build_pair(8, 48)
    keys = [tuple(int(x) for x in row) for row in sample(eci, N_LOOKUPS)]
    benchmark(lambda: [bt.get(k) for k in keys])


def test_btree_single(benchmark):
    _eci, bt = build_pair(8, 16)
    benchmark(bt.get, (3, 3))


def test_f_star_single(benchmark):
    eci, _bt = build_pair(8, 16)
    benchmark(eci.address, (3, 3))


if __name__ == "__main__":
    run_experiment().show()
