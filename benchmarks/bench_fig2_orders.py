#!/usr/bin/env python
"""FIG2 bench: the four allocation orders — waste and address cost.

Reproduces the comparison behind Fig. 2: grow a 2-D chunk grid to
asymmetric bounds and compare (a) the linear address space each scheme
must reserve (the extendibility waste that disqualifies Z-order and the
symmetric shell) and (b) address-computation throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Table, wallclock
from repro.core.orders import (
    AxialOrder,
    RowMajorOrder,
    SymmetricShellOrder,
    ZOrder,
)

BOUNDS = (24, 6)        # grown mostly along dimension 0
N_ADDR = 2000


def run_experiment() -> Table:
    table = Table(
        "FIG2: allocation orders on a grid grown to 24x6 chunks",
        ["order", "extendible dims", "allocated cells", "waste",
         "addr/s"],
    )
    used = BOUNDS[0] * BOUNDS[1]
    rng = np.random.default_rng(5)
    sample = [(int(i), int(j))
              for i, j in zip(rng.integers(0, BOUNDS[0], N_ADDR),
                              rng.integers(0, BOUNDS[1], N_ADDR))]

    axial = AxialOrder((1, 1))
    # grow to BOUNDS with interleaved extensions (worst case for E)
    while axial.bounds[0] < BOUNDS[0] or axial.bounds[1] < BOUNDS[1]:
        if axial.bounds[0] < BOUNDS[0]:
            axial.extend(0)
        if axial.bounds[1] < BOUNDS[1]:
            axial.extend(1)

    schemes = [
        ("row-major", RowMajorOrder(BOUNDS), RowMajorOrder.allocated_cells(BOUNDS)),
        ("z-order", ZOrder(2), ZOrder(2).allocated_cells(BOUNDS)),
        ("symmetric-shell", SymmetricShellOrder(2),
         SymmetricShellOrder(2).allocated_cells(BOUNDS)),
        ("axial (paper)", axial, AxialOrder.allocated_cells(BOUNDS)),
    ]
    for name, scheme, allocated in schemes:
        t, _ = wallclock(lambda s=scheme: [s.address(x) for x in sample], 3)
        table.add(name, scheme.extendible_dims, allocated,
                  f"{allocated / used:.2f}x", f"{N_ADDR / t:,.0f}")
    table.note("row-major has no waste but cannot extend dim 1 without "
               "reorganization; only the axial scheme has both")
    return table


def test_shape_waste_ordering():
    """axial == rowmajor < shell < z for asymmetric growth."""
    used = BOUNDS[0] * BOUNDS[1]
    assert AxialOrder.allocated_cells(BOUNDS) == used
    assert RowMajorOrder.allocated_cells(BOUNDS) == used
    assert SymmetricShellOrder(2).allocated_cells(BOUNDS) > used
    assert ZOrder(2).allocated_cells(BOUNDS) > \
        SymmetricShellOrder(2).allocated_cells(BOUNDS)


def _mk_axial():
    a = AxialOrder((1, 1))
    for _ in range(23):
        a.extend(0)
    for _ in range(5):
        a.extend(1)
    return a


def test_axial_address(benchmark):
    a = _mk_axial()
    benchmark(a.address, (23, 5))


def test_rowmajor_address(benchmark):
    o = RowMajorOrder(BOUNDS)
    benchmark(o.address, (23, 5))


def test_zorder_address(benchmark):
    z = ZOrder(2)
    benchmark(z.address, (23, 5))


def test_shell_address(benchmark):
    o = SymmetricShellOrder(2)
    benchmark(o.address, (23, 5))


if __name__ == "__main__":
    run_experiment().show()
