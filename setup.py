"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This shim
exists so that ``pip install -e . --no-use-pep517 --no-build-isolation``
works on minimal offline environments that lack the ``wheel`` package
(PEP 517 editable installs require ``bdist_wheel``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DRX / DRX-MP: parallel access of out-of-core dense extendible "
        "arrays (reproduction of Otoo & Rotem, CLUSTER 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
