"""Unit tests for the collective-I/O engine (repro.mpi.collective):
MPI-IO hints, data sieving, two-phase buffering, aggregator placement,
overlap tie-breaking, and the O(P) exchange-volume regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import MPIFileError
from repro.mpi import collective
from repro.mpi.collective import (CollectiveHints, choose_aggregators,
                                  file_domains)
from repro.mpi.file import FileView, _check_write_extents
from repro.mpi.runner import SPMDFailure
from repro.pfs import ParallelFileSystem


def run(n, fn, *args, **kw):
    return mpi.mpiexec(n, fn, *args, timeout=kw.pop("timeout", 30), **kw)


def make_fs(stripe=64 * 1024, nservers=4):
    return ParallelFileSystem(nservers=nservers, stripe_size=stripe)


@pytest.fixture
def clean_hints(monkeypatch):
    """Strip every hint environment override (the CI matrix sets some)."""
    for env in collective._ENV.values():
        monkeypatch.delenv(env, raising=False)
    monkeypatch.delenv("DRX_RANKS_PER_NODE", raising=False)


#: fully explicit steering, so tests mean the same thing under any env
def hints_info(**over):
    info = {"cb_nodes": 1, "cb_buffer_size": 4 << 20,
            "ind_rd_buffer_size": 4 << 20, "ind_wr_buffer_size": 512 << 10,
            "romio_cb_read": "auto", "romio_cb_write": "auto",
            "romio_ds_read": "auto", "romio_ds_write": "auto",
            "ds_hole_threshold": 4096}
    info.update(over)
    return info


class _FakeComm:
    """Just enough of Intracomm for choose_aggregators."""

    def __init__(self, node_of_rank):
        self._nm = list(node_of_rank)
        self.size = len(self._nm)

    def node_map(self):
        return list(self._nm)


# ---------------------------------------------------------------------------
# hints
# ---------------------------------------------------------------------------

class TestHints:
    def test_defaults(self, clean_hints):
        h = CollectiveHints.resolve()
        assert h.cb_nodes is None
        assert h.cb_buffer_size == 4 << 20
        assert h.ind_wr_buffer_size == 512 << 10
        assert h.romio_cb_read == "auto"
        assert h.romio_ds_write == "auto"
        assert h.ds_hole_threshold == 4096

    def test_env_fallbacks(self, clean_hints, monkeypatch):
        monkeypatch.setenv("DRX_CB_NODES", "3")
        monkeypatch.setenv("DRX_DS_READ", "disable")
        monkeypatch.setenv("DRX_CB_BUFFER_SIZE", "65536")
        h = CollectiveHints.resolve()
        assert h.cb_nodes == 3
        assert h.romio_ds_read == "disable"
        assert h.cb_buffer_size == 65536

    def test_info_overrides_env(self, clean_hints, monkeypatch):
        monkeypatch.setenv("DRX_CB_NODES", "3")
        h = CollectiveHints.resolve({"cb_nodes": 1})
        assert h.cb_nodes == 1

    def test_validation(self, clean_hints):
        with pytest.raises(MPIFileError):
            CollectiveHints.resolve({"no_such_hint": 1})
        with pytest.raises(MPIFileError):
            CollectiveHints.resolve({"romio_ds_read": "maybe"})
        with pytest.raises(MPIFileError):
            CollectiveHints.resolve({"romio_ds_read": "legacy"})  # cb-only
        with pytest.raises(MPIFileError):
            CollectiveHints.resolve({"cb_buffer_size": 0})
        with pytest.raises(MPIFileError):
            CollectiveHints.resolve({"cb_nodes": "many"})
        # legacy is a cb mode, and modes are case-insensitive strings
        assert CollectiveHints.resolve(
            {"romio_cb_write": "LEGACY"}).romio_cb_write == "legacy"

    def test_set_info_get_info(self, clean_hints):
        fs = make_fs()

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_CREATE | mpi.MODE_RDWR,
                               fs, info={"cb_nodes": 2})
            assert fh.Get_info()["cb_nodes"] == 2
            fh.Set_info({"romio_ds_read": "disable"})
            eff = fh.Get_info()
            assert eff["cb_nodes"] == 2          # merge keeps prior hints
            assert eff["romio_ds_read"] == "disable"
            # a bad merge is rejected atomically
            try:
                fh.Set_info({"cb_nodes": 0})
            except MPIFileError:
                pass
            else:       # pragma: no cover
                raise AssertionError("bad hint accepted")
            assert fh.Get_info()["cb_nodes"] == 2
            fh.Close()
            return True

        assert run(2, body) == [True, True]

    def test_open_info_mismatch_detected(self, clean_hints):
        fs = make_fs()

        def body(comm):
            info = {"cb_nodes": 1 + comm.rank}
            return mpi.File.Open(comm, "f",
                                 mpi.MODE_CREATE | mpi.MODE_RDWR,
                                 fs, info=info)

        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_hint_divergence_caught_at_collective(self, clean_hints):
        fs = make_fs()
        fs.create("f").write(0, bytes(1024))

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs)
            if comm.rank == 1:
                fh.Set_info({"cb_nodes": 2})    # diverged configuration
            buf = bytearray(64)
            fh.Read_at_all(8 * comm.rank, buf)
            return True

        with pytest.raises(SPMDFailure):
            run(2, body)


# ---------------------------------------------------------------------------
# aggregator placement and file domains
# ---------------------------------------------------------------------------

class TestPlacement:
    def test_default_single_aggregator(self, clean_hints):
        h = CollectiveHints.resolve()
        assert choose_aggregators(_FakeComm([0, 0, 0, 0]), h) == [0]

    def test_one_per_node(self, clean_hints):
        h = CollectiveHints.resolve()
        assert choose_aggregators(_FakeComm([0, 0, 1, 1]), h) == [0, 2]
        assert choose_aggregators(_FakeComm([1, 1, 0, 0]), h) == [0, 2]

    def test_round_robin_second_sweep(self, clean_hints):
        h = CollectiveHints.resolve({"cb_nodes": 3})
        assert choose_aggregators(_FakeComm([0, 0, 1, 1]), h) == [0, 1, 2]

    def test_cb_nodes_clamped_to_size(self, clean_hints):
        h = CollectiveHints.resolve({"cb_nodes": 99})
        assert choose_aggregators(_FakeComm([0, 0]), h) == [0, 1]

    def test_ranks_per_node_env(self, clean_hints, monkeypatch):
        monkeypatch.setenv("DRX_RANKS_PER_NODE", "2")

        def body(comm):
            return comm.node_map()

        assert run(4, body)[0] == [0, 0, 1, 1]

    def test_set_node_map(self, clean_hints):
        def body(comm):
            comm.Set_node_map([1, 0])
            return comm.node_map()

        assert run(2, body) == [[1, 0], [1, 0]]

    def test_file_domains(self):
        bounds = file_domains(0, 4096, 4, 1024)
        assert bounds == [0, 1024, 2048, 3072, 4096]
        # alignment collapses tiny ranges into empty lead domains
        bounds = file_domains(0, 900, 2, 512)
        assert bounds == [0, 0, 900]
        # boundaries stay monotone and inside the range
        bounds = file_domains(100, 5000, 3, 512)
        assert bounds[0] == 100 and bounds[-1] == 5000
        assert all(a <= b for a, b in zip(bounds, bounds[1:]))


# ---------------------------------------------------------------------------
# independent data sieving
# ---------------------------------------------------------------------------

def holey_view():
    """8 blocks of 64 bytes, one 64-byte hole between consecutive blocks."""
    blk = mpi.BYTE.Create_contiguous(64)
    return blk.Create_indexed([1] * 8, [2 * i for i in range(8)]).Commit()


class TestDataSieving:
    def test_read_request_reduction_and_bytes(self, clean_hints):
        fs = make_fs()
        pattern = bytes(range(256)) * 4      # 1024 bytes
        fs.create("f").write(0, pattern)
        expect = b"".join(pattern[128 * i:128 * i + 64] for i in range(8))

        def body(comm, ds):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(romio_ds_read=ds))
            fh.Set_view(0, mpi.BYTE, holey_view())
            buf = bytearray(512)
            fh.Read_at(0, buf)
            fh.Close()
            return bytes(buf)

        fs.reset_stats()
        assert run(1, body, "disable") == [expect]
        plain = fs.total_stats().read_requests
        fs.reset_stats()
        assert run(1, body, "auto") == [expect]
        sieved = fs.total_stats().read_requests
        assert sieved == 1 < plain == 8
        cs = fs.collective_stats()
        assert cs.sieve_reads == 1
        assert cs.wasted_bytes == 7 * 64     # the read-through holes
        assert cs.requests_before == 8 and cs.requests_after == 1

    def test_auto_threshold_respected(self, clean_hints):
        fs = make_fs()
        fs.create("f").write(0, bytes(1024))

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(ds_hole_threshold=32))
            fh.Set_view(0, mpi.BYTE, holey_view())
            fh.Read_at(0, bytearray(512))
            fh.Close()
            return True

        fs.reset_stats()
        assert run(1, body) == [True]
        # 64-byte holes exceed the 32-byte threshold: no merging
        assert fs.total_stats().read_requests == 8
        assert fs.collective_stats().sieve_reads == 0

    def test_write_rmw_preserves_hole_bytes(self, clean_hints):
        fs = make_fs()
        pattern = bytes(range(256)) * 4
        fs.create("f").write(0, pattern)
        payload = bytes([0xAB]) * 512

        def body(comm, ds):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR, fs,
                               info=hints_info(romio_ds_write=ds))
            fh.Set_view(0, mpi.BYTE, holey_view())
            fh.Write_at(0, bytearray(payload))
            fh.Close()
            return True

        expect = bytearray(pattern)
        for i in range(8):
            expect[128 * i:128 * i + 64] = payload[64 * i:64 * (i + 1)]

        fs.reset_stats()
        assert run(1, body, "auto") == [True]
        assert fs.open("f").read(0, 1024) == bytes(expect)
        cs = fs.collective_stats()
        assert cs.sieve_rmw == 1
        assert cs.requests_before == 8 and cs.requests_after == 1
        # sieved and plain writes land identical bytes
        fs2 = make_fs()
        fs2.create("f").write(0, pattern)
        assert run(1, lambda comm: body(comm, "disable")) == [True]

    def test_writes_bit_identical_across_modes(self, clean_hints):
        pattern = bytes(range(256)) * 4
        payload = bytes(range(256)) * 2
        images = {}
        for ds in ("disable", "auto", "enable"):
            fs = make_fs()
            fs.create("f").write(0, pattern)

            def body(comm):
                fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR, fs,
                                   info=hints_info(romio_ds_write=ds))
                fh.Set_view(0, mpi.BYTE, holey_view())
                fh.Write_at(0, bytearray(payload))
                fh.Close()
                return True

            assert run(1, body) == [True]
            images[ds] = fs.open("f").read(0, 1024)
        assert images["disable"] == images["auto"] == images["enable"]


# ---------------------------------------------------------------------------
# two-phase collective I/O
# ---------------------------------------------------------------------------

NP = 4


def rank_blocks_view(rank, nblocks=4, block=64, stride=None):
    """Rank r owns blocks r, r+NP, r+2*NP, ... of ``block`` bytes."""
    blk = mpi.BYTE.Create_contiguous(block)
    disps = [NP * i + rank for i in range(nblocks)]
    return blk.Create_indexed([1] * nblocks, disps).Commit()


def serial_reference(total, writers):
    """Ranks write one after the other, in rank order."""
    img = bytearray(total)
    for extents, data in writers:
        pos = 0
        for off, length in extents:
            img[off:off + length] = data[pos:pos + length]
            pos += length
    return bytes(img)


class TestTwoPhase:
    @pytest.mark.parametrize("cb_nodes", [1, 2, NP])
    def test_read_bit_identical_to_serial(self, clean_hints, cb_nodes):
        fs = make_fs()
        pattern = bytes(range(256)) * 4      # 1024 = 16 blocks of 64
        fs.create("f").write(0, pattern)

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(cb_nodes=cb_nodes))
            ft = rank_blocks_view(comm.rank)
            fh.Set_view(0, mpi.BYTE, ft)
            buf = bytearray(256)
            n = fh.Read_at_all(0, buf)
            fh.Close()
            return n, bytes(buf)

        for rank, (n, got) in enumerate(run(NP, body)):
            view = FileView(0, mpi.BYTE, rank_blocks_view(rank))
            expect = b"".join(pattern[o:o + ln]
                              for o, ln in view.extents(0, 256))
            assert n == 256 and got == expect, f"rank {rank} diverged"

    @pytest.mark.parametrize("cb_nodes", [1, 2, NP])
    @pytest.mark.parametrize("ds", ["disable", "auto"])
    def test_write_bit_identical_to_serial(self, clean_hints, cb_nodes, ds):
        fs = make_fs()
        fs.create("f")

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR, fs,
                               info=hints_info(cb_nodes=cb_nodes,
                                               romio_ds_write=ds))
            fh.Set_view(0, mpi.BYTE, rank_blocks_view(comm.rank))
            payload = bytes([comm.rank + 1]) * 256
            fh.Write_at_all(0, bytearray(payload))
            fh.Close()
            return True

        assert all(run(NP, body))
        writers = []
        for rank in range(NP):
            view = FileView(0, mpi.BYTE, rank_blocks_view(rank))
            writers.append((view.extents(0, 256),
                            bytes([rank + 1]) * 256))
        assert fs.open("f").read(0, 1024) == serial_reference(1024, writers)

    def test_overlapping_writers_rank_order(self, clean_hints):
        """Overlap resolves as if ranks wrote serially in rank order:
        the higher rank's bytes win everywhere the ranges intersect."""
        fs = make_fs()
        fs.create("f")

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR, fs,
                               info=hints_info(cb_nodes=2))
            # rank 0 writes [0, 96), rank 1 writes [32, 128)
            fh.Write_at_all(32 * comm.rank,
                            bytearray(bytes([comm.rank + 1]) * 96))
            fh.Close()
            return True

        assert all(run(2, body))
        got = fs.open("f").read(0, 128)
        assert got == b"\x01" * 32 + b"\x02" * 96

        # the legacy funnel rejects overlap outright
        fs2 = make_fs()
        fs2.create("f")

        def legacy(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR, fs2,
                               info=hints_info(romio_cb_write="legacy"))
            fh.Write_at_all(32 * comm.rank, bytearray(96))
            fh.Close()

        with pytest.raises(SPMDFailure):
            run(2, legacy)

    def test_holey_roundtrip_with_sieving(self, clean_hints):
        """Interleaved holey writers then readers, 2 aggregators: the
        write side read-modify-writes, the read side covering-reads,
        and every rank gets its own bytes back bit-exact."""
        fs = make_fs(stripe=512)

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_CREATE | mpi.MODE_RDWR,
                               fs, info=hints_info(cb_nodes=2))
            blk = mpi.BYTE.Create_contiguous(64)
            ft = blk.Create_indexed(
                [1] * 8, [4 * i + comm.rank for i in range(8)]).Commit()
            fh.Set_view(0, mpi.BYTE, ft)
            payload = bytes([comm.rank + 1]) * 512
            fh.Write_at_all(0, bytearray(payload))
            got = bytearray(512)
            fh.Read_at_all(0, got)
            fh.Close()
            return bytes(got) == payload

        assert all(run(2, body))
        cs = fs.collective_stats()
        assert cs.collectives == 2
        assert cs.sieve_rmw >= 1             # holey write windows
        assert cs.requests_after < cs.requests_before

    def test_empty_rank_participates(self, clean_hints):
        fs = make_fs()
        fs.create("f").write(0, bytes(range(128)))

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(cb_nodes=2))
            buf = bytearray(64 if comm.rank == 0 else 0)
            fh.Read_at_all(0, buf)
            fh.Close()
            return bytes(buf)

        out = run(2, body)
        assert out[0] == bytes(range(64)) and out[1] == b""

    def test_eof_short_read_collective(self, clean_hints):
        fs = make_fs()
        fs.create("f").write(0, bytes(20))

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(cb_nodes=2))
            fh.Set_view(0, mpi.DOUBLE)
            buf = np.full(3, -1.0)           # asks for 24 bytes, 20 exist
            st = mpi.Status()
            n = fh.Read_at_all(0, buf, st)
            fh.Close()
            # 20 bytes moved, but only 2 *whole* doubles count
            return n, st.count, st.Get_count(mpi.DOUBLE)

        assert run(2, body) == [(20, 16, 2)] * 2

    def test_status_count_consistent_across_paths(self, clean_hints):
        fs = make_fs()
        fs.create("f").write(0, bytes(20))

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info())
            fh.Set_view(0, mpi.DOUBLE)
            out = []
            for op in (fh.Read_at, fh.Read_at_all):
                st = mpi.Status()
                op(0, np.empty(3), st)
                out.append((st.count, st.Get_count(mpi.DOUBLE)))
            fh.Close()
            return out

        assert run(1, body) == [[(16, 2), (16, 2)]]

    def test_cb_disable_matches_two_phase(self, clean_hints):
        fs = make_fs()
        pattern = bytes(range(256)) * 4
        fs.create("f").write(0, pattern)

        def body(comm, mode):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(romio_cb_read=mode))
            fh.Set_view(0, mpi.BYTE, rank_blocks_view(comm.rank))
            buf = bytearray(256)
            fh.Read_at_all(0, buf)
            fh.Close()
            return bytes(buf)

        assert run(NP, body, "disable") == run(NP, body, "auto") \
            == run(NP, body, "legacy")

    def test_aggregation_reduces_requests(self, clean_hints):
        """The E3 shape: strided per-rank blocks, collectively read.
        Two-phase turns NP sieved covering reads into one aggregated
        request (and the legacy funnel into the same single request,
        but at O(P**2) exchange volume — see the next test)."""
        fs = make_fs()
        fs.create("f").write(0, bytes(range(256)) * 4)

        def body(comm, cb):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info(romio_cb_read=cb))
            fh.Set_view(0, mpi.BYTE, rank_blocks_view(comm.rank))
            buf = bytearray(256)
            fh.Read_at_all(0, buf)
            fh.Close()
            return bytes(buf)

        fs.reset_stats()
        indep = run(NP, body, "disable")
        indep_reqs = fs.total_stats().read_requests
        fs.reset_stats()
        coll = run(NP, body, "auto")
        coll_reqs = fs.total_stats().read_requests
        assert coll == indep
        assert coll_reqs == 1 < indep_reqs
        cs = fs.collective_stats()
        assert cs.requests_before == NP * 4     # 4 extents per rank
        assert cs.requests_after == 1

    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_exchange_volume_scales_linearly(self, clean_hints, nprocs,
                                             request):
        """Regression for the O(P**2) result broadcast: each rank reads
        its own contiguous 4 KiB block.  Legacy pushes every rank's
        bytes to every rank (P * total); two-phase ships each byte to
        exactly one requester (total)."""
        measured = {}
        for mode in ("legacy", "auto"):
            fs = make_fs()
            fs.create("f").write(0, bytes(4096) * nprocs)

            def body(comm):
                fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                                   info=hints_info(romio_cb_read=mode))
                buf = bytearray(4096)
                fh.Read_at_all(4096 * comm.rank, buf)
                fh.Close()
                return True

            assert all(run(nprocs, body))
            measured[mode] = fs.collective_stats().exchange_bytes
        total = 4096 * nprocs
        assert measured["legacy"] == nprocs * total     # O(P**2)
        assert measured["auto"] <= 2 * total            # O(P)
        # stash for the cross-P ratio check
        cache = request.config.cache
        cache.set(f"collective/xchg/{nprocs}", measured)
        small = cache.get("collective/xchg/2", None)
        if nprocs == 4 and small:
            assert measured["legacy"] / small["legacy"] >= 3.5
            assert measured["auto"] / small["auto"] <= 2.5


# ---------------------------------------------------------------------------
# helpers and stats
# ---------------------------------------------------------------------------

class TestPlumbing:
    def test_check_write_extents(self):
        _check_write_extents([(0, 4), (8, 4)], b"12345678")
        with pytest.raises(MPIFileError):
            _check_write_extents([(0, 4)], b"12345")
        with pytest.raises(MPIFileError):
            _check_write_extents([(0, -1)], b"")

    def test_collective_stats_lifecycle(self):
        from repro.pfs import CollectiveStats
        a = CollectiveStats()
        a.collectives = 2
        a.exchange_bytes = 100
        snap = a.snapshot()
        a.collectives = 5
        d = a.delta(snap)
        assert d.collectives == 3 and d.exchange_bytes == 0
        b = CollectiveStats()
        b.add(a)
        assert b.collectives == 5
        s = str(a)
        assert "colls=5" in s and "xchg=" in s
        a.reset()
        assert a.collectives == 0 and a.exchange_bytes == 0

    def test_fs_reset_clears_collective_stats(self, clean_hints):
        fs = make_fs()
        fs.create("f").write(0, bytes(1024))

        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, fs,
                               info=hints_info())
            fh.Read_at_all(0, bytearray(64))
            fh.Close()
            return True

        assert all(run(2, body))
        assert fs.collective_stats().collectives == 1
        fs.reset_stats()
        assert fs.collective_stats().collectives == 0

    def test_ga_info_plumbing(self, clean_hints):
        from repro.drxmp import DRXMPFile
        from repro.drxmp.ga import GlobalArray
        fs = make_fs()

        def body(comm):
            a = DRXMPFile.create(comm, fs, "arr", (8, 8), (4, 4),
                                 info={"cb_nodes": 2})
            assert a.get_info()["cb_nodes"] == 2
            ga = GlobalArray.from_file(a, info={"romio_ds_read": "enable"})
            assert a.get_info()["romio_ds_read"] == "enable"
            ga.local[...] = comm.rank
            ga.to_file(a)
            ga2 = GlobalArray.from_file(a)
            ok = np.array_equal(ga2.local, ga.local)
            a.close()
            return ok

        assert all(run(2, body))
