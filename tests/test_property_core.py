"""Property-based tests (hypothesis) of the core invariants.

The paper's correctness rests on three properties of ``F*``:

* **bijectivity** — at every instant the mapping is a bijection between
  the chunk-index box and ``[0, M*)``;
* **stability** — extension never changes an existing address (no
  reorganization, ever);
* **inverse consistency** — ``F*^-1(F*(I)) == I`` and vice versa.

Plus serialization fidelity of the meta-data and the Fig.-2 orders.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DRXMeta,
    ExtendibleChunkIndex,
    all_addresses,
    f_star_inv_many,
    f_star_many,
    replay_history,
)
from repro.core.orders import SymmetricShellOrder, ZOrder

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

ranks = st.integers(min_value=1, max_value=4)


@st.composite
def growth_cases(draw, max_steps: int = 8, max_by: int = 3):
    """(initial bounds, growth history) with a bounded final size."""
    k = draw(ranks)
    bounds = draw(st.lists(st.integers(1, 3), min_size=k, max_size=k))
    steps = draw(st.integers(0, max_steps))
    history = [
        (draw(st.integers(0, k - 1)), draw(st.integers(1, max_by)))
        for _ in range(steps)
    ]
    # bound the total size so tests stay fast
    eci = replay_history(bounds, [])
    total = eci.num_chunks
    pruned = []
    sim = list(bounds)
    for dim, by in history:
        grown = total // sim[dim] * (sim[dim] + by)
        if grown > 3000:
            break
        sim[dim] += by
        total = grown
        pruned.append((dim, by))
    return bounds, pruned


@settings(max_examples=120, deadline=None)
@given(growth_cases())
def test_f_star_is_a_bijection(case):
    bounds, history = case
    eci = replay_history(bounds, history)
    grid = all_addresses(eci)
    assert sorted(grid.ravel().tolist()) == list(range(eci.num_chunks))


@settings(max_examples=60, deadline=None)
@given(growth_cases(max_steps=6))
def test_addresses_are_stable_under_growth(case):
    bounds, history = case
    eci = replay_history(bounds, [])
    pinned: dict[tuple, int] = {}
    for dim, by in history:
        grid = all_addresses(eci)
        for idx in np.ndindex(*eci.bounds):
            pinned[idx] = int(grid[idx])
        eci.extend(dim, by)
        for idx, addr in pinned.items():
            assert eci.address(idx) == addr


@settings(max_examples=120, deadline=None)
@given(growth_cases())
def test_inverse_roundtrip(case):
    bounds, history = case
    eci = replay_history(bounds, history)
    q = np.arange(eci.num_chunks)
    assert np.array_equal(f_star_many(eci, f_star_inv_many(eci, q)), q)


@settings(max_examples=60, deadline=None)
@given(growth_cases())
def test_serialized_replica_addresses_identically(case):
    bounds, history = case
    eci = replay_history(bounds, history)
    clone = ExtendibleChunkIndex.from_dict(eci.to_dict())
    assert np.array_equal(all_addresses(clone), all_addresses(eci))


@settings(max_examples=60, deadline=None)
@given(growth_cases(max_steps=5), st.integers(0, 1_000_000))
def test_record_count_bounded_by_extensions(case, _seed):
    """E_j <= 1 + number of extension runs of dimension j (merging)."""
    bounds, history = case
    eci = replay_history(bounds, history)
    runs = [0] * len(bounds)
    prev = None
    for dim, _by in history:
        if dim != prev:
            runs[dim] += 1
        prev = dim
    for j, v in enumerate(eci.axial_vectors):
        assert len(v) <= 1 + runs[j]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=3))
def test_zorder_roundtrip(index):
    z = ZOrder(len(index))
    assert z.index(z.address(index)) == tuple(index)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 400))
def test_symmetric_shell_roundtrip_2d(q):
    o = SymmetricShellOrder(2)
    assert o.address(o.index(q)) == q


@settings(max_examples=40, deadline=None)
@given(growth_cases(max_steps=4))
def test_metadata_roundtrip_deterministic(case):
    bounds, history = case
    # element bounds = chunk bounds here (chunk shape of ones)
    meta = DRXMeta.create(bounds, [1] * len(bounds))
    for dim, by in history:
        meta.extend_elements(dim, by)
    blob = meta.to_bytes()
    again = DRXMeta.from_bytes(blob)
    assert again.to_bytes() == blob
    assert np.array_equal(all_addresses(again.eci),
                          all_addresses(meta.eci))
