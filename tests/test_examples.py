"""Every example script must run clean — they are part of the API contract."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert "OK" in proc.stdout or "Fig" in proc.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    # the deliverable set: quickstart + domain scenarios
    assert "quickstart.py" in names
    assert "climate_timeseries.py" in names
    assert "paper_listing_fig1.py" in names
    assert len(names) >= 5
