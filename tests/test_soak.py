"""Soak tests: higher rank, bigger grids, longer mixed workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import DRXFileError
from repro.drx import DRXFile
from repro.drxmp import DRXMPFile, GlobalArray
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array, random_boxes, random_growth


def test_4d_serial_lifecycle(tmp_path):
    """A 4-D array (e.g. time x level x lat x lon) through growth and
    random box traffic, checked against a shadow array."""
    rng = np.random.default_rng(44)
    shape = [3, 4, 5, 6]
    a = DRXFile.create(tmp_path / "d4", shape, (2, 2, 2, 3),
                       cache_pages=8)
    shadow = np.zeros(shape)
    for step in range(10):
        # random growth on a random dim
        dim = int(rng.integers(0, 4))
        by = int(rng.integers(1, 3))
        a.extend(dim, by)
        ns = list(shadow.shape)
        ns[dim] += by
        grown = np.zeros(ns)
        grown[tuple(slice(0, s) for s in shadow.shape)] = shadow
        shadow = grown
        # a few random writes and reads
        for lo, hi in random_boxes(shadow.shape, 3, seed=step):
            block = rng.random(tuple(h - l for l, h in zip(lo, hi)))
            a.write(lo, block)
            shadow[tuple(slice(l, h) for l, h in zip(lo, hi))] = block
        for lo, hi in random_boxes(shadow.shape, 3, seed=100 + step):
            got = a.read(lo, hi)
            want = shadow[tuple(slice(l, h) for l, h in zip(lo, hi))]
            assert np.allclose(got, want), step
    # persist + reopen at the end
    a.close()
    b = DRXFile.open(tmp_path / "d4")
    assert np.allclose(b.read(), shadow)
    # hyperslab over the final 4-D array
    got = b.read_slab((0, 1, 0, 2), (2, 2, 3, 2), (2, 2, 2, 2))
    want = shadow[0:0 + 4:2, 1:1 + 4:2, 0:0 + 6:3, 2:2 + 4:2]
    assert np.allclose(got, want)
    b.close()


def test_memhandle_reuse_across_rounds(pfs):
    """The paper's C pattern: allocate the memhdl once, refresh it with
    repeated DRXMP_Read_all calls while the data evolves."""
    def body(comm):
        a = DRXMPFile.create(comm, pfs, "reuse", (8, 8), (2, 2))
        mem = a.read_zone()
        for round_no in range(1, 4):
            mem.array[...] = float(round_no * 10 + comm.rank)
            a.write_zone(mem)
            comm.barrier()
            refreshed = a.read_zone(into=mem)
            assert refreshed is mem
            assert np.all(mem.array == round_no * 10 + comm.rank)
        # growth keeps the old zone's chunk box valid: the refresh still
        # reads that region (the stale zone simply covers less of the
        # grown array)
        a.extend(0, 4)
        refreshed = a.read_zone(into=mem, collective=False)
        assert refreshed is mem
        # a handle whose buffer shape diverged is rejected loudly
        mem.array = np.zeros((1, 1))
        try:
            a.read_zone(into=mem, collective=False)
            ok = False
        except DRXFileError:
            ok = True
        comm.barrier()
        a.close()
        return ok
    assert all(mpi.mpiexec(4, body, timeout=60))


@pytest.mark.parametrize("nproc", [3, 5])
def test_odd_process_counts(pfs, nproc):
    """Zones with ragged splits (process counts that do not divide the
    chunk grid) still partition and round-trip correctly."""
    ref = pattern_array((13, 11))
    name = f"odd{nproc}"
    def body(comm):
        a = DRXMPFile.create(comm, pfs, name, (13, 11), (3, 2))
        mem = a.read_zone()
        lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
        if mem.array.size:
            mem.array[...] = ref[lo[0]:hi[0], lo[1]:hi[1]]
        a.write_zone(mem)
        comm.barrier()
        got = a.read((0, 0), (13, 11))
        a.close()
        return np.array_equal(got, ref)
    assert all(mpi.mpiexec(nproc, body, timeout=90))


def test_ga_concurrent_mixed_traffic(pfs):
    """All ranks hammer the same GlobalArray with interleaved acc and
    get; the accumulated total must be exact (atomicity soak)."""
    ROUNDS = 25
    def body(comm):
        a = DRXMPFile.create(comm, pfs, "soakga", (12, 12), (3, 3))
        ga = GlobalArray.from_file(a)
        rng = np.random.default_rng(comm.rank)
        for _ in range(ROUNDS):
            i = int(rng.integers(0, 9))
            j = int(rng.integers(0, 9))
            ga.acc((i, j), np.ones((3, 3)))
            ga.get((i, j), (i + 3, j + 3))   # concurrent reads
        ga.sync()
        total = ga.get((0, 0), (12, 12)).sum()
        a.close()
        return float(total)
    totals = mpi.mpiexec(4, body, timeout=120)
    expect = 4 * ROUNDS * 9.0          # every acc adds 9 ones
    assert all(t == expect for t in totals)


def test_long_random_growth_file_integrity(tmp_path):
    """60 random extensions; verify() stays clean and the axial record
    count stays bounded by the number of extension runs."""
    from repro.drx import verify
    rng = np.random.default_rng(60)
    a = DRXFile.create(tmp_path / "long", (2, 2, 2), (2, 2, 2))
    runs = 0
    prev = None
    for dim, by in random_growth(3, 60, seed=8, max_by=2):
        a.extend(dim, by)
        if dim != prev:
            runs += 1
        prev = dim
    assert a.meta.eci.num_records <= runs + 3
    a.close()
    assert verify(tmp_path / "long") == []
