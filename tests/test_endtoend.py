"""End-to-end system tests: every layer against one evolving dataset.

A 3-D dataset lives through the full life cycle the paper describes:
serial creation, parallel zone processing, arbitrary-dimension growth,
one-sided updates, baseline-equivalence checks, and container
conversion — with a NumPy shadow array as the ground truth throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.baselines import ChunkedBTreeFile
from repro.drx import DRXFile, DRXSingleFile, MemExtendibleArray, verify
from repro.drxmp import DRXMPFile, GlobalArray, ga_dot, ga_scale
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array


class Shadow:
    """A NumPy ground-truth twin supporting the same grow/write ops."""

    def __init__(self, shape):
        self.a = np.zeros(shape)

    def extend(self, dim, by):
        shape = list(self.a.shape)
        shape[dim] += by
        grown = np.zeros(shape)
        grown[tuple(slice(0, s) for s in self.a.shape)] = self.a
        self.a = grown

    def write(self, lo, values):
        self.a[tuple(slice(l, l + s)
                     for l, s in zip(lo, values.shape))] = values


@pytest.mark.parametrize("nproc", [2, 4])
def test_full_lifecycle_3d(tmp_path, nproc):
    rng = np.random.default_rng(nproc)
    shadow = Shadow((6, 8, 4))

    # ---- phase 1: serial creation and population ------------------------
    ser = DRXFile.create(tmp_path / "ds", (6, 8, 4), (2, 3, 2))
    block = rng.random((6, 8, 4))
    ser.write((0, 0, 0), block)
    shadow.write((0, 0, 0), block)
    ser.extend(2, 3)                      # time-like growth
    shadow.extend(2, 3)
    tail = rng.random((6, 8, 3))
    ser.write((0, 0, 4), tail)
    shadow.write((0, 0, 4), tail)
    ser.attrs["phase"] = 1
    ser.close()
    assert verify(tmp_path / "ds") == []

    # ---- phase 2: import into the PFS, process in parallel --------------
    fs = ParallelFileSystem(nservers=3, stripe_size=4096)
    fs.create("ds.xmd").write(0, (tmp_path / "ds.xmd").read_bytes())
    fs.create("ds.xta").write(0, (tmp_path / "ds.xta").read_bytes())

    def phase2(comm):
        a = DRXMPFile.open(comm, fs, "ds", mode="r+")
        assert a.attrs["phase"] == 1
        # zones: each rank doubles its zone
        mem = a.read_zone()
        got_ok = True
        lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
        box = tuple(slice(l, h) for l, h in zip(lo, hi))
        got_ok &= np.allclose(mem.array, phase2.shadow[box])
        mem.array *= 2.0
        a.write_zone(mem)
        comm.barrier()
        # grow two spatial dims collectively
        a.extend(0, 2)
        a.extend(1, 1)
        if comm.rank == 0:
            a.write((6, 0, 0), np.full((2, 9, 7), 5.0))
        comm.barrier()
        got = a.read((0, 0, 0), a.shape)
        a.close()
        return got_ok, got

    phase2.shadow = shadow.a.copy()
    results = mpi.mpiexec(nproc, phase2, timeout=120)
    shadow.a *= 2.0
    shadow.extend(0, 2)
    shadow.extend(1, 1)
    shadow.write((6, 0, 0), np.full((2, 9, 7), 5.0))
    for ok, got in results:
        assert ok
        assert np.allclose(got, shadow.a)

    # ---- phase 3: GA compute over the grown dataset ----------------------
    def phase3(comm):
        a = DRXMPFile.open(comm, fs, "ds", mode="r+")
        ga = GlobalArray.from_file(a)
        ga_scale(ga, 0.5)
        sq = ga_dot(ga, ga)
        ga.to_file(a)
        got = a.read((0, 0, 0), a.shape)
        a.close()
        return sq, got

    results = mpi.mpiexec(nproc, phase3, timeout=120)
    shadow.a *= 0.5
    want_sq = float((shadow.a * shadow.a).sum())
    for sq, got in results:
        assert np.isclose(sq, want_sq)
        assert np.allclose(got, shadow.a)

    # ---- phase 4: export, verify with serial + single-file + baseline ---
    xta = fs.open("ds.xta")
    xmd = fs.open("ds.xmd")
    (tmp_path / "out.xta").write_bytes(xta.read(0, xta.size))
    (tmp_path / "out.xmd").write_bytes(xmd.read(0, xmd.size))
    final = DRXFile.open(tmp_path / "out")
    assert np.allclose(final.read(), shadow.a)

    single = DRXSingleFile.from_pair(final, tmp_path / "out-single")
    assert np.allclose(single.read(), shadow.a)
    single.close()

    mem = MemExtendibleArray.from_drx(final)
    assert np.allclose(mem.to_numpy(), shadow.a)
    final.close()

    # an HDF5-model file fed the same operations agrees
    h = ChunkedBTreeFile(shadow.a.shape, (2, 3, 2))
    h.write((0, 0, 0), shadow.a)
    assert np.allclose(h.read(), shadow.a)


def test_growth_marathon_serial_vs_parallel(tmp_path):
    """20 interleaved grow/write rounds; serial DRX, parallel DRX-MP and
    the shadow stay identical, and the two files stay byte-identical."""
    rng = np.random.default_rng(77)
    fs = ParallelFileSystem(nservers=2, stripe_size=2048)
    shadow = Shadow((4, 4))
    ser = DRXFile.create(tmp_path / "m", (4, 4), (2, 2))

    def par_create(comm):
        DRXMPFile.create(comm, fs, "m", (4, 4), (2, 2)).close()
        return True
    mpi.mpiexec(1, par_create)

    for step in range(20):
        dim = int(rng.integers(0, 2))
        by = int(rng.integers(1, 4))
        shadow.extend(dim, by)
        ser.extend(dim, by)

        lo = tuple(int(rng.integers(0, s)) for s in shadow.a.shape)
        size = tuple(int(rng.integers(1, s - l + 1))
                     for l, s in zip(lo, shadow.a.shape))
        block = rng.random(size)
        shadow.write(lo, block)
        ser.write(lo, block)

        def par_step(comm, dim=dim, by=by, lo=lo, block=block):
            a = DRXMPFile.open(comm, fs, "m", mode="r+")
            a.extend(dim, by)
            if comm.rank == 0:
                a.write(lo, block)
            comm.barrier()
            a.close()
            return True
        assert all(mpi.mpiexec(2, par_step, timeout=60))

        assert np.allclose(ser.read(), shadow.a), f"serial diverged @{step}"

    ser.close()
    par_xta = fs.open("m.xta")
    assert (tmp_path / "m.xta").read_bytes() == \
        par_xta.read(0, par_xta.size)

    def par_check(comm):
        a = DRXMPFile.open(comm, fs, "m")
        got = a.read((0, 0), a.shape)
        a.close()
        return np.allclose(got, par_check.shadow)
    par_check.shadow = shadow.a
    assert all(mpi.mpiexec(4, par_check, timeout=60))
