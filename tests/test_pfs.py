"""Unit tests for the parallel file system substrate."""

from __future__ import annotations

import pytest

from repro.core.errors import PFSError
from repro.pfs import (
    CostModel,
    IOStats,
    ParallelFileSystem,
    StripeLayout,
    coalesce_extents,
)


class TestCoalesce:
    def test_empty(self):
        assert coalesce_extents([]) == []

    def test_merge_adjacent(self):
        assert coalesce_extents([(0, 4), (4, 4)]) == [(0, 8)]

    def test_merge_overlapping(self):
        assert coalesce_extents([(0, 6), (4, 6)]) == [(0, 10)]

    def test_sorting(self):
        assert coalesce_extents([(10, 2), (0, 2)]) == [(0, 2), (10, 2)]

    def test_zero_length_dropped(self):
        assert coalesce_extents([(5, 0), (1, 2)]) == [(1, 2)]

    def test_overlap_rejected_when_asked(self):
        with pytest.raises(PFSError):
            coalesce_extents([(0, 6), (4, 6)], merge_overlaps=False)

    def test_adjacent_ok_even_strict(self):
        assert coalesce_extents([(0, 4), (4, 4)],
                                merge_overlaps=False) == [(0, 8)]

    def test_negative_rejected(self):
        with pytest.raises(PFSError):
            coalesce_extents([(-1, 4)])


class TestStripeLayout:
    def test_server_of(self):
        lay = StripeLayout(nservers=3, stripe_size=10)
        assert [lay.server_of(o) for o in (0, 9, 10, 20, 30, 35)] == \
            [0, 0, 1, 2, 0, 0]

    def test_to_server_offset(self):
        lay = StripeLayout(nservers=3, stripe_size=10)
        assert lay.to_server_offset(0) == (0, 0)
        assert lay.to_server_offset(10) == (1, 0)
        assert lay.to_server_offset(35) == (0, 15)
        assert lay.to_server_offset(47) == (1, 17)

    def test_split_extent_covers_everything(self):
        lay = StripeLayout(nservers=4, stripe_size=7)
        pieces = list(lay.split_extent(5, 40))
        assert sum(p[3] for p in pieces) == 40
        # logical offsets are increasing and contiguous
        pos = 5
        for _srv, _so, lo, ln in pieces:
            assert lo == pos
            pos += ln

    def test_bad_layout(self):
        with pytest.raises(PFSError):
            StripeLayout(0, 10)
        with pytest.raises(PFSError):
            StripeLayout(2, 0)

    def test_bad_extent(self):
        lay = StripeLayout(2, 8)
        with pytest.raises(PFSError):
            list(lay.split_extent(-1, 4))


class TestIOStats:
    def test_add_and_delta(self):
        a = IOStats(read_requests=2, bytes_read=10, seeks=1)
        b = IOStats(write_requests=3, bytes_written=20)
        a.add(b)
        assert a.requests == 5
        assert a.bytes_moved == 30
        snap = a.snapshot()
        a.read_requests += 4
        d = a.delta(snap)
        assert d.read_requests == 4 and d.write_requests == 0

    def test_reset(self):
        a = IOStats(read_requests=2)
        a.reset()
        assert a.requests == 0


class TestCostModel:
    def test_seek_costs_extra(self):
        cm = CostModel(request_overhead=0.001, seek_time=0.01,
                       bandwidth=1e6)
        assert cm.request_time(1000, seek=True) == pytest.approx(
            0.001 + 0.01 + 0.001)
        assert cm.request_time(1000, seek=False) == pytest.approx(0.002)

    def test_batch(self):
        cm = CostModel(request_overhead=0.001, seek_time=0.01,
                       bandwidth=1e6)
        t = cm.batch_time([1000, 1000], [True, False])
        assert t == pytest.approx(0.012 + 0.002)


class TestFileSystem:
    def test_namespace(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=16)
        f = fs.create("a")
        assert fs.exists("a")
        assert fs.open("a") is f
        assert fs.listdir() == ["a"]
        with pytest.raises(PFSError):
            fs.create("a")
        fs.delete("a")
        assert not fs.exists("a")
        with pytest.raises(PFSError):
            fs.open("a")
        with pytest.raises(PFSError):
            fs.delete("a")

    def test_write_read_roundtrip_across_stripes(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=8)
        f = fs.create("x")
        payload = bytes(range(256)) * 3
        f.write(5, payload)
        assert f.read(5, len(payload)) == payload
        assert f.size == 5 + len(payload)

    def test_sparse_reads_zero(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=8)
        f = fs.create("x")
        f.write(100, b"zz")
        assert f.read(0, 4) == b"\x00" * 4

    def test_readv_order_preserved(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=4)
        f = fs.create("x")
        f.write(0, bytes(range(32)))
        data, _t = f.readv([(24, 4), (0, 4)])   # descending offsets
        assert data == bytes(range(24, 28)) + bytes(range(4))

    def test_writev_length_mismatch(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=4)
        f = fs.create("x")
        with pytest.raises(PFSError):
            f.writev([(0, 4)], b"too long for extent")

    def test_stats_accumulate(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=8)
        f = fs.create("x")
        f.write(0, bytes(64))
        st = fs.total_stats()
        assert st.write_requests > 0
        assert st.bytes_written == 64
        fs.reset_stats()
        assert fs.total_stats().requests == 0

    def test_striping_balances_servers(self):
        fs = ParallelFileSystem(nservers=4, stripe_size=8)
        f = fs.create("x")
        f.write(0, bytes(8 * 4 * 10))
        per = fs.per_server_stats()
        assert all(s.bytes_written == 80 for s in per)


class TestCollectiveIO:
    def test_collective_read_fewer_requests(self):
        """The two-phase aggregation claim: interleaved per-rank extents
        become one contiguous run."""
        fs = ParallelFileSystem(nservers=1, stripe_size=1 << 20)
        f = fs.create("x")
        f.write(0, bytes(range(250)) + bytes(6))
        # 4 ranks, each owning every 4th 8-byte block of a 256-byte file
        rank_extents = [
            [(off, 8) for off in range(r * 8, 256, 32)] for r in range(4)
        ]
        fs.reset_stats()
        out, _t = f.collective_readv(rank_extents)
        st = fs.total_stats()
        assert st.read_requests == 1          # fully coalesced
        whole = f.read(0, 256)
        for r in range(4):
            expect = b"".join(whole[o:o + 8] for o, _n in rank_extents[r])
            assert out[r] == expect
        # independent comparison: one request per extent
        fs.reset_stats()
        for r in range(4):
            f.readv(rank_extents[r])
        assert fs.total_stats().read_requests == 32

    def test_collective_write_roundtrip(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=16)
        f = fs.create("x")
        extents = [[(0, 8), (16, 8)], [(8, 8), (24, 8)]]
        data = [b"A" * 16, b"B" * 16]
        f.collective_writev(extents, data)
        assert f.read(0, 32) == b"A" * 8 + b"B" * 8 + b"A" * 8 + b"B" * 8

    def test_collective_write_overlap_rejected(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=16)
        f = fs.create("x")
        with pytest.raises(PFSError):
            f.collective_writev([[(0, 8)], [(4, 8)]], [b"x" * 8, b"y" * 8])

    def test_collective_write_length_mismatch(self):
        fs = ParallelFileSystem(nservers=2, stripe_size=16)
        f = fs.create("x")
        with pytest.raises(PFSError):
            f.collective_writev([[(0, 8)]], [b"xy"])

    def test_seek_counting(self):
        fs = ParallelFileSystem(nservers=1, stripe_size=1 << 20)
        f = fs.create("x")
        f.write(0, bytes(100))
        fs.reset_stats()
        f.readv([(0, 10)])        # head at 0 after write(0,100)? head=100
        f.readv([(10, 10)])       # contiguous with previous read
        f.readv([(50, 10)])       # seek
        st = fs.total_stats()
        assert st.read_requests == 3
        assert st.seeks == 2      # first read seeks (head was at 100)

    def test_dump_and_load(self, tmp_path):
        fs = ParallelFileSystem(nservers=3, stripe_size=8)
        f = fs.create("dir/file.xta")
        f.write(0, b"hello striped world")
        fs.dump(tmp_path)
        fs2 = ParallelFileSystem(nservers=2, stripe_size=64)
        fs2.load(tmp_path)
        assert fs2.open("dir/file.xta").read(0, 19) == b"hello striped world"
