"""Unit tests for the serial DRX array file."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    DRXClosedError,
    DRXFileError,
    DRXFileExistsError,
    DRXFileNotFoundError,
    DRXIndexError,
)
from repro.drx import DRXFile
from repro.workloads import boundary_slabs, pattern_array, random_boxes


@pytest.fixture
def arr(tmp_path):
    a = DRXFile.create(tmp_path / "a", bounds=(10, 12), chunk_shape=(3, 4))
    yield a
    a.close()


class TestLifecycle:
    def test_create_open_close(self, tmp_path):
        p = tmp_path / "x"
        a = DRXFile.create(p, (4, 4), (2, 2))
        a.put((1, 1), 3.5)
        a.close()
        assert (tmp_path / "x.xmd").exists()
        assert (tmp_path / "x.xta").exists()
        b = DRXFile.open(p)
        assert b.get((1, 1)) == 3.5
        b.close()

    def test_create_refuses_existing(self, tmp_path):
        DRXFile.create(tmp_path / "x", (4,), (2,)).close()
        with pytest.raises(DRXFileExistsError):
            DRXFile.create(tmp_path / "x", (4,), (2,))
        # but overwrite works
        DRXFile.create(tmp_path / "x", (6,), (2,), overwrite=True).close()
        b = DRXFile.open(tmp_path / "x")
        assert b.shape == (6,)
        b.close()

    def test_open_missing(self, tmp_path):
        with pytest.raises(DRXFileNotFoundError):
            DRXFile.open(tmp_path / "nope")

    def test_open_bad_mode(self, tmp_path):
        DRXFile.create(tmp_path / "x", (4,), (2,)).close()
        with pytest.raises(DRXFileError):
            DRXFile.open(tmp_path / "x", mode="w")

    def test_read_only_enforced(self, tmp_path):
        DRXFile.create(tmp_path / "x", (4,), (2,)).close()
        b = DRXFile.open(tmp_path / "x", mode="r")
        with pytest.raises(DRXFileError):
            b.put((0,), 1.0)
        with pytest.raises(DRXFileError):
            b.extend(0, 1)
        b.close()

    def test_closed_handle_rejected(self, tmp_path):
        a = DRXFile.create(tmp_path / "x", (4,), (2,))
        a.close()
        with pytest.raises(DRXClosedError):
            a.get((0,))
        a.close()   # idempotent

    def test_context_manager(self, tmp_path):
        with DRXFile.create(tmp_path / "x", (4,), (2,)) as a:
            a.put((0,), 1.0)
        assert DRXFile.open(tmp_path / "x").get((0,)) == 1.0

    def test_in_memory_array(self):
        a = DRXFile.create(None, (4, 4), (2, 2))
        a.write((0, 0), np.eye(4))
        assert np.allclose(a.read(), np.eye(4))
        a.close()

    def test_dtypes(self, tmp_path):
        for name, val in [("int", 7), ("double", 2.5), ("complex", 1 + 2j)]:
            a = DRXFile.create(tmp_path / name, (4,), (2,), dtype=name)
            a.put((2,), val)
            a.close()
            b = DRXFile.open(tmp_path / name)
            assert b.get((2,)) == val
            b.close()


class TestElementAccess:
    def test_get_put(self, arr):
        arr.put((9, 11), 42.0)
        assert arr.get((9, 11)) == 42.0
        assert arr.get((0, 0)) == 0.0

    def test_bounds_checks(self, arr):
        with pytest.raises(DRXIndexError):
            arr.get((10, 0))
        with pytest.raises(DRXIndexError):
            arr.put((0, 12), 1.0)
        with pytest.raises(DRXIndexError):
            arr.get((0,))


class TestSubArrays:
    def test_roundtrip(self, arr, rng):
        ref = rng.random((10, 12))
        arr.write((0, 0), ref)
        assert np.allclose(arr.read(), ref)
        assert np.allclose(arr.read((2, 3), (7, 11)), ref[2:7, 3:11])

    def test_write_partial_box(self, arr, rng):
        block = rng.random((4, 5))
        arr.write((3, 2), block)
        got = arr.read()
        assert np.allclose(got[3:7, 2:7], block)
        got[3:7, 2:7] = 0
        assert np.all(got == 0)

    def test_fortran_order_read(self, arr, rng):
        ref = rng.random((10, 12))
        arr.write((0, 0), ref)
        f = arr.read(order="F")
        assert f.flags["F_CONTIGUOUS"]
        assert np.allclose(f, ref)

    def test_bad_order(self, arr):
        with pytest.raises(DRXIndexError):
            arr.read(order="Z")

    def test_boundary_slabs(self, arr):
        ref = pattern_array((10, 12))
        arr.write((0, 0), ref)
        for lo, hi in boundary_slabs((10, 12), thickness=2):
            got = arr.read(lo, hi)
            want = ref[tuple(slice(l, h) for l, h in zip(lo, hi))]
            assert np.array_equal(got, want), (lo, hi)

    def test_random_boxes(self, arr, rng):
        ref = pattern_array((10, 12))
        arr.write((0, 0), ref)
        for lo, hi in random_boxes((10, 12), 25, seed=3):
            got = arr.read(lo, hi)
            want = ref[tuple(slice(l, h) for l, h in zip(lo, hi))]
            assert np.array_equal(got, want), (lo, hi)

    def test_3d(self, tmp_path, rng):
        with DRXFile.create(tmp_path / "t", (5, 6, 7), (2, 3, 2)) as a:
            ref = rng.random((5, 6, 7))
            a.write((0, 0, 0), ref)
            assert np.allclose(a.read((1, 2, 3), (4, 5, 6)),
                               ref[1:4, 2:5, 3:6])


class TestExtend:
    def test_extend_preserves_data(self, tmp_path, rng):
        ref = rng.random((10, 12))
        with DRXFile.create(tmp_path / "e", (10, 12), (3, 4)) as a:
            a.write((0, 0), ref)
            a.extend(0, 5)
            a.extend(1, 9)
            a.extend(0, 2)
            assert a.shape == (17, 21)
            assert np.allclose(a.read((0, 0), (10, 12)), ref)
            assert np.all(a.read((10, 0), (17, 21)) == 0)

    def test_extend_within_partial_chunk(self, tmp_path):
        with DRXFile.create(tmp_path / "e", (10, 10), (3, 3)) as a:
            n = a.num_chunks
            a.extend(0, 2)   # 10 -> 12 = 4 chunks exactly: no new chunks
            assert a.num_chunks == n
            a.extend(0, 1)   # 12 -> 13: spills into a 5th chunk row
            assert a.num_chunks > n

    def test_write_into_extension(self, tmp_path, rng):
        with DRXFile.create(tmp_path / "e", (4, 4), (2, 2)) as a:
            base = rng.random((4, 4))
            a.write((0, 0), base)
            a.extend(1, 4)
            ext = rng.random((4, 4))
            a.write((0, 4), ext)
            assert np.allclose(a.read((0, 0), (4, 4)), base)
            assert np.allclose(a.read((0, 4), (4, 8)), ext)

    def test_persistence_after_extend(self, tmp_path, rng):
        ref = rng.random((4, 4))
        a = DRXFile.create(tmp_path / "p", (4, 4), (2, 2))
        a.write((0, 0), ref)
        a.extend(0, 4)
        a.write((4, 0), ref)
        a.close()
        b = DRXFile.open(tmp_path / "p")
        assert b.shape == (8, 4)
        assert np.allclose(b.read((0, 0), (4, 4)), ref)
        assert np.allclose(b.read((4, 0), (8, 4)), ref)
        b.close()

    def test_many_random_extends_keep_content(self, tmp_path, rng):
        """Stress: interleave growth and writes, verify no element moves."""
        a = DRXFile.create(tmp_path / "s", (3, 3), (2, 2))
        shadow = np.zeros((3, 3))
        for step in range(12):
            dim = int(rng.integers(0, 2))
            by = int(rng.integers(1, 4))
            a.extend(dim, by)
            grown = np.zeros(a.shape)
            grown[:shadow.shape[0], :shadow.shape[1]] = shadow
            shadow = grown
            # write a random box
            lo = tuple(int(rng.integers(0, s)) for s in a.shape)
            hi = tuple(int(rng.integers(l + 1, s + 1))
                       for l, s in zip(lo, a.shape))
            block = rng.random(tuple(h - l for l, h in zip(lo, hi)))
            a.write(lo, block)
            shadow[tuple(slice(l, h) for l, h in zip(lo, hi))] = block
            assert np.allclose(a.read(), shadow), step
        a.close()


class TestCache:
    def test_cache_counts(self, tmp_path):
        a = DRXFile.create(tmp_path / "c", (8, 8), (2, 2), cache_pages=4)
        a.write((0, 0), np.ones((8, 8)))
        before = a.cache_stats.hits
        a.read((0, 0), (2, 2))
        a.read((0, 0), (2, 2))
        assert a.cache_stats.hits > before
        a.close()

    def test_tiny_cache_still_correct(self, tmp_path, rng):
        ref = rng.random((8, 8))
        a = DRXFile.create(tmp_path / "c", (8, 8), (2, 2), cache_pages=1)
        a.write((0, 0), ref)
        assert np.allclose(a.read(), ref)
        # requests larger than the pool stream through vectored I/O
        # instead of churning the single-page cache
        assert a._data.stats.readv_calls > 0
        a.close()
        b = DRXFile.open(tmp_path / "c", cache_pages=1)
        assert np.allclose(b.read(), ref)
        b.close()

    def test_tiny_cache_per_chunk_path(self, tmp_path, rng):
        # with coalescing off, every chunk still round-trips through the
        # one-page pool, so the cache churns exactly as before
        ref = rng.random((8, 8))
        a = DRXFile.create(tmp_path / "c", (8, 8), (2, 2), cache_pages=1,
                           coalesce=False)
        a.write((0, 0), ref)
        assert np.allclose(a.read(), ref)
        assert a.cache_stats.evictions > 0
        a.close()
