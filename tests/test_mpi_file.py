"""Unit tests for MPI-IO: views, independent and collective I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import MPIFileError
from repro.mpi.file import FileView, _clamp_extents
from repro.mpi.runner import SPMDFailure
from repro.pfs import ParallelFileSystem


def run(n, fn, *args, **kw):
    return mpi.mpiexec(n, fn, *args, timeout=kw.pop("timeout", 30), **kw)


class TestFileView:
    def test_default_view_is_identity(self):
        v = FileView()
        assert v.extents(0, 10) == [(0, 10)]
        assert v.extents(5, 3) == [(5, 3)]

    def test_displacement(self):
        v = FileView(disp=100)
        assert v.extents(4, 8) == [(104, 8)]

    def test_empty_request(self):
        assert FileView().extents(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(MPIFileError):
            FileView().extents(-1, 4)
        with pytest.raises(MPIFileError):
            FileView(disp=-1)

    def test_vector_filetype_tiling(self):
        # every other double, starting at byte 16
        ft = mpi.DOUBLE.Create_vector(2, 1, 2).Commit()
        v = FileView(disp=16, etype=mpi.DOUBLE, filetype=ft)
        # tile: data bytes at file offsets 16 and 32; extent 3 doubles
        assert v.extents(0, 16) == [(16, 8), (32, 8)]
        # second tile begins at 16 + 24
        assert v.extents(16, 8) == [(40, 8)]
        # crossing tiles: the tail of tile 0 (at 32) abuts the head of
        # tile 1 (at 40), so the two pieces merge into one extent
        assert v.extents(8, 16) == [(32, 16)]

    def test_indexed_filetype_mid_run(self):
        chunk = mpi.DOUBLE.Create_contiguous(4).Commit()
        ft = chunk.Create_indexed([1, 1], [1, 3]).Commit()
        v = FileView(0, mpi.DOUBLE, ft)
        # data bytes 0..31 -> file bytes 32..63; 32..63 -> 96..127
        assert v.extents(0, 64) == [(32, 32), (96, 32)]
        # a read starting inside the first chunk
        assert v.extents(8, 32) == [(40, 24), (96, 8)]

    def test_etype_filetype_mismatch(self):
        ft = mpi.INT.Create_contiguous(3).Commit()
        with pytest.raises(MPIFileError):
            FileView(0, mpi.DOUBLE, ft)

    def test_non_monotonic_filetype_rejected(self):
        ft = mpi.DOUBLE.Create_indexed([1, 1], [3, 0]).Commit()
        with pytest.raises(MPIFileError):
            FileView(0, mpi.DOUBLE, ft)

    def test_clamp_extents(self):
        assert _clamp_extents([(0, 10), (20, 10)], 25) == [(0, 10), (20, 5)]
        assert _clamp_extents([(30, 10)], 25) == []
        assert _clamp_extents([(0, 10)], 100) == [(0, 10)]


class TestOpenClose:
    def test_create_and_reopen(self, pfs):
        def body(comm):
            fh = mpi.File.Open(comm, "f", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            if comm.rank == 0:
                fh.Write_at(0, np.arange(4, dtype=np.float64))
            fh.Close()
            fh2 = mpi.File.Open(comm, "f", mpi.MODE_RDONLY, pfs)
            buf = np.empty(4)
            fh2.Read_at(0, buf)
            fh2.Close()
            return buf.tolist()
        assert run(2, body) == [[0, 1, 2, 3]] * 2

    def test_open_missing_fails_everywhere(self, pfs):
        def body(comm):
            mpi.File.Open(comm, "nope", mpi.MODE_RDONLY, pfs)
        with pytest.raises(SPMDFailure) as ei:
            run(2, body)
        assert len(ei.value.failures) == 2   # every rank raised

    def test_excl_on_existing(self, pfs):
        pfs.create("exists")
        def body(comm):
            mpi.File.Open(comm, "exists",
                          mpi.MODE_RDWR | mpi.MODE_CREATE | mpi.MODE_EXCL,
                          pfs)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_mismatched_arguments_detected(self, pfs):
        def body(comm):
            name = "a" if comm.rank == 0 else "b"
            mpi.File.Open(comm, name, mpi.MODE_RDONLY, pfs)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_delete_on_close(self, pfs):
        def body(comm):
            fh = mpi.File.Open(
                comm, "tmp",
                mpi.MODE_RDWR | mpi.MODE_CREATE | mpi.MODE_DELETE_ON_CLOSE,
                pfs)
            fh.Close()
            return pfs.exists("tmp")
        assert run(2, body) == [False, False]

    def test_use_after_close(self, pfs):
        def body(comm):
            fh = mpi.File.Open(comm, "g", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            fh.Close()
            fh.Read_at(0, np.empty(1))
        with pytest.raises(SPMDFailure):
            run(1, body)

    def test_mode_enforcement(self, pfs):
        pfs.create("ro").write(0, b"\x00" * 8)
        def body(comm):
            fh = mpi.File.Open(comm, "ro", mpi.MODE_RDONLY, pfs)
            with pytest.raises(MPIFileError):
                fh.Write_at(0, np.zeros(1))
            fh.Close()
            fh = mpi.File.Open(comm, "wo", mpi.MODE_WRONLY | mpi.MODE_CREATE,
                               pfs)
            with pytest.raises(MPIFileError):
                fh.Read_at(0, np.empty(1))
            fh.Close()
            return True
        assert run(1, body) == [True]


class TestIndependentIO:
    def test_read_write_with_pointer(self, pfs):
        def body(comm):
            fh = mpi.File.Open(comm, "p", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            fh.Set_view(0, mpi.DOUBLE)
            if comm.rank == 0:
                fh.Write(np.array([1.0, 2.0]))
                fh.Write(np.array([3.0]))
                assert fh.Get_position() == 3
            fh.Sync()
            comm.barrier()
            fh.Seek(1)
            buf = np.empty(2)
            fh.Read(buf)
            fh.Close()
            return buf.tolist()
        assert run(2, body) == [[2.0, 3.0]] * 2

    def test_eof_short_read(self, pfs):
        def body(comm):
            fh = mpi.File.Open(comm, "eof", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            fh.Write_at(0, np.arange(3, dtype=np.float64))
            buf = np.full(10, -1.0)
            st = mpi.Status()
            n = fh.Read_at(0, buf, status=st)
            fh.Close()
            assert n == 24 and st.count == 24
            return buf.tolist()
        out = run(1, body)[0]
        assert out[:3] == [0, 1, 2] and out[3:] == [-1.0] * 7

    def test_interleaved_views(self, pfs):
        """Two ranks with complementary strided views write a full file."""
        def body(comm):
            fh = mpi.File.Open(comm, "s", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            ft = mpi.DOUBLE.Create_vector(4, 1, 2).Commit()
            fh.Set_view(comm.rank * 8, mpi.DOUBLE, ft)
            fh.Write_at(0, np.full(4, float(comm.rank + 1)))
            fh.Sync()
            comm.barrier()
            fh.Set_view(0, mpi.DOUBLE)
            whole = np.empty(8)
            fh.Read_at(0, whole)
            fh.Close()
            return whole.tolist()
        assert run(2, body)[0] == [1, 2, 1, 2, 1, 2, 1, 2]


class TestCollectiveIO:
    def test_read_write_all_roundtrip(self, pfs):
        def body(comm):
            fh = mpi.File.Open(comm, "c", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            n = 16
            block = mpi.DOUBLE.Create_contiguous(n).Commit()
            ft = block.Create_indexed([1], [comm.rank]).Commit()
            fh.Set_view(0, mpi.DOUBLE, ft)
            fh.Write_all(np.full(n, float(comm.rank)))
            fh.Seek(0)
            buf = np.empty(n)
            fh.Read_all(buf)
            fh.Close()
            return float(buf.mean())
        assert run(4, body) == [0.0, 1.0, 2.0, 3.0]

    def test_collective_aggregates_requests(self, pfs):
        """The E3 property at the MPI level: interleaved chunked reads
        collapse into far fewer server requests than independent ones."""
        f = pfs.create("agg")
        f.write(0, np.arange(64, dtype=np.float64).tobytes())

        def coll(comm):
            fh = mpi.File.Open(comm, "agg", mpi.MODE_RDONLY, pfs)
            chunk = mpi.DOUBLE.Create_contiguous(4).Commit()
            ft = chunk.Create_indexed([1, 1],
                                      [comm.rank, comm.rank + 4]).Commit()
            fh.Set_view(0, mpi.DOUBLE, ft)
            buf = np.empty(8)
            fh.Read_at_all(0, buf)
            fh.Close()
            return buf.sum()

        def indep(comm):
            fh = mpi.File.Open(comm, "agg", mpi.MODE_RDONLY, pfs)
            chunk = mpi.DOUBLE.Create_contiguous(4).Commit()
            ft = chunk.Create_indexed([1, 1],
                                      [comm.rank, comm.rank + 4]).Commit()
            fh.Set_view(0, mpi.DOUBLE, ft)
            buf = np.empty(8)
            fh.Read_at(0, buf)
            fh.Close()
            return buf.sum()

        pfs.reset_stats()
        a = run(4, coll)
        coll_reqs = pfs.total_stats().read_requests
        pfs.reset_stats()
        b = run(4, indep)
        indep_reqs = pfs.total_stats().read_requests
        assert a == b
        assert coll_reqs < indep_reqs

    def test_write_all_with_memtype(self, pfs):
        """The listing's pattern: memtype permutes the in-memory chunks."""
        def body(comm):
            fh = mpi.File.Open(comm, "mt", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            chunk = mpi.DOUBLE.Create_contiguous(2).Commit()
            ft = chunk.Create_indexed([1, 1],
                                      [comm.rank * 2,
                                       comm.rank * 2 + 1]).Commit()
            # memory holds the two chunks REVERSED
            mt = chunk.Create_indexed([1, 1], [1, 0]).Commit()
            fh.Set_view(0, mpi.DOUBLE, ft)
            mem = np.array([3.0, 4.0, 1.0, 2.0]) + 10 * comm.rank
            fh.Write_at_all(0, (mem, 2, chunk) if False else (mem, 1, mt))
            fh.Sync()
            comm.barrier()
            fh.Set_view(0, mpi.DOUBLE)
            if comm.rank == 0:
                whole = np.empty(8)
                fh.Read_at(0, whole)
                fh.Close()
                return whole.tolist()
            fh.Close()
            return None
        out = run(2, body)[0]
        assert out == [1, 2, 3, 4, 11, 12, 13, 14]

    def test_set_size_and_get_size(self, pfs):
        def body(comm):
            fh = mpi.File.Open(comm, "sz", mpi.MODE_RDWR | mpi.MODE_CREATE,
                               pfs)
            fh.Set_size(1024)
            fh.Preallocate(512)      # never shrinks
            size = fh.Get_size()
            fh.Close()
            return size
        assert run(2, body) == [1024, 1024]
