"""Ground truth from the paper's figures — every stated number, exactly.

FIG3: the 3-D worked example of section III-B / Fig. 3, including the
axial-vector record contents of Fig. 3b and the three worked addresses.
FIG1: the 2-D example of Fig. 1 (section II-A), including the chunk
address grid implied by the code listing's globalMap and F*(4,2) = 18.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AxialRecord,
    ExtendibleChunkIndex,
    all_addresses,
    f_star,
    f_star_inv,
)


class TestFigure3:
    """A[4][3][1] extended +D2 +D2 | +D1 | +D0 by 2 | +D2 (Fig. 3)."""

    def test_worked_addresses(self, fig3_index):
        # "the chunk A[2,1,0] is assigned to address 7"
        assert f_star(fig3_index, (2, 1, 0)) == 7
        # "chunk A[3,1,2] is assigned to address 34"
        assert f_star(fig3_index, (3, 1, 2)) == 34
        # "F*(<4,2,2>) = 48 + 12x(4-4) + 3x2 + 1x2 = 56"
        assert f_star(fig3_index, (4, 2, 2)) == 56

    def test_inverse_of_worked_addresses(self, fig3_index):
        assert f_star_inv(fig3_index, 7) == (2, 1, 0)
        assert f_star_inv(fig3_index, 34) == (3, 1, 2)
        assert f_star_inv(fig3_index, 56) == (4, 2, 2)

    def test_record_counts(self, fig3_index):
        # "In the example of Figure 3b, E0 = 2, E1 = 2, and E2 = 3."
        assert [len(v) for v in fig3_index.axial_vectors] == [2, 2, 3]

    def test_axial_vector_contents(self, fig3_index):
        """The record fields of Fig. 3b, coefficient vectors verbatim."""
        v0, v1, v2 = fig3_index.axial_vectors
        # initial allocation record: "0; 0; 3 1 1"
        assert (v0[0].start_index, v0[0].start_address) == (0, 0)
        assert v0[0].coeffs == (3, 1, 1)
        # D0 extension: "4; 48; 12 3 1"
        assert (v0[1].start_index, v0[1].start_address) == (4, 48)
        assert v0[1].coeffs == (12, 3, 1)
        # sentinel: "0; -1; 0 0 0"
        assert v1[0].is_sentinel and v1[0].coeffs == (0, 0, 0)
        # D1 extension: "3; 36; 3 12 1"
        assert (v1[1].start_index, v1[1].start_address) == (3, 36)
        assert v1[1].coeffs == (3, 12, 1)
        # sentinel on D2, then "1; 12; 3 1 12" and "3; 72; 4 1 24"
        assert v2[0].is_sentinel
        assert (v2[1].start_index, v2[1].start_address) == (1, 12)
        assert v2[1].coeffs == (3, 1, 12)
        assert (v2[2].start_index, v2[2].start_address) == (3, 72)
        assert v2[2].coeffs == (4, 1, 24)

    def test_final_bounds_and_size(self, fig3_index):
        # 4+2 x 3+1 x 1+2+1 = 6 x 4 x 4 = 96 chunks, addresses 0..95
        assert fig3_index.bounds == (6, 4, 4)
        assert fig3_index.num_chunks == 96
        grid = all_addresses(fig3_index)
        assert sorted(grid.ravel().tolist()) == list(range(96))

    def test_uninterrupted_extension_merges(self):
        """The two consecutive D2 extensions make ONE record (paper:
        'handled by only one expansion record entry')."""
        eci = ExtendibleChunkIndex([4, 3, 1])
        eci.extend(2)
        eci.extend(2)
        # D2 vector: sentinel + exactly one extension record covering both
        assert len(eci.axial_vectors[2]) == 2
        assert eci.bounds == (4, 3, 3)

    def test_interrupted_extension_adds_record(self):
        eci = ExtendibleChunkIndex([4, 3, 1])
        eci.extend(2)
        eci.extend(1)
        eci.extend(2)  # interrupted: new record
        assert len(eci.axial_vectors[2]) == 3

    def test_initial_allocation_is_row_major(self):
        """Inside the initial A[4][3][1] box, addresses are row-major."""
        eci = ExtendibleChunkIndex([4, 3, 1])
        expect = np.arange(12).reshape(4, 3, 1)
        assert np.array_equal(all_addresses(eci), expect)


class TestFigure1:
    """The 2-D A[10][12] example with 2x3 chunks (Fig. 1)."""

    # Address grid implied by the listing's globalMap: P0={0..5},
    # P1={6,7,8,12,13,14}, P2={9,10,16,17}, P3={11,15,18,19} with a
    # 2x2 BLOCK decomposition of the 5x4 chunk grid.
    EXPECTED_GRID = np.array([
        [0, 1, 6, 12],
        [2, 3, 7, 13],
        [4, 5, 8, 14],
        [9, 10, 11, 15],
        [16, 17, 18, 19],
    ])

    def test_address_grid(self, fig1_index):
        assert np.array_equal(all_addresses(fig1_index), self.EXPECTED_GRID)

    def test_f_star_4_2_is_18(self, fig1_index):
        # "The chunk A[4,2] is assigned to the linear address location 18
        #  in the file. Hence the mapping function computes F*(4,2) = 18."
        assert f_star(fig1_index, (4, 2)) == 18

    def test_growth_narrative(self):
        """'The array of Figure 1 grew from an initial allocation of
        chunk 0.  It was then expanded by extending dimension 1 with
        chunk 1.  This was followed with the extension of dimension 0 by
        allocating the segment consisting of chunks 2 and 3.  The same
        dimension was then extended by appending chunks 4 and 5.'"""
        eci = ExtendibleChunkIndex([1, 1])
        assert eci.address((0, 0)) == 0
        seg = eci.extend(1)
        assert (seg.start_address, seg.n_chunks) == (1, 1)
        seg = eci.extend(0)
        assert (seg.start_address, seg.n_chunks) == (2, 2)
        seg = eci.extend(0)  # uninterrupted: merged into the same segment
        assert (seg.start_address, seg.n_chunks) == (2, 4)
        assert eci.address((1, 0)) == 2
        assert eci.address((1, 1)) == 3
        assert eci.address((2, 0)) == 4
        assert eci.address((2, 1)) == 5

    def test_chunk_grid_of_a_10_12_array(self):
        """A[10][12] with 2x3 chunks occupies the 5x4 chunk grid; the
        maximum element index of dimension 1 (9 in the paper's
        narrative) need not fall on a chunk boundary."""
        from repro.core import chunk_bounds_for
        assert chunk_bounds_for((10, 12), (2, 3)) == (5, 4)
        assert chunk_bounds_for((10, 10), (2, 3)) == (5, 4)  # N1=10 too

    def test_zone_chunk_sets_match_listing_globalmap(self, fig1_index):
        """The 2x2 BLOCK zones hold exactly the listing's globalMap."""
        from repro.core.mapping import f_star_many
        from repro.drxmp.partition import BlockPartition
        part = BlockPartition(fig1_index.bounds, 4, pgrid=(2, 2))
        expected = {
            0: [0, 1, 2, 3, 4, 5],
            1: [6, 7, 8, 12, 13, 14],
            2: [9, 10, 16, 17],
            3: [11, 15, 18, 19],
        }
        for rank, want in expected.items():
            chunks = part.chunks_of(rank)
            addrs = sorted(f_star_many(fig1_index, chunks).tolist())
            assert addrs == want, f"rank {rank}"

    def test_inmemorymap_of_listing(self, fig1_index):
        """Rank 1's inMemoryMap {0,2,4,1,3,5}: position of each chunk
        (sorted by file address) within the zone's row-major C layout."""
        from repro.core.inverse import f_star_inv_many
        from repro.core.mapping import f_star_many
        from repro.drxmp.partition import BlockPartition
        part = BlockPartition(fig1_index.bounds, 4, pgrid=(2, 2))
        zone = part.zone_of(1)
        addrs = np.sort(f_star_many(fig1_index, zone.chunk_indices()))
        indices = f_star_inv_many(fig1_index, addrs)
        # row-major position of each chunk within the zone box
        shape = zone.shape
        rel = indices - np.asarray(zone.lo)
        inmem = rel[:, 0] * shape[1] + rel[:, 1]
        assert inmem.tolist() == [0, 2, 4, 1, 3, 5]
