"""Unit tests for the comparator baselines (B-tree, HDF5-like, NetCDF-like, DRA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.baselines import (
    BTree,
    ChunkedBTreeFile,
    ConventionalArrayFile,
    DRAFile,
    grow_by_copy,
)
from repro.core.errors import DRXError, DRXExtendError, DRXIndexError
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array


class TestBTree:
    def test_insert_lookup(self):
        bt = BTree(order=4)
        for i in range(100):
            bt.put((i % 10, i // 10), i)
        assert len(bt) == 100
        assert bt.get((3, 7)) == 73
        assert bt.get((99, 99)) is None
        assert (5, 5) in bt and (50, 50) not in bt

    def test_update_in_place(self):
        bt = BTree()
        bt.put((1,), "a")
        bt.put((1,), "b")
        assert len(bt) == 1
        assert bt.get((1,)) == "b"

    def test_sorted_iteration(self):
        bt = BTree(order=5)
        import random
        random.seed(4)
        keys = [(random.randrange(40), random.randrange(40))
                for _ in range(300)]
        for k in keys:
            bt.put(k, k)
        assert list(bt.keys()) == sorted(set(keys))
        assert all(k == v for k, v in bt.items())

    def test_height_grows_logarithmically(self):
        bt = BTree(order=8)
        for i in range(500):
            bt.put((i,), i)
        assert bt.height <= 5
        assert bt.stats.splits > 0

    def test_lookup_costs_node_reads(self):
        bt = BTree(order=4, cache_nodes=4)
        for i in range(200):
            bt.put((i,), i)
        r0 = bt.stats.node_reads
        for i in range(0, 200, 7):
            bt.get((i,))
        assert bt.stats.node_reads > r0   # descents hit the store

    def test_bad_order(self):
        with pytest.raises(DRXError):
            BTree(order=2)
        with pytest.raises(DRXError):
            BTree(cache_nodes=1)


class TestChunkedBTreeFile:
    def test_roundtrip(self, rng):
        h = ChunkedBTreeFile((10, 12), (3, 4))
        ref = rng.random((10, 12))
        h.write((0, 0), ref)
        assert np.allclose(h.read(), ref)
        assert np.allclose(h.read((2, 3), (9, 11)), ref[2:9, 3:11])
        assert h.get((5, 5)) == ref[5, 5]
        h.put((5, 5), -1.0)
        assert h.get((5, 5)) == -1.0

    def test_lazy_allocation(self):
        h = ChunkedBTreeFile((10, 10), (2, 2))
        assert h.allocated_chunks == 0
        h.put((0, 0), 1.0)
        assert h.allocated_chunks == 1
        assert h.get((9, 9)) == 0.0        # unallocated reads zero
        assert h.allocated_chunks == 1

    def test_extension_is_metadata_only(self):
        h = ChunkedBTreeFile((4, 4), (2, 2))
        h.write((0, 0), np.ones((4, 4)))
        n = h.allocated_chunks
        h.extend(0, 100)
        assert h.shape == (104, 4)
        assert h.allocated_chunks == n
        with pytest.raises(DRXExtendError):
            h.extend(2, 1)
        with pytest.raises(DRXExtendError):
            h.extend(0, 0)

    def test_write_order_determines_file_order(self):
        """HDF5 semantics: chunks live at their first-write position."""
        h = ChunkedBTreeFile((4, 4), (2, 2))
        h.put((2, 2), 1.0)     # chunk (1,1) allocated first
        h.put((0, 0), 2.0)     # chunk (0,0) allocated second
        assert h.index.get((1, 1)) == 0
        assert h.index.get((0, 0)) == h.chunk_nbytes

    def test_bounds_check(self):
        h = ChunkedBTreeFile((4, 4), (2, 2))
        with pytest.raises(DRXIndexError):
            h.get((4, 0))

    def test_matches_drx_results(self, tmp_path, rng):
        """Equivalence: the two chunked stores agree element for element."""
        from repro.drx import DRXFile
        ref = pattern_array((9, 11))
        h = ChunkedBTreeFile((9, 11), (2, 3))
        d = DRXFile.create(tmp_path / "d", (9, 11), (2, 3))
        h.write((0, 0), ref)
        d.write((0, 0), ref)
        h.extend(1, 4)
        d.extend(1, 4)
        h.write((0, 11), ref[:, :4])
        d.write((0, 11), ref[:, :4])
        assert np.array_equal(h.read(), d.read())
        d.close()


class TestConventionalArrayFile:
    def test_roundtrip(self, rng):
        c = ConventionalArrayFile((8, 9))
        ref = rng.random((8, 9))
        c.write((0, 0), ref)
        assert np.allclose(c.read(), ref)
        assert np.allclose(c.read((1, 2), (7, 8)), ref[1:7, 2:8])

    def test_record_dim_append_is_cheap(self):
        c = ConventionalArrayFile((4, 4))
        c.write((0, 0), np.ones((4, 4)))
        c.extend(0, 4)
        assert c.reorg_stats.reorganizations == 0
        assert c.shape == (8, 4)
        assert np.all(c.read((0, 0), (4, 4)) == 1)

    def test_other_dim_reorganizes(self):
        c = ConventionalArrayFile((4, 4))
        ref = pattern_array((4, 4))
        c.write((0, 0), ref)
        c.extend(1, 2)
        assert c.reorg_stats.reorganizations == 1
        assert c.reorg_stats.bytes_moved >= 2 * ref.nbytes
        assert np.array_equal(c.read((0, 0), (4, 4)), ref)
        assert np.all(c.read((0, 4), (4, 6)) == 0)

    def test_3d(self, rng):
        c = ConventionalArrayFile((3, 4, 5))
        ref = rng.random((3, 4, 5))
        c.write((0, 0, 0), ref)
        assert np.allclose(c.read((1, 1, 1), (3, 3, 4)), ref[1:3, 1:3, 1:4])
        c.extend(2, 2)
        assert np.allclose(c.read((0, 0, 0), (3, 4, 5)), ref)

    def test_request_asymmetry(self):
        """Row reads: one request.  Column reads: one per row."""
        c = ConventionalArrayFile((16, 16))
        c.write((0, 0), np.zeros((16, 16)))
        c.io_requests = 0
        c.read((3, 0), (4, 16))
        assert c.io_requests == 1
        c.io_requests = 0
        c.read((0, 3), (16, 4))
        assert c.io_requests == 16

    def test_transposed_scan(self):
        ref = pattern_array((6, 4))
        c = ConventionalArrayFile((6, 4))
        c.write((0, 0), ref)
        assert np.array_equal(c.read_transposed_scan(), ref.T)

    def test_errors(self):
        c = ConventionalArrayFile((4, 4))
        with pytest.raises(DRXExtendError):
            c.extend(2, 1)
        with pytest.raises(DRXExtendError):
            c.extend(0, 0)
        with pytest.raises(DRXExtendError):
            ConventionalArrayFile((0, 4))


class TestDRA:
    def test_fixed_bounds(self, pfs):
        def body(comm):
            a = DRAFile.create(comm, pfs, "dra", (8, 8), (2, 2))
            try:
                a.extend(0, 2)
                return False
            except DRXExtendError:
                pass
            a.close()
            return True
        assert all(mpi.mpiexec(2, body, timeout=30))

    def test_grow_by_copy(self, pfs):
        ref = pattern_array((8, 8))
        def body(comm):
            a = DRAFile.create(comm, pfs, "old", (8, 8), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            b = grow_by_copy(comm, pfs, a, "new", (12, 8))
            ok = b.shape == (12, 8)
            ok = ok and np.array_equal(b.read((0, 0), (8, 8)), ref)
            ok = ok and np.all(b.read((8, 0), (12, 8)) == 0)
            a.close()
            b.close()
            return ok
        assert all(mpi.mpiexec(4, body, timeout=60))

    def test_grow_by_copy_validates(self, pfs):
        def body(comm):
            a = DRAFile.create(comm, pfs, "v", (8, 8), (2, 2))
            try:
                grow_by_copy(comm, pfs, a, "v2", (4, 8))
                return False
            except DRXExtendError:
                a.close()
                return True
        assert all(mpi.mpiexec(2, body, timeout=30))

    def test_layout_matches_unextended_drxmp(self, pfs):
        """DRA == DRX-MP before any extension (subsumption)."""
        from repro.drxmp import DRXMPFile
        ref = pattern_array((6, 6))
        def body(comm):
            a = DRAFile.create(comm, pfs, "d1", (6, 6), (2, 2))
            b = DRXMPFile.create(comm, pfs, "d2", (6, 6), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), ref)
                b.write((0, 0), ref)
            comm.barrier()
            raw_a = pfs.open("d1.xta").read(0, ref.nbytes)
            raw_b = pfs.open("d2.xta").read(0, ref.nbytes)
            a.close()
            b.close()
            return raw_a == raw_b
        assert all(mpi.mpiexec(2, body, timeout=30))
