"""Vectorized F* / F*^-1 against the scalar reference implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DRXIndexError,
    ExtendibleChunkIndex,
    f_star,
    f_star_inv,
    f_star_inv_many,
    f_star_many,
    all_addresses,
    replay_history,
)
from repro.workloads import random_growth


def histories():
    yield [2, 3], []
    yield [1, 1], [(1, 1), (0, 2), (1, 1), (0, 1)]
    yield [4, 3, 1], [(2, 2), (1, 1), (0, 2), (2, 1)]
    yield [2, 2, 2, 2], random_growth(4, 6, seed=5, max_by=2)
    yield [3], [(0, 4), (0, 1)]


@pytest.mark.parametrize("bounds,history", list(histories()))
def test_vectorized_matches_scalar(bounds, history):
    eci = replay_history(bounds, history)
    idx = np.array(list(np.ndindex(*eci.bounds)), dtype=np.int64)
    batch = f_star_many(eci, idx)
    scalar = np.array([f_star(eci, tuple(i)) for i in idx])
    assert np.array_equal(batch, scalar)


@pytest.mark.parametrize("bounds,history", list(histories()))
def test_vectorized_inverse_matches_scalar(bounds, history):
    eci = replay_history(bounds, history)
    q = np.arange(eci.num_chunks)
    batch = f_star_inv_many(eci, q)
    scalar = np.array([f_star_inv(eci, int(a)) for a in q])
    assert np.array_equal(batch, scalar)


@pytest.mark.parametrize("bounds,history", list(histories()))
def test_roundtrip_both_ways(bounds, history):
    eci = replay_history(bounds, history)
    q = np.arange(eci.num_chunks)
    assert np.array_equal(f_star_many(eci, f_star_inv_many(eci, q)), q)
    idx = np.array(list(np.ndindex(*eci.bounds)), dtype=np.int64)
    assert np.array_equal(f_star_inv_many(eci, f_star_many(eci, idx)), idx)


def test_f_star_many_single_row_promotes():
    eci = ExtendibleChunkIndex([3, 3])
    out = f_star_many(eci, np.array([1, 2]))
    assert out.shape == (1,)
    assert out[0] == eci.address((1, 2))


def test_f_star_many_empty():
    eci = ExtendibleChunkIndex([3, 3])
    assert f_star_many(eci, np.empty((0, 2), dtype=np.int64)).size == 0
    assert f_star_inv_many(eci, np.empty(0, dtype=np.int64)).shape == (0, 2)


def test_f_star_many_rank_mismatch():
    eci = ExtendibleChunkIndex([3, 3])
    with pytest.raises(DRXIndexError):
        f_star_many(eci, np.zeros((2, 3), dtype=np.int64))


def test_f_star_many_out_of_bounds_reports_offender():
    eci = ExtendibleChunkIndex([3, 3])
    with pytest.raises(DRXIndexError, match=r"\(3, 0\)"):
        f_star_many(eci, np.array([[0, 0], [3, 0]]))


def test_f_star_inv_many_out_of_range():
    eci = ExtendibleChunkIndex([3, 3])
    with pytest.raises(DRXIndexError):
        f_star_inv_many(eci, np.array([0, 9]))


def test_all_addresses_shape(fig1_index):
    grid = all_addresses(fig1_index)
    assert grid.shape == fig1_index.bounds


def test_degenerate_bounds_with_ones():
    """Dimensions of extent 1 (tied coefficients) decode correctly."""
    eci = replay_history([1, 4, 1], [(1, 2), (0, 1), (2, 1), (1, 1)])
    grid = all_addresses(eci)
    assert sorted(grid.ravel().tolist()) == list(range(eci.num_chunks))
    q = np.arange(eci.num_chunks)
    assert np.array_equal(f_star_many(eci, f_star_inv_many(eci, q)), q)
