"""Model-based equivalence testing (hypothesis).

Four independent implementations expose the same array semantics:

* ``DRXFile`` (two-file, Mpool-cached, axial mapping),
* ``DRXSingleFile`` (single-file container around the same engine),
* ``MemExtendibleArray`` (in-core chunks, axial mapping),
* ``ChunkedBTreeFile`` (B-tree-indexed chunks — a different engine
  entirely),

plus a plain NumPy shadow as the oracle.  A random sequence of
``extend`` / ``write`` / ``put`` operations is applied to all five; after
every step, reads from each implementation must agree with the oracle.
Any divergence pinpoints a semantics bug in exactly one engine.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ChunkedBTreeFile
from repro.drx import DRXFile, DRXSingleFile, MemExtendibleArray


class _Oracle:
    def __init__(self, shape):
        self.a = np.zeros(shape)

    def extend(self, dim, by):
        shape = list(self.a.shape)
        shape[dim] += by
        grown = np.zeros(shape)
        grown[tuple(slice(0, s) for s in self.a.shape)] = self.a
        self.a = grown

    def write(self, lo, values):
        self.a[tuple(slice(l, l + s)
                     for l, s in zip(lo, values.shape))] = values

    def put(self, idx, value):
        self.a[idx] = value


@st.composite
def op_sequences(draw):
    k = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 6)) for _ in range(k))
    chunk = tuple(draw(st.integers(1, 3)) for _ in range(k))
    n_ops = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 2 ** 16))
    ops = []
    sim = list(shape)
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["extend", "write", "put", "check"]))
        if kind == "extend":
            dim = draw(st.integers(0, k - 1))
            by = draw(st.integers(1, 3))
            if sim[dim] + by > 14:
                continue
            sim[dim] += by
            ops.append(("extend", dim, by))
        elif kind == "write":
            lo = tuple(draw(st.integers(0, s - 1)) for s in sim)
            size = tuple(draw(st.integers(1, s - l))
                         for l, s in zip(lo, sim))
            ops.append(("write", lo, size))
        elif kind == "put":
            idx = tuple(draw(st.integers(0, s - 1)) for s in sim)
            ops.append(("put", idx))
        else:
            ops.append(("check",))
    return shape, chunk, ops, seed


@settings(max_examples=40, deadline=None)
@given(op_sequences())
def test_all_engines_agree(case):
    shape, chunk, ops, seed = case
    rng = np.random.default_rng(seed)
    oracle = _Oracle(shape)
    engines = [
        DRXFile.create(None, shape, chunk, cache_pages=2),
        DRXSingleFile.create(None, shape, chunk, header_reserve=4096,
                             cache_pages=2),
        MemExtendibleArray(shape, chunk),
        ChunkedBTreeFile(shape, chunk, btree_order=4, cache_nodes=8),
    ]
    try:
        for op in ops:
            if op[0] == "extend":
                _, dim, by = op
                oracle.extend(dim, by)
                for e in engines:
                    e.extend(dim, by)
            elif op[0] == "write":
                _, lo, size = op
                block = rng.random(size)
                oracle.write(lo, block)
                for e in engines:
                    e.write(lo, block)
            elif op[0] == "put":
                _, idx = op
                val = float(rng.random())
                oracle.put(idx, val)
                for e in engines:
                    e.put(idx, val)
            else:
                for e in engines:
                    got = e.read()
                    assert np.allclose(got, oracle.a), type(e).__name__
        # final agreement, both orders
        for e in engines:
            assert np.allclose(e.read(), oracle.a), type(e).__name__
            f = e.read(order="F")
            assert f.flags["F_CONTIGUOUS"]
            assert np.allclose(f, oracle.a), type(e).__name__
    finally:
        for e in engines:
            close = getattr(e, "close", None)
            if close:
                close()
