"""Crash consistency: die at every named commit site, reopen, verify.

The commit protocols (temp-file + fsync + rename for ``.xmd``,
generation-stamped CRC-guarded shadow slots for the ``.drx`` header)
promise that a crash at *any* instant leaves a reopenable array in
either the old or the new committed state — never garbage.  These tests
sweep every site in :data:`repro.drx.faultpoints.CRASH_SITES`, simulate
dying there, abandon the handle, and reopen.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import CrashError
from repro.drx import CRASH_SITES, DRXFile, DRXSingleFile, FaultPlan
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array, random_growth

XMD_SITES = [s for s in CRASH_SITES
             if s.startswith(("xmd.", "posix."))]
SF_SITES = [s for s in CRASH_SITES if s.startswith("sf.")]
MPOOL_SITES = [s for s in CRASH_SITES if s.startswith("mpool.")]
CODEC_SITES = [s for s in CRASH_SITES if s.startswith("codec.")]


def test_site_inventory_is_partitioned():
    """Every registered site belongs to exactly one sweep below."""
    assert sorted(XMD_SITES + SF_SITES + MPOOL_SITES + CODEC_SITES) \
        == sorted(CRASH_SITES)


class TestXMDCommitCrashes:
    """The two-file (.xmd) meta-data commit."""

    @pytest.mark.parametrize("site", XMD_SITES)
    def test_crash_leaves_old_or_new_state(self, tmp_path, site):
        a = DRXFile.create(tmp_path / "a", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()                              # state A: shape (4, 4)
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.extend(0, 2)                 # dies committing state B
        # the process "died": abandon the handle, reopen from disk
        with DRXFile.open(tmp_path / "a") as b:
            assert b.shape in ((4, 4), (6, 4))
            assert np.array_equal(b.read((0, 0), (4, 4)),
                                  pattern_array((4, 4)))

    @pytest.mark.parametrize("site", XMD_SITES)
    def test_no_leftover_temp_breaks_the_next_commit(self, tmp_path, site):
        """A stale ``.commit`` temp file from a crash must not poison
        the next successful commit."""
        a = DRXFile.create(tmp_path / "a", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.flush()
        with DRXFile.open(tmp_path / "a", mode="r+") as b:
            b.extend(0, 2)                     # full commit cycle
        assert DRXFile.open(tmp_path / "a").shape == (6, 4)


class TestSingleFileHeaderCrashes:
    """The shadow-slot header commit of the ``.drx`` container."""

    @pytest.mark.parametrize("site", SF_SITES)
    def test_crash_leaves_old_or_new_generation(self, tmp_path, site):
        a = DRXSingleFile.create(tmp_path / "s", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()                              # generation N commits A
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.extend(0, 2)                 # dies committing gen N+1
        with DRXSingleFile.open(tmp_path / "s") as b:
            assert b.shape in ((4, 4), (6, 4))
            assert np.array_equal(b.read((0, 0), (4, 4)),
                                  pattern_array((4, 4)))

    @pytest.mark.parametrize("site", SF_SITES)
    def test_crash_with_tail_resident_meta(self, tmp_path, site):
        """Same sweep with the meta blob relocated to the file tail (a
        tiny reserve), where extensions must pre-relocate the committed
        copy before chunk payloads can overwrite it."""
        a = DRXSingleFile.create(tmp_path / "t", (2, 2), (1, 1),
                                 header_reserve=200)
        a.write((0, 0), pattern_array((2, 2)))
        for dim, by in random_growth(2, 10, seed=3, max_by=1):
            a.extend(dim, by)                  # meta now far beyond 200b
        a.flush()
        shape_a = a.shape
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.extend(0, 1)
        with DRXSingleFile.open(tmp_path / "t") as b:
            grown = list(shape_a)
            grown[0] += 1
            assert b.shape in (shape_a, tuple(grown))
            assert np.array_equal(b.read((0, 0), (2, 2)),
                                  pattern_array((2, 2)))

    def test_repeated_crashes_then_recovery(self, tmp_path):
        """Crash every commit three times in a row; the array survives
        each one, and a clean commit still works afterwards."""
        a = DRXSingleFile.create(tmp_path / "r", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()
        for attempt in range(3):
            with FaultPlan().crash("sf.header.before_slot"):
                with pytest.raises(CrashError):
                    a.flush()
            with DRXSingleFile.open(tmp_path / "r") as b:
                assert np.array_equal(b.read((0, 0), (4, 4)),
                                      pattern_array((4, 4)))
        a.flush()                              # clean commit heals all
        with DRXSingleFile.open(tmp_path / "r") as b:
            assert np.array_equal(b.read((0, 0), (4, 4)),
                                  pattern_array((4, 4)))


class TestMpoolFlushCrashes:
    @pytest.mark.parametrize("site", MPOOL_SITES)
    def test_crash_mid_flush_keeps_array_valid(self, tmp_path, site):
        before = pattern_array((4, 4))
        after = before + 1
        a = DRXFile.create(tmp_path / "m", (4, 4), (2, 2))
        a.write((0, 0), before)
        a.flush()                              # state A on disk
        a.write((0, 0), after)                 # dirty pages: state B
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.flush()
        with DRXFile.open(tmp_path / "m") as b:
            got = b.read()
            assert np.array_equal(got, before) or np.array_equal(got, after)


class TestPFSBackedCrashes:
    """The same commit-protocol sweep over PFS-backed containers.

    A DRX file whose byte stores live on the simulated parallel file
    system passes through the identical ``xmd.commit.*`` and
    ``mpool.flush.*`` sites (the ``posix.replace.*`` sites belong to the
    real-file store and never fire here), and must give the same
    old-or-new guarantee — with and without replication.
    """

    PFS_SITES = ["xmd.commit.begin", "xmd.commit.end",
                 "mpool.flush.begin", "mpool.flush.after_writeback"]

    def test_pfs_sites_are_registered(self):
        assert set(self.PFS_SITES) <= set(CRASH_SITES)

    @pytest.mark.parametrize("replication", [1, 2])
    @pytest.mark.parametrize("site", PFS_SITES)
    def test_crash_mid_flush_keeps_array_valid(self, site, replication):
        """A flush with dirty pages passes through all four sites:
        the mpool write-back pair, then the meta-data commit pair."""
        before = pattern_array((4, 4))
        after = before + 1
        fs = ParallelFileSystem(nservers=3, stripe_size=512,
                                replication=replication)
        a = DRXFile.create_pfs(fs, "m", (4, 4), (2, 2))
        a.write((0, 0), before)
        a.flush()                              # state A on the PFS
        a.write((0, 0), after)                 # dirty pages: state B
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.flush()
        # the process "died": abandon the handle, reopen from PFS bytes
        with DRXFile.open_pfs(fs, "m") as b:
            got = b.read()
            assert np.array_equal(got, before) or np.array_equal(got, after)

    @pytest.mark.parametrize("site", ["xmd.commit.begin", "xmd.commit.end"])
    def test_crash_during_extend_leaves_old_or_new_shape(self, site):
        fs = ParallelFileSystem(nservers=3, stripe_size=512,
                                replication=2)
        a = DRXFile.create_pfs(fs, "a", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()                              # state A: shape (4, 4)
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.extend(0, 2)                 # dies committing state B
        with DRXFile.open_pfs(fs, "a") as b:
            assert b.shape in ((4, 4), (6, 4))
            assert np.array_equal(b.read((0, 0), (4, 4)),
                                  pattern_array((4, 4)))

    @pytest.mark.parametrize("site", PFS_SITES)
    def test_crash_then_server_loss_still_recovers(self, site):
        """Crash mid-commit, then lose a server: with replication 2 the
        surviving replicas must still present a valid old-or-new array."""
        before = pattern_array((4, 4))
        after = before + 1
        fs = ParallelFileSystem(nservers=3, stripe_size=512,
                                replication=2)
        a = DRXFile.create_pfs(fs, "a", (4, 4), (2, 2))
        a.write((0, 0), before)
        a.flush()
        a.write((0, 0), after)
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.flush()
        fs.kill_server(0)
        with DRXFile.open_pfs(fs, "a") as b:
            got = b.read()
            assert np.array_equal(got, before) or np.array_equal(got, after)


class TestCompressedCommitCrashes:
    """The allocation-table commit of compressed (``codec="zlib"``)
    arrays.

    Compressed payloads land *before* the slot table commits; the
    table's copy-on-write discipline promises that a crash at any site —
    including the new ``codec.slots.written`` — reopens the previous
    committed table with every one of its payloads intact.  The sweeps
    overwrite committed chunks (exercising COW extents, not just
    appends) and verify the reopened content is bit-identically old or
    new.
    """

    SWEEP = sorted(set(CODEC_SITES + XMD_SITES + MPOOL_SITES))

    @pytest.mark.parametrize("site", SWEEP)
    def test_crash_mid_overwrite_leaves_old_or_new(self, tmp_path, site):
        before = pattern_array((6, 6))
        after = before * 3 + 1
        a = DRXFile.create(tmp_path / "c", (6, 6), (2, 2),
                           codec="zlib", checksums=True)
        a.write((0, 0), before)
        a.flush()                              # state A committed
        a.write((0, 0), after)                 # COW rewrites every chunk
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.flush()
        with DRXFile.open(tmp_path / "c") as b:
            got = b.read()
            assert np.array_equal(got, before) or np.array_equal(got, after)
            assert not b.scrub().corrupt       # CRCs match the table

    @pytest.mark.parametrize("site", sorted(set(CODEC_SITES + XMD_SITES)))
    def test_crash_mid_extend_leaves_old_or_new_shape(self, tmp_path, site):
        a = DRXFile.create(tmp_path / "e", (4, 4), (2, 2), codec="zlib")
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.extend(0, 2)
        with DRXFile.open(tmp_path / "e") as b:
            assert b.shape in ((4, 4), (6, 4))
            assert np.array_equal(b.read((0, 0), (4, 4)),
                                  pattern_array((4, 4)))

    SF_SWEEP = sorted(set(CODEC_SITES + SF_SITES + MPOOL_SITES))

    @pytest.mark.parametrize("site", SF_SWEEP)
    def test_single_file_compressed_crashes(self, tmp_path, site):
        """Single-file container with a tiny reserve: the meta blob is
        tail-resident inside the chunk region, fenced off through the
        slot table's reserved span."""
        before = pattern_array((4, 4))
        after = before + 7
        a = DRXSingleFile.create(tmp_path / "s", (4, 4), (1, 1),
                                 header_reserve=200, codec="zlib",
                                 checksums=True)
        a.write((0, 0), before)
        for dim, by in random_growth(2, 6, seed=5, max_by=1):
            a.extend(dim, by)                  # meta far beyond 200b
        a.flush()
        shape_a = a.shape
        a.write((0, 0), after)
        with FaultPlan().crash(site):
            with pytest.raises(CrashError):
                a.flush()
        with DRXSingleFile.open(tmp_path / "s") as b:
            assert b.shape == shape_a
            got = b.read((0, 0), (4, 4))
            assert np.array_equal(got, before) or np.array_equal(got, after)
            assert not b.scrub().corrupt

    def test_repeated_crashes_recycle_no_committed_extent(self, tmp_path):
        """Crashing the same commit repeatedly must not leak or reuse
        quarantined extents: each retry re-quarantines, and the final
        clean commit converges."""
        a = DRXFile.create(tmp_path / "r", (4, 4), (2, 2), codec="zlib")
        base = pattern_array((4, 4))
        a.write((0, 0), base)
        a.flush()
        for attempt in range(3):
            a.write((0, 0), base + attempt + 1)
            with FaultPlan().crash("codec.slots.written"):
                with pytest.raises(CrashError):
                    a.flush()
            with DRXFile.open(tmp_path / "r") as b:
                assert np.array_equal(b.read(), base)
        a.flush()                              # clean commit lands B
        with DRXFile.open(tmp_path / "r") as b:
            assert np.array_equal(b.read(), base + 3)


class TestSiteCoverage:
    def test_every_site_fires_in_a_normal_lifecycle(self, tmp_path):
        """The inventory in CRASH_SITES is live: a plain create/write/
        extend/close cycle of both containers visits every named site
        (so a sweep over CRASH_SITES is a sweep over reality)."""
        plan = FaultPlan()                     # no rules: observe only
        with plan:
            with DRXFile.create(tmp_path / "a", (4, 4), (2, 2)) as a:
                a.write((0, 0), pattern_array((4, 4)))
                a.extend(0, 2)
            with DRXSingleFile.create(tmp_path / "s", (4, 4), (2, 2)) as s:
                s.write((0, 0), pattern_array((4, 4)))
                s.extend(0, 2)
            with DRXFile.create(tmp_path / "z", (4, 4), (2, 2),
                                codec="zlib") as z:
                z.write((0, 0), pattern_array((4, 4)))
        missed = set(CRASH_SITES) - set(plan.hits)
        assert not missed, f"crash sites never visited: {sorted(missed)}"
