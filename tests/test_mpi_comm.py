"""Unit tests for communicators: point-to-point, collectives, failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import MPICommError, MPIError
from repro.mpi.runner import SPMDFailure


def run(n, fn, **kw):
    return mpi.mpiexec(n, fn, timeout=kw.pop("timeout", 30), **kw)


class TestRunner:
    def test_results_in_rank_order(self):
        assert run(4, lambda c: c.rank * 10) == [0, 10, 20, 30]

    def test_single_rank(self):
        assert run(1, lambda c: c.size) == [1]

    def test_exception_propagates_with_rank(self):
        def body(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()
        with pytest.raises(SPMDFailure) as ei:
            run(4, body)
        assert 2 in ei.value.failures
        assert isinstance(ei.value.failures[2], ValueError)

    def test_failure_wakes_blocked_ranks(self):
        """Ranks stuck in a collective must not hang when another dies."""
        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.barrier()      # would block forever without abort
        with pytest.raises(SPMDFailure):
            run(4, body)

    def test_deadlock_watchdog(self):
        def body(comm):
            if comm.rank == 0:
                comm.barrier()  # others never arrive
            return True
        with pytest.raises(MPIError, match="deadlock"):
            run(2, body, timeout=2)

    def test_abort_call(self):
        def body(comm):
            if comm.rank == 1:
                comm.Abort(7)
            comm.barrier()
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_bad_world_size(self):
        with pytest.raises(MPICommError):
            mpi.World(0)


class TestPointToPoint:
    def test_object_send_recv(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"k": [1, 2]}, dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)
        assert run(2, body)[1] == {"k": [1, 2]}

    def test_send_is_a_copy(self):
        """Mutating the sent object after send must not affect receipt."""
        def body(comm):
            if comm.rank == 0:
                obj = [1, 2, 3]
                comm.send(obj, dest=1)
                obj.append(99)
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)
        assert run(2, body)[1] == [1, 2, 3]

    def test_tag_matching(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            first = comm.recv(source=0, tag=2)
            second = comm.recv(source=0, tag=1)
            return first, second
        assert run(2, body)[1] == ("b", "a")

    def test_any_source_any_tag_with_status(self):
        def body(comm):
            if comm.rank == 0:
                st = mpi.Status()
                vals = []
                for _ in range(2):
                    vals.append(comm.recv(source=mpi.ANY_SOURCE,
                                          tag=mpi.ANY_TAG, status=st))
                return sorted(vals)
            comm.send(comm.rank, dest=0, tag=comm.rank)
            return None
        assert run(3, body)[0] == [1, 2]

    def test_fifo_per_pair(self):
        def body(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=9)
                return None
            return [comm.recv(source=0, tag=9) for _ in range(20)]
        assert run(2, body)[1] == list(range(20))

    def test_buffer_send_recv_with_status(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.arange(5, dtype=np.int64), dest=1)
                return None
            buf = np.empty(5, dtype=np.int64)
            st = mpi.Status()
            comm.Recv(buf, source=0, status=st)
            assert st.Get_count(mpi.INT64) == 5
            assert st.source == 0
            return buf.tolist()
        assert run(2, body)[1] == [0, 1, 2, 3, 4]

    def test_buffer_overflow_detected(self):
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.int64), dest=1)
                return None
            buf = np.empty(2, dtype=np.int64)
            comm.Recv(buf, source=0)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_kind_mismatch_detected(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("pickled", dest=1)
                return None
            buf = np.empty(1)
            comm.Recv(buf, source=0)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_isend_irecv(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend("hello", dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()
        assert run(2, body)[1] == "hello"

    def test_irecv_test_then_wait(self):
        def body(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0)
                comm.barrier()          # rank 0 sends before barrier
                ok, val = req.test()
                while not ok:
                    ok, val = req.test()
                return val
            comm.send(42, dest=1)
            comm.barrier()
            return None
        assert run(2, body)[1] == 42

    def test_probe_and_iprobe(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=5)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.Iprobe(source=0, tag=5)
            assert not comm.Iprobe(source=0, tag=6)
            st = mpi.Status()
            assert comm.Probe(source=0, tag=5, status=st)
            assert st.source == 0 and st.tag == 5
            return comm.recv(source=0, tag=5)
        assert run(2, body)[1] == 1

    def test_sendrecv(self):
        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            out = np.array([float(comm.rank)])
            buf = np.empty(1)
            comm.Sendrecv(out, dest=right, recvbuf=buf, source=left)
            return buf[0]
        assert run(4, body) == [3.0, 0.0, 1.0, 2.0]

    def test_bad_peer_rank(self):
        def body(comm):
            comm.send(1, dest=5)
        with pytest.raises(SPMDFailure):
            run(2, body)


class TestObjectCollectives:
    def test_bcast(self):
        def body(comm):
            return comm.bcast({"x": comm.rank} if comm.rank == 1 else None,
                              root=1)
        assert run(3, body) == [{"x": 1}] * 3

    def test_bcast_deep_copies(self):
        def body(comm):
            obj = comm.bcast([1, 2] if comm.rank == 0 else None)
            obj.append(comm.rank)    # private copy per rank
            comm.barrier()
            return len(obj)
        assert run(3, body) == [3, 3, 3]

    def test_gather(self):
        def body(comm):
            return comm.gather(comm.rank ** 2, root=2)
        res = run(4, body)
        assert res[2] == [0, 1, 4, 9]
        assert res[0] is None

    def test_scatter(self):
        def body(comm):
            data = [i * 10 for i in range(comm.size)] if comm.rank == 0 \
                else None
            return comm.scatter(data, root=0)
        assert run(4, body) == [0, 10, 20, 30]

    def test_scatter_wrong_count(self):
        def body(comm):
            comm.scatter([1] if comm.rank == 0 else None, root=0)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_allgather(self):
        def body(comm):
            return comm.allgather(chr(ord("a") + comm.rank))
        assert run(3, body) == [["a", "b", "c"]] * 3

    def test_alltoall(self):
        def body(comm):
            return comm.alltoall([f"{comm.rank}->{d}"
                                  for d in range(comm.size)])
        res = run(3, body)
        assert res[1] == ["0->1", "1->1", "2->1"]

    def test_reduce_and_allreduce(self):
        def body(comm):
            s = comm.reduce(comm.rank + 1, op=mpi.SUM, root=0)
            m = comm.allreduce(comm.rank, op=mpi.MAX)
            return s, m
        res = run(4, body)
        assert res[0] == (10, 3)
        assert res[1] == (None, 3)

    def test_scan(self):
        def body(comm):
            return comm.scan(comm.rank + 1)
        assert run(4, body) == [1, 3, 6, 10]


class TestBufferCollectives:
    def test_bcast_buffer(self):
        def body(comm):
            buf = (np.arange(6, dtype=np.float64) if comm.rank == 0
                   else np.empty(6))
            comm.Bcast(buf, root=0)
            return buf.sum()
        assert run(3, body) == [15.0] * 3

    def test_scatter_gather_buffers(self):
        def body(comm):
            send = None
            if comm.rank == 0:
                send = np.arange(comm.size * 2, dtype=np.int64)
            part = np.empty(2, dtype=np.int64)
            comm.Scatter(send, part, root=0)
            assert part.tolist() == [comm.rank * 2, comm.rank * 2 + 1]
            out = np.empty(comm.size * 2, dtype=np.int64) \
                if comm.rank == 0 else None
            comm.Gather(part * 10, out, root=0)
            return out.tolist() if comm.rank == 0 else None
        assert run(3, body)[0] == [0, 10, 20, 30, 40, 50]

    def test_allgather_buffer(self):
        def body(comm):
            out = np.empty(comm.size, dtype=np.int64)
            comm.Allgather(np.array([comm.rank ** 2]), out)
            return out.tolist()
        assert run(4, body)[3] == [0, 1, 4, 9]

    def test_alltoall_buffer(self):
        def body(comm):
            send = np.full(comm.size, comm.rank, dtype=np.int64)
            recv = np.empty(comm.size, dtype=np.int64)
            comm.Alltoall(send, recv)
            return recv.tolist()
        assert run(3, body)[1] == [0, 1, 2]

    def test_reduce_allreduce_scan_buffers(self):
        def body(comm):
            v = np.full(3, float(comm.rank + 1))
            r = np.empty(3)
            comm.Allreduce(v, r, op=mpi.PROD)
            s = np.empty(3)
            comm.Scan(v, s, op=mpi.SUM)
            red = np.empty(3) if comm.rank == 1 else None
            comm.Reduce(v, red, op=mpi.MIN, root=1)
            return r[0], s[0], (red[0] if comm.rank == 1 else None)
        res = run(3, body)
        assert res[0] == (6.0, 1.0, None)
        assert res[1] == (6.0, 3.0, 1.0)
        assert res[2] == (6.0, 6.0, None)

    def test_missing_root_buffer_rejected(self):
        def body(comm):
            comm.Gather(np.zeros(1), None, root=0)
        with pytest.raises(SPMDFailure):
            run(2, body)


class TestCommManagement:
    def test_split_even_odd(self):
        def body(comm):
            sub = comm.Split(color=comm.rank % 2, key=-comm.rank)
            # key = -rank reverses the ordering inside each color
            return sub.size, sub.rank, sub.allgather(comm.rank)
        res = run(4, body)
        assert res[0] == (2, 1, [2, 0])
        assert res[2] == (2, 0, [2, 0])
        assert res[1] == (2, 1, [3, 1])

    def test_split_undefined_color(self):
        def body(comm):
            sub = comm.Split(color=0 if comm.rank == 0 else -1)
            if comm.rank == 0:
                assert sub.size == 1
                return "in"
            assert sub is None
            return "out"
        assert run(3, body) == ["in", "out", "out"]

    def test_dup_independent_collectives(self):
        def body(comm):
            dup = comm.Dup()
            a = dup.allreduce(1)
            b = comm.allreduce(2)
            return a, b
        assert run(3, body) == [(3, 6)] * 3

    def test_subcommunicator_pt2pt(self):
        def body(comm):
            sub = comm.Split(color=comm.rank // 2, key=comm.rank)
            if sub.rank == 0:
                sub.send(f"group{comm.rank // 2}", dest=1)
                return None
            return sub.recv(source=0)
        res = run(4, body)
        assert res[1] == "group0" and res[3] == "group1"

    def test_wtime_and_name(self):
        def body(comm):
            t = comm.Wtime()
            assert t > 0
            return comm.Get_processor_name()
        assert run(2, body) == ["thread-rank-0", "thread-rank-1"]
