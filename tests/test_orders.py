"""FIG2: the four allocation orders and their extendibility properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DRXIndexError
from repro.core.orders import (
    AxialOrder,
    RowMajorOrder,
    SymmetricShellOrder,
    ZOrder,
    next_pow2,
)


class TestRowMajor:
    def test_fig2a_grid(self):
        """Fig. 2a: the 8x8 row-major labels 0..63."""
        o = RowMajorOrder((8, 8))
        grid = np.array([[o.address((i, j)) for j in range(8)]
                         for i in range(8)])
        assert np.array_equal(grid, np.arange(64).reshape(8, 8))

    def test_inverse(self):
        o = RowMajorOrder((4, 5, 6))
        for idx in [(0, 0, 0), (3, 4, 5), (2, 1, 3)]:
            assert o.index(o.address(idx)) == idx

    def test_extend_dim0_preserves_addresses(self):
        o = RowMajorOrder((4, 6))
        before = {(i, j): o.address((i, j))
                  for i in range(4) for j in range(6)}
        o.extend(0, 3)
        assert all(o.address(k) == v for k, v in before.items())

    def test_extend_other_dim_changes_addresses(self):
        """The limitation the paper starts from."""
        o = RowMajorOrder((4, 6))
        before = o.address((2, 1))
        o.extend(1, 2)
        assert o.address((2, 1)) != before

    def test_bounds_checking(self):
        o = RowMajorOrder((4, 6))
        with pytest.raises(DRXIndexError):
            o.address((4, 0))
        with pytest.raises(DRXIndexError):
            o.index(24)

    def test_no_waste(self):
        assert RowMajorOrder.allocated_cells((5, 7)) == 35


class TestZOrder:
    def test_fig2b_prefix(self):
        """Fig. 2b: the first Z-order cells of the 8x8 grid."""
        z = ZOrder(2)
        assert z.address((0, 0)) == 0
        assert z.address((0, 1)) == 1
        assert z.address((1, 0)) == 2
        assert z.address((1, 1)) == 3
        assert z.address((0, 2)) == 4
        assert z.address((2, 0)) == 8
        assert z.address((7, 7)) == 63

    def test_bijective_on_pow2_box(self):
        z = ZOrder(2)
        addrs = sorted(z.address((i, j))
                       for i in range(8) for j in range(8))
        assert addrs == list(range(64))

    def test_inverse(self):
        z = ZOrder(3)
        for idx in [(0, 0, 0), (1, 2, 3), (7, 5, 6), (4, 0, 7)]:
            assert z.index(z.address(idx)) == idx

    def test_exponential_waste(self):
        """'constrained to have exponential growth': a 9x3 grid claims
        the 16x16 bounding power-of-two box."""
        z = ZOrder(2)
        assert z.allocated_cells((9, 3)) == 256
        assert next_pow2(9) == 16

    def test_negative_rejected(self):
        z = ZOrder(2)
        with pytest.raises(DRXIndexError):
            z.address((-1, 0))
        with pytest.raises(DRXIndexError):
            z.index(-3)


class TestSymmetricShell:
    def test_shell_starts_at_s_squared(self):
        o = SymmetricShellOrder(2)
        for s in range(6):
            # the first cell of shell s in row-major box order is (0, s)
            assert o.address((0, s)) == s * s if s > 0 else True
        assert o.address((0, 0)) == 0
        assert o.address((0, 1)) == 1
        assert o.address((3, 3)) == 9 + 3 + 3  # rank s + j within shell

    def test_bijective_2d(self):
        o = SymmetricShellOrder(2)
        addrs = sorted(o.address((i, j))
                       for i in range(7) for j in range(7))
        assert addrs == list(range(49))

    def test_inverse_2d(self):
        o = SymmetricShellOrder(2)
        for q in range(49):
            assert o.address(o.index(q)) == q

    def test_bijective_3d(self):
        o = SymmetricShellOrder(3)
        addrs = sorted(o.address((i, j, k))
                       for i in range(4) for j in range(4)
                       for k in range(4))
        assert addrs == list(range(64))

    def test_inverse_3d(self):
        o = SymmetricShellOrder(3)
        for q in range(27):
            assert o.address(o.index(q)) == q

    def test_cubic_waste(self):
        """'chunk locations may be assigned but unused' under asymmetric
        growth: a 9x3 grid claims the 9x9 bounding cube."""
        o = SymmetricShellOrder(2)
        assert o.allocated_cells((9, 3)) == 81


class TestAxialOrder:
    def test_arbitrary_growth_no_waste(self):
        """Fig. 2d: any dimension, any order, allocated == used."""
        o = AxialOrder((1, 1))
        for dim in (0, 1, 1, 0, 0, 1):
            o.extend(dim)
        n = o.bounds[0] * o.bounds[1]
        addrs = sorted(o.address((i, j))
                       for i in range(o.bounds[0])
                       for j in range(o.bounds[1]))
        assert addrs == list(range(n))
        assert AxialOrder.allocated_cells(o.bounds) == n

    def test_inverse(self):
        o = AxialOrder((2, 2))
        o.extend(1, 2)
        o.extend(0, 1)
        for q in range(o.eci.num_chunks):
            assert o.address(o.index(q)) == q


class TestWasteComparison:
    def test_fig2_waste_ordering(self):
        """The motivating comparison: growing a 2-D grid to 9x3, the
        allocated address space ranks axial = rowmajor < shell < z."""
        bounds = (9, 3)
        axial = AxialOrder.allocated_cells(bounds)
        rm = RowMajorOrder.allocated_cells(bounds)
        shell = SymmetricShellOrder(2).allocated_cells(bounds)
        z = ZOrder(2).allocated_cells(bounds)
        assert axial == rm == 27
        assert axial < shell < z
