"""Unit tests for the memory-resident extendible array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DRXIndexError
from repro.drx import DRXFile, MemExtendibleArray


class TestBasics:
    def test_create_and_index(self):
        m = MemExtendibleArray((4, 5), (2, 2))
        m[(1, 2)] = 7.5
        assert m[(1, 2)] == 7.5
        assert m.get((0, 0)) == 0.0
        assert m.shape == (4, 5)
        assert m.rank == 2

    def test_bounds(self):
        m = MemExtendibleArray((4, 5), (2, 2))
        with pytest.raises(DRXIndexError):
            m.get((4, 0))
        with pytest.raises(DRXIndexError):
            m.put((0, 5), 1.0)
        with pytest.raises(DRXIndexError):
            m.get((0,))

    def test_subarrays(self, rng):
        m = MemExtendibleArray((6, 7), (2, 3))
        ref = rng.random((6, 7))
        m.write((0, 0), ref)
        assert np.allclose(m.read(), ref)
        assert np.allclose(m.read((1, 2), (5, 6)), ref[1:5, 2:6])
        f = m.read(order="F")
        assert f.flags["F_CONTIGUOUS"] and np.allclose(f, ref)

    def test_read_orders_bit_identical(self, rng):
        """C and F reads must return the same values bit for bit — the
        F result is materialised directly in column-major layout, not
        post-copied from a C buffer."""
        m = MemExtendibleArray((5, 6, 4), (2, 3, 2))
        ref = rng.random((5, 6, 4))
        m.write((0, 0, 0), ref)
        c = m.read(order="C")
        f = m.read(order="F")
        assert c.flags["C_CONTIGUOUS"] and f.flags["F_CONTIGUOUS"]
        assert np.array_equal(c, f)
        assert c.tobytes("C") == f.tobytes("C")
        assert np.array_equal(np.asfortranarray(c), f)
        sub_c = m.read((1, 2, 0), (4, 5, 3), order="C")
        sub_f = m.read((1, 2, 0), (4, 5, 3), order="F")
        assert np.array_equal(sub_c, sub_f)
        assert sub_f.flags["F_CONTIGUOUS"]

    def test_read_rejects_bad_order(self):
        m = MemExtendibleArray((4, 4), (2, 2))
        with pytest.raises(DRXIndexError):
            m.read(order="K")
        with pytest.raises(DRXIndexError):
            m.read(order="c")


class TestExtend:
    def test_extend_keeps_data(self, rng):
        m = MemExtendibleArray((3, 3), (2, 2))
        ref = rng.random((3, 3))
        m.write((0, 0), ref)
        m.extend(1, 4)
        m.extend(0, 2)
        assert m.shape == (5, 7)
        assert np.allclose(m.read((0, 0), (3, 3)), ref)
        assert np.all(m.read((3, 0), (5, 7)) == 0)

    def test_num_chunks_tracks_meta(self):
        m = MemExtendibleArray((4, 4), (2, 2))
        assert m.num_chunks == 4
        m.extend(0, 4)
        assert m.num_chunks == 8
        assert len(m._chunks) == 8


class TestConversions:
    def test_numpy_roundtrip(self, rng):
        ref = rng.random((5, 6))
        m = MemExtendibleArray.from_numpy(ref, (2, 3))
        assert np.allclose(m.to_numpy(), ref)

    def test_drx_roundtrip_preserves_history(self, tmp_path, rng):
        """The file must use the SAME chunk addresses as the memory
        array (the growth history is carried, not recomputed)."""
        m = MemExtendibleArray((3, 3), (2, 2))
        m.write((0, 0), rng.random((3, 3)))
        m.extend(1, 3)
        m.write((0, 3), rng.random((3, 3)))
        m.extend(0, 2)
        f = m.to_drx(tmp_path / "m")
        f.close()
        g = DRXFile.open(tmp_path / "m")
        # identical axial vectors
        assert g.meta.eci.to_dict() == m.meta.eci.to_dict()
        assert np.allclose(g.read(), m.to_numpy())
        m2 = MemExtendibleArray.from_drx(g)
        g.close()
        assert np.allclose(m2.to_numpy(), m.to_numpy())
        assert m2.meta.eci.to_dict() == m.meta.eci.to_dict()

    def test_loaded_copy_is_extendible(self, tmp_path, rng):
        m = MemExtendibleArray((4, 4), (2, 2))
        m.write((0, 0), rng.random((4, 4)))
        f = m.to_drx(tmp_path / "x")
        f.close()
        g = DRXFile.open(tmp_path / "x")
        m2 = MemExtendibleArray.from_drx(g)
        g.close()
        m2.extend(0, 2)
        m2.write((4, 0), np.ones((2, 4)))
        assert np.all(m2.read((4, 0), (6, 4)) == 1)
