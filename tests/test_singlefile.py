"""Tests of the single-file DRX container (the paper's §V future work)."""

from __future__ import annotations

import pathlib
import struct
import zlib

import numpy as np
import pytest

from repro.core.errors import (
    DRXFileError,
    DRXFileExistsError,
    DRXFileNotFoundError,
    DRXFormatError,
)
from repro.drx import DRXFile, DRXSingleFile
from repro.drx.singlefile import (
    _HEADER_END,
    _SLOT0_OFF,
    _SLOT_SIZE,
    _unpack_slot,
    SINGLE_MAGIC,
    SINGLE_MAGIC_V1,
)
from repro.workloads import pattern_array, random_growth


def committed_slot(raw: bytes) -> tuple[int, int, int, int]:
    """Decode the live (highest valid generation) header slot of a v2
    single file: ``(generation, offset, length, meta_crc)``."""
    slots = []
    for i in range(2):
        base = _SLOT0_OFF + i * _SLOT_SIZE
        s = _unpack_slot(raw[base:base + _SLOT_SIZE])
        if s is not None and s[0] > 0:
            slots.append(s)
    assert slots, "no valid header slot"
    return max(slots, key=lambda s: s[0])


class TestLifecycle:
    def test_create_open_roundtrip(self, tmp_path, rng):
        ref = rng.random((10, 12))
        with DRXSingleFile.create(tmp_path / "a", (10, 12), (3, 4)) as a:
            a.write((0, 0), ref)
        assert (tmp_path / "a.drx").exists()
        # exactly ONE file
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.drx"]
        with DRXSingleFile.open(tmp_path / "a") as b:
            assert b.shape == (10, 12)
            assert np.allclose(b.read(), ref)

    def test_magic_and_header(self, tmp_path):
        DRXSingleFile.create(tmp_path / "a", (4, 4), (2, 2)).close()
        raw = (tmp_path / "a.drx").read_bytes()
        assert raw.startswith(SINGLE_MAGIC)
        gen, off, length, crc = committed_slot(raw)
        assert gen > 0 and length > 0
        assert _HEADER_END <= off < 64 * 1024
        assert zlib.crc32(raw[off:off + length]) & 0xFFFFFFFF == crc

    def test_create_refuses_existing(self, tmp_path):
        DRXSingleFile.create(tmp_path / "a", (4,), (2,)).close()
        with pytest.raises(DRXFileExistsError):
            DRXSingleFile.create(tmp_path / "a", (4,), (2,))
        DRXSingleFile.create(tmp_path / "a", (6,), (2,),
                             overwrite=True).close()

    def test_open_missing(self, tmp_path):
        with pytest.raises(DRXFileNotFoundError):
            DRXSingleFile.open(tmp_path / "nope")

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "junk.drx"
        p.write_bytes(b"NOTDRX" + bytes(64))
        with pytest.raises(DRXFormatError):
            DRXSingleFile.open(tmp_path / "junk")

    def test_readonly(self, tmp_path):
        DRXSingleFile.create(tmp_path / "a", (4,), (2,)).close()
        b = DRXSingleFile.open(tmp_path / "a", mode="r")
        with pytest.raises(DRXFileError):
            b.put((0,), 1.0)
        b.close()

    def test_tiny_reserve_rejected(self, tmp_path):
        with pytest.raises(DRXFileError):
            DRXSingleFile.create(tmp_path / "a", (4,), (2,),
                                 header_reserve=16)

    def test_in_memory(self):
        a = DRXSingleFile.create(None, (4, 4), (2, 2))
        a.write((0, 0), np.eye(4))
        assert np.allclose(a.read(), np.eye(4))
        a.close()


class TestGrowth:
    def test_extend_and_reopen(self, tmp_path, rng):
        ref = rng.random((6, 6))
        a = DRXSingleFile.create(tmp_path / "g", (6, 6), (2, 2))
        a.write((0, 0), ref)
        a.extend(0, 4)
        a.extend(1, 2)
        a.write((6, 0), np.ones((4, 8)))
        a.close()
        b = DRXSingleFile.open(tmp_path / "g", mode="r+")
        assert b.shape == (10, 8)
        assert np.allclose(b.read((0, 0), (6, 6)), ref)
        assert np.all(b.read((6, 0), (10, 8)) == 1)
        b.extend(0, 1)
        b.close()
        assert DRXSingleFile.open(tmp_path / "g").shape == (11, 8)

    def test_meta_relocates_when_outgrowing_reserve(self, tmp_path):
        """A tiny reserve forces the tail relocation path."""
        a = DRXSingleFile.create(tmp_path / "r", (2, 2), (1, 1),
                                 header_reserve=700)
        a.write((0, 0), pattern_array((2, 2)))
        # many interrupted extensions -> many axial records -> big meta
        for dim, by in random_growth(2, 30, seed=4, max_by=1):
            a.extend(dim, by)
        raw = (tmp_path / "r.drx").read_bytes()
        _gen, off, length, _crc = committed_slot(raw)
        assert off >= 700, "meta should have relocated to the tail"
        a.close()
        b = DRXSingleFile.open(tmp_path / "r")
        assert np.array_equal(b.read((0, 0), (2, 2)), pattern_array((2, 2)))
        assert b.meta.eci.num_records > 10
        b.close()

    def test_legacy_v1_header_opens_and_upgrades(self, tmp_path, rng):
        """A version-1 file (single unguarded pointer) still opens; the
        first writable commit migrates it to the v2 slot table."""
        ref = rng.random((4, 4))
        DRXSingleFile.create(tmp_path / "v1", (4, 4), (2, 2)).close()
        p = tmp_path / "v1.drx"
        raw = bytearray(p.read_bytes())
        gen, off, length, _crc = committed_slot(bytes(raw))
        # rewrite the header in the v1 layout: the blob keeps its place
        # (v2 offsets are legal v1 offsets), the slot table goes away
        head = SINGLE_MAGIC_V1 + struct.pack("<QQ", off, length)
        raw[:_HEADER_END] = head + bytes(_HEADER_END - len(head))
        p.write_bytes(bytes(raw))

        with DRXSingleFile.open(tmp_path / "v1", mode="r+") as a:
            assert a.shape == (4, 4)
            a.write((0, 0), ref)
        raw2 = p.read_bytes()
        assert raw2.startswith(SINGLE_MAGIC), "upgrade should stamp v2"
        with DRXSingleFile.open(tmp_path / "v1") as b:
            assert np.allclose(b.read(), ref)

    def test_chunk_bytes_never_move(self, tmp_path):
        a = DRXSingleFile.create(tmp_path / "s", (4, 4), (2, 2),
                                 header_reserve=1024)
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()
        before = (tmp_path / "s.drx").read_bytes()[1024:1024 + 4 * 4 * 8]
        for dim, by in random_growth(2, 6, seed=7):
            a.extend(dim, by)
            a.flush()
            now = (tmp_path / "s.drx").read_bytes()[1024:1024 + 4 * 4 * 8]
            assert now == before
        a.close()


class TestConversion:
    def test_pair_to_single_and_back(self, tmp_path, rng):
        ref = rng.random((5, 7))
        pair = DRXFile.create(tmp_path / "p", (5, 7), (2, 3))
        pair.write((0, 0), ref)
        pair.extend(1, 4)
        pair.write((0, 7), rng.random((5, 4)))
        want = pair.read()

        single = DRXSingleFile.from_pair(pair, tmp_path / "single")
        assert np.allclose(single.read(), want)
        # identical axial vectors -> identical chunk addressing
        assert single.meta.eci.to_dict() == pair.meta.eci.to_dict()
        pair.close()

        back = single.to_pair(tmp_path / "back")
        assert np.allclose(back.read(), want)
        single.close()
        back.close()
        # the two pairs' data files are byte-identical
        assert (tmp_path / "p.xta").read_bytes() == \
            (tmp_path / "back.xta").read_bytes()

    def test_single_still_extendible_after_conversion(self, tmp_path):
        pair = DRXFile.create(tmp_path / "p", (4, 4), (2, 2))
        pair.write((0, 0), pattern_array((4, 4)))
        single = DRXSingleFile.from_pair(pair, tmp_path / "s")
        pair.close()
        single.extend(0, 4)
        single.write((4, 0), np.ones((4, 4)))
        assert np.all(single.read((4, 0), (8, 4)) == 1)
        assert np.array_equal(single.read((0, 0), (4, 4)),
                              pattern_array((4, 4)))
        single.close()
