"""Property-based tests of the parallel layers (hypothesis).

Invariants pinned here:

* any BLOCK / BLOCK_CYCLIC partition covers the chunk grid exactly once
  and ``owner_of`` agrees with ``chunks_of``;
* zone write + zone read round-trips arbitrary arrays for arbitrary
  shapes, chunkings, growth histories and process counts;
* derived datatypes: pack∘unpack is the identity on the described bytes;
* a FileView's extents cover exactly the bytes a brute-force expansion
  of the typemap predicts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.core import replay_history
from repro.drxmp import DRXMPFile
from repro.drxmp.partition import BlockCyclicPartition, BlockPartition
from repro.mpi.datatypes import DOUBLE
from repro.mpi.file import FileView
from repro.pfs import ParallelFileSystem

# ---------------------------------------------------------------------------
# partitions
# ---------------------------------------------------------------------------


@st.composite
def partition_cases(draw):
    k = draw(st.integers(1, 3))
    bounds = tuple(draw(st.integers(1, 9)) for _ in range(k))
    nproc = draw(st.integers(1, 8))
    kind = draw(st.sampled_from(["block", "cyclic"]))
    block = draw(st.integers(1, 3))
    return bounds, nproc, kind, block


@settings(max_examples=80, deadline=None)
@given(partition_cases())
def test_partition_covers_exactly_once(case):
    bounds, nproc, kind, block = case
    if kind == "block":
        part = BlockPartition(bounds, nproc)
    else:
        part = BlockCyclicPartition(bounds, nproc, block=block)
    seen = np.zeros(bounds, dtype=int)
    for r in range(nproc):
        for ci in part.chunks_of(r):
            t = tuple(int(x) for x in ci)
            assert part.owner_of(t) == r
            seen[t] += 1
    assert np.all(seen == 1)


@settings(max_examples=60, deadline=None)
@given(partition_cases())
def test_owners_vectorized_matches_scalar(case):
    bounds, nproc, kind, block = case
    if kind == "block":
        part = BlockPartition(bounds, nproc)
    else:
        part = BlockCyclicPartition(bounds, nproc, block=block)
    idx = np.array(list(np.ndindex(*bounds)), dtype=np.int64)
    if idx.size == 0:
        return
    vec = part.owners_of(idx)
    assert vec.tolist() == [part.owner_of(tuple(r)) for r in idx]


# ---------------------------------------------------------------------------
# zone I/O round-trips
# ---------------------------------------------------------------------------


@st.composite
def zone_io_cases(draw):
    k = draw(st.integers(1, 2))
    chunk = tuple(draw(st.integers(1, 3)) for _ in range(k))
    bounds = tuple(draw(st.integers(c, 4 * c))
                   for c in chunk)
    steps = draw(st.integers(0, 3))
    history = [(draw(st.integers(0, k - 1)), draw(st.integers(1, 2)))
               for _ in range(steps)]
    nproc = draw(st.sampled_from([1, 2, 4]))
    seed = draw(st.integers(0, 2 ** 16))
    return bounds, chunk, history, nproc, seed


_case_counter = [0]


@settings(max_examples=25, deadline=None)
@given(zone_io_cases())
def test_zone_roundtrip_arbitrary(case):
    bounds, chunk, history, nproc, seed = case
    _case_counter[0] += 1
    name = f"prop{_case_counter[0]}"
    fs = ParallelFileSystem(nservers=2, stripe_size=512)
    # pre-generate the reference OUTSIDE the SPMD body: a shared RNG
    # drawn concurrently would give each rank different data
    final_bounds = list(bounds)
    for dim, by in history:
        final_bounds[dim] += by * chunk[dim]
    ref = np.random.default_rng(seed).random(tuple(final_bounds))

    def body(comm):
        a = DRXMPFile.create(comm, fs, name, bounds, chunk)
        for dim, by in history:
            a.extend(dim, by * chunk[dim])   # element-level growth
        assert a.shape == tuple(final_bounds)
        mem = a.read_zone()
        lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
        mem.array[...] = ref[tuple(slice(l, h) for l, h in zip(lo, hi))]
        a.write_zone(mem)
        comm.barrier()
        got = a.read(tuple(0 for _ in a.shape), a.shape)
        a.close()
        return np.allclose(got, ref)

    assert all(mpi.mpiexec(nproc, body, timeout=60))


# ---------------------------------------------------------------------------
# datatypes
# ---------------------------------------------------------------------------


@st.composite
def indexed_types(draw):
    n = draw(st.integers(1, 6))
    blocklens = [draw(st.integers(0, 3)) for _ in range(n)]
    # non-overlapping displacements: lay blocks on a coarse lattice
    slots = draw(st.permutations(range(n)))
    displacements = [s * 4 for s in slots]
    return blocklens, displacements


@settings(max_examples=80, deadline=None)
@given(indexed_types(), st.integers(1, 3))
def test_pack_unpack_identity(spec, count):
    blocklens, displacements = spec
    t = DOUBLE.Create_indexed(blocklens, displacements).Commit()
    if t.size == 0:
        return
    total_elems = (max(d + b for d, b in zip(displacements, blocklens))
                   + (count - 1) * (t.extent // 8 if t.extent else 0))
    buf = np.arange(max(total_elems, 1) + 8, dtype=np.float64)
    packed = t.pack(buf, count)
    assert len(packed) == t.size * count
    out = np.full_like(buf, -1.0)
    consumed = t.unpack(out, packed, count)
    assert consumed == len(packed)
    # unpacking what we packed reproduces the described bytes and ONLY them
    packed2 = t.pack(out, count)
    assert packed2 == packed


@settings(max_examples=60, deadline=None)
@given(indexed_types(), st.integers(0, 40), st.integers(0, 64))
def test_fileview_extents_match_bruteforce(spec, data_offset, nbytes):
    blocklens, displacements = spec
    ft = DOUBLE.Create_indexed(blocklens, displacements).Commit()
    if ft.size == 0:
        return
    # brute force: enumerate the absolute byte of every data position
    tiles = 1 + (data_offset + nbytes) // ft.size
    flat: list[int] = []
    for tile in range(tiles + 1):
        base = tile * ft.extent
        for off, ln in zip(ft.offsets.tolist(), ft.lengths.tolist()):
            flat.extend(base + off + i for i in range(ln))
    want = flat[data_offset:data_offset + nbytes]
    view = FileView(disp=16, etype=DOUBLE, filetype=ft) \
        if _sorted(ft) else None
    if view is None:
        return
    got: list[int] = []
    for off, ln in view.extents(data_offset, nbytes):
        got.extend(range(off - 16, off - 16 + ln))
    assert got == want


def _sorted(ft) -> bool:
    offs = ft.offsets
    return bool(np.all(offs[1:] >= offs[:-1]))
