"""Unit tests for the DRX meta-data model and .xmd serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DRXFormatError,
    DRXTypeError,
    DRXMeta,
    DRXType,
    MAGIC,
)


class TestDRXType:
    def test_supported_types(self):
        assert DRXType.to_numpy("int") == np.dtype(np.int64)
        assert DRXType.to_numpy("double") == np.dtype(np.float64)
        assert DRXType.to_numpy("complex") == np.dtype(np.complex128)

    def test_from_numpy(self):
        assert DRXType.from_numpy(np.float64) == "double"
        assert DRXType.from_numpy(np.dtype(np.int64)) == "int"
        assert DRXType.from_numpy(np.complex128) == "complex"

    def test_unsupported(self):
        with pytest.raises(DRXTypeError):
            DRXType.to_numpy("float16")
        with pytest.raises(DRXTypeError):
            DRXType.from_numpy(np.float16)


class TestCreate:
    def test_basics(self):
        m = DRXMeta.create((10, 12), (2, 3))
        assert m.rank == 2
        assert m.chunk_bounds == (5, 4)
        assert m.chunk_elems == 6
        assert m.chunk_nbytes == 48
        assert m.num_chunks == 20
        assert m.data_nbytes == 960

    def test_numpy_dtype_accepted(self):
        m = DRXMeta.create((4,), (2,), np.int64)
        assert m.dtype_name == "int"

    def test_consistency_check(self):
        m = DRXMeta.create((10, 12), (2, 3))
        m.check_consistent()
        m.element_bounds = (100, 12)
        with pytest.raises(DRXFormatError):
            m.check_consistent()


class TestExtendElements:
    def test_within_partial_chunk_no_new_chunks(self):
        # 10 elements, chunk 3 -> 4 chunks with 2 slack slots
        m = DRXMeta.create((10,), (3,))
        new = m.extend_elements(0, 2)        # 10 -> 12, still 4 chunks
        assert new == []
        assert m.element_bounds == (12,)
        assert m.chunk_bounds == (4,)

    def test_spill_allocates_chunks(self):
        m = DRXMeta.create((10,), (3,))
        new = m.extend_elements(0, 5)        # 10 -> 15 needs 5 chunks
        assert new == [4]
        assert m.chunk_bounds == (5,)

    def test_multidim_spill_addresses(self):
        m = DRXMeta.create((4, 4), (2, 2))   # 2x2 chunks, 4 total
        new = m.extend_elements(1, 4)        # cols 4 -> 8: 2 new chunk cols
        assert new == [4, 5, 6, 7]
        m.check_consistent()


class TestSerialization:
    def test_roundtrip(self):
        m = DRXMeta.create((10, 12), (2, 3), "complex")
        m.extend_elements(1, 7)
        m.extend_elements(0, 3)
        blob = m.to_bytes()
        assert blob.startswith(MAGIC)
        m2 = DRXMeta.from_bytes(blob)
        assert m2.element_bounds == m.element_bounds
        assert m2.chunk_shape == m.chunk_shape
        assert m2.dtype_name == "complex"
        assert m2.num_chunks == m.num_chunks
        assert m2.to_bytes() == blob          # deterministic

    def test_replicate_independent(self):
        m = DRXMeta.create((4, 4), (2, 2))
        r = m.replicate()
        r.extend_elements(0, 10)
        assert m.element_bounds == (4, 4)

    def test_bad_magic(self):
        with pytest.raises(DRXFormatError):
            DRXMeta.from_bytes(b"NOPE{}")

    def test_corrupt_json(self):
        with pytest.raises(DRXFormatError):
            DRXMeta.from_bytes(MAGIC + b"{not json")

    def test_bad_version(self):
        m = DRXMeta.create((4,), (2,))
        import json
        doc = json.loads(m.to_bytes()[len(MAGIC):])
        doc["format_version"] = 999
        with pytest.raises(DRXFormatError):
            DRXMeta.from_bytes(MAGIC + json.dumps(doc).encode())

    def test_inconsistent_chunk_count_detected(self):
        m = DRXMeta.create((4,), (2,))
        import json
        doc = json.loads(m.to_bytes()[len(MAGIC):])
        doc["num_chunks"] = 77
        with pytest.raises(DRXFormatError):
            DRXMeta.from_bytes(MAGIC + json.dumps(doc).encode())

    def test_missing_fields(self):
        with pytest.raises(DRXFormatError):
            DRXMeta.from_bytes(MAGIC + b'{"format_version": 1}')
