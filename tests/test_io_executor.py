"""The concurrent I/O executor and everything wired through it.

Covers the :class:`~repro.core.executor.IOExecutor` primitives, the
environment switch (``DRX_EXECUTOR_THREADS=0`` restores the exact serial
paths), bit- and stats-identity of the parallel per-server dispatch in
:class:`~repro.pfs.pfile.PFSFile`, replicated failover under threads,
Mpool thread-safety / read-ahead / write-behind, the DRX streaming
pipelines, and the dirty-page shadowing guarantee of ``_read_streaming``
under a concurrent writer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import DRXError
from repro.core.executor import (
    DEFAULT_THREADS,
    IOExecutor,
    MAX_THREADS,
    THREADS_ENV,
    configured_threads,
    default_executor,
    reset_default_executors,
    resolve_executor,
)
from repro.drx.drxfile import DRXFile
from repro.drx.mpool import Mpool
from repro.drx.resilience import FaultInjector, FaultPlan
from repro.drx.storage import MemoryByteStore, PFSByteStore
from repro.pfs import ParallelFileSystem


def pattern(n: int, salt: int = 0) -> bytes:
    return bytes((i * 131 + salt * 29) % 251 for i in range(n))


@pytest.fixture
def ex():
    e = IOExecutor(4, name="test")
    yield e
    e.shutdown()


# ---------------------------------------------------------------------------
# executor primitives
# ---------------------------------------------------------------------------

class TestIOExecutor:
    def test_submit_and_gather_preserve_order(self, ex):
        futs = [ex.submit(lambda i=i: i * i) for i in range(20)]
        assert ex.gather(futs) == [i * i for i in range(20)]
        assert ex.stats.submitted == 20
        assert ex.stats.completed == 20
        assert ex.stats.failed == 0

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            IOExecutor(0)

    def test_thread_cap(self):
        e = IOExecutor(999)
        try:
            assert e.threads == MAX_THREADS
        finally:
            e.shutdown()

    def test_keyed_dedup_shares_inflight_future(self, ex):
        gate = threading.Event()
        calls = []

        def slow():
            gate.wait(5)
            calls.append(1)
            return 42

        f1 = ex.submit(slow, key="k")
        f2 = ex.submit(slow, key="k")
        assert f1 is f2
        assert ex.stats.dedup_hits == 1
        gate.set()
        assert ex.result(f1) == 42
        assert len(calls) == 1

    def test_key_released_after_completion(self, ex):
        f1 = ex.submit(lambda: 1, key="k")
        assert ex.result(f1) == 1
        f2 = ex.submit(lambda: 2, key="k")
        assert ex.result(f2) == 2
        assert f1 is not f2

    def test_gather_reraises_first_failure_after_settling(self, ex):
        def boom():
            raise RuntimeError("boom")

        futs = [ex.submit(lambda: 1), ex.submit(boom), ex.submit(lambda: 3)]
        with pytest.raises(RuntimeError, match="boom"):
            ex.gather(futs)
        # every future settled (nothing abandoned mid-air)
        assert all(f.done() for f in futs)

    def test_gather_return_exceptions(self, ex):
        def boom():
            raise ValueError("x")

        futs = [ex.submit(lambda: 1), ex.submit(boom)]
        out = ex.gather(futs, return_exceptions=True)
        assert out[0] == 1
        assert isinstance(out[1], ValueError)
        assert ex.stats.failed == 1

    def test_overlap_actually_happens(self, ex):
        start = threading.Barrier(4, timeout=5)

        def task():
            start.wait()        # all four must be in flight together
            return 1

        assert ex.gather([ex.submit(task) for _ in range(4)]) == [1] * 4
        assert ex.stats.inflight_hw >= 4


class TestEnvironmentSwitch:
    @pytest.fixture(autouse=True)
    def _reset(self):
        reset_default_executors()
        yield
        reset_default_executors()

    def test_configured_threads_parsing(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV, raising=False)
        assert configured_threads() == DEFAULT_THREADS
        monkeypatch.setenv(THREADS_ENV, "0")
        assert configured_threads() == 0
        monkeypatch.setenv(THREADS_ENV, "6")
        assert configured_threads() == 6
        monkeypatch.setenv(THREADS_ENV, "-3")
        assert configured_threads() == 0
        monkeypatch.setenv(THREADS_ENV, "lots")
        assert configured_threads() == DEFAULT_THREADS
        monkeypatch.setenv(THREADS_ENV, "100")
        assert configured_threads() == MAX_THREADS

    def test_zero_threads_means_fully_serial(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "0")
        reset_default_executors()
        assert default_executor("pfs") is None
        assert default_executor("drx") is None
        fs = ParallelFileSystem(nservers=3, stripe_size=64)
        assert fs.executor is None
        a = DRXFile.create(None, (8, 8), (4, 4))
        assert a._executor is None
        assert a._pool._executor is None
        a.close()

    def test_auto_resolves_tier_default(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "2")
        reset_default_executors()
        e = resolve_executor("auto", tier="pfs")
        assert e is not None and e.threads == 2
        assert resolve_executor(None, tier="pfs") is None
        mine = IOExecutor(1)
        try:
            assert resolve_executor(mine) is mine
        finally:
            mine.shutdown()

    def test_fault_injected_store_forces_serial(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "4")
        reset_default_executors()
        wrapper = lambda s, role: FaultInjector(s, FaultPlan(seed=1))
        a = DRXFile.create(None, (8, 8), (4, 4), store_wrapper=wrapper)
        assert a._executor is None
        assert a._pool._executor is None
        a.close()


# ---------------------------------------------------------------------------
# PFS per-server dispatch: parallel must be bit- and stats-identical
# ---------------------------------------------------------------------------

def fill_fs(fs, name, nbytes, salt=0):
    f = fs.create(name)
    f.write(0, pattern(nbytes, salt))
    return f


class TestParallelDispatchIdentity:
    EXTENTS = [(0, 300), (1024, 512), (64, 64), (3000, 1000), (512, 128)]

    def test_readv_bits_and_stats(self):
        fs_ser = ParallelFileSystem(nservers=4, stripe_size=64,
                                    executor=None)
        e = IOExecutor(4)
        try:
            fs_par = ParallelFileSystem(nservers=4, stripe_size=64,
                                        executor=e)
            f_ser = fill_fs(fs_ser, "a", 4096)
            f_par = fill_fs(fs_par, "a", 4096)
            fs_ser.reset_stats()
            fs_par.reset_stats()
            d_ser, t_ser = f_ser.readv(self.EXTENTS)
            d_par, t_par = f_par.readv(self.EXTENTS)
            assert d_ser == d_par
            assert t_ser == t_par                       # simulated time
            assert f_ser.io_time == f_par.io_time
            assert fs_ser.per_server_stats() == fs_par.per_server_stats()
        finally:
            e.shutdown()

    def test_writev_bits_and_stats(self):
        e = IOExecutor(4)
        try:
            fs_ser = ParallelFileSystem(nservers=4, stripe_size=64,
                                        executor=None)
            fs_par = ParallelFileSystem(nservers=4, stripe_size=64,
                                        executor=e)
            f_ser = fs_ser.create("a")
            f_par = fs_par.create("a")
            blob = pattern(sum(n for _o, n in self.EXTENTS), 7)
            t_ser = f_ser.writev(self.EXTENTS, blob)
            t_par = f_par.writev(self.EXTENTS, blob)
            assert t_ser == t_par
            whole_s = f_ser.read(0, f_ser.size)
            whole_p = f_par.read(0, f_par.size)
            assert whole_s == whole_p
            assert fs_ser.per_server_stats() == fs_par.per_server_stats()
        finally:
            e.shutdown()

    def test_replicated_write_fanout_identity(self):
        e = IOExecutor(4)
        try:
            fs_ser = ParallelFileSystem(nservers=4, stripe_size=64,
                                        replication=2, executor=None)
            fs_par = ParallelFileSystem(nservers=4, stripe_size=64,
                                        replication=2, executor=e)
            f_ser = fill_fs(fs_ser, "a", 4096, salt=3)
            f_par = fill_fs(fs_par, "a", 4096, salt=3)
            assert f_ser.verify_replicas() == []
            assert f_par.verify_replicas() == []
            assert f_ser.rstats.snapshot() == f_par.rstats.snapshot()
            assert f_ser.read(0, 4096) == f_par.read(0, 4096)
        finally:
            e.shutdown()

    def test_degraded_failover_under_threads(self):
        e = IOExecutor(4)
        try:
            fs = ParallelFileSystem(nservers=4, stripe_size=64,
                                    replication=2, executor=e)
            f = fill_fs(fs, "a", 4096, salt=5)
            fs.kill_server(1)
            got = f.read(0, 4096)
            assert got == pattern(4096, 5)
            # the dead server is known up front, so its stripes reroute
            # as degraded reads (mid-flight failovers need a server that
            # dies between copy choice and dispatch)
            assert f.rstats.degraded_reads > 0
        finally:
            e.shutdown()

    def test_write_skips_dead_server_under_threads(self):
        e = IOExecutor(4)
        try:
            fs = ParallelFileSystem(nservers=4, stripe_size=64,
                                    replication=2, executor=e)
            f = fs.create("a")
            fs.kill_server(2)
            f.write(0, pattern(4096, 9))
            assert f.rstats.missed_writes > 0
            assert f.read(0, 4096) == pattern(4096, 9)   # replicas cover
            fs.revive_server(2)
            fs.rebuild_server(2)
            assert f.verify_replicas() == []
        finally:
            e.shutdown()


# ---------------------------------------------------------------------------
# Mpool: thread-safety, read-ahead, write-behind
# ---------------------------------------------------------------------------

class TestMpoolThreadSafety:
    def test_concurrent_get_put_hammer(self):
        ps = 64
        store = MemoryByteStore()
        store.truncate(32 * ps)
        e = IOExecutor(4)
        pool = Mpool(store, ps, max_pages=8, executor=e)
        errors = []

        def worker(tid: int):
            try:
                for round_ in range(40):
                    for p in range(tid, 32, 4):    # disjoint page sets
                        buf = pool.get(p)
                        buf[:8] = np.frombuffer(
                            pattern(8, p), dtype=np.uint8)
                        pool.put(p, dirty=True)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        pool.flush()
        for p in range(32):
            assert store.read(p * ps, 8) == pattern(8, p)
        e.shutdown()

    def test_pinned_never_evicted_under_pressure(self):
        ps = 64
        store = MemoryByteStore()
        store.truncate(16 * ps)
        e = IOExecutor(2)
        pool = Mpool(store, ps, max_pages=2, executor=e)
        pool.get(0)                      # keep pinned
        pool.get(1)
        pool.put(1)
        for p in range(2, 10):           # churn through the other slot
            pool.get(p)
            pool.put(p)
        with pytest.raises(DRXError):
            # second pin would need to evict page 0 — refused
            pool.get(10), pool.get(11)
        pool.put(0)
        e.shutdown()


class TestReadAhead:
    def make(self, npages=64, max_pages=16, threads=2, readahead=4):
        ps = 64
        store = MemoryByteStore()
        for p in range(npages):
            store.write(p * ps, pattern(ps, p))
        e = IOExecutor(threads)
        pool = Mpool(store, ps, max_pages=max_pages, executor=e,
                     readahead=readahead)
        return store, e, pool

    def test_sequential_scan_triggers_and_adopts(self):
        _store, e, pool = self.make()
        try:
            for p in range(24):
                buf = pool.get(p)
                assert bytes(buf) == pattern(64, p)
                pool.put(p)
            assert pool.stats.prefetch_issued > 0
            assert pool.stats.prefetch_hits > 0
            # adopted pages count as hits, not misses
            assert pool.stats.hits >= pool.stats.prefetch_hits
            assert pool.stats.accesses == 24
        finally:
            e.shutdown()

    def test_strided_scan_triggers(self):
        _store, e, pool = self.make(readahead=8)
        try:
            for p in range(0, 48, 3):
                buf = pool.get(p)
                assert bytes(buf) == pattern(64, p)
                pool.put(p)
            assert pool.stats.prefetch_issued > 0
            assert pool.stats.prefetch_hits > 0
        finally:
            e.shutdown()

    def test_batch_stride_detector(self):
        _store, e, pool = self.make(max_pages=16, readahead=8)
        try:
            for start in range(0, 40, 8):
                batch = list(range(start, start + 4))
                bufs = pool.get_many(batch)
                for p, buf in zip(batch, bufs):
                    assert bytes(buf) == pattern(64, p)
                pool.put_many(batch)
            assert pool.stats.prefetch_issued > 0
            assert pool.stats.prefetch_hits > 0
        finally:
            e.shutdown()

    def test_random_access_stays_quiet(self):
        _store, e, pool = self.make()
        try:
            for p in [0, 17, 3, 41, 9, 28, 5, 33]:   # no repeated stride
                pool.get(p)
                pool.put(p)
            assert pool.stats.prefetch_issued == 0
        finally:
            e.shutdown()

    def test_unused_prefetch_dropped_on_flush(self):
        _store, e, pool = self.make()
        try:
            for p in range(6):           # arm the detector, issue ahead
                pool.get(p)
                pool.put(p)
            issued_pages = pool.stats.prefetch_pages
            assert issued_pages > 0
            pool.flush()
            assert pool.stats.prefetch_hits + pool.stats.prefetch_dropped \
                >= 1
            assert not pool._pf
        finally:
            e.shutdown()

    def test_serial_pool_never_prefetches(self):
        ps = 64
        store = MemoryByteStore()
        store.truncate(32 * ps)
        pool = Mpool(store, ps, max_pages=8)       # no executor
        for p in range(20):
            pool.get(p)
            pool.put(p)
        assert pool.stats.prefetch_issued == 0
        assert pool.stats.misses == 20


class TestWriteBehind:
    def test_eviction_writebacks_go_async_and_flush_barriers(self):
        ps = 64
        store = MemoryByteStore()
        store.truncate(32 * ps)
        e = IOExecutor(2)
        pool = Mpool(store, ps, max_pages=4, executor=e, readahead=0)
        try:
            for p in range(16):
                buf = pool.get(p)
                buf[:] = np.frombuffer(pattern(ps, p + 100), dtype=np.uint8)
                pool.put(p, dirty=True)
            assert pool.stats.writebehind_runs > 0
            pool.flush()
            assert not pool._wb                     # barrier drained
            for p in range(16):
                assert store.read(p * ps, ps) == pattern(ps, p + 100)
        finally:
            e.shutdown()

    def test_refault_after_writebehind_sees_new_bytes(self):
        ps = 64
        store = MemoryByteStore()
        store.truncate(8 * ps)
        e = IOExecutor(2)
        pool = Mpool(store, ps, max_pages=2, executor=e, readahead=0)
        try:
            buf = pool.get(0)
            buf[:] = 7
            pool.put(0, dirty=True)
            pool.get(1), pool.put(1)
            pool.get(2), pool.put(2)   # evicts page 0 -> write-behind
            got = pool.get(3), pool.put(3)  # evicts again
            buf0 = pool.get(0)          # demand fault waits the WB
            assert bytes(buf0) == bytes([7]) * ps
            pool.put(0)
        finally:
            e.shutdown()

    def test_counters_match_serial_values(self):
        # write-behind records the same writeback/syscall/bytes counters
        # the synchronous path would have
        def run(executor):
            ps = 64
            store = MemoryByteStore()
            store.truncate(32 * ps)
            pool = Mpool(store, ps, max_pages=4, executor=executor,
                         readahead=0)
            for p in range(16):
                buf = pool.get(p)
                buf[:] = p
                pool.put(p, dirty=True)
            pool.flush()
            s = pool.stats
            return (s.writebacks, s.syscalls, s.bytes_written,
                    s.bytes_faulted, s.hits, s.misses, s.evictions)

        e = IOExecutor(2)
        try:
            assert run(None) == run(e)
        finally:
            e.shutdown()


# ---------------------------------------------------------------------------
# DRX streaming pipelines
# ---------------------------------------------------------------------------

class TestStreamingPipelines:
    def build(self, executor):
        a = DRXFile.create(None, (64, 64), (8, 8), cache_pages=4,
                           executor=executor)
        return a

    def test_streamed_read_identity(self, rng_like=None):
        rng = np.random.default_rng(42)
        ref = rng.random((64, 64))
        e = IOExecutor(3)
        try:
            a_ser = self.build(None)
            a_par = self.build(e)
            a_ser.write((0, 0), ref)
            a_par.write((0, 0), ref)
            # a tall narrow box -> many non-contiguous runs, streamed
            box_s = a_ser.read((0, 0), (64, 24))
            box_p = a_par.read((0, 0), (64, 24))
            assert np.array_equal(box_s, box_p)
            assert np.array_equal(box_p, ref[:64, :24])
            assert np.array_equal(a_par.read(), ref)
            a_ser.close()
            a_par.close()
        finally:
            e.shutdown()

    def test_streamed_write_identity(self):
        rng = np.random.default_rng(7)
        ref = rng.random((64, 40))
        e = IOExecutor(3)
        try:
            a_ser = self.build(None)
            a_par = self.build(e)
            a_ser.write((0, 16), ref)
            a_par.write((0, 16), ref)
            assert np.array_equal(a_ser.read(), a_par.read())
            assert np.array_equal(a_par.read((0, 16), (64, 56)), ref)
            a_ser.close()
            a_par.close()
        finally:
            e.shutdown()

    def test_streamed_write_then_checksum_scrub(self):
        rng = np.random.default_rng(11)
        ref = rng.random((64, 64))
        e = IOExecutor(2)
        try:
            a = DRXFile.create(None, (64, 64), (8, 8), cache_pages=4,
                               checksums=True, executor=e)
            a.write((0, 0), ref)
            a.flush()
            report = a.scrub()
            assert report.corrupt == []
            assert np.array_equal(a.read(), ref)
            a.close()
        finally:
            e.shutdown()

    def test_pfs_backed_roundtrip_under_threads(self):
        rng = np.random.default_rng(13)
        ref = rng.random((48, 48))
        e = IOExecutor(4)
        try:
            fs = ParallelFileSystem(nservers=4, stripe_size=512,
                                    replication=2, executor=e)
            a = DRXFile.create_pfs(fs, "arr", (48, 48), (8, 8),
                                   cache_pages=4, executor=e)
            a.write((0, 0), ref)
            a.flush()
            assert np.array_equal(a.read(), ref)
            fs.kill_server(0)
            assert np.array_equal(a.read(), ref)     # degraded, streamed
            a.close()
        finally:
            e.shutdown()


class TestDirtyPageShadowing:
    """Satellite: a streamed read must surface pool pages dirtied while
    the bulk read was in flight (``peek_dirty`` shadowing)."""

    class BlockingStore(MemoryByteStore):
        def __init__(self):
            super().__init__()
            self.entered = threading.Event()
            self.gate = threading.Event()
            self.arm = False

        def readv(self, extents):
            if self.arm:
                self.arm = False
                self.entered.set()
                self.gate.wait(10)
            return super().readv(extents)

    def test_concurrent_writer_shadows_streamed_read(self):
        blocking = {}

        def wrapper(store, role):
            if role != "data":
                return store
            b = self.BlockingStore()
            blocking["store"] = b
            return b

        e = IOExecutor(2)
        try:
            a = DRXFile.create(None, (32, 32), (4, 4), cache_pages=4,
                               store_wrapper=wrapper, executor=e)
            store = blocking["store"]
            ref = np.arange(32 * 32, dtype=np.float64).reshape(32, 32)
            a.write((0, 0), ref)
            a.flush()
            store.arm = True
            result = {}

            def reader():
                result["out"] = a.read()

            t = threading.Thread(target=reader)
            t.start()
            assert store.entered.wait(10)
            # the streamed readv is parked inside the store: dirty a page
            # it has not scattered yet, then let it continue
            a.put((31, 31), -123.0)
            store.gate.set()
            t.join(10)
            assert not t.is_alive()
            out = result["out"]
            assert out[31, 31] == -123.0             # shadowed, not stale
            expect = ref.copy()
            expect[31, 31] = -123.0
            assert np.array_equal(out, expect)
            a.close()
        finally:
            e.shutdown()
