"""Transparent per-chunk compression: codecs, slot allocation, round
trips, byte-identity of the uncompressed layout, integrity (scrub / CRC
arbitration / chaos), and compaction.

The big sweeps honour ``DRX_CODEC`` (the CI codec matrix) through
:func:`repro.drx.codec.default_codec_name`; the always-on tests pin
``codec="zlib"`` so every run exercises the compressed path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import DRXFileError, DRXFormatError
from repro.core.metadata import DRXMeta
from repro.drx import (
    DRXFile,
    DRXSingleFile,
    FaultPlan,
    SlotTable,
    get_codec,
)
from repro.drx.codec import (
    TAG_CODED,
    TAG_RAW,
    DeltaZlibCodec,
    ZlibCodec,
    default_codec_name,
)
from repro.drx.resilience import ChecksumGuard, chunk_crc
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array

#: Codec for env-parameterized scenarios ("none" exercises the plain
#: direct-placement path under the same workload).
ENV_CODEC = default_codec_name()

SMOOTH = np.cumsum(np.linspace(0.0, 1.0, 4096)).reshape(64, 64)
#: Rows of constant value: deflate-friendly, representative of the
#: sparse/banded scientific datasets compression pays off for.
COMPRESSIBLE = np.repeat(np.arange(64.0), 64).reshape(64, 64)


def _payload_cases():
    rng = np.random.default_rng(7)
    return [
        ("zeros", bytes(4096)),
        ("smooth-f8", SMOOTH.tobytes()),
        ("int32-ramp", np.arange(1024, dtype=np.int32).tobytes()),
        ("complex128", (SMOOTH[:16, :16] * (1 + 2j)).astype(
            np.complex128).tobytes()),
        ("random", rng.bytes(4096)),          # incompressible
        ("odd-size", rng.bytes(1003)),        # non-word-multiple tail
    ]


# ---------------------------------------------------------------------------
# codec layer
# ---------------------------------------------------------------------------

class TestCodecs:
    @pytest.mark.parametrize("name", ["zlib", "zlib:1", "zlib:9",
                                      "delta+zlib", "delta+zlib:1"])
    @pytest.mark.parametrize("label,raw", _payload_cases())
    def test_frame_round_trip_is_exact(self, name, label, raw):
        codec = get_codec(name, word_nbytes=8)
        payload = codec.frame_encode(raw)
        assert codec.frame_decode(payload, len(raw)) == raw
        assert len(payload) <= len(raw) + 1   # worst case: 1 tag byte

    def test_incompressible_takes_raw_passthrough(self):
        rng = np.random.default_rng(1)
        raw = rng.bytes(2048)
        payload = ZlibCodec().frame_encode(raw)
        assert payload[0] == TAG_RAW
        assert payload[1:] == raw

    def test_compressible_takes_coded_tag(self):
        payload = ZlibCodec().frame_encode(bytes(2048))
        assert payload[0] == TAG_CODED
        assert len(payload) < 64

    def test_delta_helps_on_smooth_integers(self):
        raw = np.arange(0, 1 << 20, 37, dtype=np.int64).tobytes()
        plain = len(ZlibCodec().frame_encode(raw))
        delta = len(DeltaZlibCodec(word_nbytes=8).frame_encode(raw))
        assert delta < plain

    @pytest.mark.parametrize("word", [1, 2, 4, 8])
    def test_delta_word_widths_round_trip(self, word):
        rng = np.random.default_rng(word)
        raw = rng.bytes(512 * word)
        codec = DeltaZlibCodec(word_nbytes=word)
        assert codec.frame_decode(codec.frame_encode(raw), len(raw)) == raw

    def test_registry_names(self):
        assert get_codec("").name == "none"
        assert get_codec("none").name == "none"
        assert get_codec("zlib").name == "zlib"
        assert get_codec("zlib:3").name == "zlib:3"
        assert get_codec("delta").name == "delta+zlib"
        assert get_codec("ZLIB").name == "zlib"   # case-insensitive

    def test_unknown_codec_rejected(self):
        with pytest.raises(DRXFileError):
            get_codec("lz77")
        with pytest.raises(DRXFileError):
            get_codec("zlib:0")
        with pytest.raises(DRXFileError):
            get_codec("zlib:ten")

    def test_frame_decode_rejects_garbage(self):
        codec = ZlibCodec()
        with pytest.raises(DRXFormatError):
            codec.frame_decode(b"", 16)
        with pytest.raises(DRXFormatError):
            codec.frame_decode(b"\x07abc", 16)          # unknown tag
        with pytest.raises(DRXFormatError):
            codec.frame_decode(b"\x00abc", 16)          # short raw body
        with pytest.raises(DRXFormatError):
            codec.frame_decode(b"\x01not-zlib", 16)     # corrupt body

    def test_default_codec_name_reads_env(self, monkeypatch):
        monkeypatch.delenv("DRX_CODEC", raising=False)
        assert default_codec_name() == "none"
        monkeypatch.setenv("DRX_CODEC", "zlib:4")
        assert default_codec_name() == "zlib:4"


# ---------------------------------------------------------------------------
# slot-allocation table
# ---------------------------------------------------------------------------

class TestSlotTable:
    def test_append_allocation(self):
        t = SlotTable()
        s0 = t.allocate(0, 100)
        s1 = t.allocate(1, 50)
        assert (s0.offset, s0.length) == (0, 100)
        assert (s1.offset, s1.length) == (100, 50)
        assert t.end == 150 and t.stored_bytes == 150

    def test_in_place_overwrite_within_epoch(self):
        t = SlotTable()
        t.allocate(0, 100)
        s = t.allocate(0, 80)                 # shrink: reuse the extent
        assert (s.offset, s.length, s.capacity) == (0, 80, 100)
        s = t.allocate(0, 100)                # grow back into the slack
        assert (s.offset, s.length) == (0, 100)
        assert t.end == 100                   # never re-appended

    def test_committed_slot_is_copy_on_write(self):
        t = SlotTable()
        t.allocate(0, 100)
        t.mark_committed()
        s = t.allocate(0, 60)                 # fits, but extent committed
        assert s.offset == 100                # ...so it must move
        assert t.free_bytes == 0              # old extent only quarantined
        t.mark_committed()
        assert t.free_bytes == 100            # now recyclable

    def test_best_fit_reuse(self):
        t = SlotTable()
        for i, n in enumerate([100, 30, 200]):
            t.allocate(i, n)
        t.mark_committed()
        t.remove(0)                           # hole [0, 100)
        t.remove(2)                           # hole [130, 330)
        t.mark_committed()
        s = t.allocate(9, 25)
        assert s.offset == 0                  # smallest hole that fits
        s = t.allocate(10, 150)
        assert s.offset == 130                # only the big hole fits

    def test_free_extents_coalesce(self):
        t = SlotTable()
        for i, n in enumerate([64, 64, 64]):
            t.allocate(i, n)
        t.mark_committed()
        for i in range(3):
            t.remove(i)
        t.mark_committed()
        assert t.free_bytes == 192
        assert t.allocate(5, 192).offset == 0  # one merged hole

    def test_reserve_routes_appends_around(self):
        t = SlotTable()
        t.allocate(0, 50)
        t.reserve(60, 100)                    # fence [60, 160)
        s = t.allocate(1, 40)
        assert s.offset == 160                # would overlap: skip past
        assert t.end == 200

    def test_serialize_round_trip(self):
        t = SlotTable()
        for i, n in enumerate([100, 30, 200]):
            t.allocate(i, n)
        t.mark_committed()
        t.remove(1)
        t.reserve(500, 64)
        doc = t.serialize()
        assert doc == json.loads(json.dumps(doc))   # JSON-clean
        u = SlotTable.deserialize(doc)
        assert u.end == t.end and u.reserved == (500, 64)
        for i in (0, 2):
            assert u.get(i) == t.get(i)
        # serialize() folds pending frees in: the restored table may
        # reuse the quarantined extent (the commit it documents landed)
        assert u.free_bytes == 30

    def test_serialized_view_is_post_commit(self):
        t = SlotTable()
        t.allocate(0, 100)
        t.mark_committed()
        t.allocate(0, 100)                    # COW: old extent pending
        doc = t.serialize()
        assert doc["free"] == [[0, 100]]      # folded in, not hidden

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(DRXFormatError):
            SlotTable.deserialize({"slots": "nope"})
        with pytest.raises(DRXFormatError):
            SlotTable.deserialize({})

    def test_compaction_requires_committed_table(self):
        t = SlotTable()
        t.allocate(0, 10)
        with pytest.raises(DRXFormatError):
            t.plan_compaction()

    def test_compaction_moves_tail_into_holes(self):
        t = SlotTable()
        for i, n in enumerate([100, 100, 100]):
            t.allocate(i, n)
        t.mark_committed()
        t.remove(0)
        t.mark_committed()                    # hole [0, 100)
        plan = t.plan_compaction()
        assert [(i, off) for i, _s, off in plan] == [(2, 0)]
        t.apply_move(2, 0)
        t.mark_committed()
        assert t.trim_end() == 200

    def test_slot_validation(self):
        with pytest.raises(DRXFormatError):
            SlotTable.deserialize(
                {"slots": [[0, 0, 10, 5]], "free": [], "end": 10})


# ---------------------------------------------------------------------------
# compressed arrays end to end
# ---------------------------------------------------------------------------

CODECS = ["zlib", "zlib:1", "delta+zlib"]


class TestCompressedArrays:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("dtype", ["double", "int", "complex"])
    def test_round_trip_bit_identical(self, tmp_path, codec, dtype):
        data = (SMOOTH[:32, :24] * 100).astype(np.dtype(
            {"double": "f8", "int": "i8", "complex": "c16"}[dtype]))
        with DRXFile.create(tmp_path / "a", (32, 24), (8, 8), dtype,
                            codec=codec) as a:
            a.write((0, 0), data)
        with DRXFile.open(tmp_path / "a") as b:
            assert b.codec == get_codec(codec, data.dtype.itemsize).name
            assert np.array_equal(b.read(), data)
            f_read = b.read(order="F")
            assert f_read.flags.f_contiguous
            assert np.array_equal(f_read, data)

    def test_compressible_data_shrinks_the_file(self, tmp_path):
        with DRXFile.create(tmp_path / "a", (64, 64), (8, 8),
                            codec="zlib") as a:
            a.write((0, 0), COMPRESSIBLE)
        physical = (tmp_path / "a.xta").stat().st_size
        logical = 64 * 64 * 8
        assert physical < logical / 2
        with DRXFile.open(tmp_path / "a") as b:
            assert b.data_extent_nbytes() == physical

    def test_extend_and_sparse_chunks_read_zero(self, tmp_path):
        with DRXFile.create(tmp_path / "e", (8, 8), (4, 4),
                            codec="zlib") as a:
            a.write((0, 0), pattern_array((8, 8)))
            a.extend(0, 8)
            assert np.array_equal(a.read((8, 0), (16, 8)),
                                  np.zeros((8, 8)))
            a.write((8, 0), pattern_array((8, 8)) + 1)
        with DRXFile.open(tmp_path / "e") as b:
            assert b.shape == (16, 8)
            assert np.array_equal(b.read((0, 0), (8, 8)),
                                  pattern_array((8, 8)))
            assert np.array_equal(b.read((8, 0), (16, 8)),
                                  pattern_array((8, 8)) + 1)

    def test_overwrite_and_eviction_recompress(self, tmp_path):
        """A pool too small for the working set forces eviction
        write-backs (recompression) mid-workload."""
        rng = np.random.default_rng(3)
        data = np.cumsum(rng.standard_normal((32, 32)), axis=0)
        with DRXFile.create(tmp_path / "m", (32, 32), (4, 4),
                            codec="zlib", cache_pages=3) as a:
            a.write((0, 0), data)
            # sub-chunk updates: read-modify-write through the pool,
            # touching more chunks than it can hold
            for i in range(0, 32, 4):
                a.write((i + 1, 1), data[i + 1:i + 3, 1:3] * 2)
            a.flush()
            assert a.cache_stats.writebacks > 0
        with DRXFile.open(tmp_path / "m") as b:
            expect = data.copy()
            for i in range(0, 32, 4):
                expect[i + 1:i + 3, 1:3] = data[i + 1:i + 3, 1:3] * 2
            assert np.array_equal(b.read(), expect)

    def test_streaming_read_and_write(self, tmp_path):
        """Requests larger than the pool stream through the adapter."""
        data = np.add.outer(np.arange(48.0), np.arange(48.0))
        with DRXFile.create(tmp_path / "s", (48, 48), (4, 4),
                            codec="zlib", cache_pages=2) as a:
            a.write((0, 0), data)             # 144 chunks >> 2 pages
        with DRXFile.open(tmp_path / "s", cache_pages=2) as b:
            assert np.array_equal(b.read(), data)

    def test_codec_stats_account_bytes_and_time(self, tmp_path):
        with DRXFile.create(tmp_path / "c", (32, 32), (8, 8),
                            codec="zlib") as a:
            a.write((0, 0), COMPRESSIBLE[:32, :32])
            a.flush()
            st = a.codec_stats
            assert st.encoded_chunks == 16
            assert st.raw_bytes == 32 * 32 * 8
            assert 0 < st.stored_bytes < st.raw_bytes
            assert st.ratio > 1.0
            assert st.compressed_bytes == st.stored_bytes
            assert st.codec_time >= 0.0
        with DRXFile.open(tmp_path / "c") as b:
            b.read()
            assert b.codec_stats.decoded_chunks == 16

    def test_bytes_moved_counts_compressed_bytes(self, tmp_path):
        """The shared store counters see what physically moved — the
        point of the layer is that this shrinks."""
        with DRXFile.create(tmp_path / "b", (64, 64), (8, 8),
                            codec="zlib") as a:
            a.write((0, 0), COMPRESSIBLE)
            a.flush()
            moved = a._data.stats.bytes_written
            assert 0 < moved < 64 * 64 * 8 / 2

    def test_plain_array_stats_surface_is_none(self, tmp_path):
        with DRXFile.create(tmp_path / "p", (8, 8), (4, 4)) as a:
            assert a.codec == "none"
            assert a.codec_stats is None
            assert a.data_extent_nbytes() == a.meta.data_nbytes

    def test_in_memory_compressed_array(self):
        a = DRXFile.create(None, (16, 16), (4, 4), codec="zlib")
        a.write((0, 0), pattern_array((16, 16)))
        a.extend(1, 4)
        assert np.array_equal(a.read((0, 0), (16, 16)),
                              pattern_array((16, 16)))
        a.close()

    def test_env_codec_round_trip(self, tmp_path):
        """The CI matrix leg: same workload under ``DRX_CODEC``."""
        data = pattern_array((24, 24))
        with DRXFile.create(tmp_path / "env", (24, 24), (6, 6),
                            codec=ENV_CODEC, checksums=True) as a:
            a.write((0, 0), data)
        with DRXFile.open(tmp_path / "env") as b:
            assert np.array_equal(b.read(), data)
            assert not b.scrub().corrupt


# ---------------------------------------------------------------------------
# format compatibility: codec=none byte identity, v1/v2 still readable
# ---------------------------------------------------------------------------

class TestFormatCompatibility:
    def test_codec_none_keeps_direct_placement_bit_identical(self, tmp_path):
        """An uncompressed array's payload file must be byte-identical
        to the direct-placement layout (chunk q at q * chunk_nbytes) and
        its sidecar must be the exact version-2 document."""
        data = pattern_array((8, 12))
        with DRXFile.create(tmp_path / "n", (8, 12), (4, 4)) as a:
            a.write((0, 0), data)
        xta = (tmp_path / "n.xta").read_bytes()
        with DRXFile.open(tmp_path / "n") as b:
            expect = bytearray()
            for q in range(b.num_chunks):
                ci = b.meta.eci.index(q)
                lo = tuple(c * s for c, s in zip(ci, (4, 4)))
                hi = tuple(min(l + s, n) for l, s, n in
                           zip(lo, (4, 4), (8, 12)))
                chunk = np.zeros((4, 4))
                chunk[:hi[0] - lo[0], :hi[1] - lo[1]] = \
                    data[lo[0]:hi[0], lo[1]:hi[1]]
                expect += chunk.tobytes()
        assert xta == bytes(expect)
        doc = json.loads((tmp_path / "n.xmd").read_bytes()[4:])
        assert doc["format_version"] == 2
        assert "codec" not in doc and "chunk_slots" not in doc

    def test_version_2_documents_still_open(self, tmp_path):
        with DRXFile.create(tmp_path / "v2", (4, 4), (2, 2)) as a:
            a.write((0, 0), pattern_array((4, 4)))
        raw = (tmp_path / "v2.xmd").read_bytes()
        doc = json.loads(raw[4:])
        assert doc["format_version"] == 2
        meta = DRXMeta.from_bytes(raw)
        assert meta.codec == "none" and meta.chunk_slots is None

    def test_version_1_documents_still_open(self, tmp_path):
        with DRXFile.create(tmp_path / "v1", (4, 4), (2, 2)) as a:
            a.write((0, 0), pattern_array((4, 4)))
        raw = (tmp_path / "v1.xmd").read_bytes()
        doc = json.loads(raw[4:])
        doc["format_version"] = 1
        doc.pop("chunk_crcs", None)
        (tmp_path / "v1.xmd").write_bytes(
            b"DRXM" + json.dumps(doc, sort_keys=True).encode())
        with DRXFile.open(tmp_path / "v1") as b:
            assert b.codec == "none"
            assert np.array_equal(b.read(), pattern_array((4, 4)))

    def test_compressed_sidecar_is_version_3(self, tmp_path):
        with DRXFile.create(tmp_path / "z", (4, 4), (2, 2),
                            codec="zlib") as a:
            a.write((0, 0), pattern_array((4, 4)))
        doc = json.loads((tmp_path / "z.xmd").read_bytes()[4:])
        assert doc["format_version"] == 3
        assert doc["codec"] == "zlib"
        assert len(doc["chunk_slots"]["slots"]) == 4

    def test_future_version_rejected(self):
        blob = b"DRXM" + json.dumps(
            {"format_version": 99}).encode()
        with pytest.raises(DRXFormatError):
            DRXMeta.from_bytes(blob)


# ---------------------------------------------------------------------------
# integrity: scrub, CRC arbitration, chaos
# ---------------------------------------------------------------------------

def make_fs(replication=2, nservers=3):
    return ParallelFileSystem(nservers=nservers, stripe_size=512,
                              replication=replication)


class TestCompressedIntegrity:
    def test_scrub_detects_compressed_corruption(self, tmp_path):
        with DRXFile.create(tmp_path / "s", (8, 8), (4, 4),
                            codec="zlib", checksums=True) as a:
            a.write((0, 0), pattern_array((8, 8)))
        with DRXFile.open(tmp_path / "s") as b:
            slot = b._codec_store.table.get(2)
        raw = bytearray((tmp_path / "s.xta").read_bytes())
        raw[slot.offset + slot.length // 2] ^= 0xFF
        (tmp_path / "s.xta").write_bytes(bytes(raw))
        with DRXFile.open(tmp_path / "s") as b:
            report = b.scrub()
        assert report.corrupt == [2]
        assert report.checked == 4

    def test_scrub_clean_compressed_array(self, tmp_path):
        with DRXFile.create(tmp_path / "ok", (8, 8), (4, 4),
                            codec="delta+zlib", checksums=True) as a:
            a.write((0, 0), pattern_array((8, 8)))
            report = a.scrub()
        assert report.ok and report.checked == 4

    def test_crc_covers_the_compressed_payload(self, tmp_path):
        """The recorded CRC must match the framed payload at the slot —
        the contract replication arbitration relies on."""
        with DRXFile.create(tmp_path / "c", (4, 4), (2, 2),
                            codec="zlib", checksums=True) as a:
            a.write((0, 0), pattern_array((4, 4)))
            a.flush()
            cs = a._codec_store
            for q in range(a.num_chunks):
                slot = cs.table.get(q)
                payload = cs.inner.read(slot.offset, slot.length)
                assert chunk_crc(payload) == a.meta.chunk_crcs[q]

    def test_arbitration_heals_corrupt_replica(self):
        """Corrupting the primary copy of a compressed slot must be
        detected by the adapter's guard and healed from the replica."""
        fs = make_fs(replication=2)
        data = pattern_array((8, 8))
        a = DRXFile.create_pfs(fs, "arb", (8, 8), (4, 4),
                               codec="zlib", checksums=True)
        a.write((0, 0), data)
        a.close()
        # stripe 0 of arb.xta holds the first slots; wreck its primary
        fs.servers[0].corrupt("arb.xta", 0, b"\xff" * 64)
        with DRXFile.open_pfs(fs, "arb") as b:
            assert np.array_equal(b.read(), data)      # healed in flight
        with DRXFile.open_pfs(fs, "arb") as b:
            assert not b.scrub().corrupt               # repair persisted

    def test_degraded_read_without_checksums(self):
        fs = make_fs(replication=2)
        data = pattern_array((8, 8))
        a = DRXFile.create_pfs(fs, "deg", (8, 8), (4, 4), codec="zlib")
        a.write((0, 0), data)
        a.close()
        fs.kill_server(1)
        with DRXFile.open_pfs(fs, "deg") as b:
            assert np.array_equal(b.read(), data)


class TestCompressedChaos:
    """Server-kill chaos over a compressed replicated array: degraded
    reads stay bit-identical, fan-out writes lose nothing, and online
    rebuild restores redundancy — all over *compressed* payloads."""

    READ_SITES = ["server.kill.readv.begin", "server.kill.readv.batch"]
    WRITE_SITES = ["server.kill.writev.begin", "server.kill.writev.batch"]

    @staticmethod
    def _build(fs, data, codec="zlib"):
        a = DRXFile.create_pfs(fs, "chaos", (16, 16), (4, 4),
                               codec=codec, checksums=True)
        a.write((0, 0), data)
        a.close()

    @pytest.mark.parametrize("victim", range(3))
    @pytest.mark.parametrize("site", READ_SITES)
    def test_kill_during_read(self, site, victim):
        data = pattern_array((16, 16))
        fs = make_fs()
        self._build(fs, data)
        plan = FaultPlan().kill_server(fs, victim, site)
        with plan:
            with DRXFile.open_pfs(fs, "chaos") as b:
                assert np.array_equal(b.read(), data)
        assert not fs.servers[victim].alive, f"hook never fired at {site}"
        fs.revive_server(victim)
        fs.rebuild_server(victim)
        assert fs.open("chaos.xta").verify_replicas() == []
        with DRXFile.open_pfs(fs, "chaos") as b:
            assert np.array_equal(b.read(), data)
            assert not b.scrub().corrupt

    @pytest.mark.parametrize("victim", range(3))
    @pytest.mark.parametrize("site", WRITE_SITES)
    def test_kill_during_write(self, site, victim):
        data = pattern_array((16, 16))
        data2 = data * 3.0 + 1.0
        fs = make_fs()
        self._build(fs, data)
        plan = FaultPlan().kill_server(fs, victim, site)
        with plan:
            with DRXFile.open_pfs(fs, "chaos", mode="r+") as b:
                b.write((0, 0), data2)
        assert not fs.servers[victim].alive, f"hook never fired at {site}"
        with DRXFile.open_pfs(fs, "chaos") as b:
            assert np.array_equal(b.read(), data2)
        fs.revive_server(victim)
        fs.rebuild_server(victim)
        assert fs.open("chaos.xta").verify_replicas() == []
        with DRXFile.open_pfs(fs, "chaos") as b:
            assert np.array_equal(b.read(), data2)
            assert not b.scrub().corrupt

    def test_env_codec_chaos(self):
        """One chaos pass under the CI codec matrix's ``DRX_CODEC``."""
        data = pattern_array((16, 16))
        fs = make_fs()
        self._build(fs, data, codec=ENV_CODEC)
        plan = FaultPlan().kill_server(fs, 0, "server.kill.readv.batch")
        with plan:
            with DRXFile.open_pfs(fs, "chaos") as b:
                assert np.array_equal(b.read(), data)
        fs.revive_server(0)
        fs.rebuild_server(0)
        with DRXFile.open_pfs(fs, "chaos") as b:
            assert not b.scrub().corrupt


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------

class TestCompaction:
    def test_compact_reclaims_overwrite_churn(self, tmp_path):
        rng = np.random.default_rng(11)
        data = np.cumsum(rng.standard_normal((32, 32)), axis=1)
        with DRXFile.create(tmp_path / "k", (32, 32), (4, 4),
                            codec="zlib", checksums=True) as a:
            for round_ in range(4):
                a.write((0, 0), data * (round_ + 1))
                a.flush()                     # each commit strands holes
            grown = a.data_extent_nbytes()
            result = a.compact()
            assert result["end"] <= grown
            assert result["end"] == a.data_extent_nbytes()
            assert (tmp_path / "k.xta").stat().st_size == result["end"]
            assert np.array_equal(a.read(), data * 4)
        with DRXFile.open(tmp_path / "k") as b:
            assert np.array_equal(b.read(), data * 4)
            assert not b.scrub().corrupt

    def test_compact_is_noop_on_plain_array(self, tmp_path):
        with DRXFile.create(tmp_path / "p", (8, 8), (4, 4)) as a:
            a.write((0, 0), pattern_array((8, 8)))
            assert a.compact() == {"moves": 0, "end": a.meta.data_nbytes,
                                   "reclaimed": 0}

    def test_compact_respects_move_budget(self, tmp_path):
        with DRXFile.create(tmp_path / "b", (32, 32), (4, 4),
                            codec="zlib") as a:
            data = pattern_array((32, 32))
            a.write((0, 0), data)
            a.flush()
            a.write((0, 0), data + 1)         # COW every chunk
            a.flush()
            result = a.compact(max_moves=3)
            assert result["moves"] <= 3
            assert np.array_equal(a.read(), data + 1)


# ---------------------------------------------------------------------------
# single-file container
# ---------------------------------------------------------------------------

class TestSingleFileCompressed:
    def test_round_trip(self, tmp_path):
        data = SMOOTH[:24, :24]
        with DRXSingleFile.create(tmp_path / "s", (24, 24), (6, 6),
                                  codec="zlib", checksums=True) as a:
            a.write((0, 0), data)
        with DRXSingleFile.open(tmp_path / "s") as b:
            assert b.codec == "zlib"
            assert np.array_equal(b.read(), data)
            assert not b.scrub().corrupt

    def test_tail_resident_meta_survives_growth(self, tmp_path):
        """A tiny reserve forces the meta blob into the chunk region;
        the slot table's reserved span must keep appends clear of it
        across many extend/write cycles."""
        a = DRXSingleFile.create(tmp_path / "t", (4, 4), (2, 2),
                                 header_reserve=200, codec="zlib",
                                 checksums=True)
        a.write((0, 0), pattern_array((4, 4)))
        for i in range(8):
            a.extend(i % 2, 2)
            lo = (0, 0)
            a.write(lo, pattern_array((4, 4)) + i)
            a.flush()
        final = pattern_array((4, 4)) + 7
        shape = a.shape
        a.close()
        with DRXSingleFile.open(tmp_path / "t") as b:
            assert b.shape == shape
            assert np.array_equal(b.read((0, 0), (4, 4)), final)
            assert not b.scrub().corrupt

    def test_single_file_compact(self, tmp_path):
        data = pattern_array((16, 16))
        with DRXSingleFile.create(tmp_path / "k", (16, 16), (4, 4),
                                  codec="zlib", checksums=True) as a:
            for i in range(3):
                a.write((0, 0), data + i)
                a.flush()
            result = a.compact()
            assert result["reclaimed"] >= 0
            assert np.array_equal(a.read(), data + 2)
        with DRXSingleFile.open(tmp_path / "k") as b:
            assert np.array_equal(b.read(), data + 2)
            assert not b.scrub().corrupt

    def test_conversions_preserve_codec(self, tmp_path):
        data = pattern_array((8, 8))
        with DRXFile.create(tmp_path / "pair", (8, 8), (4, 4),
                            codec="zlib") as pair:
            pair.write((0, 0), data)
            single = DRXSingleFile.from_pair(pair, tmp_path / "single")
        assert single.codec == "zlib"
        assert np.array_equal(single.read(), data)
        back = single.to_pair(tmp_path / "back")
        assert back.codec == "zlib"
        assert np.array_equal(back.read(), data)
        back.close()
        single.close()

    def test_conversion_can_change_codec(self, tmp_path):
        data = pattern_array((8, 8))
        with DRXFile.create(tmp_path / "p2", (8, 8), (4, 4)) as pair:
            pair.write((0, 0), data)
            single = DRXSingleFile.from_pair(pair, tmp_path / "s2",
                                             codec="delta+zlib")
        assert single.codec == "delta+zlib"
        assert np.array_equal(single.read(), data)
        plain = single.to_pair(tmp_path / "plain2", codec="none")
        assert plain.codec == "none"
        assert np.array_equal(plain.read(), data)
        plain.close()
        single.close()

    def test_uncompressed_single_file_unchanged(self, tmp_path):
        """codec="none" single files keep the version-2 container and
        the direct-placement chunk region."""
        data = pattern_array((8, 8))
        with DRXSingleFile.create(tmp_path / "u", (8, 8), (4, 4)) as a:
            a.write((0, 0), data)
        raw = (tmp_path / "u.drx").read_bytes()
        assert raw.startswith(b"DRXSF\x02")
        with DRXSingleFile.open(tmp_path / "u") as b:
            assert b.codec == "none"
            assert np.array_equal(b.read(), data)


# ---------------------------------------------------------------------------
# guard plumbing sanity
# ---------------------------------------------------------------------------

class TestGuardPlumbing:
    def test_pool_guard_is_none_for_compressed(self, tmp_path):
        with DRXFile.create(tmp_path / "g", (8, 8), (4, 4),
                            codec="zlib", checksums=True) as a:
            assert a._guard is None
            assert isinstance(a._codec_store.guard, ChecksumGuard)
            assert a.checksums_enabled

    def test_plain_array_keeps_file_level_guard(self, tmp_path):
        with DRXFile.create(tmp_path / "p", (8, 8), (4, 4),
                            checksums=True) as a:
            assert isinstance(a._guard, ChecksumGuard)
            assert a._codec_store is None
