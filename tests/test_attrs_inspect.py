"""Tests for user attributes and the inspection utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core import Attributes, DRXTypeError
from repro.core.errors import DRXDistributionError, DRXFileNotFoundError
from repro.drx import DRXFile, DRXSingleFile, describe, load_meta, verify
from repro.drxmp import DRXMPFile
from repro.drxmp.partition import BlockCyclicPartition
from repro.pfs import ParallelFileSystem


class TestAttributes:
    def test_validation(self):
        a = Attributes()
        a["x"] = [1, 2, {"y": "z"}]
        with pytest.raises(DRXTypeError):
            a["bad"] = object()
        with pytest.raises(DRXTypeError):
            a[42] = "non-string key"
        with pytest.raises(DRXTypeError):
            a.update({"arr": np.zeros(3)})   # ndarray not JSON

    def test_persist_pair(self, tmp_path):
        f = DRXFile.create(tmp_path / "a", (4, 4), (2, 2))
        f.attrs["units"] = "K"
        f.attrs["levels"] = [1000, 850, 500]
        f.close()
        g = DRXFile.open(tmp_path / "a")
        assert g.attrs == {"units": "K", "levels": [1000, 850, 500]}
        g.close()

    def test_persist_single(self, tmp_path):
        f = DRXSingleFile.create(tmp_path / "a", (4, 4), (2, 2))
        f.attrs["origin"] = "simulation-42"
        f.close()
        g = DRXSingleFile.open(tmp_path / "a")
        assert g.attrs["origin"] == "simulation-42"
        g.close()

    def test_attrs_survive_extend(self, tmp_path):
        f = DRXFile.create(tmp_path / "a", (4,), (2,))
        f.attrs["note"] = "before growth"
        f.extend(0, 10)
        f.close()
        g = DRXFile.open(tmp_path / "a")
        assert g.attrs["note"] == "before growth"
        assert g.shape == (14,)
        g.close()

    def test_parallel_attrs(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "at", (4, 4), (2, 2))
            a.attrs["experiment"] = "E8"
            a.flush_attrs()
            a.close()
            b = DRXMPFile.open(comm, pfs, "at")
            val = b.attrs.get("experiment")
            b.close()
            return val
        assert mpi.mpiexec(2, body, timeout=30) == ["E8", "E8"]

    def test_parallel_attr_divergence_detected(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "dv", (4, 4), (2, 2))
            a.attrs["who"] = comm.rank          # diverged!
            a.flush_attrs()
        with pytest.raises(mpi.SPMDFailure):
            mpi.mpiexec(2, body, timeout=30)


class TestInspect:
    def test_describe_mentions_everything(self, tmp_path):
        f = DRXFile.create(tmp_path / "a", (10, 12), (2, 3))
        f.attrs["units"] = "m/s"
        f.extend(1, 6)
        f.close()
        text = describe(tmp_path / "a")
        assert "(10, 18)" in text
        assert "(2, 3)" in text
        assert "units" in text and "m/s" in text
        assert "dim 1" in text           # the growth step
        assert "file pair" in text

    def test_describe_single_file(self, tmp_path):
        DRXSingleFile.create(tmp_path / "s", (4,), (2,)).close()
        assert "single-file" in describe(tmp_path / "s")

    def test_load_meta_missing(self, tmp_path):
        with pytest.raises(DRXFileNotFoundError):
            load_meta(tmp_path / "nope")

    def test_verify_clean(self, tmp_path):
        f = DRXFile.create(tmp_path / "a", (6, 6), (2, 2))
        f.extend(0, 2)
        f.close()
        assert verify(tmp_path / "a") == []

    def test_verify_flags_corruption(self, tmp_path):
        import json
        from repro.core import MAGIC
        f = DRXFile.create(tmp_path / "a", (6, 6), (2, 2))
        f.close()
        xmd = tmp_path / "a.xmd"
        doc = json.loads(xmd.read_bytes()[len(MAGIC):])
        doc["element_bounds"] = [600, 6]       # now inconsistent
        # consistency is validated at load; verify reports it cleanly
        xmd.write_bytes(MAGIC + json.dumps(doc).encode())
        problems = verify(tmp_path / "a")
        assert problems and "meta" in problems[0]


class TestCyclicZoneGuard:
    def test_zone_of_raises_helpfully(self):
        part = BlockCyclicPartition((4, 4), 4, block=1)
        with pytest.raises(DRXDistributionError, match="GlobalArray"):
            part.zone_of(0)
