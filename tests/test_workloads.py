"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import replay_history
from repro.core.errors import DRXError
from repro.workloads import (
    boundary_slabs,
    bursty_growth,
    column_scan_boxes,
    pattern_array,
    random_boxes,
    random_growth,
    round_robin_growth,
    row_scan_boxes,
    single_dim_growth,
)


class TestPatternArray:
    def test_values_encode_indices(self):
        a = pattern_array((3, 4))
        assert a[0, 0] == 0 and a[2, 3] == 11
        assert a[1, 2] == 1 * 4 + 2


class TestGrowthSchedules:
    def test_round_robin(self):
        h = round_robin_growth(3, 7, by=2)
        assert [d for d, _ in h] == [0, 1, 2, 0, 1, 2, 0]
        assert all(b == 2 for _, b in h)

    def test_single_dim(self):
        h = single_dim_growth(1, 4)
        assert h == [(1, 1)] * 4

    def test_random_deterministic(self):
        assert random_growth(3, 10, seed=9) == random_growth(3, 10, seed=9)
        assert random_growth(3, 10, seed=9) != random_growth(3, 10, seed=10)

    def test_random_valid(self):
        for dim, by in random_growth(4, 50, seed=1, max_by=5):
            assert 0 <= dim < 4 and 1 <= by <= 5

    def test_bursty_merges(self):
        """Record count tracks bursts, not total extensions."""
        h = bursty_growth(3, bursts=4, burst_len=5, seed=2)
        assert len(h) == 20
        eci = replay_history([1, 1, 1], h)
        non_sentinel = sum(
            1 for v in eci.axial_vectors for r in v if not r.is_sentinel)
        assert non_sentinel <= 1 + 4   # initial + one per burst

    def test_schedules_replayable(self):
        for h in (round_robin_growth(2, 6), random_growth(2, 6, seed=3),
                  bursty_growth(2, 3, 2, seed=4)):
            eci = replay_history([1, 1], h)
            assert eci.num_chunks >= 1


class TestAccessPatterns:
    def test_row_scan_covers(self):
        boxes = list(row_scan_boxes((7, 5), rows_per_read=2))
        covered = np.zeros((7, 5), dtype=int)
        for lo, hi in boxes:
            covered[lo[0]:hi[0], lo[1]:hi[1]] += 1
        assert np.all(covered == 1)

    def test_column_scan_covers(self):
        boxes = list(column_scan_boxes((7, 5), cols_per_read=2))
        covered = np.zeros((7, 5), dtype=int)
        for lo, hi in boxes:
            covered[lo[0]:hi[0], lo[1]:hi[1]] += 1
        assert np.all(covered == 1)

    def test_random_boxes_valid_and_deterministic(self):
        a = list(random_boxes((9, 9), 20, seed=5))
        b = list(random_boxes((9, 9), 20, seed=5))
        assert a == b
        for lo, hi in a:
            assert all(0 <= l < h <= 9 for l, h in zip(lo, hi))

    def test_random_boxes_max_edge(self):
        for lo, hi in random_boxes((20, 20), 30, seed=6, max_edge=3):
            assert all(h - l <= 3 for l, h in zip(lo, hi))

    def test_random_boxes_empty_shape_rejected(self):
        with pytest.raises(DRXError):
            list(random_boxes((0, 4), 1, seed=0))

    def test_boundary_slabs(self):
        slabs = list(boundary_slabs((6, 8), thickness=2))
        assert ((0, 0), (2, 8)) in slabs
        assert ((4, 0), (6, 8)) in slabs
        assert ((0, 0), (6, 2)) in slabs
        assert ((0, 6), (6, 8)) in slabs
        assert len(slabs) == 4

    def test_boundary_thicker_than_dim(self):
        slabs = list(boundary_slabs((2, 8), thickness=5))
        assert slabs[0] == ((0, 0), (2, 8))
