"""The array service daemon: protocol, deadlines, admission control,
range locking, drain, chaos kills, QoS accounting, and a soak rig.

Env knobs (the CI soak leg turns them up)::

    DRX_SOAK_CLIENTS=32 DRX_SOAK_SECONDS=30   # soak scale
    DRX_FAULT_SEED=20070917                   # chaos schedule seed
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import (
    CrashError,
    DeadlineError,
    MPIError,
    ServeError,
)
from repro.core.faultsites import DAEMON_SITES, KILL_SITES
from repro.core.watchdog import (
    CancelScope,
    Deadline,
    Watchdog,
    default_watchdog,
)
from repro.drx import DRXFile
from repro.drx.resilience import BackoffPolicy, FaultPlan
from repro.pfs import ParallelFileSystem
from repro.serve import DRXClient, DRXServer
from repro.serve import protocol
from repro.serve.locks import ArrayRWLock, ChunkLocks

SEED = int(os.environ.get("DRX_FAULT_SEED", "0"))
SOAK_CLIENTS = int(os.environ.get("DRX_SOAK_CLIENTS", "8"))
SOAK_SECONDS = float(os.environ.get("DRX_SOAK_SECONDS", "3"))


@contextlib.contextmanager
def serve_ctx(backend="fs", tmp_path=None, **kw):
    """A running daemon (fs- or root-backed) torn down afterwards."""
    if backend == "fs":
        substrate = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=substrate, **kw)
    else:
        substrate = tmp_path
        srv = DRXServer(root=str(tmp_path), **kw)
    srv.start()
    try:
        yield srv, substrate
    finally:
        if srv.state != DRXServer.DEAD:
            srv.kill()


def make_client(srv, name="anon", **kw):
    kw.setdefault("timeout", 30.0)
    return DRXClient(srv.address, client_id=name, **kw)


# ---------------------------------------------------------------------------
# protocol framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def roundtrip(self, kind, header, payload=b""):
        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, kind, header, payload)
            return protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_frame_roundtrip(self):
        kind, header, payload = self.roundtrip(
            protocol.REQ, {"verb": "write", "lo": [0, 8]}, b"\x01\x02")
        assert kind == protocol.REQ
        assert header == {"verb": "write", "lo": [0, 8]}
        assert payload == b"\x01\x02"

    def test_empty_payload(self):
        _, _, payload = self.roundtrip(protocol.OK, {"pong": True})
        assert payload == b""

    def test_oversize_frame_rejected_before_buffering(self):
        a, b = socket.socketpair()
        try:
            # hand-craft a length prefix claiming 1 GiB: the receiver
            # must reject on the prefix alone
            a.sendall(struct.pack("!IBII", 1 << 30, protocol.REQ, 0, 5))
            with pytest.raises(protocol.ProtocolError, match="cap"):
                protocol.recv_frame(b, max_frame=1 << 20)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_connection_closed(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!IBII", 100, protocol.REQ, 0, 10))
            a.close()
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_unknown_kind_rejected(self):
        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, 99, {})
            with pytest.raises(protocol.ProtocolError, match="kind"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_error_marshalling_preserves_transience(self):
        hdr = protocol.encode_error(ServeError("boom", transient=True))
        err = protocol.decode_error(hdr)
        assert err.transient and "boom" in str(err)
        hdr = protocol.encode_error(ValueError("nope"))
        err = protocol.decode_error(hdr)
        assert not err.transient and err.kind == "ValueError"


# ---------------------------------------------------------------------------
# basic request/response over both backends
# ---------------------------------------------------------------------------
class TestBasics:
    def test_fs_backend_lifecycle(self):
        with serve_ctx() as (srv, fs):
            with make_client(srv, "basic") as c:
                info = c.create("arr", [16, 16], [4, 4])
                assert info["shape"] == [16, 16]
                data = np.arange(256, dtype="<f8").reshape(16, 16)
                ack = c.write("arr", (0, 0), data)
                assert ack["seq"] == 1
                assert np.array_equal(c.read("arr", (0, 0), (16, 16)),
                                      data)
                assert c.extend("arr", to=[16, 24])["shape"] == [16, 24]
                # idempotent: extending to the current shape is a no-op
                assert c.extend("arr", to=[16, 24])["shape"] == [16, 24]
                c.flush("arr")
                c.snapshot("arr", "arr-snap")
                assert np.array_equal(
                    c.read("arr-snap", (0, 0), (16, 16)), data)
                assert c.scrub("arr")["ok"]
            srv.shutdown(drain=True)
            # acked writes are durable after drain
            f = DRXFile.open_pfs(fs, "arr")
            assert np.array_equal(f.read((0, 0), (16, 16)), data)
            f.close()

    def test_root_backend_and_restart_durability(self, tmp_path):
        data = np.linspace(0, 1, 64).reshape(8, 8)
        with serve_ctx("root", tmp_path) as (srv, _):
            with make_client(srv, "posix") as c:
                c.create("disk", [8, 8], [4, 4], checksums=True)
                c.write("disk", (0, 0), data)
            srv.shutdown(drain=True)
        # a fresh daemon over the same directory serves the same bytes
        with serve_ctx("root", tmp_path) as (srv2, _):
            with make_client(srv2, "posix") as c2:
                assert np.array_equal(c2.read("disk", (0, 0), (8, 8)),
                                      data)
                assert c2.scrub("disk")["checked"] == 4

    def test_fatal_errors_not_retried(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "fatal") as c:
                with pytest.raises(ServeError, match="invalid array name"):
                    c.open("../etc/passwd")
                with pytest.raises(ServeError, match="no array|no such"):
                    c.open("missing")
                c.create("dup", [4], [2])
                with pytest.raises(ServeError, match="exists"):
                    c.create("dup", [4], [2])
                # exists_ok opens instead
                assert c.create("dup", [4], [2],
                                exists_ok=True)["shape"] == [4]
                # none of those consumed a retry
                assert c.retries == 0

    def test_unknown_verb(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "x", max_retries=0) as c:
                with pytest.raises(ServeError, match="unknown verb"):
                    c.request("frobnicate")


# ---------------------------------------------------------------------------
# deadlines (tentpole): client -> server -> store, with rollback
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_cancels_mid_flight_and_rolls_back(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "dl") as c:
                c.create("a", [16, 16], [4, 4])
                base = np.full((16, 16), 7.0)
                c.write("a", (0, 0), base)
                fired0 = default_watchdog().stats.fired
                t0 = time.monotonic()
                with pytest.raises(DeadlineError):
                    c.write("a", (0, 0), np.zeros((16, 16)),
                            timeout=0.2, _delay=5.0)
                # cancelled promptly, not after the 5 s "computation"
                assert time.monotonic() - t0 < 2.0
                # the half-done mutation was rolled back
                assert np.array_equal(c.read("a", (0, 0), (16, 16)),
                                      base)
                # the shared watchdog (not a second timer) fired it
                assert default_watchdog().stats.fired > fired0
                snap = c.stats()["qos"]["clients"]["dl"]
                assert snap["deadline_misses"] == 1
                # locks were not leaked by the cancelled request
                assert c.stats()["chunk_locks_held"] == 0

    def test_deadline_spent_in_admission_queue(self):
        with serve_ctx(max_inflight=1, max_inflight_per_client=1,
                       max_queue=4) as (srv, _):
            with make_client(srv, "hog") as hog, \
                    make_client(srv, "starved") as starved:
                hog.create("q", [8, 8], [4, 4])
                blocker = threading.Thread(
                    target=hog.write,
                    args=("q", (0, 0), np.ones((8, 8))),
                    kwargs={"_delay": 1.5})
                blocker.start()
                time.sleep(0.3)     # blocker holds the only slot
                with pytest.raises(DeadlineError):
                    starved.write("q", (0, 0), np.zeros((8, 8)),
                                  timeout=0.3)
                blocker.join()
                snap = srv.qos.snapshot()["clients"]["starved"]
                assert snap["deadline_misses"] == 1
                assert snap["queue_wait"] > 0.1

    def test_expired_budget_never_sent(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "late") as c:
                c.create("z", [4], [2])
                deadline_header = {"name": "z", "lo": [0], "hi": [4]}
                with pytest.raises(DeadlineError):
                    c.request("read", deadline_header, timeout=0.0)


# ---------------------------------------------------------------------------
# the shared watchdog (satellite: one timer implementation, two users)
# ---------------------------------------------------------------------------
class TestSharedWatchdog:
    def test_deadline_and_scope_primitives(self):
        d = Deadline(0.05)
        assert d.remaining() <= 0.05 and not d.expired
        time.sleep(0.07)
        assert d.expired
        with pytest.raises(DeadlineError, match="during frobbing"):
            d.check("frobbing")
        assert Deadline(None).remaining() is None

        scope = CancelScope(Deadline(None))
        scope.check("fine")
        scope.cancel("operator abort")
        with pytest.raises(DeadlineError, match="operator abort"):
            scope.check("later")

    def test_watchdog_fires_and_cancels(self):
        wd = Watchdog(name="test-wd")
        fired = threading.Event()
        wd.schedule(0.05, fired.set)
        handle = wd.schedule(0.05, lambda: fired.clear())
        wd.cancel(handle)
        assert fired.wait(2.0)
        time.sleep(0.1)
        assert fired.is_set()           # cancelled entry never ran
        assert wd.stats.fired == 1
        assert wd.stats.cancelled == 1
        assert wd.pending() == 0

    def test_hung_collective_names_collective_and_rank(self):
        """A hung collective is diagnosed by name and rank — and the
        diagnosis is driven by the *shared* watchdog, not a private
        timer."""
        fired0 = default_watchdog().stats.fired

        def body(comm):
            if comm.rank == 0:
                comm.allreduce(1)       # rank 1 never joins
        with pytest.raises(MPIError) as ei:
            mpi.mpiexec(2, body, timeout=1)
        msg = str(ei.value)
        assert "deadlock" in msg
        assert "allreduce" in msg
        assert "ranks [0]" in msg
        assert "mpi-rank-0" in msg
        assert default_watchdog().stats.fired == fired0 + 1

    def test_no_second_timer_implementation(self):
        """Both the MPI runner and the daemon drive deadlines through
        repro.core.watchdog — neither rolls its own timer thread."""
        import inspect

        from repro.mpi import runner
        from repro.serve import server as serve_server
        for mod in (runner, serve_server):
            src = inspect.getsource(mod)
            assert "default_watchdog" in src
            assert "threading.Timer" not in src

    def test_mpi_and_serve_share_one_watchdog_instance(self):
        sched0 = default_watchdog().stats.scheduled
        # serve side: a deadlined request schedules an entry
        with serve_ctx() as (srv, _):
            with make_client(srv, "wd") as c:
                c.ping()
                c.create("w", [4], [2])
                c.write("w", [0], np.ones(4), timeout=5.0)
        after_serve = default_watchdog().stats.scheduled
        assert after_serve > sched0
        # mpi side: a run schedules (and cancels) on the same instance
        mpi.mpiexec(2, lambda comm: comm.barrier(), timeout=30)
        assert default_watchdog().stats.scheduled > after_serve


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_retry_later_when_queue_full(self):
        with serve_ctx(max_inflight=1, max_inflight_per_client=1,
                       max_queue=0) as (srv, _):
            with make_client(srv, "holder") as holder:
                holder.create("b", [8, 8], [4, 4])
                blocker = threading.Thread(
                    target=holder.write,
                    args=("b", (0, 0), np.ones((8, 8))),
                    kwargs={"_delay": 1.0})
                blocker.start()
                time.sleep(0.3)
                # zero queue slots: an immediate, explicit refusal
                with make_client(srv, "refused", max_retries=0) as c:
                    with pytest.raises(ServeError, match="busy"):
                        c.read("b", (0, 0), (8, 8))
                # a retrying client eventually gets through
                with make_client(srv, "patient", max_retries=40,
                                 seed=SEED) as c:
                    got = c.read("b", (0, 0), (8, 8))
                    assert got.shape == (8, 8)
                    assert c.retry_later_seen > 0
                blocker.join()
                snap = srv.qos.snapshot()
                assert snap["clients"]["refused"]["retry_later"] == 1
                assert snap["clients"]["patient"]["retry_later"] > 0
                # conservation: every request got exactly one outcome
                for rec in snap["clients"].values():
                    assert rec["requests"] == (
                        rec["ok"] + rec["errors"] + rec["retry_later"]
                        + rec["deadline_misses"])

    def test_queue_depth_stays_bounded(self):
        with serve_ctx(max_inflight=2, max_inflight_per_client=2,
                       max_queue=3) as (srv, _):
            with make_client(srv, "seeder") as seeder:
                seeder.create("c", [32, 8], [4, 4])
            threads = []
            for i in range(12):
                cli = make_client(srv, f"swarm{i}", max_retries=60,
                                  seed=i)
                t = threading.Thread(
                    target=lambda cl=cli: (cl.write(
                        "c", (0, 0), np.ones((4, 4)), _delay=0.05),
                        cl.close()))
                threads.append(t)
                t.start()
            for t in threads:
                t.join(30)
                assert not t.is_alive(), "swarm writer wedged"
            snap = srv.qos.snapshot()
            assert snap["queue_depth_hw"] <= 3
            assert snap["inflight_hw"] <= 2

    def test_per_client_limit_leaves_room_for_others(self):
        with serve_ctx(max_inflight=4, max_inflight_per_client=1,
                       max_queue=8) as (srv, _):
            with make_client(srv, "greedy") as g:
                g.create("d", [16, 4], [4, 4])
            start = threading.Barrier(3)
            done = {}

            def hog(i):
                with make_client(srv, "greedy") as cl:
                    start.wait()
                    cl.write("d", (4 * i, 0), np.ones((4, 4)),
                             _delay=0.6)
                    done[f"greedy{i}"] = time.monotonic()

            def light():
                with make_client(srv, "light") as cl:
                    start.wait()
                    time.sleep(0.15)     # let the hogs queue first
                    cl.write("d", (8, 0), np.ones((4, 4)))
                    done["light"] = time.monotonic()

            t0 = time.monotonic()
            ts = [threading.Thread(target=hog, args=(0,)),
                  threading.Thread(target=hog, args=(1,)),
                  threading.Thread(target=light)]
            for t in ts:
                t.start()
            for t in ts:
                t.join(30)
            # the light client was not stuck behind greedy's second
            # request: per-client capping kept a slot free
            assert done["light"] - t0 < 0.6
            assert srv.qos.snapshot()["clients"]["greedy"][
                "inflight_hw"] <= 1


# ---------------------------------------------------------------------------
# range locking (satellite: disjoint overlap, overlapping serialize)
# ---------------------------------------------------------------------------
class TestRangeLocks:
    def test_rwlock_and_chunklocks_units(self):
        rw = ArrayRWLock()
        rw.acquire_shared()
        rw.acquire_shared()            # shared nests
        rw.release_shared()
        rw.release_shared()
        rw.acquire_exclusive()
        rw.release_exclusive()

        locks = ChunkLocks()
        me, other = object(), object()
        taken = locks.acquire([3, 1, 2, 2], me)
        assert taken == [1, 2, 3]      # ascending, deduplicated
        assert locks.held() == 3
        # a cancelled waiter releases everything it took
        scope = CancelScope(Deadline(0.05))
        with pytest.raises(DeadlineError):
            locks.acquire([0, 2], other, scope)
        assert locks.held() == 3       # only `me`'s locks remain
        assert locks.release_owner(me) == 3
        assert locks.held() == 0

    def test_disjoint_writes_overlap_in_time(self):
        """Two writers on disjoint chunk ranges hold their _delay
        concurrently: wall time ~ max, not sum."""
        with serve_ctx(max_inflight=4) as (srv, _):
            with make_client(srv, "w0") as c:
                c.create("par", [16, 16], [4, 4])
            spans = {}

            def writer(name, row):
                with make_client(srv, name) as cl:
                    t0 = time.monotonic()
                    cl.write("par", (row, 0),
                             np.full((4, 16), float(row)), _delay=0.5)
                    spans[name] = (t0, time.monotonic())

            ts = [threading.Thread(target=writer, args=(f"w{i}", 4 * i))
                  for i in range(2)]
            wall0 = time.monotonic()
            for t in ts:
                t.start()
            for t in ts:
                t.join(30)
            wall = time.monotonic() - wall0
            # serial execution would need >= 1.0 s of locked delay
            assert wall < 0.9, f"disjoint writers serialized: {wall:.2f}s"
            (a0, a1), (b0, b1) = spans["w0"], spans["w1"]
            assert a0 < b1 and b0 < a1, "writer spans did not overlap"
            with make_client(srv, "check") as cl:
                got = cl.read("par", (0, 0), (8, 16))
                assert np.array_equal(got[0:4], np.zeros((4, 16)))
                assert np.array_equal(got[4:8], np.full((4, 16), 4.0))

    def test_overlapping_writes_serialize_deterministically(self):
        """Two writers on the same box serialize on the chunk locks;
        the final contents equal the writer holding the larger apply
        sequence number — byte for byte."""
        with serve_ctx(max_inflight=4) as (srv, _):
            with make_client(srv, "seed") as c:
                c.create("ser", [8, 8], [4, 4])
            results = {}

            def writer(tag, value):
                with make_client(srv, tag) as cl:
                    t0 = time.monotonic()
                    ack = cl.write("ser", (0, 0),
                                   np.full((8, 8), value), _delay=0.4)
                    results[tag] = (ack["seq"], value,
                                    t0, time.monotonic())

            ts = [threading.Thread(target=writer, args=("a", 11.0)),
                  threading.Thread(target=writer, args=("b", 22.0))]
            wall0 = time.monotonic()
            for t in ts:
                t.start()
            for t in ts:
                t.join(30)
            wall = time.monotonic() - wall0
            assert wall >= 0.75, \
                f"overlapping writers ran concurrently: {wall:.2f}s"
            (seq_a, val_a, *_), (seq_b, val_b, *_) = \
                results["a"], results["b"]
            assert seq_a != seq_b
            winner_val = val_a if seq_a > seq_b else val_b
            with make_client(srv, "check") as cl:
                got = cl.read("ser", (0, 0), (8, 8))
                assert np.array_equal(got, np.full((8, 8), winner_val))

    def test_structural_op_excludes_data_ops(self):
        """extend takes the array lock exclusive: a write in flight
        finishes first, and the extend's shape change is atomic."""
        with serve_ctx(max_inflight=4) as (srv, _):
            with make_client(srv, "s") as c:
                c.create("x", [8, 8], [4, 4])
            base = time.monotonic()
            times = {}

            def slow_write():
                with make_client(srv, "wrt") as cl:
                    cl.write("x", (0, 0), np.ones((8, 8)), _delay=0.5)
                    times["write_done"] = time.monotonic() - base

            def extender():
                time.sleep(0.15)   # start while the write holds shared
                with make_client(srv, "ext") as cl:
                    t0 = time.monotonic() - base
                    cl.extend("x", to=[12, 8])
                    times["extend_span"] = (t0, time.monotonic() - base)

            ts = [threading.Thread(target=slow_write),
                  threading.Thread(target=extender)]
            for t in ts:
                t.start()
            for t in ts:
                t.join(30)
            # the extend was issued mid-write but could not finish
            # until the writer released its shared hold
            t0, t1 = times["extend_span"]
            assert t0 < 0.4, "extend was not issued mid-write"
            assert t1 >= 0.45, \
                f"extend finished at {t1:.2f}s, before the write"
            with make_client(srv, "chk") as cl:
                assert cl.open("x")["shape"] == [12, 8]


# ---------------------------------------------------------------------------
# graceful drain and abrupt disconnect
# ---------------------------------------------------------------------------
class TestDrainAndDisconnect:
    def test_drain_finishes_inflight_and_keeps_acked_writes(self):
        with serve_ctx() as (srv, fs):
            with make_client(srv, "d") as c:
                c.create("keep", [8, 8], [4, 4])
                acked = np.full((8, 8), 3.5)
                results = {}

                def slow():
                    results["ack"] = c.write("keep", (0, 0), acked,
                                             _delay=0.5)
                t = threading.Thread(target=slow)
                t.start()
                time.sleep(0.2)        # request is mid-flight
                srv.shutdown(drain=True)
                t.join(10)
                assert "ack" in results, "in-flight write was dropped"
            assert srv.state == DRXServer.DEAD
            # the acked write is on the substrate
            f = DRXFile.open_pfs(fs, "keep")
            assert np.array_equal(f.read((0, 0), (8, 8)), acked)
            f.close()

    def test_drain_refuses_new_work_with_retry_later(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "d2") as c, \
                    make_client(srv, "holder") as holder, \
                    make_client(srv, "newcomer", max_retries=0) as nc:
                c.create("nd", [4], [2])
                nc.ping()          # connect before the listener closes
                hold = threading.Thread(
                    target=holder.write, args=("nd", [0], np.ones(4)),
                    kwargs={"_delay": 1.0})
                hold.start()
                time.sleep(0.2)
                drainer = threading.Thread(target=srv.shutdown,
                                           kwargs={"drain": True})
                drainer.start()
                time.sleep(0.2)        # drain has begun, not finished
                # existing connections get an explicit refusal...
                with pytest.raises(ServeError, match="draining"):
                    nc.read("nd", [0], [4])
                # ...while brand-new connections cannot even attach
                with pytest.raises(OSError):
                    socket.create_connection(srv.address, timeout=2.0)
                hold.join(10)
                drainer.join(10)
                assert srv.state == DRXServer.DEAD

    def test_sigterm_drains(self):
        """SIGTERM → stop accepting, finish in-flight, flush, exit —
        exercised on a real subprocess via the CLI (see TestCLI); here
        the handler wiring is driven in-process."""
        with serve_ctx() as (srv, fs):
            old_term = signal.getsignal(signal.SIGTERM)
            old_int = signal.getsignal(signal.SIGINT)
            try:
                srv.install_signal_handlers()
                with make_client(srv, "sig") as c:
                    c.create("s", [4], [2])
                    c.write("s", [0], np.arange(4.0))
                os.kill(os.getpid(), signal.SIGTERM)
                assert srv.wait(10.0), "SIGTERM did not drain"
            finally:
                signal.signal(signal.SIGTERM, old_term)
                signal.signal(signal.SIGINT, old_int)
            f = DRXFile.open_pfs(fs, "s")
            assert np.array_equal(f.read([0], [4]), np.arange(4.0))
            f.close()

    def test_partial_frame_disconnect_is_harmless(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "ok") as c:
                c.create("h", [4], [2])
            # open a raw connection, send half a frame, vanish
            raw = socket.create_connection(srv.address)
            raw.sendall(struct.pack("!IBII", 64, protocol.REQ, 0, 32))
            raw.sendall(b"{")          # 1 of 55 remaining bytes
            raw.close()
            time.sleep(0.2)
            # the daemon is unbothered: no lock leaked, still serving
            with make_client(srv, "after") as c2:
                c2.write("h", [0], np.ones(4))
                st = c2.stats()
                assert st["chunk_locks_held"] == 0
                assert st["state"] == "running"

    def test_disconnect_before_reply_preserves_consistency(self):
        """A client that dies while its write is in flight: the write
        either fully lands or not; locks are always released."""
        with serve_ctx() as (srv, _):
            with make_client(srv, "setup") as c:
                c.create("g", [8, 8], [4, 4])
                base = np.full((8, 8), 1.0)
                c.write("g", (0, 0), base)
            victim = make_client(srv, "victim")
            victim.create("g", [8, 8], [4, 4], exists_ok=True)
            # fire a slow write, then tear the socket down mid-flight
            hdr = {"verb": "write", "client": "victim", "attempt": 0,
                   "name": "g", "lo": [0, 0], "shape": [8, 8],
                   "dtype": "<f8", "_delay": 0.4}
            protocol.send_frame(victim._sock, protocol.REQ, hdr,
                                np.full((8, 8), 9.0).tobytes())
            time.sleep(0.1)
            victim._sock.close()
            time.sleep(0.8)            # let the server finish/clean up
            with make_client(srv, "check") as c2:
                got = c2.read("g", (0, 0), (8, 8))
                assert (np.array_equal(got, base)
                        or np.array_equal(got, np.full((8, 8), 9.0)))
                assert c2.stats()["chunk_locks_held"] == 0


# ---------------------------------------------------------------------------
# chaos: kill the daemon at every server.kill.daemon.* site
# ---------------------------------------------------------------------------
def _daemon_workload(client):
    """The canonical mutating workload: idempotent, so re-running it
    after a crash converges to the same bytes."""
    client.create("vol", [16, 16], [4, 4], exists_ok=True)
    client.extend("vol", to=[16, 24])
    client.write("vol", (0, 0),
                 np.arange(128, dtype="<f8").reshape(8, 16))
    client.write("vol", (8, 16),
                 np.full((8, 8), 5.5))
    client.flush("vol")


def _expected_volume():
    want = np.zeros((16, 24))
    want[0:8, 0:16] = np.arange(128, dtype="<f8").reshape(8, 16)
    want[8:16, 16:24] = 5.5
    return want


class TestChaosDaemonKill:
    def test_daemon_sites_registered(self):
        assert set(DAEMON_SITES) == {
            "server.kill.daemon.admitted",
            "server.kill.daemon.locked",
            "server.kill.daemon.journaled",
            "server.kill.daemon.applied",
            "server.kill.daemon.drain.flush",
        }
        # and they are NOT part of the PFS kill-site sweep
        assert not set(DAEMON_SITES) & set(KILL_SITES)

    @pytest.mark.parametrize("site", [
        "server.kill.daemon.admitted",
        "server.kill.daemon.locked",
        "server.kill.daemon.applied",
    ])
    def test_kill_at_request_site_then_restart_bit_identical(self, site):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        plan = FaultPlan(seed=SEED).crash(site, after=2)
        with make_client(srv, "chaos", max_retries=1) as c:
            with plan:
                with pytest.raises(Exception):
                    _daemon_workload(c)
        assert srv.state == DRXServer.DEAD, f"{site}: daemon survived"
        assert plan.hits.get(site), f"{site} never fired"
        # restart a fresh daemon on the same substrate; the client
        # re-runs the whole workload and must converge bit-identically
        srv2 = DRXServer(fs=fs).start()
        try:
            with make_client(srv2, "chaos") as c2:
                _daemon_workload(c2)
                got = c2.read("vol", (0, 0), (16, 24))
                assert np.array_equal(got, _expected_volume()), site
        finally:
            srv2.shutdown(drain=True)

    def test_kill_during_drain_flush_then_restart(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        with make_client(srv, "chaos") as c:
            _daemon_workload(c)
        with FaultPlan(seed=SEED).crash("server.kill.daemon.drain.flush"):
            srv.shutdown(drain=True)
        assert srv.state == DRXServer.DEAD
        srv2 = DRXServer(fs=fs).start()
        try:
            with make_client(srv2, "chaos") as c2:
                _daemon_workload(c2)
                got = c2.read("vol", (0, 0), (16, 24))
                assert np.array_equal(got, _expected_volume())
        finally:
            srv2.shutdown(drain=True)

    def test_client_classifies_kill_as_transient_and_recovers(self):
        """The killed daemon is restarted *on the same port* while the
        client is mid-retry: the stub reconnects and succeeds without
        the caller seeing anything."""
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        host, port = srv.address
        with make_client(srv, "heal", max_retries=40,
                         seed=SEED) as c:
            c.create("r", [8, 8], [4, 4])
            restarted = {}

            def restart_soon():
                # wait for the kill, then resurrect on the same port
                while srv.state != DRXServer.DEAD:
                    time.sleep(0.01)
                srv2 = DRXServer(fs=fs, host=host, port=port)
                for _ in range(50):
                    try:
                        srv2.start()
                        break
                    except OSError:
                        time.sleep(0.05)
                restarted["srv"] = srv2
            t = threading.Thread(target=restart_soon)
            t.start()
            with FaultPlan(seed=SEED).crash(
                    "server.kill.daemon.applied"):
                ack = c.write("r", (0, 0), np.full((8, 8), 2.5))
            t.join(10)
            assert ack["seq"] >= 1
            assert c.retries > 0
            assert np.array_equal(c.read("r", (0, 0), (8, 8)),
                                  np.full((8, 8), 2.5))
        restarted["srv"].shutdown(drain=True)


# ---------------------------------------------------------------------------
# QoS counters and the CLI
# ---------------------------------------------------------------------------
class TestStatsAndCLI:
    def test_stats_verb_exposes_qos_and_substrate(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "tenant-a") as a, \
                    make_client(srv, "tenant-b") as b:
                a.create("s", [8, 8], [4, 4])
                a.write("s", (0, 0), np.ones((8, 8)))
                b.read("s", (0, 0), (8, 8))
                st = a.stats()
                qa = st["qos"]["clients"]["tenant-a"]
                qb = st["qos"]["clients"]["tenant-b"]
                assert qa["bytes_written"] == 8 * 8 * 8
                assert qb["bytes_read"] == 8 * 8 * 8
                assert qa["requests"] == qa["ok"] == 2
                assert st["qos"]["totals"]["requests"] == 3
                # the shared-substrate summary rides along
                assert st["pfs"]["nservers"] == 3
                assert st["pfs"]["total"]["requests"] > 0
                assert st["pfs"]["alive_servers"] == [0, 1, 2]
                assert json.dumps(st)   # JSON-able end to end

    def test_dump_stats_cli(self, capsys):
        from repro.serve.cli import main
        with serve_ctx() as (srv, _):
            with make_client(srv, "cli") as c:
                c.create("t", [4], [2])
                c.write("t", [0], np.ones(4))
            host, port = srv.address
            rc = main(["--dump-stats", "--host", host,
                       "--port", str(port)])
            assert rc == 0
            out = json.loads(capsys.readouterr().out)
            assert out["qos"]["clients"]["cli"]["ok"] == 2
            # control-plane queries don't pollute the QoS table
            assert "drx-serve-cli" not in out["qos"]["clients"]

    def test_cli_daemon_subprocess_sigterm_drain(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(os.path.join(os.getcwd(), "src")),
             env.get("PYTHONPATH", "")])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve",
             "--root", str(tmp_path), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            with DRXClient(("127.0.0.1", port), client_id="sub",
                           timeout=15.0) as c:
                c.create("sub", [4, 4], [2, 2])
                c.write("sub", (0, 0), np.full((4, 4), 8.0))
                assert c.ping()["pong"]
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=20)
            assert rc == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # the drained daemon flushed the array to its root
        f = DRXFile.open(tmp_path / "sub")
        assert np.array_equal(f.read((0, 0), (4, 4)),
                              np.full((4, 4), 8.0))
        f.close()


# ---------------------------------------------------------------------------
# pipelining and batching
# ---------------------------------------------------------------------------
def conservation_holds(snap: dict) -> bool:
    tot = snap["qos"]["totals"] if "qos" in snap else snap["totals"]
    return tot["requests"] == (tot["ok"] + tot["errors"]
                               + tot["retry_later"]
                               + tot["deadline_misses"])


class TestPipeline:
    def test_many_in_flight_bit_identical(self):
        with serve_ctx(max_inflight=8) as (srv, _):
            with make_client(srv, "piped") as c:
                rng = np.random.default_rng(SEED)
                names = [f"p{i}" for i in range(4)]
                blocks = {}
                for n in names:
                    c.create(n, [16, 16], [8, 8])
                    blocks[n] = rng.random((16, 16))
                with c.pipeline(depth=32) as pipe:
                    pends = [pipe.write(n, (0, 0), blocks[n])
                             for n in names]
                    for p in pends:
                        assert p.result()["nbytes"] == 16 * 16 * 8
                    reads = [pipe.read(n, (0, 0), (16, 16))
                             for n in names]
                    for n, r in zip(names, reads):
                        assert np.array_equal(r.result(), blocks[n]), n
                    assert pipe.resends == 0
            snap = srv.qos.snapshot()
            assert conservation_holds({"qos": snap})
            assert snap["totals"]["errors"] == 0

    def test_replies_arrive_out_of_order(self):
        """A slow write does not block a fast ping behind it — the
        whole point of rid-tagged dispatch."""
        with serve_ctx(max_inflight=4) as (srv, _):
            with make_client(srv, "ooo") as c:
                c.create("slow", [4, 4], [2, 2])
                with c.pipeline(depth=4) as pipe:
                    slow = pipe.submit(
                        "write", {"name": "slow", "lo": [0, 0],
                                  "shape": [4, 4], "dtype": "<f8",
                                  "_delay": 0.5},
                        np.ones((4, 4)).tobytes())
                    fast = pipe.ping()
                    assert fast.result()["pong"]
                    assert not slow.done()   # overtaken on the wire
                    assert slow.result()[0]["nbytes"] == 4 * 4 * 8

    def test_retry_later_resends_one_request_not_the_window(self):
        """Admission pushback on one request re-sends just that
        request; siblings in the window are untouched."""
        with serve_ctx(max_inflight=1, max_inflight_per_client=1,
                       max_queue=0) as (srv, _):
            with make_client(srv, "narrow", max_retries=60,
                             seed=SEED) as c:
                c.create("n", [8, 8], [4, 4])
                with c.pipeline(depth=8) as pipe:
                    pends = [pipe.submit(
                        "write", {"name": "n", "lo": [0, 0],
                                  "shape": [4, 4], "dtype": "<f8",
                                  "_delay": 0.02},
                        np.full((4, 4), float(i)).tobytes())
                        for i in range(6)]
                    for p in pends:
                        assert p.result()[0]["nbytes"] == 4 * 4 * 8
                    assert pipe.resends > 0
            snap = srv.qos.snapshot()
            assert snap["totals"]["retry_later"] > 0
            assert conservation_holds({"qos": snap})

    def test_pipeline_reconnects_and_dedups_exactly_once(self):
        """The connection dies with extends outstanding: the receiver
        reconnects and re-sends under the original keys — extends are
        not idempotent, so exactly-once shows in the final shape."""
        from repro.serve import FaultySocket

        state = {"n": 0}

        def wrapper(sock):
            state["n"] += 1
            fsock = FaultySocket(sock, seed=SEED)
            if state["n"] == 1:
                # sever the wire after a few replies have flowed
                fsock.arm_recv("disconnect", after=4)
            return fsock

        with serve_ctx() as (srv, _):
            with make_client(srv, "setup") as s:
                s.create("g", [4, 2], [2, 2])
            nops = 8
            with DRXClient(srv.address, client_id="pipefault",
                           timeout=60.0, max_retries=60, seed=SEED,
                           socket_wrapper=wrapper) as c:
                with c.pipeline(depth=4) as pipe:
                    pends = [pipe.extend("g", dim=0, by=1)
                             for _ in range(nops)]
                    shapes = [p.result()["shape"] for p in pends]
                assert pipe.resends > 0
                assert sorted(s[0] for s in shapes) == \
                    list(range(5, 5 + nops))
                assert c.open("g")["shape"] == [4 + nops, 2]
            snap = srv.qos.snapshot()
            assert conservation_holds({"qos": snap})
            assert snap["totals"]["dedup_hits"] >= 1


class TestBatch:
    def test_one_frame_mixed_ops(self):
        """create + write + read back in ONE round trip, list order."""
        with serve_ctx() as (srv, _):
            with make_client(srv, "batcher") as c:
                block = np.arange(16, dtype="<f8").reshape(4, 4)
                outs = c.batch([
                    {"verb": "create", "name": "bt", "bounds": [4, 4],
                     "chunk": [2, 2], "dtype": "<f8",
                     "checksums": False, "codec": "none",
                     "exists_ok": False},
                    {"verb": "write", "name": "bt", "lo": [0, 0],
                     "shape": [4, 4], "dtype": "<f8",
                     "payload": block.tobytes()},
                    {"verb": "read", "name": "bt", "lo": [0, 0],
                     "hi": [4, 4]},
                ])
                assert len(outs) == 3
                hdr, payload = outs[2]
                got = np.frombuffer(payload, dtype=hdr["dtype"]) \
                    .reshape(hdr["shape"])
                assert np.array_equal(got, block)
            snap = srv.qos.snapshot()
            rec = snap["clients"]["batcher"]
            # one batch frame, three accounted requests
            assert rec["batches"] == 1
            assert rec["requests"] == 3
            assert conservation_holds({"qos": snap})

    def test_batch_verbs_gated(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "gate") as c:
                # client refuses nesting / shutdown locally
                with pytest.raises(ServeError, match="not allowed"):
                    c.batch([{"verb": "batch", "ops": []}])
                with pytest.raises(ServeError, match="not allowed"):
                    c.batch([{"verb": "shutdown"}])
                # ... and the server gates them even from raw frames
                hdr, _ = c.request(
                    "batch",
                    {"ops": [{"verb": "shutdown", "nbytes": 0}]})
                assert hdr["results"][0]["kind"] == protocol.ERR
                # malformed envelope: fatal, not per-op
                with pytest.raises(ServeError, match="non-empty"):
                    c.request("batch", {"ops": []})
                assert srv.state == DRXServer.RUNNING

    def test_mid_batch_disconnect_exactly_once(self):
        """The batch REQ frame tears mid-wire, then — on retry — the
        reply is lost too; both failures retry under the original
        per-op keys, and every extend still lands exactly once."""
        from repro.serve import FaultySocket

        state = {"n": 0}

        def wrapper(sock):
            state["n"] += 1
            fsock = FaultySocket(sock, seed=SEED)
            if state["n"] == 1:
                fsock.arm_send("torn", after=1, keep=0.5)
            elif state["n"] == 2:
                fsock.arm_recv("disconnect")
            return fsock

        with serve_ctx() as (srv, _):
            with make_client(srv, "setup") as s:
                s.create("mb", [2, 2], [2, 2])
            nops = 6
            with DRXClient(srv.address, client_id="midbatch",
                           timeout=60.0, max_retries=60, seed=SEED,
                           socket_wrapper=wrapper) as c:
                outs = c.batch([{"verb": "extend", "name": "mb",
                                 "dim": 0, "by": 1}
                                for _ in range(nops)])
                shapes = [h["shape"][0] for h, _ in outs]
                assert sorted(shapes) == list(range(3, 3 + nops))
                assert c.open("mb")["shape"] == [2 + nops, 2]
                assert c.retries >= 1
            snap = srv.qos.snapshot()
            assert conservation_holds({"qos": snap})
            # the second connection's batch was answered from dedup
            assert snap["totals"]["dedup_hits"] >= nops

    def test_large_batch_lost_reply_exactly_once(self):
        """Review regression: a batch with more keyed ops than the old
        128-entry dedup LRU, whose reply is lost, must re-apply
        NOTHING on retry — the server's dedup window covers a maximal
        batch, so no fulfilled entry is evicted while still
        retryable."""
        from repro.serve import FaultySocket

        state = {"n": 0}

        def wrapper(sock):
            state["n"] += 1
            fsock = FaultySocket(sock, seed=SEED)
            if state["n"] == 1:
                # lose the batch's reply: the server applies the ops,
                # the client sees a dead connection and retries the
                # whole frame under the original per-op keys
                fsock.arm_recv("disconnect")
            return fsock

        nops = 160          # > the old 128-entry window
        with serve_ctx() as (srv, _):
            with make_client(srv, "setup") as s:
                s.create("big", [2, 2], [2, 2])
            with DRXClient(srv.address, client_id="bigbatch",
                           timeout=120.0, max_retries=8, seed=SEED,
                           socket_wrapper=wrapper) as c:
                outs = c.batch([{"verb": "extend", "name": "big",
                                 "dim": 0, "by": 1}
                                for _ in range(nops)])
                shapes = sorted(h["shape"][0] for h, _ in outs)
                assert shapes == list(range(3, 3 + nops))
                # exactly-once: every extend landed once — a single
                # double-apply would overshoot the final shape
                assert c.open("big")["shape"] == [2 + nops, 2]
            snap = srv.qos.snapshot()
            assert conservation_holds({"qos": snap})
            assert snap["totals"]["dedup_hits"] >= nops

    def test_batch_budget_shared_across_ops(self):
        """The frame's timeout is ONE budget: each sub-op runs on the
        batch's remaining time, so N slow ops cannot consume N x
        timeout of server wall time — ops that start after expiry get
        DEADLINE results."""
        nops = 6
        per_op = 0.2
        with serve_ctx() as (srv, _):
            with make_client(srv, "budget") as c:
                c.create("bb", [4, 4], [2, 2])
                t0 = time.monotonic()
                outs = c.batch(
                    [{"verb": "read", "name": "bb", "lo": [0, 0],
                      "hi": [4, 4], "_delay": per_op}
                     for _ in range(nops)],
                    timeout=2 * per_op + 0.05,
                    return_exceptions=True)
                wall = time.monotonic() - t0
                # the head of the batch ran within budget ...
                assert isinstance(outs[0], tuple)
                # ... the tail deadline-missed instead of each
                # restarting the full timeout (the old bug: all six
                # would succeed after 6 x per_op of server time)
                assert any(isinstance(o, DeadlineError) for o in outs)
                assert isinstance(outs[-1], DeadlineError)
                assert wall < nops * per_op
            snap = srv.qos.snapshot()
            assert conservation_holds({"qos": snap})
            assert snap["totals"]["deadline_misses"] >= 1


class TestZeroCopyRead:
    def test_read_returns_writable_view_not_copy(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "zc") as c:
                c.create("z", [8, 8], [4, 4])
                block = np.arange(64, dtype="<f8").reshape(8, 8)
                c.write("z", (0, 0), block)
                got = c.read("z", (0, 0), (8, 8))
                assert np.array_equal(got, block)
                # the regression: a view over the reply payload, not a
                # copy — np.frombuffer never owns (or copies) its data
                assert not got.flags.owndata
                assert got.base is not None
                # ... and WRITABLE: the reply frame's buffer is private
                # to this reply, so callers that mutate the result in
                # place (the pre-zero-copy contract) keep working
                assert got.flags.writeable
                got[0, 0] = 123.0
                assert got[0, 0] == 123.0
                # mutating the view touches only this reply's buffer,
                # never the served array
                again = c.read("z", (0, 0), (8, 8))
                assert again[0, 0] == 0.0
                # distinct replies never alias each other
                again[0, 0] = 7.0
                assert got[0, 0] == 123.0

    def test_pipelined_read_is_also_zero_copy(self):
        with serve_ctx() as (srv, _):
            with make_client(srv, "zcp") as c:
                c.create("zp", [4], [2])
                c.write("zp", [0], np.ones(4))
                with c.pipeline() as pipe:
                    got = pipe.read("zp", [0], [4]).result()
                assert np.array_equal(got, np.ones(4))
                assert not got.flags.owndata
                assert got.flags.writeable
                got[0] = 5.0
                assert got[0] == 5.0


# ---------------------------------------------------------------------------
# soak: many clients, mixed ops, no deadlock, counters conserved
# ---------------------------------------------------------------------------
class TestSoak:
    def test_multiclient_soak(self):
        nclients = SOAK_CLIENTS
        seconds = SOAK_SECONDS
        rows_per_client = 4
        shape = [rows_per_client * nclients, 16]
        with serve_ctx(max_inflight=8, max_inflight_per_client=2,
                       max_queue=2 * nclients) as (srv, fs):
            with make_client(srv, "setup") as c:
                c.create("soak", shape, [4, 4])
            stop_at = time.monotonic() + seconds
            issued = [0] * nclients
            last_val = [0.0] * nclients
            failures = []

            def tenant(i):
                rng = np.random.default_rng(SEED * 1000 + i)
                row0 = rows_per_client * i
                try:
                    with make_client(srv, f"soak{i}", max_retries=60,
                                     seed=i, timeout=60.0) as cl:
                        while time.monotonic() < stop_at:
                            op = rng.integers(0, 10)
                            if op < 5:
                                val = float(rng.integers(1, 1000))
                                cl.write("soak", (row0, 0),
                                         np.full((rows_per_client, 16),
                                                 val))
                                last_val[i] = val
                            elif op < 8:
                                got = cl.read(
                                    "soak", (row0, 0),
                                    (row0 + rows_per_client, 16))
                                # own band only ever holds own values
                                assert got.shape == (rows_per_client,
                                                     16)
                                vals = set(np.unique(got))
                                assert vals <= {0.0, last_val[i]} or \
                                    len(vals) == 1
                            elif op < 9:
                                cl.extend("soak", to=shape)  # no-op
                            else:
                                cl.flush("soak")
                            issued[i] += 1
                except Exception as exc:   # noqa: BLE001 - recorded
                    failures.append((i, repr(exc)))

            threads = [threading.Thread(target=tenant, args=(i,))
                       for i in range(nclients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(seconds + 120)
                assert not t.is_alive(), \
                    "soak deadlock: tenant thread never finished"
            assert not failures, failures
            assert sum(issued) > 0
            snap = srv.qos.snapshot()
            # counter conservation per client and in aggregate
            for name, rec in snap["clients"].items():
                assert rec["requests"] == (
                    rec["ok"] + rec["errors"] + rec["retry_later"]
                    + rec["deadline_misses"]), name
            tot = snap["totals"]
            assert tot["requests"] == (
                tot["ok"] + tot["errors"] + tot["retry_later"]
                + tot["deadline_misses"])
            assert tot["errors"] == 0
            # admission bounds were honoured throughout
            assert snap["inflight_hw"] <= 8
            assert snap["queue_depth_hw"] <= 2 * nclients
            # quiescent: nothing in flight, no lock leaked
            st = srv.stats_snapshot()
            assert st["inflight"] == 0
            assert st["chunk_locks_held"] == 0
            # every band holds exactly its tenant's last acked value
            with make_client(srv, "verify") as cl:
                final = cl.read("soak", (0, 0), shape)
            for i in range(nclients):
                band = final[rows_per_client * i:
                             rows_per_client * (i + 1)]
                assert np.array_equal(
                    band, np.full((rows_per_client, 16),
                                  last_val[i])), f"band {i} torn"
            srv.shutdown(drain=True)
            f = DRXFile.open_pfs(fs, "soak")
            assert np.array_equal(f.read((0, 0), shape), final)
            f.close()
