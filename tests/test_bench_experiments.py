"""Tests for the experiment aggregator (repro.bench.experiments)."""

from __future__ import annotations

import pytest

from repro.bench import experiments


def test_discover_finds_every_design_id():
    found = experiments.discover()
    for ident in experiments.ORDER:
        assert ident in found, f"missing benchmark module for {ident}"


def test_run_single(capsys):
    n = experiments.run(["a2"])
    assert n == 1
    out = capsys.readouterr().out
    assert "A2 (ablation)" in out
    assert "merged (paper)" in out


def test_unknown_id_rejected():
    with pytest.raises(SystemExit):
        experiments.run(["zz9"])


def test_every_module_has_run_experiment_and_shape_test():
    """Each benchmark module must expose run_experiment() and at least
    one plain (non-benchmark) shape assertion test."""
    import ast
    for ident, path in experiments.discover().items():
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree)
                 if isinstance(n, (ast.FunctionDef,))}
        assert "run_experiment" in names, ident
        assert any(n.startswith("test_shape") or n.startswith("test_")
                   for n in names), ident
