"""Tests for strided hyperslab selections."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DRXIndexError, Hyperslab
from repro.drx import DRXFile
from repro.workloads import pattern_array


class TestGeometry:
    def test_shape_and_bbox(self):
        h = Hyperslab.build((1, 2), (3, 4), (5, 2))
        assert h.shape == (5, 2)
        assert h.nelems == 10
        lo, hi = h.bounding_box()
        assert lo == (1, 2)
        assert hi == (1 + 4 * 3 + 1, 2 + 1 * 4 + 1)

    def test_validation(self):
        with pytest.raises(DRXIndexError):
            Hyperslab.build((0,), (0,), (2,))
        with pytest.raises(DRXIndexError):
            Hyperslab.build((-1,), (1,), (2,))
        with pytest.raises(DRXIndexError):
            Hyperslab.build((0,), (1,), (0,))
        with pytest.raises(DRXIndexError):
            Hyperslab.build((0, 0), (1,), (2, 2))
        h = Hyperslab.build((0,), (2,), (5,))
        with pytest.raises(DRXIndexError):
            h.validate((8,))
        h.validate((9,))

    def test_box_selector_picks_lattice(self):
        h = Hyperslab.build((1,), (3,), (4,))   # elements 1, 4, 7, 10
        sel = h.box_selector((3,), (9,))        # box holds 4, 7
        assert sel is not None
        box_sl, out_sl = sel
        assert box_sl == (slice(1, 5, 3),)      # 4-3=1, 7-3=4
        assert out_sl == (slice(1, 3),)

    def test_box_selector_empty(self):
        h = Hyperslab.build((0,), (10,), (3,))  # 0, 10, 20
        assert h.box_selector((1,), (10,)) is None
        assert h.box_selector((21,), (25,)) is None


class TestFileIO:
    def test_read_matches_numpy(self, tmp_path):
        ref = pattern_array((17, 23))
        with DRXFile.create(tmp_path / "s", (17, 23), (4, 5)) as a:
            a.write((0, 0), ref)
            got = a.read_slab((2, 1), (3, 4), (5, 5))
            assert np.array_equal(got, ref[2:2 + 15:3, 1:1 + 20:4])
            # unit stride degenerates to a box read
            got = a.read_slab((3, 3), (1, 1), (4, 4))
            assert np.array_equal(got, ref[3:7, 3:7])

    def test_write_touches_only_lattice(self, tmp_path):
        ref = pattern_array((12, 12))
        with DRXFile.create(tmp_path / "w", (12, 12), (5, 5)) as a:
            a.write((0, 0), ref)
            a.write_slab((1, 1), (2, 3), np.zeros((5, 4)))
            got = a.read()
            want = ref.copy()
            want[1:1 + 10:2, 1:1 + 12:3] = 0
            assert np.array_equal(got, want)

    def test_slab_beyond_bounds_rejected(self, tmp_path):
        with DRXFile.create(tmp_path / "b", (10,), (3,)) as a:
            a.read_slab((0,), (3,), (4,))        # last = 9: in bounds
            with pytest.raises(DRXIndexError):
                a.read_slab((0,), (3,), (5,))    # last = 12: outside

    def test_slab_roundtrip_3d(self, tmp_path):
        ref = pattern_array((9, 8, 7))
        with DRXFile.create(tmp_path / "t", (9, 8, 7), (2, 3, 4)) as a:
            a.write((0, 0, 0), ref)
            got = a.read_slab((1, 0, 2), (2, 3, 2), (4, 3, 3))
            assert np.array_equal(
                got, ref[1:1 + 8:2, 0:0 + 9:3, 2:2 + 6:2])


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_property_slab_matches_numpy(data):
    k = data.draw(st.integers(1, 3))
    shape = tuple(data.draw(st.integers(4, 14)) for _ in range(k))
    chunk = tuple(data.draw(st.integers(1, 5)) for _ in range(k))
    start = tuple(data.draw(st.integers(0, s - 1)) for s in shape)
    stride = tuple(data.draw(st.integers(1, 4)) for _ in range(k))
    count = tuple(
        data.draw(st.integers(1, max(1, (s - st0 - 1) // sd + 1)))
        for s, st0, sd in zip(shape, start, stride)
    )
    ref = pattern_array(shape)
    a = DRXFile.create(None, shape, chunk)
    a.write(tuple(0 for _ in shape), ref)
    got = a.read_slab(start, stride, count)
    want = ref[tuple(slice(s, s + (c - 1) * sd + 1, sd)
                     for s, sd, c in zip(start, stride, count))]
    assert np.array_equal(got, want)
    a.close()
