"""Tests of the Global-Array-style one-sided layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.drxmp import BlockCyclicPartition, DRXMPFile, GlobalArray
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array


def run(n, fn, *args, **kw):
    return mpi.mpiexec(n, fn, *args, timeout=kw.pop("timeout", 60), **kw)


class TestOwnership:
    def test_owner_and_slot_consistent_across_ranks(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "O", (8, 8), (2, 2))
            ga = GlobalArray.from_file(a)
            # ownership arithmetic must agree on every rank
            table = [ga.owner_and_slot((i, j))
                     for i in range(4) for j in range(4)]
            tables = comm.allgather(table)
            a.close()
            return all(t == tables[0] for t in tables)
        assert all(run(4, body))

    def test_every_chunk_owned_exactly_once(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "O2", (8, 8), (2, 2))
            ga = GlobalArray.from_file(a)
            owners = [ga.owner_and_slot((i, j))[0]
                      for i in range(4) for j in range(4)]
            counts = comm.allgather(len(ga.local_addresses))
            a.close()
            return sum(counts) == 16 and set(owners) <= set(range(comm.size))
        assert all(run(4, body))


class TestGetPutAcc:
    def test_get_whole_array_any_rank(self, pfs):
        ref = pattern_array((9, 7))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "G", (9, 7), (2, 3))
            if comm.rank == comm.size - 1:
                a.write((0, 0), ref)
            comm.barrier()
            ga = GlobalArray.from_file(a)
            got = ga.get((0, 0), (9, 7))
            a.close()
            return np.array_equal(got, ref)
        assert all(run(4, body))

    def test_put_visible_everywhere(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "P", (8, 8), (2, 2))
            ga = GlobalArray.from_file(a)
            if comm.rank == 0:
                ga.put((3, 3), np.full((3, 3), 42.0))
            ga.sync()
            got = ga.get((3, 3), (6, 6))
            a.close()
            return np.all(got == 42.0)
        assert all(run(4, body))

    def test_put_preserves_neighbours(self, pfs):
        ref = pattern_array((6, 6))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "PN", (6, 6), (4, 4))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            ga = GlobalArray.from_file(a)
            if comm.rank == 1:
                # partial-chunk put: must read-modify-write
                ga.put((1, 1), np.zeros((2, 2)))
            ga.sync()
            got = ga.get((0, 0), (6, 6))
            want = ref.copy()
            want[1:3, 1:3] = 0
            a.close()
            return np.array_equal(got, want)
        assert all(run(2, body))

    def test_acc_sums_atomically(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "ACC", (4, 4), (2, 2))
            ga = GlobalArray.from_file(a)
            for _ in range(10):
                ga.acc((0, 0), np.ones((4, 4)))
            ga.sync()
            got = ga.get((0, 0), (4, 4))
            a.close()
            return np.all(got == 10 * comm.size)
        assert all(run(4, body))

    def test_local_elements_and_update(self, pfs):
        ref = pattern_array((8, 8))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "L", (8, 8), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            ga = GlobalArray.from_file(a)
            local, lo = ga.local_elements()
            want = ref[lo[0]:lo[0] + local.shape[0],
                       lo[1]:lo[1] + local.shape[1]]
            ok = np.array_equal(local, want)
            # double the local zone, write back, verify globally
            ga.update_local(local * 2)
            ga.sync()
            got = ga.get((0, 0), (8, 8))
            a.close()
            return ok and np.array_equal(got, ref * 2)
        assert all(run(4, body))


class TestFileRoundtrip:
    def test_to_file_from_file(self, pfs):
        ref = pattern_array((10, 10))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "RT", (10, 10), (3, 3))
            ga = GlobalArray.from_file(a)
            if comm.rank == 0:
                ga.put((0, 0), ref)
            ga.sync()
            ga.to_file(a)
            comm.barrier()
            got = a.read((0, 0), (10, 10))
            a.close()
            return np.array_equal(got, ref)
        assert all(run(4, body))

    def test_block_cyclic_distribution(self, pfs):
        ref = pattern_array((8, 8))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "BC", (8, 8), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            part = BlockCyclicPartition(a.meta.chunk_bounds, comm.size,
                                        block=1)
            ga = GlobalArray.from_file(a, part)
            got = ga.get((0, 0), (8, 8))
            a.close()
            return np.array_equal(got, ref)
        assert all(run(4, body))

    def test_extended_array_through_ga(self, pfs):
        """GA over an array with a non-trivial growth history: the slot
        arithmetic must follow the axial addresses, not row-major."""
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "EX", (4, 4), (2, 2))
            a.extend(1, 4)
            a.extend(0, 4)
            ref = pattern_array((8, 8))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            ga = GlobalArray.from_file(a)
            got = ga.get((0, 0), (8, 8))
            a.close()
            return np.array_equal(got, ref)
        assert all(run(4, body))
