"""The resilience layer: fault plans, injection, retries, checksums.

The acceptance bar of the fault-tolerance work: a seeded fault plan
injecting transient faults into every ByteStore entry point (scalar and
vectored) must let a full write/extend/read cycle complete with retries
and end byte-identical; ``scrub()`` must pinpoint a deliberately torn
chunk.  ``DRX_FAULT_SEED`` parameterizes the seeded tests so CI can
sweep several seeds over the same test body.
"""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro.core.errors import (
    ChecksumError,
    CrashError,
    DRXFileError,
    PFSError,
)
from repro.drx import (
    DRXFile,
    DRXSingleFile,
    FaultInjector,
    FaultPlan,
    MemoryByteStore,
    PosixByteStore,
    RetryingByteStore,
    is_transient,
)
from repro.pfs.server import IOServer
from repro.workloads import pattern_array

#: CI sweeps this over several values; each seed replays deterministically.
SEED = int(os.environ.get("DRX_FAULT_SEED", "0"))


def flaky_wrapper(plan: FaultPlan, seed: int = SEED, max_retries: int = 8):
    """The canonical store decoration for running over a flaky medium."""
    def wrap(store, role):
        return RetryingByteStore(FaultInjector(store, plan),
                                 max_retries=max_retries,
                                 base_delay=1e-6, max_delay=1e-5,
                                 seed=seed)
    return wrap


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_deterministic_for_a_seed(self):
        def run(seed):
            plan = FaultPlan(seed=seed)
            plan.fail("read", p=0.5, times=None)
            return [plan.consult("read") is not None for _ in range(64)]

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7)) and not all(run(7))

    def test_after_and_times_windows(self):
        plan = FaultPlan()
        plan.fail("write", after=2, times=2)
        fired = [plan.consult("write") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_wildcard_covers_every_store_op(self):
        plan = FaultPlan()
        plan.fail("*", times=None)
        for op in ("read", "write", "readv", "writev", "flush",
                   "truncate", "replace"):
            assert plan.consult(op) is not None, op
            assert plan.injected[op] == 1

    def test_kind_filtering_per_op_class(self):
        """Read-side consults never see torn-write rules and vice versa."""
        plan = FaultPlan()
        plan.short_read(times=None)
        plan.torn_write(times=None)
        assert plan.consult("writev").kind == "torn_write"
        assert plan.consult("read").kind == "short_read"
        assert plan.consult("flush") is None

    def test_unknown_crash_site_rejected(self):
        from repro.core.errors import DRXError
        plan = FaultPlan()
        with pytest.raises(DRXError):
            plan.note_site("no.such.site")


# ---------------------------------------------------------------------------
# error classification
# ---------------------------------------------------------------------------

class TestClassification:
    def test_is_transient(self):
        assert is_transient(PFSError("busy"))
        assert not is_transient(CrashError("died"))
        assert not is_transient(DRXFileError("bad mode"))
        assert is_transient(OSError(errno.EINTR, "interrupted"))
        assert is_transient(OSError(errno.EIO, "io"))
        assert not is_transient(OSError(errno.EPERM, "denied"))
        assert not is_transient(ValueError("nope"))

    def test_explicit_flag_wins(self):
        exc = ValueError("custom")
        exc.transient = True
        assert is_transient(exc)
        exc2 = PFSError("fatal variant")
        exc2.transient = False
        assert not is_transient(exc2)


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_error_leaves_store_untouched(self):
        plan = FaultPlan()
        plan.fail("write", times=1)
        inner = MemoryByteStore()
        store = FaultInjector(inner, plan)
        with pytest.raises(PFSError):
            store.write(0, b"AAAA")
        assert inner.size == 0
        store.write(0, b"AAAA")          # rule exhausted
        assert inner.read(0, 4) == b"AAAA"

    def test_short_read_truncates(self):
        plan = FaultPlan()
        plan.short_read(keep=0.25, times=1)
        store = FaultInjector(MemoryByteStore(), plan)
        store.write(0, b"x" * 64)
        assert store.read(0, 64) == b"x" * 16
        assert store.read(0, 64) == b"x" * 64

    def test_torn_write_applies_prefix(self):
        plan = FaultPlan()
        plan.torn_write(keep=0.5, times=1)
        inner = MemoryByteStore()
        store = FaultInjector(inner, plan)
        with pytest.raises(PFSError):
            store.write(0, b"ABCDEFGH")
        assert inner.read(0, 8) == b"ABCD\x00\x00\x00\x00"

    def test_torn_writev_applies_prefix_extents(self):
        plan = FaultPlan()
        plan.torn_write(keep=0.75, times=1, op="writev")
        inner = MemoryByteStore()
        store = FaultInjector(inner, plan)
        with pytest.raises(PFSError):
            store.writev([(0, 4), (8, 4)], b"ABCDEFGH")
        # 6 of 8 bytes applied: the first extent whole, half the second
        assert inner.read(0, 12) == b"ABCD\x00\x00\x00\x00EF\x00\x00"

    def test_stats_are_shared_with_inner(self):
        inner = MemoryByteStore()
        store = FaultInjector(inner, FaultPlan())
        store.write(0, b"ab")
        store.read(0, 2)
        assert store.stats is inner.stats


# ---------------------------------------------------------------------------
# the retry layer
# ---------------------------------------------------------------------------

class TestRetryingByteStore:
    def _stack(self, plan, **kw):
        inner = MemoryByteStore()
        kw.setdefault("base_delay", 0.0)
        kw.setdefault("seed", SEED)
        return inner, RetryingByteStore(FaultInjector(inner, plan), **kw)

    def test_heals_transient_errors(self):
        plan = FaultPlan()
        plan.fail("write", times=2)
        inner, store = self._stack(plan)
        store.write(0, b"DATA")
        assert inner.read(0, 4) == b"DATA"
        assert store.stats.retries == 2
        assert store.stats.giveups == 0

    def test_heals_short_reads(self):
        plan = FaultPlan()
        plan.short_read(keep=0.5, times=1)
        inner, store = self._stack(plan)
        store.write(0, b"y" * 32)
        assert store.read(0, 32) == b"y" * 32
        assert store.stats.short_reads >= 1
        assert store.stats.retries >= 1

    def test_heals_short_readv(self):
        plan = FaultPlan()
        plan.short_read(keep=0.5, times=1, op="readv")
        inner, store = self._stack(plan)
        store.write(0, b"z" * 32)
        assert store.readv([(0, 16), (16, 16)]) == b"z" * 32
        assert store.stats.retries >= 1

    def test_heals_torn_writev(self):
        """Positional writes are idempotent, so re-issuing a torn
        vectored write converges to the full payload."""
        plan = FaultPlan()
        plan.torn_write(keep=0.4, times=1)
        inner, store = self._stack(plan)
        store.writev([(0, 4), (8, 4)], b"ABCDEFGH")
        assert inner.read(0, 4) == b"ABCD"
        assert inner.read(8, 4) == b"EFGH"
        assert store.stats.retries >= 1

    def test_gives_up_after_max_retries(self):
        plan = FaultPlan()
        plan.fail("read", times=None)
        _inner, store = self._stack(plan, max_retries=3)
        with pytest.raises(PFSError):
            store.read(0, 8)
        assert store.stats.retries == 3
        assert store.stats.giveups == 1

    def test_crash_is_never_retried(self):
        plan = FaultPlan()
        plan.crash("write")
        _inner, store = self._stack(plan)
        with pytest.raises(CrashError):
            store.write(0, b"ab")
        assert store.stats.retries == 0
        assert store.stats.giveups == 1

    def test_permanent_error_surfaces_immediately(self):
        plan = FaultPlan()
        plan.fail("write", times=None,
                  error=lambda d: DRXFileError(f"permanent: {d}"))
        _inner, store = self._stack(plan)
        with pytest.raises(DRXFileError):
            store.write(0, b"ab")
        assert store.stats.retries == 0

    def test_backoff_is_deterministic(self):
        delays: list[float] = []
        plan = FaultPlan()
        plan.fail("read", times=4)
        inner = MemoryByteStore()
        store = RetryingByteStore(FaultInjector(inner, plan),
                                  base_delay=0.001, max_delay=0.004,
                                  seed=42, sleep=delays.append)
        store.read(0, 4)
        plan2 = FaultPlan()
        plan2.fail("read", times=4)
        delays2: list[float] = []
        store2 = RetryingByteStore(FaultInjector(MemoryByteStore(), plan2),
                                   base_delay=0.001, max_delay=0.004,
                                   seed=42, sleep=delays2.append)
        store2.read(0, 4)
        assert delays == delays2
        assert len(delays) == 4
        # exponential envelope with jitter in [0.5, 1.5)
        assert 0.0005 <= delays[0] < 0.0015
        assert delays[3] <= 0.006


# ---------------------------------------------------------------------------
# the POSIX short-read loop
# ---------------------------------------------------------------------------

class TestPosixShortReads:
    def test_partial_pread_is_looped_not_zero_padded(self, tmp_path,
                                                     monkeypatch):
        payload = bytes(range(200))
        p = tmp_path / "f.bin"
        p.write_bytes(payload)
        store = PosixByteStore(p, "r")
        real_pread = os.pread
        monkeypatch.setattr(
            "repro.drx.storage.os.pread",
            lambda fd, n, off: real_pread(fd, min(n, 7), off))
        assert store.read(0, 100) == payload[:100]
        assert store.stats.short_reads > 0
        # true EOF still zero-fills, but only past the end
        assert store.read(150, 100) == payload[150:] + bytes(50)
        store.close()


# ---------------------------------------------------------------------------
# checksums + scrub
# ---------------------------------------------------------------------------

class TestChecksums:
    def test_fault_in_detects_corruption(self, tmp_path):
        with DRXFile.create(tmp_path / "c", (4, 4), (2, 2),
                            checksums=True) as a:
            a.write((0, 0), pattern_array((4, 4)))
        raw = bytearray((tmp_path / "c.xta").read_bytes())
        raw[5] ^= 0xFF
        (tmp_path / "c.xta").write_bytes(bytes(raw))
        with DRXFile.open(tmp_path / "c") as b:
            with pytest.raises(ChecksumError):
                b.read()

    def test_streaming_read_detects_corruption(self, tmp_path):
        """Reads too large for the pool stream around it — they must
        still verify checksums."""
        with DRXFile.create(tmp_path / "s", (8, 8), (2, 2),
                            checksums=True, cache_pages=2) as a:
            a.write((0, 0), pattern_array((8, 8)))
        raw = bytearray((tmp_path / "s.xta").read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        (tmp_path / "s.xta").write_bytes(bytes(raw))
        with DRXFile.open(tmp_path / "s", cache_pages=2) as b:
            with pytest.raises(ChecksumError):
                b.read()          # 16 chunks >> 2 pages -> streaming

    def test_scrub_pinpoints_torn_chunk(self, tmp_path):
        with DRXFile.create(tmp_path / "t", (4, 4), (2, 2),
                            checksums=True) as a:
            a.write((0, 0), pattern_array((4, 4)))
            nb = a.meta.chunk_nbytes
        raw = bytearray((tmp_path / "t.xta").read_bytes())
        raw[2 * nb + 3] ^= 0xFF           # tear chunk address 2
        (tmp_path / "t.xta").write_bytes(bytes(raw))
        with DRXFile.open(tmp_path / "t") as b:
            report = b.scrub()
        assert not report.ok
        assert report.corrupt == [2]
        assert report.checked == 4
        assert report.total_chunks == 4

    def test_scrub_clean_array(self, tmp_path):
        with DRXFile.create(tmp_path / "ok", (4, 4), (2, 2),
                            checksums=True) as a:
            a.write((0, 0), pattern_array((4, 4)))
            report = a.scrub()
        assert report.ok and report.checked == 4 and not report.corrupt

    def test_scrub_without_checksums_is_vacuous(self, tmp_path):
        with DRXFile.create(tmp_path / "n", (4, 4), (2, 2)) as a:
            a.write((0, 0), pattern_array((4, 4)))
            assert not a.checksums_enabled
            report = a.scrub()
        assert report.ok
        assert report.checked == 0
        assert report.unverified == report.total_chunks == 4

    def test_checksums_survive_reopen_and_extend(self, tmp_path):
        with DRXFile.create(tmp_path / "e", (4, 4), (2, 2),
                            checksums=True) as a:
            a.write((0, 0), pattern_array((4, 4)))
        with DRXFile.open(tmp_path / "e", mode="r+") as b:
            assert b.checksums_enabled
            b.extend(0, 2)
            b.write((4, 0), np.ones((2, 4)))
        with DRXFile.open(tmp_path / "e") as c:
            assert c.scrub().ok

    def test_single_file_checksums_and_scrub(self, tmp_path):
        from repro.drx.singlefile import DEFAULT_HEADER_RESERVE
        with DRXSingleFile.create(tmp_path / "sf", (4, 4), (2, 2),
                                  checksums=True) as a:
            a.write((0, 0), pattern_array((4, 4)))
            nb = a.meta.chunk_nbytes
        p = tmp_path / "sf.drx"
        raw = bytearray(p.read_bytes())
        raw[DEFAULT_HEADER_RESERVE + nb + 1] ^= 0xFF   # tear chunk 1
        p.write_bytes(bytes(raw))
        with DRXSingleFile.open(tmp_path / "sf") as b:
            assert b.checksums_enabled
            report = b.scrub()
        assert report.corrupt == [1]


# ---------------------------------------------------------------------------
# the PFS simulator hook
# ---------------------------------------------------------------------------

class TestIOServerHook:
    def test_server_batches_consult_the_plan(self):
        plan = FaultPlan()
        plan.fail("server.read", times=1)
        srv = IOServer(0, fault_plan=plan)
        srv.create_object("x")
        srv.write_batch("x", [(0, b"abc")])
        with pytest.raises(PFSError):
            srv.read_batch("x", [(0, 3)])
        out, _t = srv.read_batch("x", [(0, 3)])
        assert out == [b"abc"]
        plan.fail("server.write", times=1)
        with pytest.raises(PFSError):
            srv.write_batch("x", [(0, b"zzz")])
        assert srv.read_batch("x", [(0, 3)])[0] == [b"abc"]


# ---------------------------------------------------------------------------
# the acceptance cycle: everything at once, over real files
# ---------------------------------------------------------------------------

class TestEndToEndUnderFaults:
    def test_full_cycle_byte_identical_despite_faults(self, tmp_path, rng):
        """A flaky medium (transient faults on ~20% of store calls, on
        every entry point including the vectored ones) must not change a
        single byte of the result — only the stats."""
        plan = FaultPlan(seed=SEED)
        plan.fail("*", p=0.2, times=None)
        wrap = flaky_wrapper(plan)

        ref = rng.random((12, 10))
        tail = rng.random((4, 10))
        with DRXFile.create(tmp_path / "flaky", (12, 10), (4, 4),
                            checksums=True, store_wrapper=wrap) as a:
            for _round in range(8):      # enough traffic that the 20%
                a.write((0, 0), ref)     # rules fire for any seed
                a.flush()
                assert np.allclose(a.read((0, 0), (12, 10)), ref)
            a.extend(0, 4)
            a.write((12, 0), tail)
            assert np.allclose(a.read((0, 0), (12, 10)), ref)
            data_stats = a._data.stats
            meta_stats = a._meta_store.stats
        assert sum(plan.injected.values()) > 0, \
            "the plan never actually fired"
        assert data_stats.retries + meta_stats.retries > 0
        assert data_stats.giveups == 0
        assert meta_stats.giveups == 0

        # a faultless reopen sees exactly the committed bytes
        with DRXFile.open(tmp_path / "flaky") as b:
            assert np.allclose(b.read((0, 0), (12, 10)), ref)
            assert np.allclose(b.read((12, 0), (16, 10)), tail)
            assert b.scrub().ok

        # and a flaky reopen still reads them byte-identically
        plan2 = FaultPlan(seed=SEED + 1)
        plan2.fail("*", p=0.2, times=None)
        with DRXFile.open(tmp_path / "flaky",
                          store_wrapper=flaky_wrapper(plan2)) as c:
            assert np.allclose(c.read((0, 0), (12, 10)), ref)
            assert np.allclose(c.read((12, 0), (16, 10)), tail)

    def test_single_file_cycle_under_faults(self, tmp_path, rng):
        plan = FaultPlan(seed=SEED)
        plan.fail("*", p=0.15, times=None)
        ref = rng.random((8, 8))
        with DRXSingleFile.create(tmp_path / "sff", (8, 8), (3, 3),
                                  checksums=True,
                                  store_wrapper=flaky_wrapper(plan)) as a:
            a.write((0, 0), ref)
            a.extend(1, 3)
            assert np.allclose(a.read((0, 0), (8, 8)), ref)
        with DRXSingleFile.open(tmp_path / "sff") as b:
            assert np.allclose(b.read((0, 0), (8, 8)), ref)
            assert b.scrub().ok
