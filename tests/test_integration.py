"""Cross-library integration tests.

The strongest end-to-end claims of the reproduction:

* a serial DRX file and a parallel DRX-MP file with the same growth
  history are **byte-identical** on disk (``.xta``) and meta-data
  equivalent (``.xmd``) — the serial and parallel libraries implement
  one format;
* data written through any path (serial sub-array, parallel zones,
  GA put) reads back identically through every other path;
* paper claim end to end: growth in any dimension sequence never moves
  a byte of previously written data in the file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core import DRXMeta
from repro.drx import DRXFile, MemExtendibleArray
from repro.drxmp import DRXMPFile, GlobalArray
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array, random_growth


class TestFormatCompatibility:
    def test_serial_and_parallel_files_byte_identical(self, tmp_path, pfs):
        """Same creation, same growth, same writes -> same bytes."""
        history = [(1, 5), (0, 3), (1, 2)]
        ref = pattern_array((8, 10))

        # serial
        ser = DRXFile.create(tmp_path / "s", (8, 10), (2, 3))
        ser.write((0, 0), ref)
        for dim, by in history:
            ser.extend(dim, by)
        ser.write((8, 10), np.full((3, 7), 9.0))
        ser.flush()

        # parallel (single rank for determinism of writes)
        def body(comm):
            par = DRXMPFile.create(comm, pfs, "p", (8, 10), (2, 3))
            par.write((0, 0), ref)
            for dim, by in history:
                par.extend(dim, by)
            par.write((8, 10), np.full((3, 7), 9.0))
            par.close()
            return True
        assert all(mpi.mpiexec(1, body, timeout=30))

        ser_bytes = (tmp_path / "s.xta").read_bytes()
        par_file = pfs.open("p.xta")
        par_bytes = par_file.read(0, par_file.size)
        assert len(ser_bytes) == len(par_bytes)
        assert ser_bytes == par_bytes
        # meta-data equal too
        ser_meta = DRXMeta.from_bytes((tmp_path / "s.xmd").read_bytes())
        xmd = pfs.open("p.xmd")
        par_meta = DRXMeta.from_bytes(xmd.read(0, xmd.size))
        assert ser_meta.to_bytes() == par_meta.to_bytes()

    def test_serial_file_read_through_pfs_import(self, tmp_path, pfs):
        """A DRX file written serially, imported into the PFS, opens in
        DRX-MP and reads identically."""
        ref = pattern_array((9, 9))
        ser = DRXFile.create(tmp_path / "x", (9, 9), (2, 2))
        ser.write((0, 0), ref)
        ser.extend(0, 3)
        ser.write((9, 0), ref[:3])
        ser.close()
        pfs.create("x.xmd").write(0, (tmp_path / "x.xmd").read_bytes())
        pfs.create("x.xta").write(0, (tmp_path / "x.xta").read_bytes())

        def body(comm):
            a = DRXMPFile.open(comm, pfs, "x")
            got = a.read((0, 0), (12, 9))
            a.close()
            want = np.concatenate([ref, ref[:3]], axis=0)
            return np.array_equal(got, want)
        assert all(mpi.mpiexec(4, body, timeout=60))

    def test_memarray_to_parallel(self, tmp_path, pfs):
        """memory array -> serial file -> PFS -> GA -> element checks."""
        m = MemExtendibleArray((4, 6), (2, 2))
        m.write((0, 0), pattern_array((4, 6)))
        m.extend(0, 2)
        m.write((4, 0), np.full((2, 6), 7.0))
        f = m.to_drx(tmp_path / "m")
        f.close()
        pfs.create("m.xmd").write(0, (tmp_path / "m.xmd").read_bytes())
        pfs.create("m.xta").write(0, (tmp_path / "m.xta").read_bytes())
        want = m.to_numpy()

        def body(comm):
            a = DRXMPFile.open(comm, pfs, "m")
            ga = GlobalArray.from_file(a)
            got = ga.get((0, 0), a.shape)
            a.close()
            return np.array_equal(got, want)
        assert all(mpi.mpiexec(2, body, timeout=30))


class TestNoReorganizationEndToEnd:
    def test_written_bytes_never_move(self, tmp_path, rng):
        """After every extension, previously written chunk payload bytes
        occupy the exact same file offsets."""
        a = DRXFile.create(tmp_path / "n", (4, 4), (2, 2))
        ref = pattern_array((4, 4))
        a.write((0, 0), ref)
        a.flush()
        frozen = (tmp_path / "n.xta").read_bytes()
        for dim, by in random_growth(2, 8, seed=11, max_by=3):
            a.extend(dim, by)
            a.flush()
            now = (tmp_path / "n.xta").read_bytes()
            assert now[:len(frozen)] == frozen
            assert len(now) >= len(frozen)
        a.close()

    def test_parallel_extend_preserves_offsets(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "po", (4, 4), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), pattern_array((4, 4)))
            comm.barrier()
            before = pfs.open("po.xta").read(0, 4 * 4 * 8)
            a.extend(1, 6)
            a.extend(0, 2)
            after = pfs.open("po.xta").read(0, 4 * 4 * 8)
            a.close()
            return before == after
        assert all(mpi.mpiexec(2, body, timeout=30))


class TestCrossPathConsistency:
    def test_three_write_paths_agree(self, pfs):
        """Zone-collective writes, independent box writes and GA puts
        produce identical results for identical logical updates."""
        ref = pattern_array((12, 12))

        def write_zones(comm, name):
            a = DRXMPFile.create(comm, pfs, name, (12, 12), (3, 3))
            mem = a.read_zone()
            lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
            mem.array[...] = ref[lo[0]:hi[0], lo[1]:hi[1]]
            a.write_zone(mem)
            a.close()
            return True

        def write_boxes(comm, name):
            a = DRXMPFile.create(comm, pfs, name, (12, 12), (3, 3))
            rows = 12 // comm.size
            lo = comm.rank * rows
            a.write((lo, 0), ref[lo:lo + rows])
            comm.barrier()
            a.close()
            return True

        def write_ga(comm, name):
            a = DRXMPFile.create(comm, pfs, name, (12, 12), (3, 3))
            ga = GlobalArray.from_file(a)
            if comm.rank == 0:
                ga.put((0, 0), ref)
            ga.sync()
            ga.to_file(a)
            a.close()
            return True

        assert all(mpi.mpiexec(4, write_zones, "w1", timeout=60))
        assert all(mpi.mpiexec(4, write_boxes, "w2", timeout=60))
        assert all(mpi.mpiexec(4, write_ga, "w3", timeout=60))
        raw = [pfs.open(f"w{i}.xta") for i in (1, 2, 3)]
        blobs = [f.read(0, f.size) for f in raw]
        assert blobs[0] == blobs[1] == blobs[2]

    def test_complex_dtype_end_to_end(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "cx", (6, 6), (2, 2),
                                 dtype="complex")
            val = np.full((6, 6), 1 + 2j)
            if comm.rank == 0:
                a.write((0, 0), val)
            comm.barrier()
            got = a.read((0, 0), (6, 6))
            a.close()
            return np.array_equal(got, val)
        assert all(mpi.mpiexec(2, body, timeout=30))

    def test_int_dtype_end_to_end(self, tmp_path):
        a = DRXFile.create(tmp_path / "i", (5, 5), (2, 2), dtype="int")
        ref = np.arange(25, dtype=np.int64).reshape(5, 5)
        a.write((0, 0), ref)
        a.extend(0, 3)
        a.close()
        b = DRXFile.open(tmp_path / "i")
        assert b.dtype == np.int64
        assert np.array_equal(b.read((0, 0), (5, 5)), ref)
        b.close()
