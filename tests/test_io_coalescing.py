"""Run-coalesced vectored I/O: planner, stores, pool batches, routing.

Covers the I/O planning layer (:mod:`repro.drx.ioplan`), the vectored
``readv``/``writev`` store entry points, ``Mpool.get_many`` batch
faulting and run-clustered write-back, the ``DRXFile`` routing policy
(pooled batch vs streaming bypass vs legacy per-chunk), and the
pre-coalesced MPI indexed filetype — including equivalence of every path
against the legacy one-call-per-chunk execution on multi-segment
extended arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DRXError, DRXFileError, DRXIndexError
from repro.core.hyperslab import Hyperslab
from repro.core.metadata import DRXMeta
from repro.drx import DRXFile, DRXSingleFile, MemExtendibleArray, Mpool
from repro.drx.ioplan import (
    IOPlan,
    Visit,
    coalesce_addresses,
    plan_box,
    plan_slab,
)
from repro.drx.storage import MemoryByteStore
from repro.drxmp.subarray import chunk_datatype, indexed_filetype


class RecordingStore(MemoryByteStore):
    """A memory store that logs every physical/vectored call."""

    def __init__(self) -> None:
        super().__init__()
        self.calls: list[tuple] = []

    def read(self, offset, length):
        self.calls.append(("read", offset, length))
        return super().read(offset, length)

    def write(self, offset, data):
        self.calls.append(("write", offset, len(data)))
        super().write(offset, data)

    def readv(self, extents):
        self.calls.append(("readv", tuple(extents)))
        return super().readv(extents)

    def writev(self, extents, data):
        self.calls.append(("writev", tuple(extents)))
        super().writev(extents, data)


# ----------------------------------------------------------------------
# coalesce_addresses / IOPlan
# ----------------------------------------------------------------------
class TestCoalesce:
    def test_single_run(self):
        starts, counts = coalesce_addresses([3, 4, 5, 6])
        assert starts.tolist() == [3]
        assert counts.tolist() == [4]

    def test_multiple_runs(self):
        starts, counts = coalesce_addresses([0, 1, 4, 5, 6, 9])
        assert starts.tolist() == [0, 4, 9]
        assert counts.tolist() == [2, 3, 1]

    def test_empty(self):
        starts, counts = coalesce_addresses([])
        assert starts.size == 0 and counts.size == 0

    def test_singleton(self):
        starts, counts = coalesce_addresses([7])
        assert starts.tolist() == [7] and counts.tolist() == [1]

    def test_rejects_unsorted(self):
        with pytest.raises(DRXIndexError):
            coalesce_addresses([2, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(DRXIndexError):
            coalesce_addresses([1, 1, 2])

    def test_ioplan_runs_and_extents(self):
        visits = [
            Visit(a, (slice(None),), (slice(None),), True)
            for a in (2, 3, 7, 8, 9)
        ]
        plan = IOPlan(visits, chunk_nbytes=10)
        assert plan.num_chunks == 5
        assert plan.num_runs == 2
        assert plan.byte_extents() == [(20, 20), (70, 30)]
        groups = [(r.start, [v.address for v in vs])
                  for r, vs in plan.run_visits()]
        assert groups == [(2, [2, 3]), (7, [7, 8, 9])]


class TestPlanners:
    def test_plan_box_sorted_full_flags(self, fig1_index):
        # fig1 grid is 5x4 chunks; a 2x2-chunk box with chunk shape (2,2)
        plan = plan_box(fig1_index, (0, 0), (4, 4), (2, 2), 32)
        addrs = plan.addresses
        assert addrs == sorted(addrs)
        assert all(v.full for v in plan.visits)

    def test_plan_box_partial_chunks(self, fig1_index):
        plan = plan_box(fig1_index, (1, 1), (4, 4), (2, 2), 32)
        assert not all(v.full for v in plan.visits)
        assert plan.addresses == sorted(plan.addresses)

    def test_plan_slab_drops_empty_chunks(self, fig1_index):
        # stride 4 with chunk shape (2,2): only every other chunk holds
        # a lattice point
        slab = Hyperslab.build((0, 0), (4, 4), (2, 2))
        plan = plan_slab(fig1_index, slab, (2, 2), 32)
        box = plan_box(fig1_index, (0, 0), (5, 5), (2, 2), 32)
        assert plan.num_chunks < box.num_chunks
        assert plan.addresses == sorted(plan.addresses)
        # a strided pick of one element per chunk is never "full"
        assert not any(v.full for v in plan.visits)


# ----------------------------------------------------------------------
# vectored store entry points
# ----------------------------------------------------------------------
class TestVectoredStores:
    def test_readv_concatenates_in_request_order(self):
        st = MemoryByteStore()
        st.write(0, bytes(range(16)))
        assert st.readv([(0, 4), (8, 4)]) == bytes(range(4)) + \
            bytes(range(8, 12))

    def test_readv_past_eof_zero_fills(self):
        st = MemoryByteStore()
        st.write(0, b"ab")
        assert st.readv([(0, 4)]) == b"ab\x00\x00"

    def test_writev_scatter(self):
        st = MemoryByteStore()
        st.writev([(0, 2), (4, 2)], b"abcd")
        assert st.read(0, 6) == b"ab\x00\x00cd"

    def test_writev_length_mismatch_raises_before_writing(self):
        st = MemoryByteStore()
        with pytest.raises(DRXFileError):
            st.writev([(0, 4)], b"ab")
        assert st.size == 0          # nothing was written

    def test_counters(self):
        st = MemoryByteStore()
        st.writev([(0, 2), (4, 2)], b"abcd")
        st.readv([(0, 2), (4, 2)])
        s = st.stats
        assert s.readv_calls == 1 and s.writev_calls == 1
        assert s.coalesced_runs == 4
        assert s.reads == 2 and s.writes == 2
        assert s.syscalls == 4
        assert s.bytes_read == 4 and s.bytes_written == 4
        assert s.bytes_per_call == pytest.approx(2.0)

    def test_snapshot_delta_reset(self):
        st = MemoryByteStore()
        st.write(0, b"abcd")
        snap = st.stats.snapshot()
        st.read(0, 4)
        d = st.stats.delta(snap)
        assert d.reads == 1 and d.writes == 0 and d.bytes_read == 4
        st.stats.reset()
        assert st.stats.syscalls == 0 and st.stats.bytes_moved == 0


# ----------------------------------------------------------------------
# Mpool batches
# ----------------------------------------------------------------------
class TestPoolBatch:
    def test_get_many_single_vectored_fault(self):
        st = RecordingStore()
        st.write(0, bytes(range(64)))
        pool = Mpool(st, page_size=8, max_pages=8)
        bufs = pool.get_many([0, 1, 2, 5])
        assert [bytes(b) for b in bufs] == [
            bytes(range(0, 8)), bytes(range(8, 16)),
            bytes(range(16, 24)), bytes(range(40, 48)),
        ]
        readvs = [c for c in st.calls if c[0] == "readv"]
        assert readvs == [("readv", ((0, 24), (40, 8)))]
        assert pool.stats.misses == 4 and pool.stats.hits == 0
        assert pool.stats.syscalls == 2          # two runs
        assert pool.stats.coalesced_runs == 2
        assert pool.stats.bytes_faulted == 32
        pool.put_many([0, 1, 2, 5])
        assert pool.pinned_pages == 0

    def test_get_many_mixed_hits_and_duplicates(self):
        st = MemoryByteStore()
        pool = Mpool(st, page_size=4, max_pages=4)
        pool.get(1)
        pool.put(1)
        bufs = pool.get_many([2, 1, 2])
        assert len(bufs) == 3
        assert pool.stats.hits == 1 and pool.stats.misses == 2
        assert pool._pages[2].pins == 2 and pool._pages[1].pins == 1
        pool.put_many([2, 1, 2])
        assert pool.pinned_pages == 0

    def test_get_many_capacity_error(self):
        pool = Mpool(MemoryByteStore(), page_size=4, max_pages=2)
        with pytest.raises(DRXError):
            pool.get_many([0, 1, 2])

    def test_get_many_keeps_resident_pinned_batch_safe(self):
        # residents must not be evicted while the batch faults the rest
        st = MemoryByteStore()
        pool = Mpool(st, page_size=4, max_pages=2)
        pool.get(5)
        pool.put(5, dirty=True)
        bufs = pool.get_many([5, 0])
        assert 5 in pool._pages and 0 in pool._pages
        bufs[0][:] = 7
        pool.put_many([5, 0], dirty=True)
        pool.flush()
        assert st.read(20, 4) == bytes([7, 7, 7, 7])

    def test_eviction_clusters_dirty_neighbours(self):
        st = RecordingStore()
        pool = Mpool(st, page_size=4, max_pages=4)
        for p in (0, 1, 2):
            pool.get(p)
            pool.put(p, dirty=True)
        pool.get(3)
        pool.put(3)
        pool.get(9)                   # evicts page 0 -> drags 1, 2 along
        pool.put(9)
        writevs = [c for c in st.calls if c[0] == "writev"]
        assert writevs == [("writev", ((0, 12),))]
        assert pool.stats.evictions == 1
        assert pool.stats.writebacks == 3
        # neighbours stayed cached, now clean
        assert 1 in pool._pages and not pool._pages[1].dirty

    def test_flush_writes_sorted_coalesced_runs(self):
        st = RecordingStore()
        pool = Mpool(st, page_size=4, max_pages=8)
        for p in (6, 2, 0, 5, 1):     # dirty in scrambled LRU order
            pool.get(p)
            pool.put(p, dirty=True)
        st.calls.clear()
        pool.flush()
        writevs = [c for c in st.calls if c[0] == "writev"]
        assert writevs == [("writev", ((0, 12), (20, 8)))]
        assert pool.stats.writebacks == 5
        assert pool.stats.coalesced_runs == 2

    def test_streaming_coherence_hooks(self):
        st = MemoryByteStore()
        pool = Mpool(st, page_size=4, max_pages=4)
        buf = pool.get(2)
        buf[:] = 9
        pool.put(2, dirty=True)
        assert bytes(pool.peek_dirty(2)) == bytes([9] * 4)
        assert pool.peek_dirty(0) is None      # not resident
        pool.get(1)
        pool.put(1)
        assert pool.peek_dirty(1) is None      # resident but clean
        pool.refresh(2, bytes([5] * 4))
        assert pool.peek_dirty(2) is None      # refreshed -> clean
        assert bytes(pool._pages[2].buf) == bytes([5] * 4)
        pool.refresh(3, bytes([1] * 4))        # absent page: no-op


# ----------------------------------------------------------------------
# DRXFile routing: coalesced paths vs the legacy per-chunk path
# ----------------------------------------------------------------------
def _grow_reference(a: DRXFile, rng) -> np.ndarray:
    """Extend ``a`` along both dims (multi-segment layout) and fill it
    with random data through the coalesced path; returns a dense copy."""
    a.extend(0, 5)
    a.extend(1, 7)
    a.extend(0, 3)
    ref = rng.random(a.shape)
    a.write((0, 0), ref)
    return ref


class TestFileRouting:
    def test_box_roundtrip_matches_per_chunk_path(self, tmp_path, rng):
        a = DRXFile.create(tmp_path / "a", (6, 6), (3, 3), cache_pages=4)
        ref = _grow_reference(a, rng)
        assert np.allclose(a.read(), ref)
        a.close()
        # the legacy path sees the very same bytes
        b = DRXFile.open(tmp_path / "a", cache_pages=4, coalesce=False)
        assert np.allclose(b.read(), ref)
        assert np.allclose(b.read((2, 3), (9, 11)), ref[2:9, 3:11])
        b.close()

    def test_per_chunk_write_read_by_coalesced(self, tmp_path, rng):
        ref = rng.random((11, 13))
        a = DRXFile.create(tmp_path / "a", (11, 13), (3, 4),
                           cache_pages=4, coalesce=False)
        a.write((0, 0), ref)
        a.close()
        b = DRXFile.open(tmp_path / "a", cache_pages=4)
        assert np.allclose(b.read(), ref)
        b.close()

    def test_slab_roundtrip_matches_per_chunk_path(self, tmp_path, rng):
        a = DRXFile.create(tmp_path / "a", (6, 6), (3, 3),
                           cache_pages=4, coalesce=True)
        ref = _grow_reference(a, rng)
        got = a.read_slab((1, 0), (3, 2), (4, 6))
        assert np.allclose(got, ref[1::3, 0::2][:4, :6])
        patch = rng.random((4, 6))
        a.write_slab((1, 0), (3, 2), patch)
        a.close()
        b = DRXFile.open(tmp_path / "a", mode="r", coalesce=False)
        ref[1::3, 0::2][:4, :6] = patch
        assert np.allclose(b.read(), ref)
        assert np.allclose(b.read_slab((1, 0), (3, 2), (4, 6)), patch)
        b.close()

    def test_streaming_read_sees_dirty_pool_pages(self, rng):
        # pool smaller than the request, with an unflushed element write
        a = DRXFile.create(None, (8, 8), (2, 2), cache_pages=2)
        ref = rng.random((8, 8))
        a.write((0, 0), ref)
        a.put((5, 5), 42.0)           # dirty page in the pool
        ref[5, 5] = 42.0
        got = a.read()                # 16 chunks > 2 pages -> streams
        assert np.allclose(got, ref)
        a.close()

    def test_streaming_write_refreshes_cached_pages(self, rng):
        a = DRXFile.create(None, (8, 8), (2, 2), cache_pages=2)
        a.put((0, 0), 1.0)            # page 0 cached and dirty
        ref = rng.random((8, 8))
        a.write((0, 0), ref)          # streams; must refresh page 0
        assert a.get((0, 0)) == ref[0, 0]
        assert np.allclose(a.read(), ref)
        a.close()

    def test_contiguous_scan_is_coalesced(self, rng):
        a = DRXFile.create(None, (16, 16), (4, 4), cache_pages=8)
        ref = rng.random((16, 16))
        a.write((0, 0), ref)          # 16 full chunks, one run
        a.flush()
        st = a._data.stats
        before = st.snapshot()
        assert np.allclose(a.read(), ref)
        d = a._data.stats.delta(before)
        # 16 chunks moved with a single vectored call of one run
        assert d.readv_calls == 1
        assert d.coalesced_runs == 1
        assert d.reads == 1
        assert d.bytes_read == 16 * 16 * 8
        a.close()

    def test_pooled_batch_counts_hits(self, rng):
        a = DRXFile.create(None, (8, 8), (4, 4), cache_pages=8)
        ref = rng.random((8, 8))
        a.write((0, 0), ref)          # 4 chunks fit the pool: batch path
        before = a.cache_stats.hits
        assert np.allclose(a.read(), ref)
        assert a.cache_stats.hits == before + 4


class TestContainers:
    def test_singlefile_roundtrip_coalesced(self, tmp_path, rng):
        ref = rng.random((10, 10))
        with DRXSingleFile.create(tmp_path / "s", (10, 10), (3, 3),
                                  cache_pages=2) as sf:
            sf.write((0, 0), ref)
            assert np.allclose(sf.read(), ref)
            assert np.allclose(sf.read_slab((0, 1), (2, 3), (5, 3)),
                               ref[0::2, 1::3])
        with DRXSingleFile.open(tmp_path / "s") as sf:
            assert np.allclose(sf.read(), ref)

    def test_pair_conversions_bulk_copy(self, tmp_path, rng):
        ref = rng.random((9, 9))
        a = DRXFile.create(tmp_path / "a", (9, 9), (4, 4))
        a.write((0, 0), ref)
        sf = DRXSingleFile.from_pair(a, tmp_path / "s")
        assert np.allclose(sf.read(), ref)
        back = sf.to_pair(tmp_path / "b")
        assert np.allclose(back.read(), ref)
        back.close()
        sf.close()
        a.close()

    def test_memarray_drx_roundtrip(self, tmp_path, rng):
        ref = rng.random((7, 5))
        arr = MemExtendibleArray.from_numpy(ref, (2, 2))
        f = arr.to_drx(tmp_path / "m")
        assert np.allclose(f.read(), ref)
        arr2 = MemExtendibleArray.from_drx(f)
        assert np.allclose(arr2.to_numpy(), ref)
        f.close()


# ----------------------------------------------------------------------
# MPI indexed filetype pre-coalescing
# ----------------------------------------------------------------------
class TestIndexedFiletype:
    def _meta(self) -> DRXMeta:
        return DRXMeta.create((8, 8), (2, 2), "double")

    def test_typemap_identical_to_per_chunk(self):
        meta = self._meta()
        addrs = np.array([0, 1, 2, 5, 6, 9], dtype=np.int64)
        ft = indexed_filetype(meta, addrs)
        chunk = chunk_datatype(meta)
        ref = chunk.Create_indexed([1] * len(addrs),
                                   [int(a) for a in addrs]).Commit()
        assert ft.offsets.tolist() == ref.offsets.tolist()
        assert ft.lengths.tolist() == ref.lengths.tolist()
        assert ft.extent == ref.extent

    def test_coalesced_construction_shrinks_runs(self):
        meta = self._meta()
        addrs = np.arange(16, dtype=np.int64)
        ft = indexed_filetype(meta, addrs)
        assert ft.num_runs == 1
        assert ft.size == 16 * meta.chunk_nbytes
