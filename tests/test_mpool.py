"""Unit tests for the Mpool buffer cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DRXError
from repro.drx.mpool import Mpool
from repro.drx.storage import MemoryByteStore


def make(pool_pages=4, page_size=8):
    store = MemoryByteStore()
    store.write(0, bytes(range(page_size * 16)))
    return store, Mpool(store, page_size, max_pages=pool_pages)


class TestBasics:
    def test_get_faults_in(self):
        store, pool = make()
        page = pool.get(2)
        assert bytes(page) == bytes(range(16, 24))
        pool.put(2)
        assert pool.stats.misses == 1 and pool.stats.hits == 0

    def test_hit_on_second_access(self):
        _store, pool = make()
        pool.get(1)
        pool.put(1)
        pool.get(1)
        pool.put(1)
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_page_beyond_eof_is_zeros(self):
        _store, pool = make()
        page = pool.get(1000)
        assert bytes(page) == b"\x00" * 8
        pool.put(1000)

    def test_bad_arguments(self):
        store = MemoryByteStore()
        with pytest.raises(DRXError):
            Mpool(store, 0)
        with pytest.raises(DRXError):
            Mpool(store, 8, max_pages=0)
        pool = Mpool(store, 8)
        with pytest.raises(DRXError):
            pool.get(-1)

    def test_unbalanced_put_rejected(self):
        _store, pool = make()
        with pytest.raises(DRXError):
            pool.put(3)


class TestEviction:
    def test_lru_eviction(self):
        _store, pool = make(pool_pages=2)
        for p in (0, 1, 2):
            pool.get(p)
            pool.put(p)
        assert pool.stats.evictions == 1
        assert pool.cached_pages == 2
        # page 0 was the LRU victim: re-access misses
        pool.get(0)
        pool.put(0)
        assert pool.stats.misses == 4

    def test_pinned_pages_survive(self):
        _store, pool = make(pool_pages=2)
        pool.get(0)                  # pinned
        pool.get(1)
        pool.put(1)
        pool.get(2)                  # must evict page 1, not pinned 0
        pool.put(2)
        assert 0 in pool._pages
        pool.put(0)

    def test_all_pinned_exhausts_pool(self):
        _store, pool = make(pool_pages=2)
        pool.get(0)
        pool.get(1)
        with pytest.raises(DRXError):
            pool.get(2)
        pool.put(0)
        pool.put(1)

    def test_dirty_eviction_writes_back(self):
        store, pool = make(pool_pages=1)
        page = pool.get(0)
        page[:] = 0xAB
        pool.put(0, dirty=True)
        pool.get(1)                  # evicts dirty page 0
        pool.put(1)
        assert pool.stats.writebacks == 1
        assert store.read(0, 8) == b"\xab" * 8


class TestFlush:
    def test_flush_writes_dirty_only(self):
        store, pool = make()
        a = pool.get(0)
        a[:] = 1
        pool.put(0, dirty=True)
        pool.get(1)
        pool.put(1)                  # clean
        pool.flush()
        assert pool.stats.writebacks == 1
        assert store.read(0, 8) == b"\x01" * 8
        # flush keeps pages cached
        pool.get(0)
        pool.put(0)
        assert pool.stats.hits >= 1

    def test_invalidate_drops_unpinned(self):
        store, pool = make()
        p = pool.get(0)
        p[:] = 9
        pool.put(0, dirty=True)
        pool.get(1)                  # keep pinned
        pool.invalidate()
        assert store.read(0, 8) == b"\x09" * 8   # dirty flushed
        assert pool.cached_pages == 1            # only pinned page 1
        pool.put(1)

    def test_pin_counting(self):
        _store, pool = make()
        pool.get(5)
        pool.get(5)
        assert pool.pinned_pages == 1
        pool.put(5)
        assert pool.pinned_pages == 1
        pool.put(5)
        assert pool.pinned_pages == 0

    def test_hit_ratio(self):
        _store, pool = make()
        assert pool.stats.hit_ratio == 0.0
        pool.get(0); pool.put(0)
        pool.get(0); pool.put(0)
        assert pool.stats.hit_ratio == 0.5
