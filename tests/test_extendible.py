"""Unit tests for the growth engine (ExtendibleChunkIndex)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DRXExtendError,
    DRXFormatError,
    DRXIndexError,
    ExtendibleChunkIndex,
    all_addresses,
    replay_history,
)


class TestConstruction:
    def test_initial_bounds(self):
        eci = ExtendibleChunkIndex([2, 3])
        assert eci.bounds == (2, 3)
        assert eci.rank == 2
        assert eci.num_chunks == 6

    def test_rank_one(self):
        eci = ExtendibleChunkIndex([5])
        assert [eci.address((i,)) for i in range(5)] == list(range(5))

    def test_empty_bounds_rejected(self):
        with pytest.raises(DRXExtendError):
            ExtendibleChunkIndex([])

    def test_zero_bound_rejected(self):
        with pytest.raises(DRXExtendError):
            ExtendibleChunkIndex([2, 0])

    def test_sentinels_on_all_but_dim0(self):
        eci = ExtendibleChunkIndex([2, 3, 4])
        assert not eci.axial_vectors[0][0].is_sentinel
        assert eci.axial_vectors[1][0].is_sentinel
        assert eci.axial_vectors[2][0].is_sentinel


class TestExtend:
    def test_bad_dim(self):
        eci = ExtendibleChunkIndex([2, 2])
        with pytest.raises(DRXExtendError):
            eci.extend(2)
        with pytest.raises(DRXExtendError):
            eci.extend(-1)

    def test_bad_amount(self):
        eci = ExtendibleChunkIndex([2, 2])
        with pytest.raises(DRXExtendError):
            eci.extend(0, 0)

    def test_segment_accounting(self):
        eci = ExtendibleChunkIndex([2, 3])
        seg = eci.extend(0, 2)   # adds 2*3 = 6 chunks at address 6
        assert seg.start_address == 6
        assert seg.n_chunks == 6
        assert eci.num_chunks == 12
        assert eci.bounds == (4, 3)

    def test_generation_counter(self):
        eci = ExtendibleChunkIndex([2, 2])
        g0 = eci.generation
        eci.extend(0)
        eci.extend(1)
        assert eci.generation == g0 + 2

    def test_first_extension_never_merges_into_initial(self):
        """Even extending dimension 0 (whose record the initial box uses)
        must open a new segment: appending along dim 0 of a row-major box
        IS contiguous, but the record's coefficients must be re-derived
        anyway; the paper's Fig. 3b shows a fresh record."""
        eci = ExtendibleChunkIndex([2, 3])
        assert len(eci.segments) == 1
        eci.extend(0)
        assert len(eci.segments) == 2

    def test_merge_only_on_same_dim_runs(self):
        eci = ExtendibleChunkIndex([2, 2])
        eci.extend(0)
        n_seg = len(eci.segments)
        eci.extend(0)            # merge
        assert len(eci.segments) == n_seg
        eci.extend(1)            # new
        assert len(eci.segments) == n_seg + 1
        eci.extend(0)            # interrupted: new again
        assert len(eci.segments) == n_seg + 2

    def test_num_records_counts_all(self, fig3_index):
        assert fig3_index.num_records == 7  # 2 + 2 + 3


class TestAddressing:
    def test_rank_mismatch(self):
        eci = ExtendibleChunkIndex([2, 2])
        with pytest.raises(DRXIndexError):
            eci.address((1,))

    def test_out_of_bounds(self):
        eci = ExtendibleChunkIndex([2, 2])
        with pytest.raises(DRXIndexError):
            eci.address((2, 0))
        with pytest.raises(DRXIndexError):
            eci.address((0, -1))

    def test_inverse_out_of_range(self):
        eci = ExtendibleChunkIndex([2, 2])
        with pytest.raises(DRXIndexError):
            eci.index(4)
        with pytest.raises(DRXIndexError):
            eci.index(-1)

    def test_bijectivity_through_growth(self):
        eci = ExtendibleChunkIndex([2, 2])
        for dim in (0, 1, 1, 0, 1, 0, 0, 1):
            eci.extend(dim)
            grid = all_addresses(eci)
            assert sorted(grid.ravel().tolist()) == \
                list(range(eci.num_chunks))

    def test_stability_through_growth(self):
        """The defining property: no previously assigned address changes."""
        eci = ExtendibleChunkIndex([2, 3, 2])
        pinned: dict[tuple, int] = {}
        for dim in (2, 0, 1, 1, 2, 0):
            for idx in np.ndindex(*eci.bounds):
                pinned[idx] = eci.address(idx)
            eci.extend(dim)
            for idx, addr in pinned.items():
                assert eci.address(idx) == addr, (idx, dim)

    def test_index_address_roundtrip(self, fig3_index):
        for q in range(fig3_index.num_chunks):
            assert fig3_index.address(fig3_index.index(q)) == q


class TestSerialization:
    def test_roundtrip(self, fig3_index):
        clone = ExtendibleChunkIndex.from_dict(fig3_index.to_dict())
        assert clone.bounds == fig3_index.bounds
        assert clone.num_chunks == fig3_index.num_chunks
        assert np.array_equal(all_addresses(clone),
                              all_addresses(fig3_index))
        assert [len(v) for v in clone.axial_vectors] == \
            [len(v) for v in fig3_index.axial_vectors]

    def test_copy_is_independent(self, fig3_index):
        clone = fig3_index.copy()
        clone.extend(0)
        assert clone.bounds != fig3_index.bounds

    def test_roundtrip_preserves_merge_state(self):
        """After deserialization, an uninterrupted follow-up extension
        must still merge (last_extended_dim survives)."""
        eci = ExtendibleChunkIndex([2, 2])
        eci.extend(1)
        clone = ExtendibleChunkIndex.from_dict(eci.to_dict())
        nseg = len(clone.segments)
        clone.extend(1)
        assert len(clone.segments) == nseg

    def test_malformed_documents(self, fig3_index):
        good = fig3_index.to_dict()
        with pytest.raises(DRXFormatError):
            ExtendibleChunkIndex.from_dict({})
        bad = dict(good)
        bad["axial_vectors"] = good["axial_vectors"][:1]
        with pytest.raises(DRXFormatError):
            ExtendibleChunkIndex.from_dict(bad)

    def test_missing_initial_record(self):
        eci = ExtendibleChunkIndex([2, 2])
        doc = eci.to_dict()
        # surgically delete the initial record
        doc["axial_vectors"][0]["records"] = []
        with pytest.raises(DRXFormatError):
            ExtendibleChunkIndex.from_dict(doc)


class TestReplayHistory:
    def test_replay(self):
        eci = replay_history([2, 2], [(0, 1), (1, 2), (0, 1)])
        assert eci.bounds == (4, 4)
        ref = ExtendibleChunkIndex([2, 2])
        ref.extend(0, 1)
        ref.extend(1, 2)
        ref.extend(0, 1)
        assert np.array_equal(all_addresses(eci), all_addresses(ref))
