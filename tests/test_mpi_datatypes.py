"""Unit tests for derived datatypes: construction, extents, pack/unpack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import MPIDatatypeError
from repro.mpi.datatypes import Datatype, from_numpy_dtype


class TestBasics:
    def test_named_types(self):
        assert mpi.BYTE.size == 1
        assert mpi.INT.size == 4
        assert mpi.INT64.size == 8
        assert mpi.DOUBLE.size == 8
        assert mpi.COMPLEX.size == 16
        assert mpi.DOUBLE.is_contiguous

    def test_from_numpy(self):
        assert from_numpy_dtype(np.float64) is mpi.DOUBLE
        assert from_numpy_dtype(np.int64) is mpi.INT64
        with pytest.raises(MPIDatatypeError):
            from_numpy_dtype(np.float16)

    def test_commit_required(self):
        t = mpi.DOUBLE.Create_contiguous(3)
        with pytest.raises(MPIDatatypeError):
            t.pack(np.zeros(3))
        t.Commit()
        t.pack(np.zeros(3))

    def test_free(self):
        t = mpi.DOUBLE.Create_contiguous(3).Commit()
        t.Free()
        with pytest.raises(MPIDatatypeError):
            t.pack(np.zeros(3))
        with pytest.raises(MPIDatatypeError):
            t.Create_contiguous(2)

    def test_get_size_extent(self):
        t = mpi.DOUBLE.Create_vector(3, 2, 5).Commit()
        assert t.Get_size() == 3 * 2 * 8
        lb, extent = t.Get_extent()
        assert lb == 0
        assert extent == ((3 - 1) * 5 + 2) * 8   # MPI vector extent


class TestConstructors:
    def test_contiguous_coalesces(self):
        t = mpi.DOUBLE.Create_contiguous(10)
        assert t.num_runs == 1
        assert t.size == 80 and t.extent == 80
        assert t.is_contiguous

    def test_contiguous_zero(self):
        t = mpi.DOUBLE.Create_contiguous(0)
        assert t.size == 0

    def test_vector_runs(self):
        t = mpi.INT.Create_vector(3, 1, 4)
        assert [tuple(r) for r in zip(t.offsets, t.lengths)] == \
            [(0, 4), (16, 4), (32, 4)]

    def test_vector_blocklength_merges(self):
        t = mpi.INT.Create_vector(2, 4, 4)   # stride == blocklength
        assert t.num_runs == 1 and t.size == 32

    def test_hvector(self):
        t = mpi.INT.Create_hvector(2, 1, 100)
        assert [int(o) for o in t.offsets] == [0, 100]

    def test_indexed(self):
        t = mpi.DOUBLE.Create_indexed([2, 1], [0, 5])
        assert t.size == 24
        assert [tuple(r) for r in zip(t.offsets, t.lengths)] == \
            [(0, 16), (40, 8)]

    def test_indexed_block(self):
        t = mpi.DOUBLE.Create_indexed_block(2, [0, 4, 8])
        assert t.size == 6 * 8
        assert t.num_runs == 3

    def test_indexed_length_mismatch(self):
        with pytest.raises(MPIDatatypeError):
            mpi.DOUBLE.Create_indexed([1, 2], [0])

    def test_indexed_preserves_data_order(self):
        """Non-monotonic displacements keep their argument order —
        required by the listing's inMemoryMap {0,2,4,1,3,5}."""
        chunk = mpi.DOUBLE.Create_contiguous(6).Commit()
        mt = chunk.Create_indexed([1] * 6, [0, 2, 4, 1, 3, 5]).Commit()
        buf = np.zeros(36)
        mt.unpack(buf, np.arange(36, dtype=np.float64).tobytes())
        order = [0, 2, 4, 1, 3, 5]
        expect = np.zeros(36)
        for datapos, slot in enumerate(order):
            expect[slot * 6:(slot + 1) * 6] = np.arange(6) + datapos * 6
        assert np.array_equal(buf, expect)
        # pack is the inverse
        assert mt.pack(buf) == np.arange(36, dtype=np.float64).tobytes()

    def test_overlapping_runs_rejected(self):
        with pytest.raises(MPIDatatypeError):
            mpi.DOUBLE.Create_indexed([2, 2], [0, 1])

    def test_struct(self):
        t = Datatype.Create_struct([1, 2], [0, 16], [mpi.INT, mpi.DOUBLE])
        assert t.size == 4 + 16
        assert t.extent == 32

    def test_resized(self):
        t = mpi.DOUBLE.Create_resized(0, 24)
        tiled = t.Create_contiguous(2)
        assert [int(o) for o in tiled.offsets] == [0, 24]


class TestSubarray:
    def test_2d_c_order(self):
        t = mpi.DOUBLE.Create_subarray([4, 6], [2, 3], [1, 2]).Commit()
        buf = np.arange(24, dtype=np.float64).reshape(4, 6)
        got = np.frombuffer(t.pack(buf), dtype=np.float64)
        assert np.array_equal(got, buf[1:3, 2:5].ravel())
        assert t.extent == 24 * 8     # full array extent

    def test_2d_f_order(self):
        t = mpi.DOUBLE.Create_subarray([4, 6], [2, 3], [1, 2],
                                       order="F").Commit()
        buf = np.asfortranarray(
            np.arange(24, dtype=np.float64).reshape(4, 6, order="F"))
        got = np.frombuffer(t.pack(buf), dtype=np.float64)
        # F-order pack enumerates the sub-block in column-major order
        assert np.array_equal(got, buf[1:3, 2:5].ravel(order="F"))

    def test_3d_roundtrip(self):
        t = mpi.INT64.Create_subarray([3, 4, 5], [2, 2, 2],
                                      [1, 1, 1]).Commit()
        src = np.arange(60, dtype=np.int64).reshape(3, 4, 5)
        dst = np.zeros_like(src)
        t.unpack(dst, t.pack(src))
        assert np.array_equal(dst[1:3, 1:3, 1:3], src[1:3, 1:3, 1:3])
        assert np.all(dst[0] == 0)

    def test_invalid_subarray(self):
        with pytest.raises(MPIDatatypeError):
            mpi.DOUBLE.Create_subarray([4], [5], [0])
        with pytest.raises(MPIDatatypeError):
            mpi.DOUBLE.Create_subarray([4], [2], [3])
        with pytest.raises(MPIDatatypeError):
            mpi.DOUBLE.Create_subarray([4, 4], [2], [0])
        with pytest.raises(MPIDatatypeError):
            mpi.DOUBLE.Create_subarray([4], [2], [0], order="X")

    def test_tiling_contiguous_count(self):
        """Subarray extent = whole array, so count=2 covers two arrays."""
        t = mpi.DOUBLE.Create_subarray([2, 2], [1, 2], [0, 0]).Commit()
        buf = np.arange(8, dtype=np.float64).reshape(4, 2)  # two 2x2 arrays
        got = np.frombuffer(t.pack(buf, count=2), dtype=np.float64)
        assert np.array_equal(got, [0, 1, 4, 5])


class TestPackUnpack:
    def test_pack_beyond_buffer(self):
        t = mpi.DOUBLE.Create_contiguous(4).Commit()
        with pytest.raises(MPIDatatypeError):
            t.pack(np.zeros(2))

    def test_unpack_short_data_is_partial(self):
        t = mpi.DOUBLE.Create_contiguous(4).Commit()
        buf = np.full(4, -1.0)
        consumed = t.unpack(buf, np.array([7.0]).tobytes())
        assert consumed == 8
        assert buf.tolist() == [7.0, -1.0, -1.0, -1.0]

    def test_unpack_readonly_rejected(self):
        t = mpi.DOUBLE.Create_contiguous(1).Commit()
        arr = np.zeros(1)
        arr.flags.writeable = False
        with pytest.raises(MPIDatatypeError):
            t.unpack(arr, b"\x00" * 8)

    def test_noncontiguous_buffer_rejected(self):
        t = mpi.DOUBLE.Create_contiguous(2).Commit()
        arr = np.zeros((4, 4))[:, 0]
        with pytest.raises(MPIDatatypeError):
            t.pack(arr)

    def test_pack_count_tiles_extent(self):
        t = mpi.INT.Create_vector(2, 1, 2).Commit()   # ints 0 and 2
        buf = np.arange(8, dtype=np.int32)
        got = np.frombuffer(t.pack(buf, count=2), dtype=np.int32)
        # tile 0 picks 0, 2; tile 1 starts at extent 3 ints: picks 3, 5
        assert got.tolist() == [0, 2, 3, 5]
