"""The raw-speed pass: vectorized kernels, plan cache, auto-tuning.

Three contracts pinned here:

* the dense-grid scatter/gather kernels and the vectorized datatype
  pack/unpack are **bit-identical** to the historical per-chunk loops
  (``DRX_VECTORIZE=0`` path) on every geometry class — dense grids,
  non-dense chunk sets, clipped edge chunks, above/below the dense-path
  size cutoff;
* the hot paths are **zero-copy**: ``_as_bytes_view`` aliases the
  caller's memory (``np.shares_memory``), it never materializes an
  intermediate ``bytes``;
* the generation-keyed :class:`~repro.drx.ioplan.PlanCache` serves
  repeated requests from memory, invalidates wholesale on ``extend()``
  (the generation bump), and never changes what a read returns.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.errors import DRXFileError
from repro.core.metadata import DRXMeta
from repro.core.scatter import (
    SCATTER_STATS,
    _DENSE_CHUNK_CUTOFF,
    gather_chunks,
    scatter_chunks,
    set_vectorized,
)
from repro.drx.drxfile import DRXFile
from repro.drx.ioplan import PlanCache
from repro.mpi.datatypes import DATATYPE_STATS, DOUBLE, _as_bytes_view


@pytest.fixture
def vec_state():
    """Restore the process-wide vectorization switch after each test."""
    prev = set_vectorized(True)
    yield
    set_vectorized(prev)


def _both_paths(fn):
    """Run ``fn()`` under both kernel paths, return (vector, scalar)."""
    out = {}
    for on in (True, False):
        prev = set_vectorized(on)
        try:
            out[on] = fn()
        finally:
            set_vectorized(prev)
    return out[True], out[False]


# ---------------------------------------------------------------------------
# scatter / gather bit-identity
# ---------------------------------------------------------------------------

class TestScatterGatherIdentity:
    def _grid_indices(self, gshape):
        return np.stack(np.meshgrid(*[np.arange(g) for g in gshape],
                                    indexing="ij"),
                        axis=-1).reshape(-1, len(gshape))

    @pytest.mark.parametrize("bounds,chunk", [
        ((16, 16), (4, 4)),       # dense, small chunks (fast path)
        ((10, 10), (4, 4)),       # clipped edge chunks
        ((9, 7, 5), (4, 4, 2)),   # rank 3, ragged edges
        ((64, 64), (32, 32)),     # 8 KiB chunks: above the dense cutoff
    ])
    def test_scatter_matches_loop(self, vec_state, bounds, chunk):
        gshape = tuple(-(-b // c) for b, c in zip(bounds, chunk))
        indices = self._grid_indices(gshape)
        rng = np.random.default_rng(7)
        staging = rng.random((len(indices), *chunk))

        def run():
            out = np.zeros(bounds)
            scatter_chunks(staging, indices, chunk, bounds, out,
                           (0,) * len(bounds))
            return out

        vec, scalar = _both_paths(run)
        assert vec.tobytes() == scalar.tobytes()

    @pytest.mark.parametrize("bounds,chunk", [
        ((16, 16), (4, 4)),
        ((10, 10), (4, 4)),
        ((9, 7, 5), (4, 4, 2)),
    ])
    def test_gather_matches_loop(self, vec_state, bounds, chunk):
        gshape = tuple(-(-b // c) for b, c in zip(bounds, chunk))
        indices = self._grid_indices(gshape)
        rng = np.random.default_rng(11)
        values = rng.random(bounds)
        # pre-seeded staging: the RMW bytes must survive bit-identically
        seed = rng.random((len(indices), *chunk))

        def run():
            staging = seed.copy()
            gather_chunks(indices, chunk, bounds, values,
                          (0,) * len(bounds), staging=staging)
            return staging

        vec, scalar = _both_paths(run)
        assert vec.tobytes() == scalar.tobytes()

    def test_offset_box_subset(self, vec_state):
        """A request box not aligned to the grid origin (zone read)."""
        bounds, chunk = (20, 20), (4, 4)
        indices = self._grid_indices((5, 5))[6:18]   # non-rectangular set
        rng = np.random.default_rng(3)
        staging = rng.random((len(indices), *chunk))
        origin = (3, 5)
        shape = (9, 11)

        def run():
            out = np.zeros(shape)
            scatter_chunks(staging, indices, chunk, bounds, out, origin)
            return out

        vec, scalar = _both_paths(run)
        assert vec.tobytes() == scalar.tobytes()

    def test_non_dense_set_falls_back(self, vec_state):
        """3 of a 2x2 grid is not dense: the loop path must serve it."""
        indices = np.array([[0, 0], [0, 1], [1, 0]])
        staging = np.arange(3 * 16, dtype=float).reshape(3, 4, 4)
        out = np.zeros((8, 8))
        before = SCATTER_STATS.snapshot()
        scatter_chunks(staging, indices, (4, 4), (8, 8), out, (0, 0))
        after = SCATTER_STATS.snapshot()
        assert after.fallback_ops == before.fallback_ops + 1
        assert after.dense_ops == before.dense_ops
        expect = np.zeros((8, 8))
        expect[:4, :4] = staging[0]
        expect[:4, 4:] = staging[1]
        expect[4:, :4] = staging[2]
        assert np.array_equal(out, expect)

    def test_dense_path_taken_below_cutoff(self, vec_state):
        indices = self._grid_indices((4, 4))
        staging = np.zeros((16, 4, 4))       # 128 B chunks << cutoff
        out = np.zeros((16, 16))
        before = SCATTER_STATS.snapshot()
        scatter_chunks(staging, indices, (4, 4), (16, 16), out, (0, 0))
        after = SCATTER_STATS.snapshot()
        assert after.dense_ops == before.dense_ops + 1
        assert after.chunks_moved == before.chunks_moved + 16

    def test_large_chunks_use_loop(self, vec_state):
        """Above the cutoff memmove dominates: the loop path wins and
        must be the one taken even with vectorization on."""
        chunk = (32, 32)
        assert np.prod(chunk) * 8 > _DENSE_CHUNK_CUTOFF
        indices = self._grid_indices((2, 2))
        staging = np.zeros((4, *chunk))
        out = np.zeros((64, 64))
        before = SCATTER_STATS.snapshot()
        scatter_chunks(staging, indices, chunk, (64, 64), out, (0, 0))
        after = SCATTER_STATS.snapshot()
        assert after.fallback_ops == before.fallback_ops + 1


# ---------------------------------------------------------------------------
# datatype pack/unpack: equivalence, zero copy, cache counters
# ---------------------------------------------------------------------------

class TestPackUnpack:
    def _vector_type(self):
        # 3 blocks of 8 bytes strided 24 bytes apart: fragmented typemap
        return DOUBLE.Create_vector(count=3, blocklength=1,
                                    stride=3).Commit()

    def test_pack_unpack_round_trip(self, vec_state):
        dt = self._vector_type()
        rng = np.random.default_rng(5)
        buf = rng.integers(0, 256, size=dt.extent * 4 + 64,
                           dtype=np.uint8)
        data = dt.pack(buf, count=4)
        assert len(data) == dt.size * 4
        out = np.zeros_like(buf)
        used = dt.unpack(out, data, count=4)
        assert used == len(data)
        assert dt.pack(out, count=4) == data

    def test_as_bytes_view_zero_copy(self):
        """The hot-path byte views alias the caller's memory."""
        arr = np.arange(32, dtype=np.float64)
        view = np.frombuffer(_as_bytes_view(arr), dtype=np.uint8)
        assert np.shares_memory(view, arr)
        # F-order goes through the transpose trick — still no copy
        farr = np.asfortranarray(np.arange(12, dtype=np.int64).reshape(3, 4))
        fview = np.frombuffer(_as_bytes_view(farr), dtype=np.uint8)
        assert np.shares_memory(fview, farr)

    def test_unpack_writes_in_place(self):
        """unpack scatters straight into the caller's buffer."""
        dt = self._vector_type()
        buf = np.zeros(dt.extent * 2 + 64, dtype=np.uint8)
        data = bytes(range(48))
        dt.unpack(buf, data, count=2)
        assert buf.sum() > 0           # bytes landed without a swap copy
        assert dt.pack(buf, count=2) == data

    def test_tiled_run_cache_counters(self):
        dt = self._vector_type()
        buf = np.zeros(dt.extent * 3 + 64, dtype=np.uint8)
        before = DATATYPE_STATS.snapshot()
        dt.pack(buf, count=3)
        mid = DATATYPE_STATS.snapshot()
        assert mid.tiled_misses == before.tiled_misses + 1
        dt.pack(buf, count=3)
        after = DATATYPE_STATS.snapshot()
        assert after.tiled_hits == mid.tiled_hits + 1
        assert after.tiled_misses == mid.tiled_misses

    def test_chunk_datatype_memoized(self):
        from repro.drxmp.subarray import chunk_datatype
        meta = DRXMeta.create((40, 40), (8, 8))
        before = DATATYPE_STATS.snapshot()
        chunk_datatype(meta)
        mid = DATATYPE_STATS.snapshot()
        chunk_datatype(meta)
        after = DATATYPE_STATS.snapshot()
        assert mid.chunk_dt_misses >= before.chunk_dt_misses
        assert after.chunk_dt_hits == mid.chunk_dt_hits + 1


# ---------------------------------------------------------------------------
# the generation-keyed plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_hit_miss_counters(self):
        with DRXFile.create(None, (32, 32), (8, 8), executor=None) as a:
            st = a._data.stats
            a.read((0, 0), (16, 16))
            assert (st.plan_misses, st.plan_hits) == (1, 0)
            a.read((0, 0), (16, 16))
            assert (st.plan_misses, st.plan_hits) == (1, 1)
            a.read((0, 0), (12, 12))      # different key
            assert st.plan_misses == 2

    def test_extend_invalidates(self):
        with DRXFile.create(None, (16, 16), (4, 4), executor=None) as a:
            ref = np.arange(256, dtype=float).reshape(16, 16)
            a.write((0, 0), ref)
            a.read((0, 0), (16, 16))
            a.read((0, 0), (16, 16))
            hits0 = a._data.stats.plan_hits
            a.extend(dim=0, by=4)
            # same box, new generation: recompiled, and the old entries
            # are dropped wholesale on the next store
            out = a.read((0, 0), (16, 16))
            assert np.array_equal(out, ref)
            assert a._data.stats.plan_hits == hits0
            assert len(a._plans) == 1
            # the extended region reads back as fill
            assert np.all(a.read((16, 0), (20, 16)) == 0)

    def test_slab_plans_cached(self):
        with DRXFile.create(None, (20, 20), (4, 4), executor=None) as a:
            a.write((0, 0), np.ones((20, 20)))
            s1 = a.read_slab((0, 0), (2, 2), (5, 5))
            misses = a._data.stats.plan_misses
            s2 = a.read_slab((0, 0), (2, 2), (5, 5))
            assert a._data.stats.plan_misses == misses
            assert np.array_equal(s1, s2)

    def test_write_read_share_plan(self):
        with DRXFile.create(None, (16, 16), (4, 4), executor=None) as a:
            vals = np.full((8, 8), 3.0)
            a.write((4, 4), vals)
            misses = a._data.stats.plan_misses
            # same box geometry, same generation: the read reuses the
            # write's compiled plan
            out = a.read((4, 4), (12, 12))
            assert a._data.stats.plan_misses == misses
            assert np.array_equal(out, vals)

    def test_lru_bound(self):
        meta = DRXMeta.create((64, 64), (8, 8))
        cache = PlanCache(max_entries=2)
        for hi in (8, 16, 24, 32):
            cache.box(meta.eci, (0, 0), (hi, hi), meta.chunk_shape,
                      meta.chunk_nbytes)
        assert len(cache) == 2
        # most-recent key survives
        misses_before = len(cache)
        p = cache.box(meta.eci, (0, 0), (32, 32), meta.chunk_shape,
                      meta.chunk_nbytes)
        assert p is not None and len(cache) == misses_before

    def test_compaction_never_stales_plans(self):
        """Plans live in logical chunk-address space: slot reallocation
        (overwrite churn + compact) must not redirect a cached plan to
        reclaimed physical extents."""
        rng = np.random.default_rng(19)
        ref = rng.random((32, 32))
        with DRXFile.create(None, (32, 32), (8, 8), executor=None,
                            codec="zlib") as a:
            a.write((0, 0), ref)
            box = ((4, 4), (28, 28))
            assert np.array_equal(a.read(*box), ref[4:28, 4:28])
            # churn the slot table: rewrites move chunks to new physical
            # slots, compaction slides everything down
            for _ in range(3):
                ref[:16] = rng.random((16, 32))
                a.write((0, 0), ref[:16])
            a.compact()
            a._pool.invalidate()
            # the cached plan for `box` must still read the right bytes
            assert np.array_equal(a.read(*box), ref[4:28, 4:28])
            assert a._data.stats.plan_hits > 0

    def test_results_identical_with_cache_disabled(self):
        """Reads through the cache equal fresh compilations."""
        rng = np.random.default_rng(13)
        ref = rng.random((24, 24))
        with DRXFile.create(None, (24, 24), (5, 5), executor=None) as a:
            a.write((0, 0), ref)
            for _ in range(2):            # second pass served from cache
                assert np.array_equal(a.read((3, 1), (19, 22)),
                                      ref[3:19, 1:22])
                a._plans.clear()


# ---------------------------------------------------------------------------
# tune="auto"
# ---------------------------------------------------------------------------

class TestAutoTune:
    def test_advice_attached(self):
        with DRXFile.create(None, (64, 64), (8, 8), executor=None,
                            tune="auto") as a:
            adv = a.tuning_advice
            assert adv is not None
            settings = adv.settings()
            assert set(settings) == {"chunk_shape", "stripe_size",
                                     "codec", "executor_threads",
                                     "readahead"}
            assert "knob" in adv.explain() and adv.to_dict()["candidates"]

    def test_bad_tune_rejected(self):
        with pytest.raises(DRXFileError):
            DRXFile.create(None, (8, 8), (4, 4), tune="everything")

    def test_explicit_readahead_wins(self):
        # the pool zeroes read-ahead without an executor, so resolve the
        # default pool here; the pinned window must survive tune="auto"
        with DRXFile.create(None, (64, 64), (8, 8),
                            tune="auto", readahead=3) as a:
            if a._executor is not None:
                assert a._pool._readahead == 3
            adv = a.tuning_advice
            assert adv is not None     # advice attached either way

    def test_env_threads_never_overridden(self, monkeypatch):
        monkeypatch.setitem(os.environ, "DRX_EXECUTOR_THREADS", "0")
        with DRXFile.create(None, (64, 64), (8, 8), tune="auto") as a:
            assert a._owned_executor is None

    def test_round_trip_unchanged(self):
        """Auto-tuning never changes array contents."""
        rng = np.random.default_rng(17)
        ref = rng.random((48, 48))
        with DRXFile.create(None, (48, 48), (8, 8), executor=None,
                            tune="auto") as a:
            a.write((0, 0), ref)
            assert np.array_equal(a.read_all(), ref)
