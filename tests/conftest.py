"""Shared fixtures for the DRX / DRX-MP test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extendible import ExtendibleChunkIndex
from repro.pfs import ParallelFileSystem


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20070917)  # CLUSTER 2007 week


@pytest.fixture
def fig3_index() -> ExtendibleChunkIndex:
    """The paper's Fig. 3 growth history: A[4][3][1], +D2 +D2 (merged),
    +D1, +D0 x2 (one call of 2), +D2."""
    eci = ExtendibleChunkIndex([4, 3, 1])
    eci.extend(2)
    eci.extend(2)
    eci.extend(1)
    eci.extend(0, 2)
    eci.extend(2)
    return eci


@pytest.fixture
def fig1_index() -> ExtendibleChunkIndex:
    """The paper's Fig. 1 growth history to the 5x4 chunk grid."""
    eci = ExtendibleChunkIndex([1, 1])
    for dim in (1, 0, 0, 1, 0, 1, 0):
        eci.extend(dim)
    return eci


@pytest.fixture
def pfs() -> ParallelFileSystem:
    return ParallelFileSystem(nservers=4, stripe_size=1024)
