"""Seeded chaos suite: kill an I/O server at every phase of an E3-style
collective read/write and assert bit-identical recovery.

Each scenario builds a fresh replicated file system, writes a known
array through the DRX-MP collective path, then arms a seeded
:class:`FaultPlan` hook that takes one server down the instant a chosen
``server.kill.*`` fault site is reached — mid-collective, between the
availability check and the batch, or during rebuild.  With replication
>= 2 every zone read afterwards must be byte-identical to the fault-free
run, and ``rebuild_server`` must restore full redundancy
(``verify_replicas() == []``) without taking the file offline.

The sweep is seeded via ``DRX_FAULT_SEED`` (the CI chaos matrix).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import ServerDownError
from repro.drx.resilience import FaultPlan, KILL_SITES
from repro.drxmp import DRXMPFile
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array

SEED = int(os.environ.get("DRX_FAULT_SEED", "0"))

SHAPE = (32, 32)
CHUNK = (8, 8)
NSERVERS = 3
NPROCS = 2
NAME = "chaos"

READ_SITES = [
    "server.kill.collective.entry",
    "server.kill.collective.exchange",
    "server.kill.collective.read",
    "server.kill.readv.begin",
    "server.kill.readv.batch",
]
WRITE_SITES = [
    "server.kill.collective.entry",
    "server.kill.collective.exchange",
    "server.kill.collective.write",
    "server.kill.writev.begin",
    "server.kill.writev.batch",
]


def make_fs(replication=2, nservers=NSERVERS):
    return ParallelFileSystem(nservers=nservers, stripe_size=512,
                              replication=replication)


def build_array(fs, data):
    def init(comm):
        a = DRXMPFile.create(comm, fs, NAME, SHAPE, CHUNK)
        a.write((0, 0), data)
        a.close()
        return True

    assert mpi.mpiexec(1, init) == [True]


def collective_read(fs):
    """Read every rank's zone collectively; reassemble the full array."""
    def body(comm):
        a = DRXMPFile.open(comm, fs, NAME)
        mem = a.read_zone(collective=True)
        lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
        a.close()
        return (lo, hi, mem.array.copy())

    out = np.full(SHAPE, np.nan)
    for lo, hi, arr in mpi.mpiexec(NPROCS, body):
        out[lo[0]:hi[0], lo[1]:hi[1]] = arr
    return out


def collective_write(fs, data):
    """Every rank collectively writes its zone of ``data``."""
    def body(comm):
        a = DRXMPFile.open(comm, fs, NAME, mode="r+")
        mem = a.read_zone(collective=True)
        lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
        mem.array[...] = data[lo[0]:hi[0], lo[1]:hi[1]]
        a.write_zone(mem, collective=True)
        a.close()
        return True

    assert all(mpi.mpiexec(NPROCS, body))


def holey_collective_roundtrip(fs):
    """Interleaved holey views through the two-phase engine with one
    aggregator per rank: the union of the ranks' blocks leaves small
    holes, so the write side data-sieves (read-modify-write of covering
    windows) and the read side issues covering reads — reaching the
    ``server.kill.collective.sieve`` site under aggregator fan-out."""
    def body(comm):
        fh = mpi.File.Open(comm, "holey",
                           mpi.MODE_CREATE | mpi.MODE_RDWR, fs,
                           info={"cb_nodes": comm.size})
        blk = mpi.BYTE.Create_contiguous(64)
        ft = blk.Create_indexed([1] * 8,
                                [4 * i + comm.rank for i in range(8)])
        ft.Commit()
        fh.Set_view(0, mpi.BYTE, ft)
        payload = bytes([comm.rank + 1]) * 512
        fh.Write_at_all(0, bytearray(payload))
        got = bytearray(512)
        fh.Read_at_all(0, got)
        fh.Close()
        return bytes(got) == payload

    assert all(mpi.mpiexec(NPROCS, body))


def assert_fully_redundant(fs):
    for suffix in (".xmd", ".xta"):
        assert fs.open(NAME + suffix).verify_replicas() == []


@pytest.mark.parametrize("victim", range(NSERVERS))
@pytest.mark.parametrize("site", READ_SITES)
def test_kill_during_collective_read(site, victim):
    data = pattern_array(SHAPE)
    fs = make_fs()
    build_array(fs, data)

    plan = FaultPlan(seed=SEED).kill_server(fs, victim, site)
    with plan:
        got = collective_read(fs)
    assert np.array_equal(got, data), f"degraded read diverged at {site}"
    assert not fs.servers[victim].alive, f"hook never fired at {site}"

    # online rebuild restores full redundancy, file stays readable
    fs.revive_server(victim)
    fs.rebuild_server(victim)
    assert_fully_redundant(fs)
    assert np.array_equal(collective_read(fs), data)


@pytest.mark.parametrize("victim", range(NSERVERS))
@pytest.mark.parametrize("site", WRITE_SITES)
def test_kill_during_collective_write(site, victim):
    data = pattern_array(SHAPE)
    data2 = data * 3.0 + 1.0
    fs = make_fs()
    build_array(fs, data)

    plan = FaultPlan(seed=SEED).kill_server(fs, victim, site)
    with plan:
        collective_write(fs, data2)
    assert not fs.servers[victim].alive, f"hook never fired at {site}"

    # every byte of the degraded write landed on a surviving replica
    assert np.array_equal(collective_read(fs), data2), \
        f"write lost bytes when server {victim} died at {site}"

    fs.revive_server(victim)
    fs.rebuild_server(victim)
    assert_fully_redundant(fs)
    assert np.array_equal(collective_read(fs), data2)


def test_kill_with_wipe_then_rebuild():
    """Killing with ``wipe=True`` loses the server's disks entirely;
    rebuild regenerates them from the surviving replica chain."""
    data = pattern_array(SHAPE)
    fs = make_fs()
    build_array(fs, data)

    plan = FaultPlan(seed=SEED).kill_server(
        fs, 1, "server.kill.collective.read", wipe=True)
    with plan:
        got = collective_read(fs)
    assert np.array_equal(got, data)

    fs.revive_server(1)
    fs.rebuild_server(1)
    assert_fully_redundant(fs)
    assert np.array_equal(collective_read(fs), data)


def test_source_dies_during_rebuild():
    """With replication 3 the rebuild re-selects its partner when the
    first source dies mid-copy."""
    data = pattern_array(SHAPE)
    fs = make_fs(replication=3, nservers=4)
    build_array(fs, data)

    fs.kill_server(0)
    fs.revive_server(0)
    plan = FaultPlan(seed=SEED).kill_server(
        fs, 1, "server.kill.rebuild.batch", after=1)
    with plan:
        fs.rebuild_server(0)
    assert np.array_equal(collective_read(fs), data)

    fs.revive_server(1)
    fs.rebuild_server(1)
    assert_fully_redundant(fs)


def test_rebuild_fails_cleanly_when_only_source_dies():
    """With replication 2 there is exactly one source per object; losing
    it mid-rebuild surfaces ServerDownError and the file stays readable
    from whatever replicas remain alive."""
    data = pattern_array(SHAPE)
    fs = make_fs(replication=2)
    build_array(fs, data)

    fs.kill_server(0)
    fs.revive_server(0)
    victims = [s.server_id for s in fs.servers if s.server_id != 0]
    plan = FaultPlan(seed=SEED)
    for v in victims:
        plan.kill_server(fs, v, "server.kill.rebuild.batch", after=1)
    with plan:
        with pytest.raises(ServerDownError):
            fs.rebuild_server(0)


def test_all_kill_sites_visited():
    """Coverage: one full replicated lifecycle (scalar I/O, collective
    read+write, rebuild) reaches every ``server.kill.*`` fault site."""
    fs = make_fs()
    plan = FaultPlan(seed=SEED)     # observe-only: no rules, just hits
    with plan:
        f = fs.create("cov")
        f.write(0, bytes(range(256)) * 8)
        f.read(0, 2048)
        build_array(fs, pattern_array(SHAPE))
        collective_write(fs, pattern_array(SHAPE) + 1.0)
        holey_collective_roundtrip(fs)
        fs.kill_server(0)
        fs.revive_server(0)
        fs.rebuild_server(0)
    missing = sorted(s for s in KILL_SITES if s not in plan.hits)
    assert missing == [], f"kill sites never reached: {missing}"


def test_unreplicated_paths_skip_kill_sites():
    """With replication 1 the plain fast path must not consult the
    replicated fault sites (its behavior and stats are pinned by the
    legacy tests)."""
    fs = make_fs(replication=1)
    plan = FaultPlan(seed=SEED)
    with plan:
        f = fs.create("plain")
        f.write(0, bytes(1024))
        f.read(0, 1024)
    assert not any(site.startswith("server.kill.readv") or
                   site.startswith("server.kill.writev")
                   for site in plan.hits)
