"""Tests for Cartesian topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import MPICommError
from repro.mpi.cart import PROC_NULL, Cartcomm
from repro.mpi.runner import SPMDFailure


def run(n, fn, **kw):
    return mpi.mpiexec(n, fn, timeout=kw.pop("timeout", 30), **kw)


class TestCreation:
    def test_coords_roundtrip(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (2, 3))
            assert cart.Get_cart_rank(cart.coords) == cart.rank
            return cart.coords
        res = run(6, body)
        assert res == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_wrong_grid_size(self):
        def body(comm):
            Cartcomm.Create_cart(comm, (2, 2))
        with pytest.raises(SPMDFailure):
            run(6, body)

    def test_with_dims_create(self):
        from repro.drxmp.partition import dims_create
        def body(comm):
            dims = dims_create(comm.size, 2)
            cart = Cartcomm.Create_cart(comm, dims)
            return cart.dims
        assert run(6, body) == [(3, 2)] * 6

    def test_periodic_wrap_rank(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (4,), periods=[True])
            return cart.Get_cart_rank((-1,)), cart.Get_cart_rank((5,))
        assert run(4, body)[0] == (3, 1)

    def test_nonperiodic_out_of_range(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (4,))
            with pytest.raises(MPICommError):
                cart.Get_cart_rank((-1,))
            return True
        assert all(run(4, body))


class TestShift:
    def test_shift_interior_and_edges(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (4,))
            return cart.Shift(0, 1)
        res = run(4, body)
        assert res[0] == (PROC_NULL, 1)
        assert res[1] == (0, 2)
        assert res[3] == (2, PROC_NULL)

    def test_periodic_shift(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (4,), periods=[True])
            return cart.Shift(0, 1)
        res = run(4, body)
        assert res[0] == (3, 1)
        assert res[3] == (2, 0)

    def test_halo_exchange_usecase(self):
        """A classic ring halo exchange through the topology."""
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (comm.size,),
                                        periods=[True])
            left, right = cart.Shift(0, 1)
            out = np.array([float(cart.rank)])
            buf = np.empty(1)
            cart.Sendrecv(out, dest=right, recvbuf=buf, source=left)
            return buf[0]
        res = run(4, body)
        assert res == [3.0, 0.0, 1.0, 2.0]


class TestSub:
    def test_row_communicators(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (2, 3))
            rows = cart.Sub([False, True])     # keep columns: row comms
            return rows.size, sorted(rows.allgather(cart.rank))
        res = run(6, body)
        assert res[0] == (3, [0, 1, 2])
        assert res[5] == (3, [3, 4, 5])

    def test_column_communicators(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (2, 3))
            cols = cart.Sub([True, False])
            return cols.size, sorted(cols.allgather(cart.rank))
        res = run(6, body)
        assert res[0] == (2, [0, 3])
        assert res[4] == (2, [1, 4])

    def test_sub_keeps_periods(self):
        def body(comm):
            cart = Cartcomm.Create_cart(comm, (2, 2),
                                        periods=[True, False])
            sub = cart.Sub([True, False])
            return sub.periods
        assert run(4, body)[0] == (True,)
