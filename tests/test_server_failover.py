"""Server-failure tolerance: replica placement, degraded reads, fan-out
writes, failure detection, online rebuild and CRC arbitration.

Covers the replication tier of the simulated PFS (DESIGN.md §5c): the
chained-declustering :class:`ReplicaLayout` arithmetic, the
`PFSFile`/`ParallelFileSystem` failure API, and the integration points
upward — `PFSByteStore.read_alternates`, `ChecksumGuard.check_or_
arbitrate`, and the `DRX_MPI_TIMEOUT` watchdog diagnostics.
"""

from __future__ import annotations

import os

import pytest

from repro.core.errors import MPIError, PFSError, ServerDownError
from repro.drx.resilience import (
    ChecksumGuard,
    FaultPlan,
    chunk_crc,
    is_transient,
)
from repro.drx.storage import PFSByteStore
from repro.pfs import (
    ParallelFileSystem,
    ReplicaLayout,
    StripeLayout,
    replica_object_name,
)
from repro import mpi

SEED = int(os.environ.get("DRX_FAULT_SEED", "0"))


def make_fs(nservers=3, stripe=64, replication=2, **kw):
    return ParallelFileSystem(nservers=nservers, stripe_size=stripe,
                              replication=replication, **kw)


def pattern(n: int, salt: int = 0) -> bytes:
    return bytes((i * 131 + salt * 29) % 251 for i in range(n))


# ---------------------------------------------------------------------------
# placement arithmetic
# ---------------------------------------------------------------------------

class TestReplicaLayout:
    def test_primary_placement_matches_striplayout(self):
        plain = StripeLayout(nservers=4, stripe_size=64)
        repl = ReplicaLayout(nservers=4, stripe_size=64, replication=3)
        for stripe in range(32):
            assert repl.replica_server(stripe, 0) == plain.server_of(
                stripe * 64)
        exts = [(0, 300), (512, 100), (37, 5)]
        assert repl.split_extents_copy(exts, 0) == plain.split_extents(exts)

    def test_chained_declustering(self):
        lay = ReplicaLayout(nservers=4, stripe_size=64, replication=2)
        for stripe in range(16):
            prim, sec = lay.replica_servers(stripe)
            assert prim == stripe % 4
            assert sec == (stripe + 1) % 4

    def test_copies_share_server_local_offset(self):
        lay = ReplicaLayout(nservers=3, stripe_size=32, replication=3)
        for copy in range(3):
            pieces = list(lay.split_extent_copy(100, 200, copy))
            base = list(lay.split_extent(100, 200))
            assert [(srv_off, lo, ln) for _s, srv_off, lo, ln in pieces] \
                == [(srv_off, lo, ln) for _s, srv_off, lo, ln in base]
            assert [s for s, *_rest in pieces] \
                == [(s + copy) % 3 for s, *_rest in base]

    def test_mirror_property(self):
        # the copy-c object on server j holds exactly the stripes of the
        # copy-c' object on partner (j - c + c') % n, at equal offsets
        lay = ReplicaLayout(nservers=5, stripe_size=16, replication=3)
        for j in range(5):
            for c in range(3):
                for c2 in range(3):
                    p = lay.partner_server(j, c, c2)
                    mine = {(s, off) for s in range(40) for cc, off in
                            [(0, 0)]
                            if lay.replica_server(s, c) == j
                            for off in [(s // 5) * 16]}
                    theirs = {(s, off) for s in range(40)
                              if lay.replica_server(s, c2) == p
                              for off in [(s // 5) * 16]}
                    assert mine == theirs

    def test_object_extent(self):
        lay = ReplicaLayout(nservers=3, stripe_size=10, replication=2)
        # file of 35 bytes = stripes 0..3 (last partial, 5 bytes)
        # copy 0: server j holds stripes s ≡ j (mod 3)
        assert lay.object_extent(0, 0, 35) == 15   # stripes 0, 3 (partial)
        assert lay.object_extent(1, 0, 35) == 10   # stripe 1 only
        assert lay.object_extent(2, 0, 35) == 10   # stripe 2 only
        assert lay.object_extent(0, 0, 0) == 0

    def test_object_extent_partial_tail(self):
        lay = ReplicaLayout(nservers=3, stripe_size=10, replication=2)
        # 25 bytes: stripes 0 (s0), 1 (s1), 2 partial 5B (s2)
        assert lay.object_extent(0, 0, 25) == 10
        assert lay.object_extent(1, 0, 25) == 10
        assert lay.object_extent(2, 0, 25) == 5
        # copy 1 shifts by one server
        assert lay.object_extent(1, 1, 25) == 10   # stripe 0
        assert lay.object_extent(0, 1, 25) == 5    # stripe 2 (partial)

    def test_validation(self):
        with pytest.raises(PFSError):
            ReplicaLayout(nservers=3, stripe_size=64, replication=4)
        with pytest.raises(PFSError):
            ReplicaLayout(nservers=3, stripe_size=64, replication=0)
        lay = ReplicaLayout(nservers=3, stripe_size=64, replication=2)
        with pytest.raises(PFSError):
            lay.replica_server(0, 2)
        with pytest.raises(PFSError):
            replica_object_name("f", -1)

    def test_object_names(self):
        assert replica_object_name("f", 0) == "f"
        assert replica_object_name("f", 1) == "f@r1"
        assert replica_object_name("f", 2) == "f@r2"


# ---------------------------------------------------------------------------
# fan-out writes and degraded reads
# ---------------------------------------------------------------------------

class TestReplicatedIO:
    def test_fanout_doubles_written_bytes(self):
        fs = make_fs(replication=2)
        f = fs.create("a")
        data = pattern(1000)
        f.write(0, data)
        st = fs.total_stats()
        assert st.bytes_written == 2 * len(data)
        assert fs.replica_stats().replica_bytes == len(data)
        assert f.read(0, len(data)) == data

    def test_replication_one_stats_unchanged(self):
        # byte-for-byte the legacy path: no replica objects, no extra
        # requests, zeroed replica counters
        fs = make_fs(replication=1)
        f = fs.create("a")
        data = pattern(1000)
        f.write(0, data)
        st = fs.total_stats()
        assert st.bytes_written == len(data)
        rs = fs.replica_stats()
        assert (rs.degraded_reads, rs.failovers, rs.missed_writes,
                rs.replica_bytes, rs.rebuild_bytes) == (0, 0, 0, 0, 0)
        for s in fs.servers:
            assert not s.has_object(replica_object_name("a", 1))

    def test_degraded_read_any_single_server(self):
        data = pattern(7 * 64 + 13)
        for victim in range(3):
            fs = make_fs(replication=2)
            f = fs.create("a")
            f.write(0, data)
            fs.kill_server(victim)
            assert f.read(0, len(data)) == data
            assert fs.replica_stats().degraded_reads > 0

    def test_all_replicas_down_raises(self):
        fs = make_fs(nservers=3, replication=2)
        f = fs.create("a")
        f.write(0, pattern(300))
        fs.kill_server(0)
        fs.kill_server(1)
        with pytest.raises(ServerDownError):
            f.read(0, 300)

    def test_serverdown_not_transient(self):
        assert not is_transient(ServerDownError("x"))
        assert is_transient(PFSError("x"))

    def test_write_while_one_server_down(self):
        fs = make_fs(replication=2)
        f = fs.create("a")
        data = pattern(500)
        fs.kill_server(1)
        f.write(0, data)
        assert fs.replica_stats().missed_writes > 0
        assert f.read(0, len(data)) == data
        # bring it back WITHOUT rebuild: stale, still excluded
        fs.revive_server(1)
        assert f.read(0, len(data)) == data
        assert not fs.servers[1].available
        # rebuild clears the debt and the read works from any replica
        fs.rebuild_server(1)
        assert fs.servers[1].available
        assert f.read(0, len(data)) == data
        assert f.verify_replicas() == []

    def test_write_fails_when_no_replica_alive(self):
        fs = make_fs(nservers=3, replication=2)
        f = fs.create("a")
        fs.kill_server(0)
        fs.kill_server(1)
        with pytest.raises(ServerDownError):
            f.write(0, pattern(300))

    def test_mid_call_failover(self):
        # server answers the availability check, then errors: the read
        # re-routes to the replica mid-call
        fs = make_fs(replication=2)
        f = fs.create("a")
        data = pattern(6 * 64)
        f.write(0, data)
        plan = FaultPlan(seed=SEED).fail("server.read", times=1)
        fs.servers[0].fault_plan = plan
        assert f.read(0, len(data)) == data
        assert f.rstats.failovers >= 1

    def test_failure_detector_marks_suspect(self):
        fs = make_fs(replication=2)
        f = fs.create("a")
        data = pattern(4 * 64)
        f.write(0, data)
        plan = FaultPlan(seed=SEED).fail("server.read", times=None)
        fs.servers[0].fault_plan = plan
        threshold = fs.servers[0].suspect_threshold
        for _ in range(threshold):
            assert f.read(0, len(data)) == data
        assert fs.servers[0].suspect
        # suspect servers are avoided up front: no more failovers needed
        before = f.rstats.failovers
        assert f.read(0, len(data)) == data
        assert f.rstats.failovers == before

    def test_collective_read_degraded_bit_identical(self):
        fs = make_fs(nservers=4, stripe=64, replication=2)
        f = fs.create("a")
        data = pattern(16 * 64)
        f.write(0, data)
        rank_extents = [[(0, 256), (512, 128)], [(256, 256), (640, 64)]]
        want, _ = f.collective_readv(rank_extents)
        fs.kill_server(2)
        got, _ = f.collective_readv(rank_extents)
        assert got == want


# ---------------------------------------------------------------------------
# rebuild
# ---------------------------------------------------------------------------

class TestRebuild:
    def test_rebuild_after_wipe(self):
        fs = make_fs(replication=2)
        f = fs.create("a")
        data = pattern(9 * 64 + 31)
        f.write(0, data)
        fs.kill_server(2, wipe=True)          # disks gone
        f.write(2 * 64, pattern(64, salt=1))  # degraded write meanwhile
        fs.revive_server(2)
        fs.rebuild_server(2)
        assert f.verify_replicas() == []
        assert fs.replica_stats().rebuild_bytes > 0
        # the degraded write is on the rebuilt server too
        expect = bytearray(data)
        expect[2 * 64:3 * 64] = pattern(64, salt=1)
        assert f.read(0, len(data)) == bytes(expect)

    def test_rebuild_interleaves_with_io(self):
        fs = make_fs(replication=2)
        f = fs.create("a")
        f.write(0, pattern(20 * 64))
        fs.kill_server(1)
        fs.revive_server(1)
        steps = f.rebuild_steps(1, batch_bytes=64)
        # interleave: one rebuild batch, one foreground read, ...
        n = 0
        for _t in steps:
            n += 1
            assert f.read(0, 128) == pattern(20 * 64)[:128]
        assert n > 1
        fs.servers[1].mark_rebuilt()
        assert f.verify_replicas() == []

    def test_rebuild_requires_alive_server(self):
        fs = make_fs(replication=2)
        fs.create("a").write(0, pattern(100))
        fs.kill_server(0)
        with pytest.raises(ServerDownError):
            fs.rebuild_server(0)

    def test_rebuild_drops_orphan_objects(self):
        fs = make_fs(replication=2)
        fs.create("doomed").write(0, pattern(300))
        fs.create("keeper").write(0, pattern(300, salt=2))
        fs.kill_server(0)
        fs.delete("doomed")                   # server 0 keeps orphans
        fs.revive_server(0)
        fs.rebuild_server(0)
        assert not fs.servers[0].has_object("doomed")
        assert not fs.servers[0].has_object(replica_object_name("doomed", 1))
        assert fs.servers[0].has_object("keeper")

    def test_stale_server_accepts_writes(self):
        # stale = no reads until rebuilt, but writes go through — the
        # invariant that keeps online rebuild from losing bytes
        fs = make_fs(replication=2)
        f = fs.create("a")
        f.write(0, pattern(300))
        fs.kill_server(1)
        fs.revive_server(1)
        before = fs.replica_stats().missed_writes
        f.write(0, pattern(300, salt=1))
        rs = fs.replica_stats()
        assert rs.missed_writes == before       # nothing was skipped
        assert rs.write_through > 0             # it landed on the stale one
        assert not fs.servers[1].available      # reads still excluded
        assert f.read(0, 300) == pattern(300, salt=1)
        fs.rebuild_server(1)
        assert f.verify_replicas() == []

    def test_wiped_stale_server_counts_missed_writes(self):
        # a wiped replacement has no objects to write through to until
        # rebuild recreates them: those writes stay missed-write debt
        fs = make_fs(replication=2)
        f = fs.create("a")
        f.write(0, pattern(300))
        fs.kill_server(1, wipe=True)
        fs.revive_server(1)
        before = fs.replica_stats().missed_writes
        f.write(0, pattern(300, salt=1))
        assert fs.replica_stats().missed_writes > before
        fs.rebuild_server(1)
        assert f.verify_replicas() == []
        assert f.read(0, 300) == pattern(300, salt=1)

    def test_writes_during_rebuild_reach_target(self):
        # the lost-write scenarios: a write into a region the rebuild
        # already copied, and writes extending the file past the extent
        # captured at pass start — both must be on the target when the
        # stale flag clears
        fs = make_fs(replication=2)
        base = pattern(20 * 64)
        f = fs.create("a")
        f.write(0, base)
        fs.kill_server(1)
        fs.revive_server(1)
        expect = bytearray(base)
        i = 0
        for _t in f.rebuild_steps(1, batch_bytes=64):
            f.write(0, pattern(64, salt=3))            # already-copied region
            expect[0:64] = pattern(64, salt=3)
            tail = pattern(64, salt=10 + i)            # extension write
            f.write(len(expect), tail)
            expect += tail
            i += 1
        assert i > 1
        fs.servers[1].mark_rebuilt()
        assert f.verify_replicas() == []
        assert f.read(0, len(expect)) == bytes(expect)
        # and the rebuilt server really serves those bytes: lose the
        # other replica of stripe 0 and read degraded
        fs.kill_server(0)
        assert f.read(0, len(expect)) == bytes(expect)

    def test_create_during_rebuild_survives_sweep(self):
        # a file created mid-rebuild must neither lose its objects to
        # the orphan sweep nor be skipped by the rebuild
        fs = make_fs(replication=2)
        f = fs.create("a")
        f.write(0, pattern(10 * 64))
        fs.kill_server(1)
        fs.revive_server(1)
        created = {}

        def mk():
            g = fs.create("late")
            g.write(0, pattern(128, salt=5))
            created["late"] = g

        plan = FaultPlan(seed=SEED).hook("server.kill.rebuild.batch", mk)
        with plan:
            fs.rebuild_server(1, batch_bytes=64)
        assert fs.servers[1].available
        g = created["late"]
        assert fs.servers[1].has_object("late")
        assert fs.servers[1].has_object(replica_object_name("late", 1))
        assert g.verify_replicas() == []
        assert f.verify_replicas() == []
        g.write(0, pattern(128, salt=6))   # no "no object" on the target
        assert g.read(0, 128) == pattern(128, salt=6)

    def test_replication_three_tolerates_two_failures(self):
        fs = make_fs(nservers=4, replication=3)
        f = fs.create("a")
        data = pattern(12 * 64)
        f.write(0, data)
        fs.kill_server(0)
        fs.kill_server(3)
        assert f.read(0, len(data)) == data
        fs.revive_server(0)
        fs.rebuild_server(0)
        fs.revive_server(3)
        fs.rebuild_server(3)
        assert f.verify_replicas() == []


# ---------------------------------------------------------------------------
# namespace operations under faults
# ---------------------------------------------------------------------------

class TestNamespaceFaults:
    def test_delete_fault_keeps_namespace_consistent(self):
        # an injected fault mid-delete must not strand replica objects
        # behind an already-removed namespace entry: the file stays in
        # the namespace and a retried delete finishes the job
        fs = make_fs(replication=2)
        fs.create("a").write(0, pattern(300))
        plan = FaultPlan(seed=SEED).fail("server.delete", times=1)
        for s in fs.servers:
            s.fault_plan = plan
        with pytest.raises(PFSError):
            fs.delete("a")
        assert fs.exists("a")
        fs.delete("a")                    # per-server deletes are idempotent
        assert not fs.exists("a")
        for s in fs.servers:
            assert not s.has_object("a")
            assert not s.has_object(replica_object_name("a", 1))


# ---------------------------------------------------------------------------
# CRC arbitration through the byte-store stack
# ---------------------------------------------------------------------------

class TestArbitration:
    def test_read_alternates_counts_copies(self):
        fs = make_fs(replication=2)
        store = PFSByteStore(fs.create("a"))
        store.write(0, pattern(200))
        alts = store.read_alternates(0, 200)
        assert len(alts) == 2
        assert all(a == pattern(200) for a in alts)
        fs.kill_server(0)
        # stripe 0: copy 0 lives on dead server 0, copy 1 on server 1
        assert store.read_alternates(0, 64) == [pattern(200)[:64]]

    def test_unreplicated_store_has_no_alternates(self):
        fs = make_fs(replication=1)
        store = PFSByteStore(fs.create("a"))
        store.write(0, pattern(100))
        assert store.read_alternates(0, 100) == []

    def test_guard_arbitrates_and_heals(self):
        fs = make_fs(nservers=3, stripe=64, replication=2)
        f = fs.create("a")
        good = pattern(64)
        f.write(0, good)
        store = PFSByteStore(f)
        guard = ChecksumGuard({0: chunk_crc(good)})
        # corrupt the PRIMARY copy of stripe 0 (object "a" on server 0)
        fs.servers[0].corrupt("a", 0, b"\xff" * 64)
        bad = store.read(0, 64)
        assert bad != good
        healed = guard.check_or_arbitrate(0, bad, store, 0, 64)
        assert bytes(healed) == good
        assert guard.arbitrated == 1
        # the heal wrote the good bytes back over the bad copy
        assert store.read(0, 64) == good
        assert f.verify_replicas() == []

    def test_arbitration_heal_is_out_of_band(self):
        # healing happens on a logical read: it must not move any write
        # counter, at the store or at the servers
        fs = make_fs(nservers=3, stripe=64, replication=2)
        f = fs.create("a")
        good = pattern(64)
        f.write(0, good)
        store = PFSByteStore(f)
        guard = ChecksumGuard({0: chunk_crc(good)})
        fs.servers[0].corrupt("a", 0, b"\xff" * 64)
        bad = store.read(0, 64)
        srv_writes = [s.stats.write_requests for s in fs.servers]
        store_writes = store.stats.writes
        replica_bytes = f.rstats.replica_bytes
        healed = guard.check_or_arbitrate(0, bad, store, 0, 64)
        assert bytes(healed) == good
        assert store.read(0, 64) == good                     # healed
        assert [s.stats.write_requests for s in fs.servers] == srv_writes
        assert store.stats.writes == store_writes
        assert f.rstats.replica_bytes == replica_bytes

    def test_arbitration_heal_skips_fault_injection(self):
        # an armed write-fault rule must not fire on (or be consumed
        # by) the heal write-back
        from repro.drx.resilience import FaultInjector
        fs = make_fs(nservers=3, stripe=64, replication=2)
        f = fs.create("a")
        good = pattern(64)
        f.write(0, good)
        plan = FaultPlan(seed=SEED).fail("write", times=None)
        store = FaultInjector(PFSByteStore(f), plan)
        guard = ChecksumGuard({0: chunk_crc(good)})
        fs.servers[0].corrupt("a", 0, b"\xff" * 64)
        healed = guard.check_or_arbitrate(0, store.read(0, 64),
                                          store, 0, 64)
        assert bytes(healed) == good
        assert plan.injected.get("write", 0) == 0
        assert store.read(0, 64) == good
        assert f.verify_replicas() == []

    def test_guard_without_store_still_raises(self):
        from repro.core.errors import ChecksumError
        guard = ChecksumGuard({0: chunk_crc(b"good")})
        with pytest.raises(ChecksumError):
            guard.check_or_arbitrate(0, b"evil")

    def test_drxfile_read_arbitrates_torn_replica(self):
        import numpy as np
        from repro.drx.drxfile import DRXFile
        fs = make_fs(nservers=3, stripe=256, replication=2)
        a = DRXFile.create_pfs(fs, "arr", bounds=(8, 8), chunk_shape=(4, 4),
                               checksums=True, cache_pages=2)
        vals = np.arange(64, dtype=np.float64).reshape(8, 8)
        a.write((0, 0), vals)
        a.flush()
        # tear chunk 0's primary replica behind the library's back
        nb = a.meta.chunk_nbytes
        fs.servers[0].corrupt("arr.xta", 0, b"\x7f" * nb)
        got = a.read((0, 0), (8, 8))
        assert np.array_equal(got, vals)
        assert a._guard.arbitrated >= 1
        a.close()


# ---------------------------------------------------------------------------
# watchdog diagnostics (satellite: DRX_MPI_TIMEOUT + collective names)
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_timeout_env_default(self, monkeypatch):
        from repro.mpi import runner
        monkeypatch.setenv("DRX_MPI_TIMEOUT", "7.5")
        assert runner._default_timeout() == 7.5
        monkeypatch.setenv("DRX_MPI_TIMEOUT", "bogus")
        assert runner._default_timeout() == 120.0
        monkeypatch.delenv("DRX_MPI_TIMEOUT")
        assert runner._default_timeout() == 120.0

    def test_env_var_drives_watchdog(self, monkeypatch):
        monkeypatch.setenv("DRX_MPI_TIMEOUT", "2")

        def body(comm):
            if comm.rank == 0:
                comm.barrier()      # rank 1 never joins: deadlock

        with pytest.raises(MPIError, match="deadlock"):
            mpi.mpiexec(2, body)    # timeout comes from the env var

    def test_hung_collective_named_in_error(self):
        def body(comm):
            if comm.rank == 0:
                comm.allreduce(1)   # mismatched: rank 1 never calls it

        with pytest.raises(MPIError) as ei:
            mpi.mpiexec(2, body, timeout=2)
        msg = str(ei.value)
        assert "deadlock" in msg
        assert "allreduce" in msg
        assert "ranks [0]" in msg
        assert "mpi-rank-0" in msg
