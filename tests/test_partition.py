"""Unit tests for zone partitioning (BLOCK, BLOCK_CYCLIC, dims_create)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DRXDistributionError
from repro.drxmp.partition import (
    BlockCyclicPartition,
    BlockPartition,
    Zone,
    dims_create,
)


class TestDimsCreate:
    @pytest.mark.parametrize("n,k,expect", [
        (4, 2, (2, 2)),
        (6, 2, (3, 2)),
        (8, 3, (2, 2, 2)),
        (12, 2, (4, 3)),
        (7, 2, (7, 1)),
        (1, 3, (1, 1, 1)),
        (16, 2, (4, 4)),
    ])
    def test_balanced(self, n, k, expect):
        dims = dims_create(n, k)
        assert dims == expect
        assert int(np.prod(dims)) == n

    def test_invalid(self):
        with pytest.raises(DRXDistributionError):
            dims_create(0, 2)
        with pytest.raises(DRXDistributionError):
            dims_create(4, 0)


class TestZone:
    def test_shape_and_count(self):
        z = Zone(0, (1, 2), (4, 6))
        assert z.shape == (3, 4)
        assert z.num_chunks == 12
        assert not z.empty
        assert z.contains((1, 2)) and z.contains((3, 5))
        assert not z.contains((4, 2))

    def test_chunk_indices_row_major(self):
        z = Zone(0, (1, 1), (3, 3))
        got = [tuple(r) for r in z.chunk_indices()]
        assert got == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_empty_zone(self):
        z = Zone(0, (2, 2), (2, 4))
        assert z.empty
        assert z.chunk_indices().shape == (0, 2)

    def test_element_box_clipping(self):
        z = Zone(0, (4, 3), (5, 4))           # chunk (4, 3)
        lo, hi = z.element_box((2, 3), (10, 10))
        assert lo == (8, 9)
        assert hi == (10, 10)                 # clipped from (10, 12)


class TestBlockPartition:
    def test_fig1_zones(self):
        part = BlockPartition((5, 4), 4, pgrid=(2, 2))
        zones = part.zones()
        assert zones[0].lo == (0, 0) and zones[0].hi == (3, 2)
        assert zones[1].lo == (0, 2) and zones[1].hi == (3, 4)
        assert zones[2].lo == (3, 0) and zones[2].hi == (5, 2)
        assert zones[3].lo == (3, 2) and zones[3].hi == (5, 4)

    def test_disjoint_and_covering(self):
        part = BlockPartition((7, 5, 3), 12)
        seen = np.zeros((7, 5, 3), dtype=int)
        for r in range(12):
            for ci in part.chunks_of(r):
                seen[tuple(ci)] += 1
        assert np.all(seen == 1)

    def test_owner_matches_zones(self):
        part = BlockPartition((7, 5), 6)
        for r in range(6):
            for ci in part.chunks_of(r):
                assert part.owner_of(tuple(ci)) == r

    def test_owners_vectorized(self):
        part = BlockPartition((9, 8), 4)
        idx = np.array([[i, j] for i in range(9) for j in range(8)])
        owners = part.owners_of(idx)
        scalar = [part.owner_of(tuple(r)) for r in idx]
        assert owners.tolist() == scalar

    def test_more_procs_than_chunks(self):
        part = BlockPartition((2, 2), 8, pgrid=(4, 2))
        counts = part.chunk_counts()
        assert sum(counts) == 4
        assert max(counts) <= 1

    def test_bad_grid(self):
        with pytest.raises(DRXDistributionError):
            BlockPartition((4, 4), 4, pgrid=(3, 2))
        with pytest.raises(DRXDistributionError):
            BlockPartition((4, 4), 4, pgrid=(4,))

    def test_rank_coords_roundtrip(self):
        part = BlockPartition((6, 6), 6, pgrid=(3, 2))
        for r in range(6):
            assert part.rank_of_coords(part.coords_of_rank(r)) == r
        with pytest.raises(DRXDistributionError):
            part.coords_of_rank(6)

    def test_owner_out_of_bounds(self):
        part = BlockPartition((4, 4), 4)
        with pytest.raises(DRXDistributionError):
            part.owner_of((4, 0))


class TestBlockCyclicPartition:
    def test_disjoint_and_covering(self):
        part = BlockCyclicPartition((7, 5), 4, block=1)
        seen = np.zeros((7, 5), dtype=int)
        for r in range(4):
            for ci in part.chunks_of(r):
                seen[tuple(ci)] += 1
        assert np.all(seen == 1)

    def test_owner_matches_chunks(self):
        part = BlockCyclicPartition((6, 6), 4, block=2)
        for r in range(4):
            for ci in part.chunks_of(r):
                assert part.owner_of(tuple(ci)) == r

    def test_owners_vectorized(self):
        part = BlockCyclicPartition((6, 7), 6, block=(2, 1))
        idx = np.array([[i, j] for i in range(6) for j in range(7)])
        assert part.owners_of(idx).tolist() == \
            [part.owner_of(tuple(r)) for r in idx]

    def test_boxes_cover_chunks(self):
        part = BlockCyclicPartition((7, 5), 4, block=2)
        for r in range(4):
            from_boxes = set()
            for box in part.boxes_of(r):
                for ci in box.chunk_indices():
                    from_boxes.add(tuple(ci))
            from_list = {tuple(c) for c in part.chunks_of(r)}
            assert from_boxes == from_list

    def test_cyclic_balances_skewed_grid(self):
        """E6's claim: on a grid grown along one dimension, BLOCK_CYCLIC
        spreads chunks far more evenly than BLOCK when the grid dimension
        is indivisible."""
        chunk_bounds = (17, 2)      # heavily skewed after dim-0 growth
        nproc = 4
        blk = BlockPartition(chunk_bounds, nproc, pgrid=(4, 1))
        cyc = BlockCyclicPartition(chunk_bounds, nproc, block=1,
                                   pgrid=(4, 1))
        def imbalance(counts):
            return max(counts) - min(counts)
        assert imbalance(cyc.chunk_counts()) <= imbalance(blk.chunk_counts())

    def test_bad_block(self):
        with pytest.raises(DRXDistributionError):
            BlockCyclicPartition((4, 4), 4, block=0)
