"""Robustness of the benchmark *shapes* to the cost-model parameters.

EXPERIMENTS.md claims the measured orderings ("who wins") are properties
of the access patterns, not of the specific 8 ms / 60 MB/s / 0.2 ms
defaults.  These tests re-run the core E2 and E3 comparisons under
wildly different cost models — seek-free SSD-like, seek-dominated
tape-like, overhead-dominated network-like — and assert every ordering
survives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.baselines import ConventionalArrayFile
from repro.core.metadata import DRXMeta
from repro.drx import PFSByteStore
from repro.drx.drxfile import DRXFile
from repro.drxmp import DRXMPFile
from repro.pfs import CostModel, ParallelFileSystem
from repro.workloads import column_scan_boxes, pattern_array, row_scan_boxes

MODELS = {
    "hdd-2007": CostModel(request_overhead=0.2e-3, seek_time=8e-3,
                          bandwidth=60e6),
    "ssd-like": CostModel(request_overhead=0.05e-3, seek_time=0.1e-3,
                          bandwidth=500e6),
    "tape-like": CostModel(request_overhead=1e-3, seek_time=100e-3,
                           bandwidth=100e6),
    "network-fs": CostModel(request_overhead=5e-3, seek_time=1e-3,
                            bandwidth=1000e6),
}

SHAPE = (128, 128)


def _e2_ratios(cm: CostModel) -> tuple[float, float]:
    """(flat column/row penalty, drx column/row penalty) under ``cm``."""
    fs = ParallelFileSystem(nservers=4, stripe_size=32 * 1024,
                            cost_model=cm)
    flat = ConventionalArrayFile(SHAPE,
                                 store=PFSByteStore(fs.create("f")))
    flat.write((0, 0), pattern_array(SHAPE))

    def scan(read, boxes, order="C"):
        fs.reset_stats()
        for lo, hi in boxes:
            read(lo, hi, order)
        return fs.total_stats().busy_time

    f_row = scan(flat.read, row_scan_boxes(SHAPE, 16))
    f_col = scan(flat.read, column_scan_boxes(SHAPE, 16))

    meta = DRXMeta.create(SHAPE, (16, 16))
    drx = DRXFile(meta, PFSByteStore(fs.create("d")), None,
                  writable=True, cache_pages=4)
    drx.write((0, 0), pattern_array(SHAPE))
    drx.flush()

    def dread(lo, hi, order):
        drx._pool.invalidate()
        drx.read(lo, hi, order)

    d_row = scan(dread, row_scan_boxes(SHAPE, 16))
    d_col = scan(dread, column_scan_boxes(SHAPE, 16), "F")
    drx.close()
    return f_col / f_row, d_col / d_row


@pytest.mark.parametrize("name", sorted(MODELS))
def test_e2_ordering_survives_cost_model(name):
    flat_pen, drx_pen = _e2_ratios(MODELS[name])
    # the flat file's transposed penalty dominates DRX's under EVERY model
    assert flat_pen > drx_pen, (name, flat_pen, drx_pen)
    assert flat_pen > 2.0, (name, flat_pen)


def _e3_times(cm: CostModel, nproc: int) -> tuple[float, float]:
    fs = ParallelFileSystem(nservers=4, stripe_size=8 * 1024,
                            cost_model=cm)

    def init(comm):
        a = DRXMPFile.create(comm, fs, "e3", (64, 64), (8, 8))
        a.write((0, 0), pattern_array((64, 64)))
        a.close()
        return True
    mpi.mpiexec(1, init)

    out = []
    for collective in (True, False):
        def body(comm, collective=collective):
            a = DRXMPFile.open(comm, fs, "e3")
            a.read_zone(collective=collective)
            a.close()
            return True
        fs.reset_stats()
        mpi.mpiexec(nproc, body, timeout=90)
        out.append(fs.total_stats().busy_time)
    return out[0], out[1]


@pytest.mark.parametrize("name", sorted(MODELS))
def test_e3_ordering_survives_cost_model(name):
    coll, indep = _e3_times(MODELS[name], nproc=4)
    assert coll <= indep * 1.001, (name, coll, indep)
