"""Crash durability and exactly-once: journal, recovery, net faults.

The contract under test, end to end:

* every mutation the daemon *acknowledged* survives ``kill -9`` at any
  ``server.kill.daemon.*`` / ``serve.net.*`` fault site — restart
  recovery replays the journal and the array is bit-identical;
* a mutation retried because its OK frame was lost (daemon kill, torn
  frame, bit flip, disconnect) is applied **exactly once** — the
  relative ``extend`` is the detector: a double-apply changes the
  shape;
* the client stub's retry accounting is pinned (``max_retries=N`` ==
  N+1 attempts, first sleep ``delay(1)``), and the QoS conservation
  law ``requests == ok + errors + retry_later + deadline_misses``
  holds under retries, dedup replays, and reconnects.

Env knobs: ``DRX_FAULT_SEED`` drives every seeded schedule (the CI
crash-recovery job sweeps it).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.errors import ServeError
from repro.core.faultsites import ALL_SITES, DAEMON_SITES, NET_SITES
from repro.drx.resilience import BackoffPolicy, FaultPlan
from repro.drx.storage import MemoryByteStore
from repro.drx.drxfile import DRXFile
from repro.pfs import ParallelFileSystem
from repro.serve import DRXClient, DRXServer, FaultySocket, protocol
from repro.serve.journal import (
    ABORT,
    BEGIN,
    CHECKPOINT,
    COMMIT,
    DATA,
    DedupTable,
    Journal,
    encode_record,
    decode_record,
)
from repro.serve.locks import ArrayRWLock
from repro.serve.recovery import recover, scan_journal

SEED = int(os.environ.get("DRX_FAULT_SEED", "0"))


def make_client(srv, name="anon", **kw):
    kw.setdefault("timeout", 30.0)
    return DRXClient(srv.address, client_id=name, **kw)


def conservation_ok(stats: dict) -> bool:
    """The QoS conservation law, per client and in aggregate."""
    snaps = list(stats["qos"]["clients"].values())
    snaps.append(stats["qos"]["totals"])
    return all(s["requests"] == s["ok"] + s["errors"]
               + s["retry_later"] + s["deadline_misses"] for s in snaps)


# ---------------------------------------------------------------------------
# journal record framing
# ---------------------------------------------------------------------------
class TestRecordFraming:
    def test_roundtrip_with_payload(self):
        blob = encode_record(BEGIN, {"txn": 7, "verb": "write"},
                             b"\x01\x02\x03")
        rtype, header, payload, end = decode_record(blob, 0)
        assert rtype == BEGIN
        assert header == {"txn": 7, "verb": "write"}
        assert payload == b"\x01\x02\x03"
        assert end == len(blob)

    def test_truncated_record_is_torn_tail(self):
        blob = encode_record(COMMIT, {"txn": 1, "result": {}})
        for cut in (1, 7, len(blob) - 1):
            assert decode_record(blob[:cut], 0) is None

    def test_corrupted_record_fails_crc(self):
        blob = bytearray(encode_record(DATA, {"txn": 2}, b"payload"))
        blob[-3] ^= 0x40
        assert decode_record(bytes(blob), 0) is None

    def test_scan_stops_at_first_invalid_record(self):
        good = encode_record(BEGIN, {"txn": 1, "verb": "extend"})
        good += encode_record(COMMIT, {"txn": 1, "result": {"seq": 1}})
        store = MemoryByteStore()
        store.write(0, good + b"\xde\xad\xbe\xef garbage tail")
        records, report = scan_journal(store)
        assert [r[0] for r in records] == [BEGIN, COMMIT]
        assert report.valid_end == len(good)
        assert report.torn_bytes == len(b"\xde\xad\xbe\xef garbage tail")


# ---------------------------------------------------------------------------
# the journal proper
# ---------------------------------------------------------------------------
class TestJournal:
    def test_begin_commit_lsn_and_stats(self):
        j = Journal(MemoryByteStore())
        txn = j.begin("write", ("c", "s", 1),
                      {"lo": [0], "shape": [4], "dtype": "<f8"},
                      b"\x00" * 32)
        lsn = j.commit(txn, ("c", "s", 1), {"seq": 1})
        j.sync(lsn)
        assert txn == 1
        assert j.stats.records == 3          # BEGIN + DATA + COMMIT
        assert j.stats.syncs == 1
        assert lsn == j.size

    def test_txn_ids_resume_above_recovered(self):
        j = Journal(MemoryByteStore(), start_txn=41)
        assert j.begin("extend", None, {"to": [8]}) == 42

    def test_rotate_truncates_to_checkpoint(self):
        store = MemoryByteStore()
        j = Journal(store)
        for i in range(4):
            j.sync(j.commit(j.begin("extend", ("c", "s", i),
                                    {"to": [8 + i]}),
                            ("c", "s", i), {"seq": i + 1}))
        fat = j.size
        j.rotate({"c": [['["s",3]', {"seq": 4}]]}, epoch=9)
        assert j.size < fat
        records, report = scan_journal(store)
        assert [r[0] for r in records] == [CHECKPOINT]
        assert records[0][1]["epoch"] == 9
        assert records[0][1]["dedup"] == {"c": [['["s",3]', {"seq": 4}]]}
        assert report.torn_bytes == 0
        assert j.stats.rotations == 1

    def test_rotate_during_sync_keeps_new_appends_unsynced(self):
        """A rotation landing while a sync leader's fsync is in flight
        truncates the journal; the leader must not then resurrect its
        stale pre-rotation offset as the durable watermark, or fresh
        post-rotation appends would be acked without any fsync."""
        store = MemoryByteStore()
        j = Journal(store)
        for i in range(4):                   # fatten the pre-rotation end
            lsn = j.commit(j.begin("extend", ("c", "s", i),
                                   {"to": [8 + i]}),
                           ("c", "s", i), {"seq": i + 1})
        real_flush = store.flush
        fired = []

        def flush_then_rotate():
            real_flush()
            if not fired:                    # rotate() flushes too
                fired.append(True)
                j.rotate({}, epoch=1)

        store.flush = flush_then_rotate
        try:
            j.sync(lsn)                      # leader round, rotated mid-flight
        finally:
            store.flush = real_flush
        # a fresh append (at a small post-rotation offset) must pay its
        # own fsync — it must not be covered by the stale watermark
        syncs = j.stats.syncs
        lsn2 = j.commit(j.begin("extend", ("c", "s", 9), {"to": [32]}),
                        ("c", "s", 9), {"seq": 9})
        j.sync(lsn2)
        assert j.stats.syncs == syncs + 1
        assert j._synced == j.size

    def test_failed_fsync_does_not_mark_bytes_durable(self):
        store = MemoryByteStore()
        j = Journal(store)
        lsn = j.commit(j.begin("extend", ("c", "s", 0), {"to": [9]}),
                       ("c", "s", 0), {"seq": 1})
        real_flush = store.flush

        def boom():
            raise OSError("injected fsync failure")

        store.flush = boom
        with pytest.raises(OSError, match="injected"):
            j.sync(lsn)
        store.flush = real_flush
        # the failure must not have advanced the durable watermark: the
        # retry issues a real fsync instead of succeeding from cache
        syncs = j.stats.syncs
        j.sync(lsn)
        assert j.stats.syncs == syncs + 1
        assert j.stats.batched_syncs == 0
        assert j._synced == j.size

    def test_group_commit_batches_concurrent_syncs(self):
        j = Journal(MemoryByteStore(), group_window=0.03)
        errors = []

        def one(i):
            try:
                txn = j.begin("extend", ("c", "s", i), {"to": [i]})
                j.sync(j.commit(txn, ("c", "s", i), {"seq": i}))
            except Exception as exc:    # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        assert j.stats.sync_requests == 8
        # the whole point of group commit: fewer fsyncs than requests
        assert j.stats.syncs < 8
        assert j.stats.batched_syncs >= 8 - j.stats.syncs

    def test_append_after_close_refused(self):
        j = Journal(MemoryByteStore())
        j.close()
        with pytest.raises(ValueError, match="closed"):
            j.begin("extend", None, {"to": [1]})


# ---------------------------------------------------------------------------
# dedup table
# ---------------------------------------------------------------------------
class TestDedupTable:
    KEY = ("tenant", "sess", 1)

    def test_claim_fulfill_replay(self):
        d = DedupTable()
        assert d.claim(self.KEY) is None         # caller owns it
        d.fulfill(self.KEY, {"seq": 5})
        assert d.claim(self.KEY) == {"seq": 5}   # replay answered
        assert d.hits == 1

    def test_abandon_allows_reexecution(self):
        d = DedupTable()
        assert d.claim(self.KEY) is None
        d.abandon(self.KEY)
        assert d.claim(self.KEY) is None
        assert d.hits == 0

    def test_concurrent_same_key_blocks_until_fulfilled(self):
        d = DedupTable()
        assert d.claim(self.KEY) is None
        got = {}

        def racer():
            got["cached"] = d.claim(self.KEY)    # parks until fulfill

        t = threading.Thread(target=racer)
        t.start()
        time.sleep(0.1)
        assert "cached" not in got
        d.fulfill(self.KEY, {"seq": 9})
        t.join(5)
        assert got["cached"] == {"seq": 9}

    def test_snapshot_seed_roundtrip_and_lru_bound(self):
        d = DedupTable(per_client=2)
        for i in range(4):
            key = ("t", "s", i)
            d.claim(key)
            d.fulfill(key, {"seq": i})
        assert len(d) == 2                       # LRU-bounded
        d2 = DedupTable()
        d2.seed(d.snapshot())
        assert d2.claim(("t", "s", 3)) == {"seq": 3}
        assert d2.claim(("t", "s", 0)) is None   # evicted before snapshot
        d2.abandon(("t", "s", 0))

    def test_distinct_sessions_never_collide(self):
        d = DedupTable()
        a, b = ("anon", "sess-a", 1), ("anon", "sess-b", 1)
        d.claim(a)
        d.fulfill(a, {"seq": 1})
        assert d.claim(b) is None                # different stub instance
        d.abandon(b)

    def test_server_window_covers_maximal_retry_set(self):
        """Review regression: the server-sized window must retain every
        keyed op a client can legally have retryable at once — one
        maximal batch plus a full pipeline window.  With the old
        128-entry bound, the oldest fulfilled entries of a 1024-op
        batch were evicted before its retry arrived, re-applying them."""
        from repro.serve.protocol import (
            DEDUP_WINDOW,
            MAX_BATCH_OPS,
            MAX_PIPELINE_DEPTH,
        )

        assert DEDUP_WINDOW >= MAX_BATCH_OPS + MAX_PIPELINE_DEPTH
        d = DedupTable(per_client=DEDUP_WINDOW)
        nkeys = MAX_BATCH_OPS + MAX_PIPELINE_DEPTH
        for i in range(nkeys):
            key = ("t", "s", i)
            assert d.claim(key) is None
            d.fulfill(key, {"seq": i})
        # a torn maximal batch re-sends every op: each must still be
        # answerable from cache — none evicted, nothing re-applied
        for i in range(nkeys):
            assert d.claim(("t", "s", i)) == {"seq": i}
        assert d.hits == nkeys


# ---------------------------------------------------------------------------
# recovery against a real array
# ---------------------------------------------------------------------------
class TestRecovery:
    def _file(self, tmp_path):
        return DRXFile.create(tmp_path / "r", [8, 8], [4, 4])

    def test_replays_committed_discards_uncommitted(self, tmp_path):
        store = MemoryByteStore()
        j = Journal(store)
        box = np.arange(16.0).reshape(4, 4)
        txn = j.begin("write", ("c", "s", 1),
                      {"lo": [0, 0], "shape": [4, 4], "dtype": "<f8"},
                      box.tobytes())
        j.sync(j.commit(txn, ("c", "s", 1), {"seq": 1}))
        # an uncommitted intent: crash beat the apply — must NOT replay
        j.begin("write", ("c", "s", 2),
                {"lo": [4, 4], "shape": [4, 4], "dtype": "<f8"},
                np.full((4, 4), 9.0).tobytes())
        f = self._file(tmp_path)
        try:
            report = recover(f, store)
            assert report.replayed == 1
            assert report.discarded_txns == 1
            assert np.array_equal(f.read([0, 0], [4, 4]), box)
            assert np.array_equal(f.read([4, 4], [8, 8]),
                                  np.zeros((4, 4)))
            assert report.dedup["c"] == [['["s",1]', {"seq": 1}]]
            assert report.max_txn == 2
        finally:
            f.close()

    def test_extend_replays_to_absolute_shape(self, tmp_path):
        store = MemoryByteStore()
        j = Journal(store)
        txn = j.begin("extend", ("c", "s", 1), {"to": [12, 8]})
        j.sync(j.commit(txn, ("c", "s", 1), {"seq": 1,
                                             "shape": [12, 8]}))
        f = self._file(tmp_path)
        try:
            report = recover(f, store)
            assert report.replayed == 1
            assert list(f.shape) == [12, 8]
            # replaying the same journal again is idempotent
            report2 = recover(f, store)
            assert report2.replayed == 1
            assert list(f.shape) == [12, 8]
        finally:
            f.close()

    def test_abort_cancels_committed_txn(self, tmp_path):
        """COMMIT + ABORT == the apply failed after the commit was made
        durable (the extend ordering): recovery must neither replay the
        mutation nor seed the dedup table with its success result."""
        store = MemoryByteStore()
        j = Journal(store)
        txn = j.begin("extend", ("c", "s", 1), {"to": [12, 8]})
        j.commit(txn, ("c", "s", 1), {"seq": 1, "shape": [12, 8]})
        j.sync(j.abort(txn))
        f = self._file(tmp_path)
        try:
            report = recover(f, store)
            assert report.replayed == 0
            assert report.committed == 0
            assert report.dedup == {}
            assert list(f.shape) == [8, 8]       # not extended
        finally:
            f.close()

    def test_checkpoint_supersedes_prior_records(self, tmp_path):
        store = MemoryByteStore()
        j = Journal(store)
        txn = j.begin("write", None,
                      {"lo": [0, 0], "shape": [4, 4], "dtype": "<f8"},
                      np.full((4, 4), 3.0).tobytes())
        j.sync(j.commit(txn, None, {"seq": 1}))
        j.rotate({"c": [['["s",7]', {"seq": 1}]]}, epoch=2)
        f = self._file(tmp_path)
        try:
            report = recover(f, store)
            assert report.replayed == 0          # checkpointed == durable
            assert report.checkpoint_epoch == 2
            assert report.dedup == {"c": [['["s",7]', {"seq": 1}]]}
            assert np.array_equal(f.read([0, 0], [4, 4]),
                                  np.zeros((4, 4)))
        finally:
            f.close()


# ---------------------------------------------------------------------------
# kill -9 then recover — no client re-run
# ---------------------------------------------------------------------------
def _acked_workload(c):
    """Mutations to ``vol``, every one acknowledged before return.
    Uses the *relative* extend so any replay double-apply is visible
    in the shape."""
    c.create("vol", [8, 8], [4, 4])
    c.write("vol", (0, 0), np.arange(64.0).reshape(8, 8))
    c.extend("vol", dim=0, by=4)
    c.write("vol", (8, 0), np.full((4, 8), 2.5))
    c.extend("vol", dim=1, by=8)
    c.write("vol", (0, 8), np.full((12, 8), -1.0))


def _acked_model():
    want = np.zeros((12, 16))
    want[0:8, 0:8] = np.arange(64.0).reshape(8, 8)
    want[8:12, 0:8] = 2.5
    want[0:12, 8:16] = -1.0
    return want


class TestKillRecover:
    @pytest.mark.parametrize("backend", ["fs", "root"])
    def test_recovery_alone_restores_acked_writes(self, backend,
                                                  tmp_path):
        """THE durability contract: after ``kill -9`` (dirty cache
        abandoned, no flush), restarting and recovering — without the
        client re-running anything — yields bit-identical state."""
        if backend == "fs":
            fs = ParallelFileSystem(nservers=3, stripe_size=1024)
            kw, kw2 = dict(fs=fs), dict(fs=fs)
        else:
            kw = kw2 = dict(root=str(tmp_path))
        srv = DRXServer(**kw).start()
        with make_client(srv, "w") as c:
            _acked_workload(c)
        srv.kill()                       # abrupt: Mpool dirt vanishes

        srv2 = DRXServer(**kw2).start()
        try:
            report = srv2.recover_all()["vol"]
            assert report["committed"] == 5      # 3 writes + 2 extends
            assert report["replayed"] == 5
            assert report["discarded_txns"] == 0
            with make_client(srv2, "r") as c2:
                assert c2.open("vol")["shape"] == [12, 16]
                got = c2.read("vol", (0, 0), (12, 16))
                assert np.array_equal(got, _acked_model()), backend
        finally:
            srv2.shutdown(drain=True)

    def test_journal_disabled_daemon_still_serves(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs, journal=False).start()
        try:
            with make_client(srv, "nj") as c:
                c.create("a", [4], [2])
                c.write("a", [0], np.ones(4))
                assert np.array_equal(c.read("a", [0], [4]), np.ones(4))
                assert c.stats()["journal"] == {}
        finally:
            srv.shutdown(drain=True)

    def test_drain_rotates_journal_to_clean_checkpoint(self, tmp_path):
        srv = DRXServer(root=str(tmp_path)).start()
        with make_client(srv, "w") as c:
            _acked_workload(c)
        srv.shutdown(drain=True)
        srv2 = DRXServer(root=str(tmp_path)).start()
        try:
            report = srv2.recover_all()["vol"]
            assert report["replayed"] == 0       # drain flushed it all
            # ... but the dedup table crossed the restart
            assert report["dedup"]
            with make_client(srv2, "r") as c2:
                got = c2.read("vol", (0, 0), (12, 16))
                assert np.array_equal(got, _acked_model())
        finally:
            srv2.shutdown(drain=True)

    def test_flush_and_checkpoint_rotate_journal(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        try:
            with make_client(srv, "w") as c:
                c.create("a", [8, 8], [4, 4])
                c.write("a", (0, 0), np.ones((8, 8)))
                before = c.stats()["journal"]["a"]["size"]
                c.flush("a")
                after = c.stats()["journal"]["a"]
                assert after["size"] < before
                assert after["stats"]["rotations"] >= 1
            # the explicit checkpoint API does the same server-side
            assert srv.checkpoint() == {"a": 0}  # nothing new to drop
            assert srv.checkpoints == 1
        finally:
            srv.shutdown(drain=True)

    def test_periodic_checkpoint_fires(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs, checkpoint_interval=0.1).start()
        try:
            with make_client(srv, "w") as c:
                c.create("a", [4], [2])
                c.write("a", [0], np.ones(4))
                deadline = time.monotonic() + 10.0
                while (srv.checkpoints == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert srv.checkpoints >= 1, "watchdog checkpoint " \
                    "never fired"
                st = c.stats()
                assert st["journal"]["a"]["stats"]["rotations"] >= 1
        finally:
            srv.shutdown(drain=True)

    def test_checkpoint_tolerates_file_closed_under_it(self):
        """A watchdog checkpoint can race shutdown/kill closing the
        array files; it must skip the entry, not die with a traceback
        in the drx-serve-ckpt thread."""
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        try:
            with make_client(srv, "w") as c:
                c.create("a", [4], [2])
                c.write("a", [0], np.ones(4))
            srv._arrays["a"].file.close()     # what shutdown/kill does
            dropped = srv.checkpoint()        # must not raise
            assert "a" not in dropped
        finally:
            srv.kill()

    def test_failed_extend_apply_not_replayed_or_cached(self, tmp_path):
        """The extend path journals its COMMIT before applying; when
        the apply then fails the client sees an error, so the durable
        ABORT must keep recovery from replaying the extend or answering
        a post-restart retry 'ok' from the dedup cache."""
        srv = DRXServer(root=str(tmp_path)).start()
        real_extend = DRXFile.extend
        try:
            with make_client(srv, "w", max_retries=0) as c:
                c.create("a", [8], [4])
                c.write("a", [0], np.ones(8))

                def boom(self, dim, by):
                    raise RuntimeError("injected apply fault")

                DRXFile.extend = boom
                try:
                    with pytest.raises(ServeError, match="injected"):
                        c.extend("a", dim=0, by=4)
                finally:
                    DRXFile.extend = real_extend
            srv.kill()

            srv2 = DRXServer(root=str(tmp_path)).start()
            try:
                report = srv2.recover_all()["a"]
                assert report["replayed"] == 1       # just the write
                assert report["committed"] == 1      # extend ABORTed
                results = [r for entries in report["dedup"].values()
                           for _rest, r in entries]
                assert all("shape" not in r for r in results), \
                    "failed extend leaked a success result into dedup"
                with make_client(srv2, "r") as c2:
                    assert c2.open("a")["shape"] == [8]   # not extended
                    # the array is still writable and extendable
                    assert c2.extend("a", dim=0, by=4)["shape"] == [12]
            finally:
                srv2.shutdown(drain=True)
        finally:
            DRXFile.extend = real_extend

    def test_extend_validation_rejects_before_journaling(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        try:
            with make_client(srv, "w", max_retries=0) as c:
                c.create("a", [4, 4], [2, 2])
                before = c.stats()["journal"]["a"]["stats"]["records"]
                with pytest.raises(ServeError, match="out of range"):
                    c.extend("a", dim=2, by=4)
                with pytest.raises(ServeError, match="out of range"):
                    c.extend("a", dim=-1, by=4)
                with pytest.raises(ServeError, match="negative"):
                    c.extend("a", to=[4, -2])
                with pytest.raises(ServeError, match="rank"):
                    c.extend("a", to=[4, 4, 4])
                after = c.stats()["journal"]["a"]["stats"]["records"]
                assert after == before, \
                    "rejected extend must not touch the journal"
        finally:
            srv.shutdown(drain=True)


# ---------------------------------------------------------------------------
# the seeded sweep: kill -9 at every daemon + net site, retrying client
# ---------------------------------------------------------------------------
REQUEST_SITES = [
    "server.kill.daemon.admitted",
    "server.kill.daemon.locked",
    "server.kill.daemon.journaled",
    "server.kill.daemon.applied",
    "serve.net.recv.request",
    "serve.net.send.reply",
]


class TestKillSweep:
    def test_net_sites_registered(self):
        assert set(NET_SITES) == {"serve.net.recv.request",
                                  "serve.net.send.reply"}
        assert set(NET_SITES) <= set(ALL_SITES)
        assert "server.kill.daemon.journaled" in DAEMON_SITES

    @pytest.mark.parametrize("site", REQUEST_SITES)
    def test_kill_at_site_applies_retried_extend_exactly_once(self,
                                                              site):
        """A daemon killed at ``site`` mid-``extend`` is restarted on
        the same port while the client retries under its original
        idempotency key.  The *relative* extend is the detector: a
        lost-and-reissued request that re-applied would grow the array
        twice."""
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        host, port = srv.address
        holder = {"srv": srv}
        stop = threading.Event()

        def restarter():
            while not stop.is_set():
                if holder["srv"].state == DRXServer.DEAD:
                    nxt = DRXServer(fs=fs, host=host, port=port)
                    try:
                        nxt.start()
                    except OSError:
                        time.sleep(0.02)
                        continue
                    holder["srv"] = nxt
                time.sleep(0.01)

        t = threading.Thread(target=restarter, daemon=True)
        t.start()
        try:
            with DRXClient((host, port), client_id="chaos",
                           timeout=60.0, max_retries=60,
                           seed=SEED) as c:
                c.create("x", [8, 4], [4, 4])
                c.write("x", (0, 0), np.arange(32.0).reshape(8, 4))
                plan = FaultPlan(seed=SEED).crash(site)
                with plan:
                    ack = c.extend("x", dim=0, by=4)
                assert plan.hits.get(site), f"{site} never fired"
                assert ack["shape"] == [12, 4], site
                c.write("x", (8, 0), np.full((4, 4), 7.0))
                assert c.open("x")["shape"] == [12, 4], site
                got = c.read("x", (0, 0), (12, 4))
        finally:
            stop.set()
            t.join(5)
            holder["srv"].kill()
        want = np.zeros((12, 4))
        want[0:8] = np.arange(32.0).reshape(8, 4)
        want[8:12] = 7.0
        assert np.array_equal(got, want), site

    @pytest.mark.parametrize("site", REQUEST_SITES)
    def test_kill_at_site_during_write_bit_identical(self, site):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        host, port = srv.address
        holder = {"srv": srv}
        stop = threading.Event()

        def restarter():
            while not stop.is_set():
                if holder["srv"].state == DRXServer.DEAD:
                    nxt = DRXServer(fs=fs, host=host, port=port)
                    try:
                        nxt.start()
                    except OSError:
                        time.sleep(0.02)
                        continue
                    holder["srv"] = nxt
                time.sleep(0.01)

        t = threading.Thread(target=restarter, daemon=True)
        t.start()
        try:
            with DRXClient((host, port), client_id="chaos",
                           timeout=60.0, max_retries=60,
                           seed=SEED) as c:
                c.create("w", [8, 8], [4, 4])
                img = np.arange(64.0).reshape(8, 8)
                plan = FaultPlan(seed=SEED).crash(site)
                with plan:
                    ack = c.write("w", (0, 0), img)
                assert plan.hits.get(site), f"{site} never fired"
                assert ack["seq"] >= 1
                got = c.read("w", (0, 0), (8, 8))
                st = c.stats()
        finally:
            stop.set()
            t.join(5)
            holder["srv"].kill()
        assert np.array_equal(got, img), site
        assert conservation_ok(st), site


# ---------------------------------------------------------------------------
# client-side network faults: CRC, torn frames, reconnect-with-resume
# ---------------------------------------------------------------------------
def _arm_first_connection(arm):
    """A ``socket_wrapper`` arming only the client's FIRST connection;
    reconnects pass through clean."""
    state = {"n": 0, "fault": None}

    def wrapper(sock):
        state["n"] += 1
        fsock = FaultySocket(sock, seed=SEED)
        if state["n"] == 1:
            arm(fsock)
            state["fault"] = fsock
        return fsock

    return wrapper, state


class TestNetFaults:
    def _serve(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        return DRXServer(fs=fs).start()

    def test_lost_ok_frame_is_deduped_exactly_once(self):
        """The OK of an ``extend`` vanishes (socket dies before the
        reply is read): the stub reconnects and re-issues under the
        same key; the dedup table answers — shape grows exactly once
        and the hit is observable in QoS."""
        srv = self._serve()
        try:
            with make_client(srv, "setup") as s:
                s.create("e", [8, 4], [4, 4])
            wrapper, state = _arm_first_connection(
                lambda f: f.arm_recv("disconnect"))
            with DRXClient(srv.address, client_id="dedup",
                           timeout=30.0, max_retries=8, seed=SEED,
                           socket_wrapper=wrapper) as c:
                ack = c.extend("e", dim=0, by=4)
                assert ack["shape"] == [12, 4]
                assert c.retries >= 1
                st = c.stats()
            assert state["fault"].injected == 1
            assert st["qos"]["clients"]["dedup"]["dedup_hits"] == 1
            assert conservation_ok(st)
            with make_client(srv, "check") as c2:
                assert c2.open("e")["shape"] == [12, 4]
        finally:
            srv.shutdown(drain=True)

    def test_bitflipped_reply_caught_by_crc_then_deduped(self):
        """One bit of the reply body flips on the wire: the frame CRC
        catches it (ProtocolError), the stub reconnects, the retry is
        answered from the dedup table."""
        srv = self._serve()
        try:
            with make_client(srv, "setup") as s:
                s.create("b", [8, 4], [4, 4])
            # recv op 1 = frame head, op 2 = header+payload body
            wrapper, state = _arm_first_connection(
                lambda f: f.arm_recv("bitflip", after=2))
            with DRXClient(srv.address, client_id="flip",
                           timeout=30.0, max_retries=8, seed=SEED,
                           socket_wrapper=wrapper) as c:
                ack = c.extend("b", dim=1, by=4)
                assert ack["shape"] == [8, 8]
                assert c.retries >= 1
                st = c.stats()
            assert state["fault"].injected == 1
            assert st["qos"]["clients"]["flip"]["dedup_hits"] == 1
            assert conservation_ok(st)
            with make_client(srv, "check") as c2:
                assert c2.open("b")["shape"] == [8, 8]
        finally:
            srv.shutdown(drain=True)

    def test_torn_reply_reconnects_and_dedups(self):
        srv = self._serve()
        try:
            with make_client(srv, "setup") as s:
                s.create("t", [8, 4], [4, 4])
            wrapper, state = _arm_first_connection(
                lambda f: f.arm_recv("torn", after=2, keep=0.5))
            with DRXClient(srv.address, client_id="torn",
                           timeout=30.0, max_retries=8, seed=SEED,
                           socket_wrapper=wrapper) as c:
                ack = c.extend("t", dim=0, by=8)
                assert ack["shape"] == [16, 4]
                st = c.stats()
            assert state["fault"].injected == 1
            assert st["qos"]["clients"]["torn"]["dedup_hits"] == 1
            assert conservation_ok(st)
        finally:
            srv.shutdown(drain=True)

    def test_delayed_bytes_are_harmless(self):
        srv = self._serve()
        try:
            with make_client(srv, "setup") as s:
                s.create("d", [4], [2])
            wrapper, state = _arm_first_connection(
                lambda f: f.arm_recv("delay", seconds=0.15))
            with DRXClient(srv.address, client_id="slow",
                           timeout=30.0, socket_wrapper=wrapper) as c:
                c.write("d", [0], np.ones(4))
                assert np.array_equal(c.read("d", [0], [4]), np.ones(4))
                assert c.retries == 0            # latency, not loss
            assert state["fault"].injected == 1
        finally:
            srv.shutdown(drain=True)

    def test_torn_request_never_mutates(self):
        """The *request* frame tears mid-wire (half sent, socket
        closed): the server never dispatches the partial frame, so
        nothing is applied until the clean retry re-issues it."""
        srv = self._serve()
        try:
            with make_client(srv, "setup") as s:
                s.create("q", [8, 4], [4, 4])
            # send op 1 on the fresh connection = the extend's REQ frame
            wrapper, state = _arm_first_connection(
                lambda f: f.arm_send("torn", after=1, keep=0.4))
            with DRXClient(srv.address, client_id="reqtorn",
                           timeout=30.0, max_retries=8, seed=SEED + 3,
                           socket_wrapper=wrapper) as c:
                ack = c.extend("q", dim=0, by=4)
                assert ack["shape"] == [12, 4]
                st = c.stats()
            assert state["fault"].injected == 1
            assert conservation_ok(st)
            with make_client(srv, "check") as c2:
                assert c2.open("q")["shape"] == [12, 4]
        finally:
            srv.shutdown(drain=True)


# ---------------------------------------------------------------------------
# satellite: retry accounting pinned
# ---------------------------------------------------------------------------
class TestRetryAccounting:
    def test_max_retries_means_n_plus_one_attempts(self):
        """Regression pin for the stub's retry loop: ``max_retries=3``
        issues exactly 4 attempts with ``attempt`` headers 0..3, and
        the sleeps are ``delay(1..3)`` of an identically-seeded
        policy — no off-by-one in either direction."""
        attempts: list[int] = []
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind(("127.0.0.1", 0))
        lsock.listen(1)

        def refuse_forever():
            conn, _ = lsock.accept()
            try:
                while True:
                    _, hdr, _ = protocol.recv_frame(conn)
                    attempts.append(hdr["attempt"])
                    protocol.send_frame(conn, protocol.RETRY_LATER,
                                        {"reason": "always busy"})
            except Exception:       # noqa: BLE001 - client went away
                pass
            finally:
                conn.close()

        t = threading.Thread(target=refuse_forever, daemon=True)
        t.start()
        sleeps: list[float] = []
        try:
            c = DRXClient(lsock.getsockname(), client_id="pin",
                          max_retries=3, seed=11,
                          sleep=sleeps.append)
            with pytest.raises(ServeError, match="busy"):
                c.ping()
            c.close()
        finally:
            lsock.close()
        t.join(5)
        assert attempts == [0, 1, 2, 3]
        policy = BackoffPolicy(base_delay=0.005, max_delay=0.25,
                               seed=11)
        assert sleeps == [policy.delay(1), policy.delay(2),
                          policy.delay(3)]
        assert c.retries == 3
        assert c.retry_later_seen == 4

    def test_idempotency_key_is_stable_across_attempts(self):
        """Every retried attempt of one mutation carries the same
        ``(sid, seq)``; a *new* mutation gets a new seq."""
        seen: list[tuple[str, int, int]] = []
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.bind(("127.0.0.1", 0))
        lsock.listen(1)

        def observe():
            conn, _ = lsock.accept()
            try:
                while True:
                    _, hdr, _ = protocol.recv_frame(conn)
                    seen.append((hdr["sid"], hdr["seq"],
                                 hdr["attempt"]))
                    kind = (protocol.RETRY_LATER
                            if hdr["attempt"] == 0 else protocol.OK)
                    protocol.send_frame(conn, kind,
                                        {"reason": "one more"})
            except Exception:       # noqa: BLE001
                pass
            finally:
                conn.close()

        t = threading.Thread(target=observe, daemon=True)
        t.start()
        try:
            with DRXClient(lsock.getsockname(), client_id="key",
                           max_retries=4, seed=0,
                           sleep=lambda s: None) as c:
                c.extend("a", dim=0, by=1)
                c.extend("a", dim=0, by=1)
        finally:
            lsock.close()
        t.join(5)
        assert len(seen) == 4
        (sid1, seq1, a0), (sid1b, seq1b, a1) = seen[0], seen[1]
        assert (sid1, seq1) == (sid1b, seq1b)    # stable across retry
        assert (a0, a1) == (0, 1)
        assert seen[2][1] == seen[3][1] == seq1 + 1   # fresh request
        assert seen[2][0] == sid1


# ---------------------------------------------------------------------------
# satellite: abrupt-disconnect lock reclamation (both layers)
# ---------------------------------------------------------------------------
class TestLockReclamation:
    def test_rwlock_release_owner_reclaims_all_holds(self):
        lk = ArrayRWLock()
        tok = object()
        lk.acquire_shared(None, tok)
        lk.acquire_shared(None, tok)
        assert lk.held() == (2, False)
        assert lk.release_owner(tok) == 2
        assert lk.held() == (0, False)
        lk.acquire_exclusive(None, tok)
        assert lk.held() == (0, True)
        assert lk.release_owner(tok) == 1
        assert lk.held() == (0, False)
        assert lk.release_owner(tok) == 0        # idempotent

    def test_release_owner_ignores_other_owners(self):
        lk = ArrayRWLock()
        mine, theirs = object(), object()
        lk.acquire_shared(None, mine)
        lk.acquire_shared(None, theirs)
        assert lk.release_owner(mine) == 1
        assert lk.held() == (1, False)
        lk.release_shared(theirs)

    def test_server_backstop_releases_both_lock_layers(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        try:
            with make_client(srv, "mk") as c:
                c.create("z", [4], [2])
            entry = srv._entry("z")
            tok = object()
            # the exact window: RW lock held, chunk locks mid-acquire
            entry.rw.acquire_shared(None, tok)
            entry.chunks.acquire([0], tok)
            assert entry.rw.held() == (1, False)
            srv._release_owner(tok)
            assert entry.rw.held() == (0, False)
            assert entry.chunks.held() == 0
        finally:
            srv.shutdown(drain=True)

    def test_socket_kill_in_lock_window_leaves_no_rw_hold(self):
        """A raw client sends a write that parks on a *held* chunk
        lock (RW lock already acquired shared) and its socket dies in
        that window.  Afterwards an exclusive verb must get through
        promptly and no hold of either layer may remain."""
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        try:
            with make_client(srv, "holder") as h:
                h.create("w", [8], [4])
                blocker = threading.Thread(
                    target=lambda: h.write("w", [0], np.ones(4),
                                           _delay=0.5))
                blocker.start()
                time.sleep(0.15)         # holder owns chunk 0
                raw = socket.create_connection(srv.address)
                protocol.send_frame(raw, protocol.REQ, {
                    "verb": "write", "client": "victim", "name": "w",
                    "lo": [0], "shape": [4], "dtype": "<f8",
                    "sid": "dead", "seq": 1,
                }, np.zeros(4).tobytes())
                time.sleep(0.15)         # victim parked on chunk lock,
                raw.close()              # ... and dies in the window
                blocker.join(10)
                # exclusive verb gets through: nothing leaked
                with make_client(srv, "after", timeout=5.0) as c2:
                    ack = c2.extend("w", dim=0, by=4)
                    assert ack["shape"] == [12]
                    assert c2.stats()["chunk_locks_held"] == 0
            entry = srv._entry("w")
            deadline = time.monotonic() + 5.0
            while (entry.rw.held() != (0, False)
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert entry.rw.held() == (0, False)
        finally:
            srv.shutdown(drain=True)


# ---------------------------------------------------------------------------
# satellite: QoS conservation under retries, dedup, reconnects
# ---------------------------------------------------------------------------
class TestQoSConservation:
    def test_conservation_under_dedup_and_reconnect(self):
        fs = ParallelFileSystem(nservers=3, stripe_size=1024)
        srv = DRXServer(fs=fs).start()
        try:
            with make_client(srv, "setup") as s:
                s.create("q", [8, 4], [4, 4])
            # three tenants: one clean, one losing its first OK, one
            # losing its first request frame
            with make_client(srv, "clean") as c:
                c.write("q", (0, 0), np.ones((8, 4)))
            w1, _ = _arm_first_connection(
                lambda f: f.arm_recv("disconnect"))
            with DRXClient(srv.address, client_id="lost-ack",
                           timeout=30.0, max_retries=8, seed=SEED,
                           socket_wrapper=w1) as c:
                c.extend("q", dim=0, by=4)
            w2, _ = _arm_first_connection(
                lambda f: f.arm_send("torn", after=1, keep=0.4))
            with DRXClient(srv.address, client_id="lost-req",
                           timeout=30.0, max_retries=8, seed=SEED + 1,
                           socket_wrapper=w2) as c:
                c.extend("q", dim=0, by=4)
                st = c.stats()
            assert conservation_ok(st)
            totals = st["qos"]["totals"]
            assert totals["dedup_hits"] >= 1
            assert st["qos"]["clients"]["lost-ack"]["dedup_hits"] == 1
            # both extends applied exactly once each
            with make_client(srv, "check") as c2:
                assert c2.open("q")["shape"] == [16, 4]
            assert json.dumps(st)        # snapshot stays JSON-able
        finally:
            srv.shutdown(drain=True)


# ---------------------------------------------------------------------------
# CLI: --recover
# ---------------------------------------------------------------------------
class TestRecoverCLI:
    def test_recover_flag_replays_and_reports(self, tmp_path):
        # leave a dirty substrate behind: acked writes, abrupt kill
        srv = DRXServer(root=str(tmp_path)).start()
        with make_client(srv, "w") as c:
            _acked_workload(c)
        srv.kill()

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"),
             env.get("PYTHONPATH", "")])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--root",
             str(tmp_path), "--recover", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            lines = []
            while True:
                line = proc.stdout.readline()
                assert line, "daemon exited before listening"
                if "listening on" in line:
                    port = int(line.rsplit(":", 1)[1])
                    break
                lines.append(line)
            summary = json.loads("".join(lines))
            assert summary["recovered"]["vol"]["replayed"] == 5
            with DRXClient(("127.0.0.1", port), client_id="cli",
                           timeout=15.0) as c:
                got = c.read("vol", (0, 0), (12, 16))
                assert np.array_equal(got, _acked_model())
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
