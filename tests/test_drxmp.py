"""Integration tests of the DRX-MP parallel library.

Covers the DRXMPFile object API, the paper-style DRXMP_* functions,
zone-collective and independent I/O, collective extension, and failure
modes.  Every test runs a real SPMD job through ``mpiexec``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import (
    DRXExtendError,
    DRXFileError,
    DRXFileExistsError,
    DRXFileNotFoundError,
)
from repro.drxmp import (
    DRXMP_Close,
    DRXMP_Extend,
    DRXMP_Init,
    DRXMP_Open,
    DRXMP_Read_all,
    DRXMP_Terminate,
    DRXMP_Write_all,
    DRXMPFile,
)
from repro.mpi.runner import SPMDFailure
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array


def run(n, fn, *args, **kw):
    return mpi.mpiexec(n, fn, *args, timeout=kw.pop("timeout", 60), **kw)


class TestLifecycle:
    def test_create_then_open(self, pfs):
        def creator(comm):
            a = DRXMPFile.create(comm, pfs, "A", (8, 8), (2, 2))
            a.close()
            return True
        assert all(run(2, creator))
        assert pfs.exists("A.xmd") and pfs.exists("A.xta")

        def opener(comm):
            a = DRXMPFile.open(comm, pfs, "A")
            shape = a.shape
            a.close()
            return shape
        assert run(3, opener) == [(8, 8)] * 3

    def test_create_existing_fails_on_all_ranks(self, pfs):
        run(2, lambda c: DRXMPFile.create(c, pfs, "B", (4,), (2,)).close())
        def body(comm):
            DRXMPFile.create(comm, pfs, "B", (4,), (2,))
        with pytest.raises(SPMDFailure) as ei:
            run(2, body)
        assert all(isinstance(e, DRXFileExistsError)
                   for e in ei.value.failures.values())

    def test_open_missing(self, pfs):
        def body(comm):
            DRXMPFile.open(comm, pfs, "missing")
        with pytest.raises(SPMDFailure) as ei:
            run(2, body)
        assert all(isinstance(e, DRXFileNotFoundError)
                   for e in ei.value.failures.values())

    def test_mismatched_create_args(self, pfs):
        def body(comm):
            DRXMPFile.create(comm, pfs, "C",
                             (4, 4) if comm.rank == 0 else (8, 8), (2, 2))
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_readonly_mode(self, pfs):
        run(1, lambda c: DRXMPFile.create(c, pfs, "RO", (4,), (2,)).close())
        def body(comm):
            a = DRXMPFile.open(comm, pfs, "RO", mode="r")
            with pytest.raises(DRXFileError):
                a.write((0,), np.ones(2))
            with pytest.raises(DRXFileError):
                a.extend(0, 2)
            a.close()
            return True
        assert all(run(2, body))

    def test_meta_replicated_identically(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "R", (10, 12), (2, 3))
            blob = a.meta.to_bytes()
            a.close()
            blobs = comm.allgather(blob)
            return all(b == blobs[0] for b in blobs)
        assert all(run(4, body))


class TestZoneIO:
    @pytest.mark.parametrize("nproc", [1, 2, 4, 6])
    def test_zone_write_read_roundtrip(self, pfs, nproc):
        ref = pattern_array((11, 13))
        name = f"Z{nproc}"
        def body(comm):
            a = DRXMPFile.create(comm, pfs, name, (11, 13), (3, 4))
            part = a.partition()
            mem = a.read_zone(part)
            lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
            mem.array[...] = ref[tuple(slice(l, h)
                                       for l, h in zip(lo, hi))]
            a.write_zone(mem)
            comm.barrier()
            ok = np.array_equal(a.read((0, 0), (11, 13)), ref)
            a.close()
            return ok
        assert all(run(nproc, body))

    def test_fortran_order_zone(self, pfs):
        ref = pattern_array((8, 9))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "F", (8, 9), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            mem = a.read_zone(order="F")
            lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
            want = ref[tuple(slice(l, h) for l, h in zip(lo, hi))]
            ok = (mem.array.flags["F_CONTIGUOUS"]
                  and np.array_equal(mem.array, want))
            a.close()
            return ok
        assert all(run(4, body))

    def test_independent_zone_io(self, pfs):
        ref = pattern_array((9, 9))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "I", (9, 9), (2, 2))
            part = a.partition()
            mem = a.read_zone(part, collective=False)
            lo, hi = mem.zone.element_box(a.chunk_shape, a.shape)
            mem.array[...] = ref[tuple(slice(l, h)
                                       for l, h in zip(lo, hi))]
            a.write_zone(mem, collective=False)
            comm.barrier()
            ok = np.array_equal(a.read((0, 0), (9, 9)), ref)
            a.close()
            return ok
        assert all(run(4, body))

    def test_zone_write_shape_mismatch(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "S", (8, 8), (2, 2))
            mem = a.read_zone()
            mem.array = np.zeros((1, 1))
            try:
                a.write_zone(mem)
                return False
            except Exception:
                a.close()
                return True
        # every rank raises the same way, so collectives stay matched
        assert all(run(2, body))


class TestBoxIO:
    def test_disjoint_writers(self, pfs):
        # slabs are chunk-aligned: concurrent writers must never share a
        # chunk (the chunk is the unit of access; unaligned concurrent
        # writes would race on the read-modify-write, in the real system
        # as much as here)
        ref = pattern_array((16, 8))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "D", (16, 8), (4, 4))
            rows = 16 // comm.size
            lo = (comm.rank * rows, 0)
            hi = ((comm.rank + 1) * rows, 8)
            a.write(lo, ref[lo[0]:hi[0], :])
            comm.barrier()
            got = a.read((0, 0), (16, 8))
            a.close()
            return np.array_equal(got, ref)
        assert all(run(4, body))

    def test_unaligned_writers_serialized(self, pfs):
        """Non-chunk-aligned disjoint boxes are fine when the writes are
        ordered (here: one rank after another via a token ring)."""
        ref = pattern_array((12, 8))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "DS", (12, 8), (4, 4))
            rows = 12 // comm.size
            lo = (comm.rank * rows, 0)
            if comm.rank > 0:
                comm.recv(source=comm.rank - 1, tag=77)
            a.write(lo, ref[lo[0]:lo[0] + rows, :])
            if comm.rank < comm.size - 1:
                comm.send(None, dest=comm.rank + 1, tag=77)
            comm.barrier()
            got = a.read((0, 0), (12, 8))
            a.close()
            return np.array_equal(got, ref)
        assert all(run(4, body))

    def test_unaligned_box_read_write(self, pfs):
        ref = pattern_array((10, 10))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "U", (10, 10), (3, 3))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            got = a.read((1, 2), (8, 9))
            ok = np.array_equal(got, ref[1:8, 2:9])
            comm.barrier()
            # read-modify-write of an unaligned box preserves neighbours
            if comm.rank == 1:
                a.write((4, 4), np.full((2, 2), -1.0))
            comm.barrier()
            got = a.read((0, 0), (10, 10))
            want = ref.copy()
            want[4:6, 4:6] = -1
            ok = ok and np.array_equal(got, want)
            a.close()
            return ok
        assert all(run(2, body))


class TestExtend:
    def test_collective_extend(self, pfs):
        ref = pattern_array((6, 6))
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "E", (6, 6), (2, 2))
            if comm.rank == 0:
                a.write((0, 0), ref)
            comm.barrier()
            a.extend(1, 6)
            a.extend(0, 2)
            ok = a.shape == (8, 12)
            ok = ok and np.array_equal(a.read((0, 0), (6, 6)), ref)
            ok = ok and np.all(a.read((6, 0), (8, 12)) == 0)
            # partition reflects the grown chunk grid
            part = a.partition()
            ok = ok and part.chunk_bounds == a.meta.chunk_bounds
            a.close()
            return ok
        assert all(run(4, body))

    def test_mismatched_extend_detected(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "EM", (4, 4), (2, 2))
            a.extend(0 if comm.rank == 0 else 1, 2)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_extend_persists(self, pfs):
        def body(comm):
            a = DRXMPFile.create(comm, pfs, "EP", (4, 4), (2, 2))
            a.extend(0, 4)
            a.close()
            b = DRXMPFile.open(comm, pfs, "EP")
            shape = b.shape
            b.close()
            return shape
        assert run(2, body) == [(8, 4)] * 2


class TestPaperStyleAPI:
    def test_full_cycle(self, pfs):
        ref = pattern_array((10, 12))
        def body(comm):
            hdl = DRXMP_Init(comm, pfs, "P", kdim=2, initsize=(10, 12),
                             chkshape=(2, 3))
            mem = DRXMP_Read_all(hdl)
            lo, hi = mem.zone.element_box(hdl.chunk_shape, hdl.shape)
            mem.array[...] = ref[tuple(slice(l, h)
                                       for l, h in zip(lo, hi))]
            DRXMP_Write_all(hdl, mem)
            DRXMP_Extend(hdl, 0, 2)
            DRXMP_Close(hdl)
            hdl2 = DRXMP_Open(comm, pfs, "P")
            ok = hdl2.shape == (12, 12)
            ok = ok and np.array_equal(hdl2.read((0, 0), (10, 12)), ref)
            DRXMP_Terminate()
            return ok and hdl2.handle.closed
        assert all(run(4, body))

    def test_init_kdim_mismatch(self, pfs):
        def body(comm):
            DRXMP_Init(comm, pfs, "K", kdim=3, initsize=(4, 4),
                       chkshape=(2, 2))
        with pytest.raises(SPMDFailure) as ei:
            run(1, body)
        assert isinstance(ei.value.failures[0], DRXExtendError)


class TestPlanMemoization:
    """``chunk_datatype`` and the sorted F* plan are memoized on the
    meta-data object; extension invalidates the plans (generation bump)
    but not the chunk datatype (chunk shape is immutable)."""

    def test_chunk_datatype_is_memoized(self):
        from repro.core.metadata import DRXMeta
        from repro.drxmp.subarray import chunk_datatype
        meta = DRXMeta.create((8, 8), (2, 2))
        dt = chunk_datatype(meta)
        assert chunk_datatype(meta) is dt
        meta.extend_elements(0, 4)      # chunk dtype unaffected by growth
        assert chunk_datatype(meta) is dt
        other = DRXMeta.create((8, 8), (2, 2))
        assert chunk_datatype(other) is not dt

    def test_plan_cache_hits_and_generation_invalidation(self):
        import numpy as np
        from repro.core.metadata import DRXMeta
        from repro.drxmp.subarray import _sorted_chunk_plan
        meta = DRXMeta.create((8, 8), (2, 2))
        idx = np.asarray([[0, 0], [1, 1], [0, 1]], dtype=np.int64)
        p1 = _sorted_chunk_plan(meta, idx)
        p2 = _sorted_chunk_plan(meta, idx)
        assert p1[0] is p2[0] and p1[1] is p2[1]          # cache hit
        gen = meta.eci.generation
        meta.extend_elements(0, 2)
        assert meta.eci.generation != gen
        p3 = _sorted_chunk_plan(meta, idx)
        assert p3[0] is not p1[0]                          # invalidated
        assert np.array_equal(p3[0], p1[0])                # same mapping
        p4 = _sorted_chunk_plan(meta, idx)
        assert p4[0] is p3[0]                              # re-cached

    def test_plan_cache_not_shared_across_metas(self):
        import numpy as np
        from repro.core.metadata import DRXMeta
        from repro.drxmp.subarray import _sorted_chunk_plan
        idx = np.asarray([[0, 0], [1, 0]], dtype=np.int64)
        a = DRXMeta.create((4, 4), (2, 2))
        b = DRXMeta.create((4, 4), (2, 2))
        pa = _sorted_chunk_plan(a, idx)
        pb = _sorted_chunk_plan(b, idx)
        assert pa[0] is not pb[0]
        assert np.array_equal(pa[0], pb[0])

    def test_replicated_meta_does_not_share_cache(self):
        """``replicate()`` must hand each rank an independent cache —
        committed MPI datatypes are communicator-local state."""
        from repro.core.metadata import DRXMeta
        from repro.drxmp.subarray import chunk_datatype
        meta = DRXMeta.create((8, 8), (2, 2))
        dt = chunk_datatype(meta)
        clone = meta.replicate()
        assert clone._cache == {} or chunk_datatype(clone) is not dt
