"""LIST1: the paper's section IV-B code listing, translated line by line.

The C program reads the 20 chunks of the Fig. 1 array (6 doubles per
chunk) collectively into 4 processes, using a chunk datatype
(``MPI_Type_contiguous``), an indexed filetype over each rank's chunk
addresses (``globalMap``), and an indexed memtype placing chunks at
their in-zone positions (``inMemoryMap``).

We verify (a) the translation produces exactly the data layout the C
maps imply, and (b) the hardcoded maps themselves are what DRX-MP
computes from the Fig. 1 growth history plus the 2x2 BLOCK zones —
i.e. the listing's constants are *derived*, not coincidental.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.inverse import f_star_inv_many
from repro.core.mapping import f_star_many
from repro.drxmp.partition import BlockPartition
from repro.pfs import ParallelFileSystem

CHUNK_SIZE = 6           # doubles per chunk (2x3)
N_CHUNKS = 20
CHUNK_DISTRIB = [6, 6, 4, 4]
GLOBAL_MAP = [
    [0, 1, 2, 3, 4, 5],
    [6, 7, 8, 12, 13, 14],
    [9, 10, 16, 17, -1, -1],
    [11, 15, 18, 19, -1, -1],
]
IN_MEMORY_MAP = [
    [0, 1, 2, 3, 4, 5],
    [0, 2, 4, 1, 3, 5],
    [0, 1, 2, 3, -1, -1],
    [0, 1, 2, 3, -1, -1],
]


@pytest.fixture
def chunked_file(pfs):
    """The file of the listing: 20 chunks, chunk q holding the values
    q*6 .. q*6+5 (so every double identifies its source chunk)."""
    f = pfs.create("/mnt/pvfs2/chunkedArray4.dat")
    payload = np.arange(N_CHUNKS * CHUNK_SIZE, dtype=np.float64)
    f.write(0, payload.tobytes())
    return pfs


def listing_body(comm, pfs):
    """The C listing, in the substrate's mpi4py-style API."""
    my_rank = comm.Get_rank()
    assert comm.Get_size() == 4, "Size must be 4"

    fh = mpi.File.Open(comm, "/mnt/pvfs2/chunkedArray4.dat",
                       mpi.MODE_RDONLY, pfs)

    no_of_chunks = CHUNK_DISTRIB[my_rank]
    chunk_map = GLOBAL_MAP[my_rank][:no_of_chunks]
    inmemmap = IN_MEMORY_MAP[my_rank][:no_of_chunks]
    blocklens = [1] * no_of_chunks

    chunk = mpi.DOUBLE.Create_contiguous(CHUNK_SIZE)
    chunk.Commit()
    filetype = chunk.Create_indexed(blocklens, chunk_map)
    filetype.Commit()
    memtype = chunk.Create_indexed(blocklens, inmemmap)
    memtype.Commit()

    fh.Set_view(0, chunk, filetype)

    ndbls = no_of_chunks * CHUNK_SIZE
    membuf = np.full(ndbls, -1.0)
    status = mpi.Status()
    fh.Read_all((membuf, 1, memtype), status=status)
    count = status.Get_count(chunk)
    comm.Barrier()
    fh.Close()
    return count, membuf


class TestListingTranslation:
    def test_counts_and_layout(self, chunked_file):
        results = mpi.mpiexec(4, listing_body, chunked_file, timeout=60)
        for rank, (count, membuf) in enumerate(results):
            n = CHUNK_DISTRIB[rank]
            assert count == n, f"rank {rank} read {count} chunks"
            # chunk from file slot i lands at memory slot inmemmap[i]
            for i, q in enumerate(GLOBAL_MAP[rank][:n]):
                slot = IN_MEMORY_MAP[rank][i]
                got = membuf[slot * CHUNK_SIZE:(slot + 1) * CHUNK_SIZE]
                want = np.arange(q * CHUNK_SIZE, (q + 1) * CHUNK_SIZE,
                                 dtype=np.float64)
                assert np.array_equal(got, want), (rank, i, q)

    def test_rank3_prints_its_chunks(self, chunked_file):
        """The listing dumps rank 3's buffer; chunks 11, 15, 18, 19 in
        memory slots 0..3."""
        results = mpi.mpiexec(4, listing_body, chunked_file, timeout=60)
        _count, membuf = results[3]
        expect = np.concatenate([
            np.arange(q * CHUNK_SIZE, (q + 1) * CHUNK_SIZE)
            for q in (11, 15, 18, 19)
        ]).astype(np.float64)
        assert np.array_equal(membuf, expect)


class TestListingConstantsAreDerived:
    """The hardcoded maps equal what the library computes."""

    def test_global_map(self, fig1_index):
        part = BlockPartition(fig1_index.bounds, 4, pgrid=(2, 2))
        for rank in range(4):
            addrs = np.sort(
                f_star_many(fig1_index, part.chunks_of(rank))).tolist()
            n = CHUNK_DISTRIB[rank]
            assert addrs == GLOBAL_MAP[rank][:n], rank

    def test_chunk_distrib(self, fig1_index):
        part = BlockPartition(fig1_index.bounds, 4, pgrid=(2, 2))
        assert part.chunk_counts() == CHUNK_DISTRIB

    def test_in_memory_map(self, fig1_index):
        part = BlockPartition(fig1_index.bounds, 4, pgrid=(2, 2))
        for rank in range(4):
            zone = part.zone_of(rank)
            addrs = np.sort(f_star_many(fig1_index, zone.chunk_indices()))
            indices = f_star_inv_many(fig1_index, addrs)
            rel = indices - np.asarray(zone.lo)
            inmem = (rel[:, 0] * zone.shape[1] + rel[:, 1]).tolist()
            n = CHUNK_DISTRIB[rank]
            assert inmem == IN_MEMORY_MAP[rank][:n], rank
