"""Unit tests for axial records and axial vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.axial import SENTINEL_ADDRESS, AxialRecord, AxialVector
from repro.core.errors import DRXFormatError, DRXIndexError


def rec(dim=0, start_index=0, start_address=0, coeffs=(1,), offset=0):
    return AxialRecord(dim=dim, start_index=start_index,
                       start_address=start_address, coeffs=coeffs,
                       file_offset=offset)


class TestAxialRecord:
    def test_basic_fields(self):
        r = rec(dim=1, start_index=3, start_address=36, coeffs=(3, 12, 1))
        assert r.rank == 3
        assert not r.is_sentinel

    def test_sentinel_flag(self):
        r = rec(start_address=SENTINEL_ADDRESS, coeffs=(0, 0))
        assert r.is_sentinel

    def test_dim_outside_rank_rejected(self):
        with pytest.raises(DRXFormatError):
            rec(dim=3, coeffs=(1, 1))

    def test_negative_start_index_rejected(self):
        with pytest.raises(DRXFormatError):
            rec(start_index=-2)

    def test_address_of_matches_paper_formula(self):
        # D1 record of Fig. 3b: N*=3, M*=36, C=(3, 12, 1)
        r = rec(dim=1, start_index=3, start_address=36, coeffs=(3, 12, 1))
        # q = 36 + (I1-3)*12 + I0*3 + I2*1
        assert r.address_of((0, 3, 0)) == 36
        assert r.address_of((2, 3, 1)) == 36 + 6 + 1
        assert r.address_of((5, 3, 2)) == 36 + 15 + 2

    def test_address_of_sentinel_raises(self):
        r = rec(start_address=SENTINEL_ADDRESS, coeffs=(0, 0))
        with pytest.raises(DRXIndexError):
            r.address_of((0, 0))

    def test_index_of_roundtrip(self):
        # coeffs (3, 12, 1) encode other-bounds N0=4, N2=3: valid segment
        # indices satisfy I0 < 4, I2 < 3 and I1 >= 3 (any extension run)
        r = rec(dim=1, start_index=3, start_address=36, coeffs=(3, 12, 1))
        for idx in [(0, 3, 0), (2, 3, 1), (3, 5, 2), (0, 4, 0)]:
            assert r.index_of(r.address_of(idx), 3) == idx

    def test_index_of_before_segment_raises(self):
        r = rec(dim=0, start_index=4, start_address=48, coeffs=(12, 3, 1))
        with pytest.raises(DRXIndexError):
            r.index_of(47, 3)

    def test_records_immutable(self):
        r = rec()
        with pytest.raises(AttributeError):
            r.start_address = 5  # type: ignore[misc]

    def test_dict_roundtrip(self):
        r = rec(dim=2, start_index=1, start_address=12,
                coeffs=(3, 1, 12), offset=96)
        assert AxialRecord.from_dict(r.to_dict()) == r

    def test_from_dict_malformed(self):
        with pytest.raises(DRXFormatError):
            AxialRecord.from_dict({"dim": 0})
        with pytest.raises(DRXFormatError):
            AxialRecord.from_dict({"dim": "x", "start_index": 0,
                                   "start_address": 0, "coeffs": [1]})


class TestAxialVector:
    def build(self):
        v = AxialVector(0)
        v.append(rec(start_index=0, start_address=0, coeffs=(3, 1)))
        v.append(rec(start_index=4, start_address=48, coeffs=(12, 1)))
        v.append(rec(start_index=9, start_address=100, coeffs=(20, 1)))
        return v

    def test_len_iter_getitem(self):
        v = self.build()
        assert len(v) == 3
        assert [r.start_index for r in v] == [0, 4, 9]
        assert v[1].start_address == 48

    def test_search_rightmost_le(self):
        v = self.build()
        assert v.search(0).start_address == 0
        assert v.search(3).start_address == 0
        assert v.search(4).start_address == 48
        assert v.search(8).start_address == 48
        assert v.search(9).start_address == 100
        assert v.search(1000).start_address == 100

    def test_search_negative_raises(self):
        with pytest.raises(DRXIndexError):
            self.build().search(-1)

    def test_append_wrong_dim_rejected(self):
        v = AxialVector(0)
        with pytest.raises(DRXFormatError):
            v.append(rec(dim=1, coeffs=(1, 1)))

    def test_append_out_of_order_rejected(self):
        v = self.build()
        with pytest.raises(DRXFormatError):
            v.append(rec(start_index=4, start_address=999, coeffs=(1, 1)))

    def test_numpy_mirrors_track_appends(self):
        v = self.build()
        assert np.array_equal(v.np_start_indices, [0, 4, 9])
        assert np.array_equal(v.np_start_addresses, [0, 48, 100])
        assert v.np_coeffs.shape == (3, 2)
        v.append(rec(start_index=20, start_address=400, coeffs=(30, 1)))
        assert np.array_equal(v.np_start_indices, [0, 4, 9, 20])

    def test_dict_roundtrip(self):
        v = self.build()
        v2 = AxialVector.from_dict(v.to_dict())
        assert v2 == v

    def test_equality(self):
        assert self.build() == self.build()
        assert self.build() != AxialVector(0)
        assert AxialVector(0).__eq__(42) is NotImplemented
