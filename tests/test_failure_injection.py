"""Failure injection: corrupted files, failing stores, misuse patterns.

A library for terabyte-scale scientific data must fail loudly and
precisely, never by silently corrupting or misreading.  These tests
corrupt every structured region of the on-disk formats and inject
storage faults mid-operation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import MAGIC
from repro.core.errors import (
    DRXError,
    DRXFileError,
    DRXFormatError,
    PFSError,
)
from repro.drx import (
    DRXFile,
    DRXSingleFile,
    FaultInjector,
    FaultPlan,
    MemoryByteStore,
    Mpool,
)
from repro.drx.singlefile import _SLOT0_OFF, _SLOT_SIZE, _unpack_slot
from repro.workloads import pattern_array
from tests.test_singlefile import committed_slot




class TestXMDCorruption:
    def _meta_doc(self, tmp_path):
        a = DRXFile.create(tmp_path / "a", (6, 6), (2, 2))
        a.extend(0, 2)
        a.close()
        raw = (tmp_path / "a.xmd").read_bytes()
        return json.loads(raw[len(MAGIC):])

    def _write_doc(self, tmp_path, doc):
        (tmp_path / "a.xmd").write_bytes(
            MAGIC + json.dumps(doc).encode())

    @pytest.mark.parametrize("mutate", [
        lambda d: d.__setitem__("rank", 3),
        lambda d: d["index"]["bounds"].__setitem__(0, 99),
        lambda d: d.__setitem__("num_chunks", 1),
        lambda d: d["index"]["axial_vectors"][0]["records"].clear(),
        lambda d: d["index"]["axial_vectors"].pop(),
        lambda d: d.__setitem__("dtype", "float16"),
        lambda d: d.__setitem__("chunk_shape", [0, 2]),
    ], ids=["rank", "bounds", "num_chunks", "records", "vectors",
            "dtype", "chunk_shape"])
    def test_structured_corruption_rejected(self, tmp_path, mutate):
        doc = self._meta_doc(tmp_path)
        mutate(doc)
        self._write_doc(tmp_path, doc)
        with pytest.raises(DRXError):
            DRXFile.open(tmp_path / "a")

    def test_truncated_meta(self, tmp_path):
        self._meta_doc(tmp_path)
        raw = (tmp_path / "a.xmd").read_bytes()
        (tmp_path / "a.xmd").write_bytes(raw[:len(raw) // 2])
        with pytest.raises(DRXFormatError):
            DRXFile.open(tmp_path / "a")

    def test_zeroed_meta(self, tmp_path):
        self._meta_doc(tmp_path)
        (tmp_path / "a.xmd").write_bytes(bytes(128))
        with pytest.raises(DRXFormatError):
            DRXFile.open(tmp_path / "a")


class TestXTACorruption:
    def test_truncated_data_reads_zeros_not_garbage(self, tmp_path):
        """A short .xta (e.g. crash before the final flush of a fresh
        segment) must read as zeros, never as undefined memory."""
        a = DRXFile.create(tmp_path / "a", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.close()
        xta = tmp_path / "a.xta"
        raw = xta.read_bytes()
        xta.write_bytes(raw[:len(raw) // 2])
        b = DRXFile.open(tmp_path / "a")
        got = b.read()
        # the first chunks survive; the missing tail is zeros
        assert np.array_equal(got[:2, :2], pattern_array((4, 4))[:2, :2])
        assert not np.isnan(got).any()
        b.close()


class TestSingleFileCorruption:
    def _create(self, tmp_path):
        a = DRXSingleFile.create(tmp_path / "s", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.close()
        return tmp_path / "s.drx"

    @staticmethod
    def _zap_both_slots(raw: bytearray) -> None:
        raw[_SLOT0_OFF:_SLOT0_OFF + 2 * _SLOT_SIZE] = \
            bytes(2 * _SLOT_SIZE)

    def test_both_slots_destroyed(self, tmp_path):
        p = self._create(tmp_path)
        raw = bytearray(p.read_bytes())
        self._zap_both_slots(raw)
        p.write_bytes(bytes(raw))
        with pytest.raises(DRXFormatError):
            DRXSingleFile.open(tmp_path / "s")

    def test_newest_slot_corrupted_falls_back(self, tmp_path):
        """Garbage in the live slot must fall back to the previous
        generation, not fail — that's the whole point of the shadow."""
        a = DRXSingleFile.create(tmp_path / "s", (4, 4), (2, 2))
        a.write((0, 0), pattern_array((4, 4)))
        a.flush()                  # gen N commits the written state
        a.attrs["run"] = 1
        a.close()                  # gen N+1 commits the attribute too
        p = tmp_path / "s.drx"
        raw = bytearray(p.read_bytes())
        gen, _off, _len, _crc = committed_slot(bytes(raw))
        live = _SLOT0_OFF + (gen % 2) * _SLOT_SIZE
        raw[live:live + _SLOT_SIZE] = b"\xde\xad" * (_SLOT_SIZE // 2)
        p.write_bytes(bytes(raw))
        with DRXSingleFile.open(tmp_path / "s") as b:
            # previous generation: data yes, last attribute maybe not
            assert np.array_equal(b.read(), pattern_array((4, 4)))

    def test_meta_blob_corrupted_with_valid_slot(self, tmp_path):
        """A slot whose CRC validates but whose blob is torn must be
        skipped (blob CRC mismatch), and with no sibling, rejected."""
        p = self._create(tmp_path)
        raw = bytearray(p.read_bytes())
        slots = []
        for i in range(2):
            base = _SLOT0_OFF + i * _SLOT_SIZE
            s = _unpack_slot(bytes(raw[base:base + _SLOT_SIZE]))
            if s is not None and s[0] > 0:
                slots.append(s)
        for _gen, off, _length, _crc in slots:
            raw[off:off + 4] = b"XXXX"       # tear every committed blob
        p.write_bytes(bytes(raw))
        with pytest.raises(DRXFormatError):
            DRXSingleFile.open(tmp_path / "s")


class TestStorageFaults:
    """Pool behaviour under injected store faults — driven by the
    library :class:`FaultInjector`, which (unlike the ad-hoc store these
    tests used to carry) also intercepts the vectored ``readv``/
    ``writev`` paths the coalescing engine actually uses."""

    def test_fault_during_write_surfaces(self):
        plan = FaultPlan()
        store = FaultInjector(MemoryByteStore(), plan)
        pool = Mpool(store, page_size=32, max_pages=1)
        page = pool.get(0)
        page[:] = 1
        pool.put(0, dirty=True)
        plan.fail("*", times=None)
        with pytest.raises(PFSError):
            pool.flush()

    def test_fault_during_eviction_surfaces(self):
        plan = FaultPlan()
        store = FaultInjector(MemoryByteStore(), plan)
        pool = Mpool(store, page_size=32, max_pages=1)
        p = pool.get(0)
        p[:] = 7
        pool.put(0, dirty=True)
        plan.fail("*", times=None)
        with pytest.raises(PFSError):
            pool.get(1)      # read of page 1 or writeback of page 0 fails

    def test_fault_on_vectored_writeback_surfaces(self):
        """A batched (writev) flush cannot dodge injection."""
        plan = FaultPlan()
        store = FaultInjector(MemoryByteStore(), plan)
        pool = Mpool(store, page_size=16, max_pages=8)
        for p in range(4):
            buf = pool.get(p)
            buf[:] = p + 1
            pool.put(p, dirty=True)
        plan.fail("writev", times=None)
        with pytest.raises(PFSError):
            pool.flush()     # 4 consecutive dirty pages -> one writev
        assert plan.injected.get("writev")

    def test_fault_on_vectored_fault_in_surfaces(self):
        """A batched (readv) miss fill cannot dodge injection."""
        plan = FaultPlan()
        store = FaultInjector(MemoryByteStore(), plan)
        pool = Mpool(store, page_size=16, max_pages=8)
        plan.fail("readv", times=None)
        with pytest.raises(PFSError):
            pool.get_many([0, 1, 2])
        assert plan.injected.get("readv")

    def test_pool_state_consistent_after_fault(self):
        plan = FaultPlan()
        store = FaultInjector(MemoryByteStore(), plan)
        pool = Mpool(store, page_size=16, max_pages=4)
        buf = pool.get(0)
        buf[:] = 3
        pool.put(0, dirty=True)
        plan.fail("*", times=1)
        with pytest.raises(PFSError):
            pool.flush()
        pool.flush()             # rule exhausted: retry succeeds
        assert store.read(0, 16) == b"\x03" * 16


class TestMisuse:
    def test_double_close_single_file(self, tmp_path):
        a = DRXSingleFile.create(tmp_path / "a", (4,), (2,))
        a.close()
        a.close()     # idempotent

    def test_read_only_single_file_never_writes(self, tmp_path):
        a = DRXSingleFile.create(tmp_path / "a", (4,), (2,))
        a.put((0,), 5.0)
        a.close()
        before = (tmp_path / "a.drx").read_bytes()
        b = DRXSingleFile.open(tmp_path / "a", mode="r")
        b.read()
        b.close()
        assert (tmp_path / "a.drx").read_bytes() == before

    def test_wrong_shape_write_rejected_before_any_io(self, tmp_path):
        a = DRXFile.create(tmp_path / "a", (4, 4), (2, 2))
        with pytest.raises(DRXError):
            a.write((2, 2), np.ones((4, 4)))   # overflows bounds
        # nothing was partially written
        assert np.all(a.read() == 0)
        a.close()

    def test_posix_store_mode_validation(self, tmp_path):
        from repro.drx.storage import PosixByteStore
        with pytest.raises(DRXFileError):
            PosixByteStore(tmp_path / "x", mode="a")
        (tmp_path / "y").write_bytes(b"abc")
        ro = PosixByteStore(tmp_path / "y", mode="r")
        with pytest.raises(DRXFileError):
            ro.write(0, b"z")
        with pytest.raises(DRXFileError):
            ro.truncate(0)
        ro.close()

    def test_posix_store_exclusive_create(self, tmp_path):
        from repro.drx.storage import PosixByteStore
        PosixByteStore(tmp_path / "x", mode="x+").close()
        with pytest.raises(DRXFileError):
            PosixByteStore(tmp_path / "x", mode="x+")
