"""Tests for the vector collectives (Scatterv / Gatherv / Allgatherv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.mpi.runner import SPMDFailure


def run(n, fn, **kw):
    return mpi.mpiexec(n, fn, timeout=kw.pop("timeout", 30), **kw)


class TestScatterv:
    def test_uneven_pieces(self):
        counts = [1, 3, 2]
        displs = [0, 1, 4]
        def body(comm):
            send = None
            if comm.rank == 0:
                send = [np.arange(6, dtype=np.float64), counts, displs,
                        None]
            recv = np.empty(counts[comm.rank])
            comm.Scatterv(send, recv, root=0)
            return recv.tolist()
        res = run(3, body)
        assert res == [[0.0], [1.0, 2.0, 3.0], [4.0, 5.0]]

    def test_missing_spec_rejected(self):
        def body(comm):
            comm.Scatterv(None, np.empty(1), root=0)
        with pytest.raises(SPMDFailure):
            run(2, body)

    def test_wrong_counts_length(self):
        def body(comm):
            send = [np.arange(4.0), [4], [0], None] if comm.rank == 0 \
                else None
            comm.Scatterv(send, np.empty(2), root=0)
        with pytest.raises(SPMDFailure):
            run(2, body)


class TestGatherv:
    def test_uneven_pieces(self):
        counts = [2, 1, 3]
        displs = [0, 2, 3]
        def body(comm):
            send = np.full(counts[comm.rank], float(comm.rank))
            recv = None
            if comm.rank == 1:
                recv = [np.empty(6), counts, displs, None]
            comm.Gatherv(send, recv, root=1)
            return recv[0].tolist() if comm.rank == 1 else None
        res = run(3, body)
        assert res[1] == [0.0, 0.0, 1.0, 2.0, 2.0, 2.0]

    def test_count_mismatch_detected(self):
        def body(comm):
            send = np.zeros(5)       # claims 5, counts say 1
            recv = [np.empty(2), [1, 1], [0, 1], None] \
                if comm.rank == 0 else None
            comm.Gatherv(send, recv, root=0)
        with pytest.raises(SPMDFailure):
            run(2, body)


class TestAllgatherv:
    def test_roundtrip(self):
        counts = [3, 1, 2, 2]
        displs = [0, 3, 4, 6]
        def body(comm):
            send = np.full(counts[comm.rank], float(comm.rank + 10))
            recv = np.empty(8)
            comm.Allgatherv(send, [recv, counts, displs, None])
            return recv.tolist()
        res = run(4, body)
        expect = [10, 10, 10, 11, 12, 12, 13, 13]
        assert all(r == expect for r in res)

    def test_gap_displacements_leave_holes(self):
        counts = [1, 1]
        displs = [0, 3]
        def body(comm):
            recv = np.full(4, -1.0)
            comm.Allgatherv(np.array([float(comm.rank)]),
                            [recv, counts, displs, None])
            return recv.tolist()
        res = run(2, body)
        assert res[0] == [0.0, -1.0, -1.0, 1.0]

    def test_zone_size_exchange_usecase(self):
        """The DRX-MP pattern: ranks exchange variable-size zone
        payloads via Allgatherv after sharing counts with allgather."""
        def body(comm):
            mine = np.arange(comm.rank + 1, dtype=np.float64) + comm.rank
            counts = comm.allgather(len(mine))
            displs = np.zeros(comm.size, dtype=int)
            np.cumsum(counts[:-1], out=displs[1:])
            total = int(np.sum(counts))
            recv = np.empty(total)
            comm.Allgatherv(mine, [recv, counts, list(displs), None])
            return recv.tolist()
        res = run(3, body)
        assert res[0] == [0.0, 1.0, 2.0, 2.0, 3.0, 4.0]
        assert all(r == res[0] for r in res)
