"""Tests for the chunk/stripe tuning advisor (paper §V, experiment E5)."""

from __future__ import annotations

from math import prod

import numpy as np
import pytest

from repro.core.errors import DRXExtendError
from repro.drxmp.tuning import chunk_stripe_report, suggest_chunk_shape


class TestSuggest:
    def test_fits_one_stripe(self):
        chunk = suggest_chunk_shape((4096, 4096), stripe_size=64 * 1024)
        report = chunk_stripe_report(chunk, 64 * 1024)
        assert report["fits_one_stripe"]
        # and uses a decent share of it
        assert report["ratio"] > 0.2

    def test_growth_dims_stay_small(self):
        chunk = suggest_chunk_shape((100000, 512, 512),
                                    stripe_size=64 * 1024,
                                    growth_dims=[0])
        assert chunk[0] <= 4
        assert prod(chunk) * 8 <= 64 * 1024

    def test_last_dim_prioritized(self):
        """Row-major contiguity: the last dimension gets the extent."""
        chunk = suggest_chunk_shape((10000, 10000), stripe_size=8 * 1024)
        assert chunk[1] >= chunk[0]

    def test_small_array_capped_by_bounds(self):
        chunk = suggest_chunk_shape((4, 6), stripe_size=1 << 20)
        assert chunk == (4, 6)     # whole array fits a stripe easily

    def test_tiny_stripe(self):
        chunk = suggest_chunk_shape((100, 100), stripe_size=64)
        assert prod(chunk) * 8 <= 64

    def test_dtype_item_size_respected(self):
        c_double = suggest_chunk_shape((10**6,), 4096, dtype="double")
        c_complex = suggest_chunk_shape((10**6,), 4096, dtype="complex")
        assert prod(c_complex) <= prod(c_double)

    def test_validation(self):
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((10,), 0)
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((10,), 4096, fill=0)
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((10,), 4096, growth_dims=[5])
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((), 4096)


class TestReport:
    def test_aligned(self):
        r = chunk_stripe_report((64, 64), 64 * 1024)
        assert r["chunk_nbytes"] == 32 * 1024
        assert r["fits_one_stripe"]
        assert r["worst_case_requests"] >= 1

    def test_oversized(self):
        r = chunk_stripe_report((128, 128), 64 * 1024)
        assert not r["fits_one_stripe"]
        assert r["ratio"] == 2.0
        assert r["worst_case_requests"] >= 2

    def test_matches_e5_measurement(self):
        """The advisor's worst case bounds what E5 actually measures."""
        from repro.core.metadata import DRXMeta
        from repro.drx import PFSByteStore
        from repro.drx.drxfile import DRXFile
        from repro.pfs import ParallelFileSystem
        for edge in (32, 90, 181):
            fs = ParallelFileSystem(nservers=4, stripe_size=64 * 1024)
            meta = DRXMeta.create((256, 256), (edge, edge))
            a = DRXFile(meta, PFSByteStore(fs.create("t.xta")), None,
                        writable=True, cache_pages=2)
            a.write((0, 0), np.zeros((256, 256)))
            a.flush()
            a._pool.invalidate()
            fs.reset_stats()
            a.read((0, 0), (edge, edge))      # one chunk
            measured = fs.total_stats().read_requests
            bound = chunk_stripe_report((edge, edge),
                                        64 * 1024)["worst_case_requests"]
            assert measured <= bound + 1, (edge, measured, bound)
            a.close()


class TestSuggestAlignment:
    def test_pow2_snap_divides_stripe(self):
        """Budget-limited extents snap to powers of two so the chunk
        payload divides the stripe (one server request per chunk)."""
        chunk = suggest_chunk_shape((10000, 10000), stripe_size=64 * 1024)
        nbytes = prod(chunk) * 8
        assert (64 * 1024) % nbytes == 0
        rep = chunk_stripe_report(chunk, 64 * 1024)
        assert rep["worst_case_requests"] == 1

    def test_bounds_capped_extent_not_snapped(self):
        """Matching the array bound beats alignment: a 96-wide array
        keeps its exact bound in the contiguity dimension."""
        chunk = suggest_chunk_shape((96, 96), stripe_size=64 * 1024)
        assert chunk[1] == 96

    def test_one_element_dims(self):
        chunk = suggest_chunk_shape((1, 1, 100000), stripe_size=4096)
        assert chunk[0] == chunk[1] == 1
        assert prod(chunk) * 8 <= 4096

    def test_never_exceeds_stripe(self):
        for stripe in (64, 100, 4096, 64 * 1024):
            chunk = suggest_chunk_shape((512, 512), stripe_size=stripe)
            assert prod(chunk) * 8 <= stripe


class TestReportAlignment:
    def test_divides_stripe_one_request(self):
        # 32 B chunk, 64 KiB stripe: periodic placement never straddles
        r = chunk_stripe_report((2, 2), 64 * 1024)
        assert r["worst_case_requests"] == 1

    def test_multiple_of_stripe_exact(self):
        # 128 KiB chunk on a 64 KiB stripe: exactly two per chunk
        r = chunk_stripe_report((128, 128), 64 * 1024)
        assert r["worst_case_requests"] == 2

    def test_straddling_pays_extra(self):
        # 24 KiB chunk on a 64 KiB stripe: some offsets straddle
        r = chunk_stripe_report((48, 64), 64 * 1024)
        assert r["worst_case_requests"] == 2

    def test_validation(self):
        with pytest.raises(DRXExtendError):
            chunk_stripe_report((8, 8), 0)
        with pytest.raises(DRXExtendError):
            chunk_stripe_report((8, 0), 4096)
        with pytest.raises(DRXExtendError):
            chunk_stripe_report((), 4096)


class TestWorkload:
    def test_geometry(self):
        from repro.tuning import Workload
        w = Workload(bounds=(256, 256), chunk_shape=(32, 32),
                     request_shape=(64, 64), requests=16)
        assert w.itemsize == 8
        assert w.effective_request == (64, 64)
        assert w.chunk_counts() == (2, 2)
        assert w.chunks_per_request() == 4
        # row-major F*: the last chunk dimension coalesces into runs
        assert w.runs_per_request() == 2

    def test_request_clipped_to_bounds(self):
        from repro.tuning import Workload
        w = Workload(bounds=(32, 32), chunk_shape=(8, 8),
                     request_shape=(64, 64))
        assert w.effective_request == (32, 32)

    def test_whole_array_default(self):
        from repro.tuning import Workload
        w = Workload(bounds=(128, 64), chunk_shape=(16, 16))
        assert w.effective_request == (128, 64)
        assert w.runs_per_request(chunk_shape=(16, 16)) == 8


class TestAdvise:
    def _workload(self, **kw):
        from repro.tuning import Workload
        base = dict(bounds=(256, 256), chunk_shape=(8, 8),
                    request_shape=(64, 64), requests=16,
                    stripe_size=64 * 1024, nservers=4)
        base.update(kw)
        return Workload(**base)

    def test_every_knob_has_one_choice(self):
        from repro.tuning import advise
        advice = advise(self._workload())
        for knob in ("chunk_shape", "stripe_size", "codec",
                     "executor_threads", "readahead"):
            chosen = [c for c in advice.candidates
                      if c.knob == knob and c.chosen]
            current = [c for c in advice.candidates
                       if c.knob == knob and c.current]
            assert len(chosen) == 1, knob
            assert len(current) == 1, knob
        settings = advice.settings()
        assert set(settings) == {"chunk_shape", "stripe_size", "codec",
                                 "executor_threads", "readahead"}

    def test_small_chunks_rejected_for_tile_scans(self):
        """8x8 chunks cost 8 runs per 64x64 request; the advisor must
        pick something with fewer runs."""
        from repro.tuning import advise
        w = self._workload()
        advice = advise(w)
        chosen = advice.chosen("chunk_shape")
        assert w.runs_per_request(chosen) < w.runs_per_request((8, 8))

    def test_codec_off_without_observed_ratio(self):
        from repro.tuning import advise
        assert advise(self._workload()).chosen("codec") == "none"

    def test_codec_on_with_strong_ratio(self):
        from types import SimpleNamespace
        from repro.tuning import Observed, advise
        obs = Observed(codec=SimpleNamespace(
            raw_bytes=400 << 20, stored_bytes=100 << 20,
            encode_time=1.0, decode_time=1.0))
        assert obs.codec_ratio() == pytest.approx(4.0)
        advice = advise(self._workload(), observed=obs,
                        current={"codec": "zlib"})
        assert advice.chosen("codec") == "zlib"

    def test_codec_off_when_codec_cpu_dominates(self):
        from types import SimpleNamespace
        from repro.tuning import Observed, advise
        # 1.1x ratio at a glacial 50 KB/s codec: transfers saved never
        # repay the encode/decode seconds
        obs = Observed(codec=SimpleNamespace(
            raw_bytes=110 << 20, stored_bytes=100 << 20,
            encode_time=1100.0, decode_time=1100.0))
        advice = advise(self._workload(), observed=obs,
                        current={"codec": "zlib"})
        assert advice.chosen("codec") == "none"

    def test_threads_help_io_bound_pass(self):
        from repro.tuning import advise
        advice = advise(self._workload())
        assert advice.chosen("executor_threads") > 0

    def test_readahead_zero_for_random(self):
        from repro.tuning import advise
        advice = advise(self._workload(sequential=False))
        assert advice.chosen("readahead") == 0

    def test_explain_and_to_dict(self):
        from repro.tuning import advise
        advice = advise(self._workload())
        text = advice.explain()
        assert "chunk_shape" in text and "predicted" in text
        assert "*" in text               # a chosen marker rendered
        doc = advice.to_dict()
        assert doc["workload"]["bounds"] == [256, 256]
        assert doc["candidates"]
        assert all({"knob", "value", "predicted_cost_s"} <= set(c)
                   for c in doc["candidates"])

    def test_observed_cost_attached_to_current(self):
        from repro.drx.storage import StoreStats
        from repro.tuning import Observed, advise
        st = StoreStats()
        st.note_readv(16)
        st.note_read(64 * 1024)
        obs = Observed(store=st)
        advice = advise(self._workload(), observed=obs)
        flagged = [c for c in advice.candidates
                   if c.observed_cost is not None]
        assert flagged and all(c.current for c in flagged)


class TestAdviseFile:
    def test_live_handle(self):
        from repro.drx.drxfile import DRXFile
        from repro.tuning import advise_file
        with DRXFile.create(None, (64, 64), (8, 8), executor=None) as a:
            a.write((0, 0), np.ones((64, 64)))
            a.read_all()
            advice = advise_file(a)
            assert advice.workload.bounds == (64, 64)
            assert advice.settings()
            # observed counters were collected off the handle
            assert any(c.observed_cost is not None
                       for c in advice.candidates)

    def test_pfs_geometry_discovered(self):
        from repro.drx.drxfile import DRXFile
        from repro.pfs import ParallelFileSystem
        from repro.tuning import advise_file
        fs = ParallelFileSystem(nservers=8, stripe_size=128 * 1024)
        a = DRXFile.create_pfs(fs, "t", (64, 64), (8, 8), executor=None)
        try:
            advice = advise_file(a, with_observed=False)
            assert advice.workload.stripe_size == 128 * 1024
            assert advice.workload.nservers == 8
        finally:
            a.close()


class TestCLI:
    def test_report_json(self, capsys):
        import json as _json
        from repro.tuning.__main__ import main
        assert main(["report", "--bounds", "256,256", "--chunk", "8,8",
                     "--request", "64,64", "--requests", "16",
                     "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["settings"]["chunk_shape"]

    def test_report_table(self, capsys):
        from repro.tuning.__main__ import main
        assert main(["report", "--bounds", "256,256",
                     "--chunk", "32,32"]) == 0
        out = capsys.readouterr().out
        assert "chunk_shape" in out and "stripe_size" in out

    def test_suggest(self, capsys):
        from repro.tuning.__main__ import main
        assert main(["suggest", "--bounds", "4096,4096",
                     "--stripe", "65536"]) == 0
        dims = capsys.readouterr().out.strip().split("x")
        assert prod(int(d) for d in dims) * 8 <= 65536

    def test_growth_dim_zero_accepted(self, capsys):
        from repro.tuning.__main__ import main
        assert main(["suggest", "--bounds", "4096,4096",
                     "--growth-dims", "0"]) == 0
        dims = [int(d) for d in capsys.readouterr().out.strip().split("x")]
        assert dims[0] <= 4
