"""Tests for the chunk/stripe tuning advisor (paper §V, experiment E5)."""

from __future__ import annotations

from math import prod

import numpy as np
import pytest

from repro.core.errors import DRXExtendError
from repro.drxmp.tuning import chunk_stripe_report, suggest_chunk_shape


class TestSuggest:
    def test_fits_one_stripe(self):
        chunk = suggest_chunk_shape((4096, 4096), stripe_size=64 * 1024)
        report = chunk_stripe_report(chunk, 64 * 1024)
        assert report["fits_one_stripe"]
        # and uses a decent share of it
        assert report["ratio"] > 0.2

    def test_growth_dims_stay_small(self):
        chunk = suggest_chunk_shape((100000, 512, 512),
                                    stripe_size=64 * 1024,
                                    growth_dims=[0])
        assert chunk[0] <= 4
        assert prod(chunk) * 8 <= 64 * 1024

    def test_last_dim_prioritized(self):
        """Row-major contiguity: the last dimension gets the extent."""
        chunk = suggest_chunk_shape((10000, 10000), stripe_size=8 * 1024)
        assert chunk[1] >= chunk[0]

    def test_small_array_capped_by_bounds(self):
        chunk = suggest_chunk_shape((4, 6), stripe_size=1 << 20)
        assert chunk == (4, 6)     # whole array fits a stripe easily

    def test_tiny_stripe(self):
        chunk = suggest_chunk_shape((100, 100), stripe_size=64)
        assert prod(chunk) * 8 <= 64

    def test_dtype_item_size_respected(self):
        c_double = suggest_chunk_shape((10**6,), 4096, dtype="double")
        c_complex = suggest_chunk_shape((10**6,), 4096, dtype="complex")
        assert prod(c_complex) <= prod(c_double)

    def test_validation(self):
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((10,), 0)
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((10,), 4096, fill=0)
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((10,), 4096, growth_dims=[5])
        with pytest.raises(DRXExtendError):
            suggest_chunk_shape((), 4096)


class TestReport:
    def test_aligned(self):
        r = chunk_stripe_report((64, 64), 64 * 1024)
        assert r["chunk_nbytes"] == 32 * 1024
        assert r["fits_one_stripe"]
        assert r["worst_case_requests"] >= 1

    def test_oversized(self):
        r = chunk_stripe_report((128, 128), 64 * 1024)
        assert not r["fits_one_stripe"]
        assert r["ratio"] == 2.0
        assert r["worst_case_requests"] >= 2

    def test_matches_e5_measurement(self):
        """The advisor's worst case bounds what E5 actually measures."""
        from repro.core.metadata import DRXMeta
        from repro.drx import PFSByteStore
        from repro.drx.drxfile import DRXFile
        from repro.pfs import ParallelFileSystem
        for edge in (32, 90, 181):
            fs = ParallelFileSystem(nservers=4, stripe_size=64 * 1024)
            meta = DRXMeta.create((256, 256), (edge, edge))
            a = DRXFile(meta, PFSByteStore(fs.create("t.xta")), None,
                        writable=True, cache_pages=2)
            a.write((0, 0), np.zeros((256, 256)))
            a.flush()
            a._pool.invalidate()
            fs.reset_stats()
            a.read((0, 0), (edge, edge))      # one chunk
            measured = fs.total_stats().read_requests
            bound = chunk_stripe_report((edge, edge),
                                        64 * 1024)["worst_case_requests"]
            assert measured <= bound + 1, (edge, measured, bound)
            a.close()
