"""Small-surface coverage: harness, status/requests, misc edge paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.bench import Table, format_bytes, speedup, wallclock
from repro.core.errors import MPIError


class TestHarness:
    def test_table_render_alignment(self):
        t = Table("demo", ["a", "bb"])
        t.add(1, "xx")
        t.add(12345, 3.14159)
        t.note("a note")
        out = t.render()
        assert "== demo ==" in out
        assert "note: a note" in out
        lines = out.splitlines()
        assert len({len(l) for l in lines[1:4]}) <= 2   # aligned columns

    def test_table_rejects_ragged_rows(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_table_float_formats(self):
        t = Table("x", ["v"])
        t.add(0.0)
        t.add(1234567.0)
        t.add(0.000001)
        out = t.render()
        assert "0" in out and "e+" in out and "e-" in out

    def test_empty_table_renders(self):
        assert "== empty ==" in Table("empty", ["h"]).render()

    def test_format_bytes(self):
        assert format_bytes(10) == "10B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_speedup(self):
        assert speedup(2.0, 1.0) == "2.00x"
        assert speedup(0.0, 1.0) == "-"
        assert speedup(1.0, 0.0) == "-"

    def test_wallclock_returns_result(self):
        t, val = wallclock(lambda: 41 + 1, repeat=2)
        assert val == 42 and t >= 0


class TestStatusRequests:
    def test_get_count_remainder_rejected(self):
        st = mpi.Status()
        st.count = 10
        with pytest.raises(MPIError):
            st.Get_count(mpi.DOUBLE)     # 10 % 8 != 0
        st.count = 16
        assert st.Get_count(mpi.DOUBLE) == 2
        assert st.Get_count() == 16

    def test_waitall(self):
        def body(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(3)]
                mpi.Request.Waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
            return mpi.Request.Waitall(reqs)
        res = mpi.mpiexec(2, body, timeout=30)
        assert res[1] == [0, 1, 2]


class TestMiscEdges:
    def test_pfs_open_or_create(self):
        from repro.pfs import ParallelFileSystem
        fs = ParallelFileSystem(nservers=2, stripe_size=16)
        a = fs.open_or_create("x")
        assert fs.open_or_create("x") is a

    def test_stripe_layout_repr_fields(self):
        from repro.pfs import StripeLayout
        lay = StripeLayout(nservers=3, stripe_size=8)
        assert lay.nservers == 3 and lay.stripe_size == 8

    def test_drxmeta_memory_order_roundtrip(self):
        from repro.core import DRXMeta
        m = DRXMeta.create((4,), (2,))
        m.memory_order = "F"
        m2 = DRXMeta.from_bytes(m.to_bytes())
        assert m2.memory_order == "F"

    def test_zone_repr_fields(self):
        from repro.drxmp import Zone
        z = Zone(1, (0, 0), (2, 3))
        assert z.rank == 1 and z.shape == (2, 3)

    def test_comm_free_noop(self):
        def body(comm):
            dup = comm.Dup()
            dup.Free()
            return True
        assert all(mpi.mpiexec(2, body, timeout=30))

    def test_win_lock_shared_degrades(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(2), comm)
            win.Lock(0, mpi.LOCK_SHARED)
            win.Unlock(0)
            win.Free()
            return True
        assert all(mpi.mpiexec(2, body, timeout=30))

    def test_empty_buffer_messages(self):
        """Zero-size buffers are legal message payloads end to end."""
        def body(comm):
            if comm.rank == 0:
                comm.Send(np.empty(0), dest=1)
                return None
            buf = np.empty(0)
            comm.Recv(buf, source=0)
            return True
        res = mpi.mpiexec(2, body, timeout=30)
        assert res[1] is True
