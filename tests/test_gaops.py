"""Tests of the GA-toolkit-style collective operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import DRXDistributionError, DRXIndexError
from repro.drxmp import (
    DRXMPFile,
    GlobalArray,
    ga_add,
    ga_copy,
    ga_dot,
    ga_elem_multiply,
    ga_fill,
    ga_matmul,
    ga_norm2,
    ga_reduce_max,
    ga_reduce_min,
    ga_scale,
)
from repro.pfs import ParallelFileSystem
from repro.workloads import pattern_array


def run(n, fn, *args, **kw):
    return mpi.mpiexec(n, fn, *args, timeout=kw.pop("timeout", 90), **kw)


def make_ga(comm, fs, name, content=None, shape=(9, 7), chunks=(2, 3)):
    a = DRXMPFile.create(comm, fs, name, shape, chunks)
    if content is not None and comm.rank == 0:
        a.write((0, 0), content)
    comm.barrier()
    ga = GlobalArray.from_file(a)
    a.close()
    return ga


class TestElementwise:
    def test_fill_and_scale(self, pfs):
        def body(comm):
            ga = make_ga(comm, pfs, "f")
            ga_fill(ga, 3.0)
            ga_scale(ga, 2.0)
            got = ga.get((0, 0), (9, 7))
            return np.all(got == 6.0)
        assert all(run(4, body))

    def test_fill_masks_padding(self, pfs):
        """A fill followed by a max must not expose pad elements."""
        def body(comm):
            ga = make_ga(comm, pfs, "fp")   # 9x7 with 2x3 chunks: padded
            ga_fill(ga, -5.0)
            return ga_reduce_max(ga) == -5.0 and ga_reduce_min(ga) == -5.0
        assert all(run(4, body))

    def test_copy_and_add(self, pfs):
        ref = pattern_array((9, 7))
        def body(comm):
            a = make_ga(comm, pfs, "a", ref)
            b = make_ga(comm, pfs, "b")
            c = make_ga(comm, pfs, "c")
            ga_copy(a, b)
            ga_add(2.0, a, -1.0, b, c)      # c = 2a - b = a
            got = c.get((0, 0), (9, 7))
            return np.allclose(got, ref)
        assert all(run(4, body))

    def test_elem_multiply(self, pfs):
        ref = pattern_array((9, 7))
        def body(comm):
            a = make_ga(comm, pfs, "m1", ref)
            b = make_ga(comm, pfs, "m2", ref)
            c = make_ga(comm, pfs, "m3")
            ga_elem_multiply(a, b, c)
            return np.allclose(c.get((0, 0), (9, 7)), ref * ref)
        assert all(run(2, body))

    def test_misaligned_rejected(self, pfs):
        def body(comm):
            a = make_ga(comm, pfs, "x1", shape=(8, 8), chunks=(2, 2))
            b = make_ga(comm, pfs, "x2", shape=(8, 8), chunks=(4, 4))
            try:
                ga_copy(a, b)
                return False
            except DRXDistributionError:
                return True
        assert all(run(2, body))


class TestReductions:
    def test_dot_and_norm(self, pfs):
        ref = pattern_array((9, 7))
        def body(comm):
            a = make_ga(comm, pfs, "d1", ref)
            b = make_ga(comm, pfs, "d2", ref)
            dot = ga_dot(a, b)
            norm = ga_norm2(a)
            return (np.isclose(dot, float((ref * ref).sum()))
                    and np.isclose(norm, float(np.linalg.norm(ref))))
        assert all(run(4, body))

    def test_max_min_mask_padding(self, pfs):
        ref = -1.0 - pattern_array((9, 7))      # all <= -1: pad zeros larger!
        def body(comm):
            a = make_ga(comm, pfs, "mm", ref)
            return (ga_reduce_max(a) == float(ref.max())
                    and ga_reduce_min(a) == float(ref.min()))
        assert all(run(4, body))

    def test_reductions_agree_across_ranks(self, pfs):
        ref = pattern_array((10, 10))
        def body(comm):
            a = make_ga(comm, pfs, "ag", ref, shape=(10, 10), chunks=(3, 3))
            vals = (ga_dot(a, a), ga_reduce_max(a), ga_reduce_min(a))
            gathered = comm.allgather(vals)
            return all(g == gathered[0] for g in gathered)
        assert all(run(4, body))


class TestMatmul:
    @pytest.mark.parametrize("m,k,n,cm,ck,cn", [
        (8, 8, 8, 2, 2, 2),
        (6, 10, 4, 3, 2, 4),     # uneven blockings
        (9, 7, 5, 2, 3, 2),      # padded edges everywhere
    ])
    def test_matches_numpy(self, pfs, m, k, n, cm, ck, cn):
        rng = np.random.default_rng(m * 100 + n)
        A = rng.random((m, k))
        B = rng.random((k, n))
        name = f"mm{m}{k}{n}"
        def body(comm):
            ga_a = make_ga(comm, pfs, name + "a", A, (m, k), (cm, ck))
            ga_b = make_ga(comm, pfs, name + "b", B, (k, n), (ck, cn))
            ga_c = make_ga(comm, pfs, name + "c", None, (m, n), (cm, cn))
            ga_matmul(ga_a, ga_b, ga_c)
            got = ga_c.get((0, 0), (m, n))
            return np.allclose(got, A @ B)
        assert all(run(4, body))

    def test_shape_mismatch_rejected(self, pfs):
        def body(comm):
            a = make_ga(comm, pfs, "s1", shape=(4, 6), chunks=(2, 2))
            b = make_ga(comm, pfs, "s2", shape=(4, 6), chunks=(2, 2))
            c = make_ga(comm, pfs, "s3", shape=(4, 6), chunks=(2, 2))
            try:
                ga_matmul(a, b, c)
                return False
            except DRXIndexError:
                return True
        assert all(run(2, body))

    def test_blocking_mismatch_rejected(self, pfs):
        def body(comm):
            a = make_ga(comm, pfs, "b1", shape=(4, 4), chunks=(2, 2))
            b = make_ga(comm, pfs, "b2", shape=(4, 4), chunks=(4, 2))
            c = make_ga(comm, pfs, "b3", shape=(4, 4), chunks=(2, 2))
            try:
                ga_matmul(a, b, c)
                return False
            except DRXIndexError:
                return True
        assert all(run(2, body))

    def test_matmul_on_extended_arrays(self, pfs):
        """Operands with growth history (non-row-major chunk addresses)."""
        rng = np.random.default_rng(8)
        A = rng.random((8, 8))
        B = rng.random((8, 8))
        def body(comm):
            fa = DRXMPFile.create(comm, pfs, "ea", (8, 4), (2, 2))
            fa.extend(1, 4)
            if comm.rank == 0:
                fa.write((0, 0), A)
            comm.barrier()
            ga_a = GlobalArray.from_file(fa)
            fa.close()
            ga_b = make_ga(comm, pfs, "eb", B, (8, 8), (2, 2))
            ga_c = make_ga(comm, pfs, "ec", None, (8, 8), (2, 2))
            ga_matmul(ga_a, ga_b, ga_c)
            return np.allclose(ga_c.get((0, 0), (8, 8)), A @ B)
        assert all(run(4, body))
