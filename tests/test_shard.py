"""The sharded service: ring routing, failover re-resolution,
subprocess kill -9 recovery, and the merged stats view.

Env knobs (the CI shard job turns them up)::

    DRX_SOAK_CLIENTS=32 DRX_SOAK_SECONDS=20   # shard soak scale
    DRX_FAULT_SEED=20070917                   # chaos schedule seed
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.errors import ServeError
from repro.pfs import ParallelFileSystem
from repro.serve import DRXClient, DRXServer
from repro.serve.cli import main as cli_main
from repro.serve.shard import HashRing, ShardedClient, ShardSet, merge_stats

SEED = int(os.environ.get("DRX_FAULT_SEED", "0"))
SOAK_CLIENTS = int(os.environ.get("DRX_SOAK_CLIENTS", "8"))
SOAK_SECONDS = float(os.environ.get("DRX_SOAK_SECONDS", "3"))


def conservation_ok(stats: dict) -> bool:
    tot = stats["qos"]["totals"]
    return tot["requests"] == (tot["ok"] + tot["errors"]
                               + tot["retry_later"]
                               + tot["deadline_misses"])


def fs_factory(idx: int) -> ParallelFileSystem:
    return ParallelFileSystem(nservers=2, stripe_size=1024)


# ---------------------------------------------------------------------------
# the ring
# ---------------------------------------------------------------------------
class TestHashRing:
    def addresses(self, n):
        return [("127.0.0.1", 7000 + i) for i in range(n)]

    def test_deterministic_across_instances(self):
        a = HashRing(self.addresses(4))
        b = HashRing(self.addresses(4))
        names = [f"tenant-{i}/arr{j}" for i in range(20) for j in range(5)]
        assert [a.shard_of(n) for n in names] == \
            [b.shard_of(n) for n in names]

    def test_balanced_spread(self):
        ring = HashRing(self.addresses(4))
        names = [f"array-{i:05d}" for i in range(2000)]
        spread = ring.spread(names)
        assert sum(spread.values()) == len(names)
        assert all(count > 0 for count in spread.values())
        # virtual points keep the skew bounded (not a tight bound —
        # just "no shard is starved or doubled-up")
        assert max(spread.values()) < 2 * min(spread.values())

    def test_address_change_keeps_ownership(self):
        ring = HashRing(self.addresses(3))
        names = [f"a{i}" for i in range(200)]
        before = [ring.shard_of(n) for n in names]
        ring.set_address(1, ("127.0.0.1", 9999))
        assert [ring.shard_of(n) for n in names] == before
        assert ring.address(1) == ("127.0.0.1", 9999)

    def test_resolver_tracks_republish(self):
        ring = HashRing(self.addresses(2))
        resolve = ring.resolver(0)
        assert resolve() == ("127.0.0.1", 7000)
        ring.set_address(0, ("127.0.0.1", 7777))
        assert resolve() == ("127.0.0.1", 7777)

    def test_growth_remaps_a_minority(self):
        small = HashRing(self.addresses(4))
        grown = HashRing(self.addresses(5))
        names = [f"array-{i:05d}" for i in range(2000)]
        moved = sum(small.shard_of(n) != grown.shard_of(n)
                    for n in names)
        # consistent hashing: ~1/5 of names move, never a full reshuffle
        assert moved < len(names) // 2

    def test_empty_ring_rejected(self):
        with pytest.raises(ServeError):
            HashRing([])


# ---------------------------------------------------------------------------
# routed operations
# ---------------------------------------------------------------------------
class TestShardedClient:
    def test_routing_and_bit_identical_readback(self):
        with ShardSet(4, fs_factory=fs_factory) as ss:
            with ss.client("router", timeout=30.0, seed=SEED) as sc:
                names = [f"arr{i:02d}" for i in range(12)]
                rng = np.random.default_rng(SEED)
                blocks = {}
                for n in names:
                    sc.create(n, bounds=[16, 16], chunk=[8, 8])
                    blocks[n] = rng.random((16, 16))
                    sc.write(n, (0, 0), blocks[n])
                for n in names:
                    got = sc.read(n, (0, 0), (16, 16))
                    assert np.array_equal(got, blocks[n]), n
                # the population actually spread over several shards
                spread = ss.ring.spread(names)
                assert sum(1 for v in spread.values() if v > 0) >= 2
                # ... and each array lives ONLY on its owning shard
                for idx, srv in enumerate(ss.servers):
                    snap = srv.stats_snapshot()
                    owned = {n for n in names
                             if ss.ring.shard_of(n) == idx}
                    assert set(snap["arrays"]) == owned

    def test_merged_stats_aggregate(self):
        with ShardSet(2, fs_factory=fs_factory) as ss:
            with ss.client("agg", timeout=30.0) as sc:
                for i in range(6):
                    sc.create(f"s{i}", bounds=[8], chunk=[4])
                    sc.write(f"s{i}", [0], np.ones(8))
                merged = sc.stats()
            assert merged["nshards"] == 2
            assert len(merged["shards"]) == 2
            agg = merged["aggregate"]
            assert agg["arrays"] == 6
            tot = agg["qos_totals"]
            # conservation holds on the merged totals too
            assert tot["requests"] == (tot["ok"] + tot["errors"]
                                       + tot["retry_later"]
                                       + tot["deadline_misses"])
            assert tot["ok"] == sum(
                s["qos"]["totals"]["ok"] for s in merged["shards"])

    def test_cross_shard_batch_preserves_order(self):
        with ShardSet(3, fs_factory=fs_factory) as ss:
            with ss.client("batcher", timeout=30.0) as sc:
                names = [f"b{i}" for i in range(9)]
                for n in names:
                    sc.create(n, bounds=[8], chunk=[4])
                outs = sc.batch(
                    [{"verb": "write", "name": n, "lo": [0],
                      "shape": [8], "dtype": "<f8",
                      "payload": np.full(8, float(i)).tobytes()}
                     for i, n in enumerate(names)])
                assert len(outs) == len(names)
                for i, n in enumerate(names):
                    got = sc.read(n, [0], [8])
                    assert np.all(got == float(i)), n

    def test_sharded_pipeline_fans_out(self):
        with ShardSet(2, fs_factory=fs_factory) as ss:
            with ss.client("piped", timeout=30.0) as sc:
                names = [f"p{i}" for i in range(6)]
                for n in names:
                    sc.create(n, bounds=[8], chunk=[4])
                with sc.pipeline(depth=16) as pp:
                    pends = [pp.write(n, [0], np.full(8, float(i)))
                             for i, n in enumerate(names)]
                    for p in pends:
                        p.result()
                    reads = [pp.read(n, [0], [8]) for n in names]
                    for i, r in enumerate(reads):
                        assert np.all(r.result() == float(i))
                # both per-shard pipelines were actually used
                assert len(pp._pipes) == 0      # closed
                spread = ss.ring.spread(names)
                assert sum(1 for v in spread.values() if v > 0) == 2


# ---------------------------------------------------------------------------
# failover: re-resolution and exactly-once across shard restarts
# ---------------------------------------------------------------------------
class TestShardFailover:
    def test_reconnect_reresolves_ring_not_dead_address(self):
        with ShardSet(2, fs_factory=fs_factory, journal=True) as ss:
            with ss.client("failover", timeout=60.0, max_retries=60,
                           seed=SEED) as sc:
                name = "fo"
                idx = ss.ring.shard_of(name)
                sc.create(name, bounds=[4, 4], chunk=[2, 2])
                sc.write(name, (0, 0), np.full((4, 4), 3.0))
                dead = ss.ring.address(idx)
                ss.kill(idx)
                srv = ss.restart(idx)
                assert srv.address != dead      # new port: the pinned
                # address is gone — only ring re-resolution can succeed
                got = sc.read(name, (0, 0), (4, 4))
                assert np.array_equal(got, np.full((4, 4), 3.0))
                # the cached per-shard client followed the ring
                assert sc.shard_client(idx).address == srv.address

    def test_pipeline_resends_outstanding_exactly_once(self):
        """A shard dies with pipelined extends outstanding; the
        receiver reconnects through the ring and re-sends them under
        their original idempotency keys — each extend lands exactly
        once (extends are NOT idempotent, so the final shape is the
        proof)."""
        with ShardSet(2, fs_factory=fs_factory, journal=True) as ss:
            with ss.client("pipefail", timeout=60.0, max_retries=60,
                           seed=SEED) as sc:
                name = "grow"
                idx = ss.ring.shard_of(name)
                sc.create(name, bounds=[4, 2], chunk=[2, 2])
                nops = 16
                with sc.pipeline(depth=8) as pp:
                    pends = []
                    for i in range(nops):
                        pends.append(pp.extend(name, dim=0, by=1))
                        if i == 4:
                            ss.kill(idx)
                            time.sleep(0.05)
                            ss.restart(idx)
                    shapes = [p.result()["shape"] for p in pends]
                # every extend acked exactly once: 4 + 16 rows total
                assert sorted(s[0] for s in shapes) == \
                    list(range(5, 5 + nops))
                assert sc.open(name)["shape"] == [4 + nops, 2]


# ---------------------------------------------------------------------------
# true subprocess shards: kill -9 mid-load, recover, zero acked loss
# ---------------------------------------------------------------------------
def spawn_shard(root, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--root", str(root),
         "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"shard died at startup: {proc.stderr.read()}")
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            return proc, ("127.0.0.1", port)


class TestSubprocessShards:
    def test_kill9_mid_load_recovers_exactly_once(self, tmp_path):
        roots = [tmp_path / f"shard-{i}" for i in range(2)]
        for r in roots:
            r.mkdir()
        procs, addrs = [], []
        for r in roots:
            proc, addr = spawn_shard(r)
            procs.append(proc)
            addrs.append(addr)
        try:
            ring = HashRing(addrs)
            name = "victim"
            idx = ring.shard_of(name)
            nops = 30
            acked = []
            failures = []
            with ShardedClient(ring, client_id="killer", timeout=60.0,
                               max_retries=80, seed=SEED) as sc:
                sc.create(name, bounds=[2, 4], chunk=[2, 2])
                sc.write(name, (0, 0), np.full((2, 4), 5.0))

                def grower():
                    try:
                        for _ in range(nops):
                            ack = sc.extend(name, dim=0, by=1)
                            acked.append(ack["shape"][0])
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(repr(exc))

                t = threading.Thread(target=grower)
                t.start()
                # let some extends land, then kill -9 the owning shard
                while len(acked) < 5:
                    time.sleep(0.01)
                os.kill(procs[idx].pid, signal.SIGKILL)
                procs[idx].wait(timeout=10)
                # restart over the same root, recovering its journals,
                # and republish the NEW address on the ring
                proc, addr = spawn_shard(roots[idx], ("--recover",))
                procs[idx] = proc
                ring.set_address(idx, addr)
                t.join(120)
                assert not t.is_alive(), "grower wedged after kill -9"
                assert not failures, failures
                # exactly-once: every acked extend grew the array once,
                # and nothing acked was lost in the kill
                assert len(acked) == nops
                assert sorted(acked) == list(range(3, 3 + nops))
                final = sc.open(name)
                assert final["shape"] == [2 + nops, 4]
                # the pre-kill acked write survived (zero acked loss)
                got = sc.read(name, (0, 0), (2, 4))
                assert np.array_equal(got, np.full((2, 4), 5.0))
            # the merged operator view sees both shards (CLI satellite
            # covered in-process in TestDumpStatsCLI; here just sanity)
            with DRXClient(ring.address(idx), timeout=10.0) as c:
                snap = c.stats()
            assert conservation_ok(snap)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

    def test_shard_soak_balanced_and_conserved(self):
        """SOAK leg (CI turns the knobs up): many tenants, each on its
        own array, against a 4-shard set with pipelining; counters
        conserved per shard and in aggregate, load spread over shards."""
        nclients = SOAK_CLIENTS
        seconds = SOAK_SECONDS
        with ShardSet(4, fs_factory=fs_factory) as ss:
            names = [f"tenant{i:03d}" for i in range(nclients)]
            with ss.client("setup", timeout=30.0) as setup:
                for n in names:
                    setup.create(n, bounds=[16, 16], chunk=[8, 8])
            stop_at = time.monotonic() + seconds
            issued = [0] * nclients
            failures = []

            def tenant(i):
                rng = np.random.default_rng(SEED * 1000 + i)
                try:
                    with ss.client(f"soak{i}", timeout=60.0,
                                   max_retries=60, seed=i) as cl:
                        block = rng.random((8, 8))
                        while time.monotonic() < stop_at:
                            if rng.integers(0, 2):
                                cl.write(names[i], (0, 0), block)
                            else:
                                got = cl.read(names[i], (0, 0), (8, 8))
                                assert got.shape == (8, 8)
                            issued[i] += 1
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append((i, repr(exc)))

            threads = [threading.Thread(target=tenant, args=(i,))
                       for i in range(nclients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(seconds + 120)
                assert not t.is_alive(), "shard soak deadlock"
            assert not failures, failures
            assert sum(issued) > 0
            snaps = [srv.stats_snapshot() for srv in ss.servers]
            for snap in snaps:
                assert conservation_ok(snap)
                assert snap["qos"]["totals"]["errors"] == 0
            merged = merge_stats(snaps)
            tot = merged["aggregate"]["qos_totals"]
            assert tot["requests"] == (tot["ok"] + tot["errors"]
                                       + tot["retry_later"]
                                       + tot["deadline_misses"])
            # work landed on more than one shard
            busy = [s["qos"]["totals"]["ok"] for s in snaps]
            assert sum(1 for b in busy if b > 0) >= 2


# ---------------------------------------------------------------------------
# the merged --dump-stats CLI view
# ---------------------------------------------------------------------------
class TestDumpStatsCLI:
    def test_multi_address_merged_snapshot(self, capsys):
        with ShardSet(2, fs_factory=fs_factory) as ss:
            with ss.client("cli", timeout=30.0) as sc:
                for i in range(4):
                    sc.create(f"d{i}", bounds=[4], chunk=[2])
                    sc.write(f"d{i}", [0], np.ones(4))
            targets = [f"{h}:{p}" for h, p in ss.ring.addresses()]
            rc = cli_main(["--dump-stats", *targets])
            assert rc == 0
            out = json.loads(capsys.readouterr().out)
            assert out["nshards"] == 2
            assert len(out["shards"]) == 2
            assert out["aggregate"]["arrays"] == 4
            tot = out["aggregate"]["qos_totals"]
            assert tot["requests"] == (tot["ok"] + tot["errors"]
                                       + tot["retry_later"]
                                       + tot["deadline_misses"])

    def test_single_address_unchanged_shape(self, capsys):
        with ShardSet(1, fs_factory=fs_factory) as ss:
            host, port = ss.ring.address(0)
            rc = cli_main(["--dump-stats", "--host", host,
                           "--port", str(port)])
            assert rc == 0
            out = json.loads(capsys.readouterr().out)
            assert "qos" in out and "nshards" not in out

    def test_bad_address_rejected(self, capsys):
        assert cli_main(["--dump-stats", "nonsense"]) == 2
        assert cli_main(["--dump-stats"]) == 2
