"""Unit tests for element <-> chunk arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DRXExtendError,
    DRXIndexError,
    box_shape,
    ceil_div,
    chunk_bounds_for,
    chunk_element_box,
    chunk_of,
    chunks_covering_box,
    iter_box_intersections,
    validate_box,
    within_chunk_offset,
)


class TestBasics:
    def test_ceil_div(self):
        assert ceil_div(0, 3) == 0
        assert ceil_div(1, 3) == 1
        assert ceil_div(3, 3) == 1
        assert ceil_div(4, 3) == 2

    def test_chunk_bounds_for(self):
        assert chunk_bounds_for((10, 12), (2, 3)) == (5, 4)
        assert chunk_bounds_for((1, 1), (4, 4)) == (1, 1)

    def test_chunk_bounds_rank_mismatch(self):
        with pytest.raises(DRXExtendError):
            chunk_bounds_for((10,), (2, 3))

    def test_chunk_bounds_bad_values(self):
        with pytest.raises(DRXExtendError):
            chunk_bounds_for((10, 0), (2, 3))
        with pytest.raises(DRXExtendError):
            chunk_bounds_for((10, 10), (2, 0))

    def test_chunk_of(self):
        ci, local = chunk_of((5, 7), (2, 3))
        assert ci == (2, 2)
        assert local == (1, 1)

    def test_chunk_of_negative(self):
        with pytest.raises(DRXIndexError):
            chunk_of((-1, 0), (2, 3))

    def test_within_chunk_offset_row_major(self):
        assert within_chunk_offset((0, 0), (2, 3)) == 0
        assert within_chunk_offset((0, 2), (2, 3)) == 2
        assert within_chunk_offset((1, 0), (2, 3)) == 3
        assert within_chunk_offset((1, 2), (2, 3)) == 5


class TestBoxes:
    def test_chunk_element_box(self):
        lo, hi = chunk_element_box((2, 1), (2, 3))
        assert (lo, hi) == ((4, 3), (6, 6))

    def test_chunk_element_box_clipped(self):
        # last chunk of a 10-element dim with chunk width 3: [9, 10)
        lo, hi = chunk_element_box((3,), (3,), (10,))
        assert (lo, hi) == ((9,), (10,))

    def test_chunk_entirely_outside_raises(self):
        with pytest.raises(DRXIndexError):
            chunk_element_box((4,), (3,), (10,))

    def test_validate_box(self):
        validate_box((0, 0), (2, 2), (5, 5))
        with pytest.raises(DRXIndexError):
            validate_box((0,), (2, 2), (5, 5))
        with pytest.raises(DRXIndexError):
            validate_box((2, 0), (2, 2), (5, 5))     # empty
        with pytest.raises(DRXIndexError):
            validate_box((0, 0), (6, 2), (5, 5))     # overflow

    def test_box_shape(self):
        assert box_shape((1, 2), (4, 7)) == (3, 5)

    def test_chunks_covering_box(self):
        got = chunks_covering_box((1, 2), (5, 7), (2, 3))
        # rows 0..2, cols 0..2
        want = [(i, j) for i in range(3) for j in range(3)]
        assert [tuple(r) for r in got] == want

    def test_chunks_covering_single_chunk(self):
        got = chunks_covering_box((2, 3), (4, 6), (2, 3))
        assert [tuple(r) for r in got] == [(1, 1)]


class TestIntersections:
    def test_full_cover_detection(self):
        inters = list(iter_box_intersections((0, 0), (4, 6), (2, 3)))
        assert len(inters) == 4
        assert all(i.full for i in inters)

    def test_partial_edges(self):
        inters = list(iter_box_intersections((1, 1), (3, 5), (2, 3)))
        assert not any(i.full for i in inters)
        # reassemble a pattern array through the intersections
        src = np.arange(100).reshape(10, 10)
        out = np.zeros((2, 4))
        for it in inters:
            c_lo = tuple(ci * cs for ci, cs in zip(it.chunk_index, (2, 3)))
            chunk = src[c_lo[0]:c_lo[0] + 2, c_lo[1]:c_lo[1] + 3]
            out[it.box_slices] = chunk[it.chunk_slices]
        assert np.array_equal(out, src[1:3, 1:5])

    def test_nelems(self):
        inters = list(iter_box_intersections((0, 0), (2, 3), (2, 3)))
        assert inters[0].nelems == 6

    def test_coverage_partition(self):
        """Every element of the box is covered exactly once."""
        lo, hi, cs = (3, 1, 2), (9, 8, 5), (4, 3, 2)
        seen = np.zeros(box_shape(lo, hi), dtype=int)
        for it in iter_box_intersections(lo, hi, cs):
            seen[it.box_slices] += 1
        assert np.all(seen == 1)
