"""Unit tests for RMA windows: epochs, Put/Get/Accumulate, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.core.errors import MPIWinError
from repro.mpi.runner import SPMDFailure


def run(n, fn, **kw):
    return mpi.mpiexec(n, fn, timeout=kw.pop("timeout", 30), **kw)


class TestEpochs:
    def test_access_outside_epoch_rejected(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(4), comm)
            buf = np.empty(4)
            with pytest.raises(MPIWinError):
                win.Get(buf, 0)
            win.Free()
            return True
        assert all(run(2, body))

    def test_fence_opens_epoch(self):
        def body(comm):
            local = np.full(4, float(comm.rank))
            win = mpi.Win.Create(local, comm)
            win.Fence()
            buf = np.empty(4)
            win.Get(buf, (comm.rank + 1) % comm.size)
            win.Fence()
            win.Free()
            return buf[0]
        assert run(3, body) == [1.0, 2.0, 0.0]

    def test_lock_unlock_discipline(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(4), comm)
            win.Lock(0)
            with pytest.raises(MPIWinError):
                win.Lock(0)          # double lock
            win.Unlock(0)
            with pytest.raises(MPIWinError):
                win.Unlock(0)        # not held
            win.Free()
            return True
        assert all(run(2, body))

    def test_lock_all(self):
        def body(comm):
            local = np.full(2, float(comm.rank))
            win = mpi.Win.Create(local, comm)
            comm.barrier()
            win.Lock_all()
            total = 0.0
            buf = np.empty(2)
            for r in range(comm.size):
                win.Get(buf, r)
                total += buf[0]
            win.Unlock_all()
            win.Free()
            return total
        assert run(3, body) == [3.0, 3.0, 3.0]

    def test_bad_target_rank(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(4), comm)
            with pytest.raises(MPIWinError):
                win.Lock(5)
            win.Free()
            return True
        assert all(run(2, body))


class TestDataMovement:
    def test_put_get_roundtrip(self):
        def body(comm):
            local = np.zeros(8)
            win = mpi.Win.Create(local, comm)
            win.Fence()
            if comm.rank == 0:
                for r in range(1, comm.size):
                    win.Put(np.full(8, float(r * 11)), r)
            win.Fence()
            win.Free()
            return local[0]
        assert run(3, body) == [0.0, 11.0, 22.0]

    def test_target_triple_subrange(self):
        def body(comm):
            local = np.arange(10, dtype=np.float64) + 100 * comm.rank
            win = mpi.Win.Create(local, comm)
            win.Lock(1)
            buf = np.empty(3)
            win.Get(buf, 1, target=(4, 3, mpi.DOUBLE))
            win.Unlock(1)
            win.Free()
            return buf.tolist()
        assert run(2, body)[0] == [104.0, 105.0, 106.0]

    def test_int_offset_target(self):
        def body(comm):
            local = np.zeros(6)
            win = mpi.Win.Create(local, comm)
            win.Fence()
            if comm.rank == 1:
                win.Put(np.array([7.0, 8.0]), 0, target=2)
            win.Fence()
            win.Free()
            return local.tolist()
        assert run(2, body)[0] == [0, 0, 7, 8, 0, 0]

    def test_out_of_range_target(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(4), comm)
            win.Lock(0)
            try:
                with pytest.raises(MPIWinError):
                    win.Put(np.zeros(8), 0)
            finally:
                win.Unlock(0)
            win.Free()
            return True
        assert all(run(2, body))

    def test_none_window_rejected(self):
        def body(comm):
            local = np.zeros(4) if comm.rank == 0 else None
            win = mpi.Win.Create(local, comm)
            win.Lock(1)
            try:
                with pytest.raises(MPIWinError):
                    win.Get(np.empty(1), 1)
            finally:
                win.Unlock(1)
            win.Free()
            return True
        assert all(run(2, body))

    def test_count_mismatch_detected(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(8), comm)
            win.Lock(0)
            try:
                with pytest.raises(MPIWinError):
                    win.Put(np.zeros(3), 0, target=(0, 2, mpi.DOUBLE))
            finally:
                win.Unlock(0)
            win.Free()
            return True
        assert all(run(1, body))


class TestAccumulate:
    def test_sum_from_all_ranks(self):
        def body(comm):
            local = np.zeros(4)
            win = mpi.Win.Create(local, comm)
            comm.barrier()
            win.Lock(0)
            win.Accumulate(np.ones(4), 0)
            win.Unlock(0)
            comm.barrier()
            win.Free()
            return local.sum()
        res = run(4, body)
        assert res[0] == 16.0      # 4 ranks x 4 elements
        assert res[1] == 0.0

    def test_custom_op(self):
        def body(comm):
            local = np.full(2, 10.0)
            win = mpi.Win.Create(local, comm)
            comm.barrier()
            win.Lock(0)
            win.Accumulate(np.full(2, float(comm.rank)), 0, op=mpi.MAX)
            win.Unlock(0)
            comm.barrier()
            win.Free()
            return local[0]
        assert run(4, body)[0] == 10.0   # max(10, ranks) stays 10

    def test_get_accumulate(self):
        def body(comm):
            local = np.array([5.0])
            win = mpi.Win.Create(local, comm)
            comm.barrier()
            old = np.empty(1)
            win.Lock(0)
            win.Get_accumulate(np.array([1.0]), old, 0)
            win.Unlock(0)
            comm.barrier()
            win.Free()
            return float(old[0]), float(local[0])
        res = run(2, body)
        olds = sorted(r[0] for r in res)
        assert olds == [5.0, 6.0]          # fetch-and-add is atomic
        assert res[0][1] == 7.0

    def test_flush_is_noop(self):
        def body(comm):
            win = mpi.Win.Create(np.zeros(1), comm)
            win.Flush(0)
            win.Flush_all()
            win.Free()
            return True
        assert all(run(2, body))
