#!/usr/bin/env python
"""Out-of-core matrix access orders: chunked DRX vs a flat row-major file.

The paper's opening complaint: "an array file that is organized in say
row-major order causes applications that subsequently access the data
in column-major order, to have abysmal performance."

This example stores the same matrix twice — flat row-major (the NetCDF
model) and DRX-chunked — then scans it both by rows and by columns,
counting the I/O requests each store issues.  The flat file collapses
to one request per matrix row when scanned by columns; the chunked
file's request count is nearly order-independent, and DRX additionally
hands back the data already in Fortran order (on-the-fly transposition).

Run:  python examples/ooc_matrix_orders.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ConventionalArrayFile
from repro.bench import Table
from repro.drx import DRXFile, MemoryByteStore
from repro.workloads import column_scan_boxes, pattern_array, row_scan_boxes

N0, N1 = 192, 256
CHUNK = (32, 32)


def scan(reader, boxes) -> int:
    for lo, hi in boxes:
        reader(lo, hi)
    return 0


def main() -> None:
    ref = pattern_array((N0, N1))

    flat = ConventionalArrayFile((N0, N1), store=MemoryByteStore())
    flat.write((0, 0), ref)

    drx = DRXFile.create(None, (N0, N1), CHUNK, cache_pages=8)
    drx.write((0, 0), ref)

    table = Table(
        "matrix scans: I/O requests by access order",
        ["store", "row-order scan", "column-order scan", "ratio"],
    )

    flat.io_requests = 0
    scan(flat.read, row_scan_boxes((N0, N1), rows_per_read=8))
    flat_rows = flat.io_requests
    flat.io_requests = 0
    scan(flat.read, column_scan_boxes((N0, N1), cols_per_read=8))
    flat_cols = flat.io_requests

    def drx_requests(boxes) -> int:
        drx._pool.invalidate()
        drx.cache_stats.misses = 0
        scan(drx.read, boxes)
        return drx.cache_stats.misses      # chunk fetches = I/O requests

    drx_rows = drx_requests(row_scan_boxes((N0, N1), rows_per_read=8))
    drx_cols = drx_requests(column_scan_boxes((N0, N1), cols_per_read=8))

    table.add("flat row-major", flat_rows, flat_cols,
              f"{flat_cols / flat_rows:.0f}x worse")
    table.add("DRX chunked", drx_rows, drx_cols,
              f"{drx_cols / drx_rows:.1f}x")
    table.note("flat column scans issue one tiny request per matrix row; "
               "chunked scans touch each chunk once either way")
    table.show()

    # and the chunked store returns F-order directly, verified correct
    f = drx.read(order="F")
    assert f.flags["F_CONTIGUOUS"] and np.array_equal(f, ref)
    assert np.array_equal(flat.read_transposed_scan(), ref.T)
    assert flat_cols / flat_rows > drx_cols / max(drx_rows, 1)
    drx.close()
    print("matrix-orders example OK")


if __name__ == "__main__":
    main()
