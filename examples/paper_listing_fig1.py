#!/usr/bin/env python
"""The paper's section IV-B code listing, end to end on Figure 1's array.

Builds the Fig. 1 extendible array (A[10][12], 2x3 chunks, grown through
the exact sequence the paper narrates), stores it on the simulated
parallel file system, then runs the C listing's collective read: four
processes, indexed filetypes over the globalMap chunk addresses, indexed
memtypes over the inMemoryMap positions, one MPI_File_read_all.

Unlike the listing — which hardcodes the maps "for this illustration"
— every map here is *computed* from the replicated meta-data, and then
asserted equal to the paper's constants.

Run:  python examples/paper_listing_fig1.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import ExtendibleChunkIndex, f_star_inv_many, f_star_many
from repro.drxmp.partition import BlockPartition
from repro.pfs import ParallelFileSystem

CHUNK_SIZE = 6          # doubles per 2x3 chunk
PAPER_GLOBAL_MAP = {0: [0, 1, 2, 3, 4, 5], 1: [6, 7, 8, 12, 13, 14],
                    2: [9, 10, 16, 17], 3: [11, 15, 18, 19]}
PAPER_INMEM_MAP = {0: [0, 1, 2, 3, 4, 5], 1: [0, 2, 4, 1, 3, 5],
                   2: [0, 1, 2, 3], 3: [0, 1, 2, 3]}


def build_fig1_index() -> ExtendibleChunkIndex:
    """Fig. 1's growth: chunk 0; +dim1 (chunk 1); +dim0 (2,3); +dim0
    (4,5, merged); then +dim1, +dim0, +dim1, +dim0 to the 5x4 grid."""
    eci = ExtendibleChunkIndex([1, 1])
    for dim in (1, 0, 0, 1, 0, 1, 0):
        eci.extend(dim)
    return eci


def worker(comm, fs, eci_doc):
    my_rank = comm.Get_rank()
    nprocs = comm.Get_size()
    assert nprocs == 4, "Size must be 4"

    # each process replicates the meta-data and derives its maps
    eci = ExtendibleChunkIndex.from_dict(eci_doc)
    part = BlockPartition(eci.bounds, nprocs, pgrid=(2, 2))
    zone = part.zone_of(my_rank)
    addrs = np.sort(f_star_many(eci, zone.chunk_indices()))
    rel = f_star_inv_many(eci, addrs) - np.asarray(zone.lo)
    inmemmap = (rel[:, 0] * zone.shape[1] + rel[:, 1]).tolist()
    chunk_map = addrs.tolist()

    assert chunk_map == PAPER_GLOBAL_MAP[my_rank], "globalMap mismatch!"
    assert inmemmap == PAPER_INMEM_MAP[my_rank], "inMemoryMap mismatch!"

    # the listing, almost verbatim
    fh = mpi.File.Open(comm, "/mnt/pvfs2/chunkedArray4.dat",
                       mpi.MODE_RDONLY, fs)
    blocklens = [1] * len(chunk_map)
    chunk = mpi.DOUBLE.Create_contiguous(CHUNK_SIZE)
    chunk.Commit()
    filetype = chunk.Create_indexed(blocklens, chunk_map)
    filetype.Commit()
    memtype = chunk.Create_indexed(blocklens, inmemmap)
    memtype.Commit()
    fh.Set_view(0, chunk, filetype, "native")

    membuf = np.full(len(chunk_map) * CHUNK_SIZE, -1.0)
    status = mpi.Status()
    fh.Read_all((membuf, 1, memtype), status=status)
    count = status.Get_count(chunk)
    print(f"  Rank {my_rank}: map={chunk_map} inmem={inmemmap} "
          f"number read = {count}")
    comm.Barrier()
    fh.Close()
    return membuf


def main() -> None:
    fs = ParallelFileSystem(nservers=4, stripe_size=4096)
    eci = build_fig1_index()
    print(f"Fig. 1 chunk grid {eci.bounds}: F*(4,2) = "
          f"{eci.address((4, 2))} (paper: 18)")

    # chunk q holds the doubles q*6 .. q*6+5
    data = fs.create("/mnt/pvfs2/chunkedArray4.dat")
    data.write(0, np.arange(20 * CHUNK_SIZE, dtype=np.float64).tobytes())

    results = mpi.mpiexec(4, worker, fs, eci.to_dict())

    # rank 3's buffer, as the listing prints: chunks 11, 15, 18, 19
    want = np.concatenate([np.arange(q * 6, q * 6 + 6)
                           for q in (11, 15, 18, 19)]).astype(float)
    assert np.array_equal(results[3], want)
    print("listing example OK — all maps derived, all data in place")


if __name__ == "__main__":
    main()
