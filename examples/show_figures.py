#!/usr/bin/env python
"""Regenerate the paper's figures as text, from computed data.

Fig. 1 — the 2-D extendible array's chunk-address grid and its 2x2 zone
partition; Fig. 2 — the four allocation orders on an 8x8 grid; Fig. 3 —
the 3-D example's address layout and the axial-vector records.

Every number printed here is computed by the library; the test suite
asserts they match the values printed in the paper.

Run:  python examples/show_figures.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ExtendibleChunkIndex, all_addresses
from repro.core.orders import RowMajorOrder, SymmetricShellOrder, ZOrder
from repro.drxmp.partition import BlockPartition


def grid_text(grid: np.ndarray, owners: np.ndarray | None = None) -> str:
    lines = []
    for i in range(grid.shape[0]):
        cells = []
        for j in range(grid.shape[1]):
            cell = f"{grid[i, j]:>3}"
            if owners is not None:
                cell += f"/P{owners[i, j]}"
            cells.append(cell)
        lines.append(" ".join(cells))
    return "\n".join(lines)


def figure1() -> None:
    print("=" * 64)
    print("Fig. 1 — 2-D extendible array: chunk addresses and zones")
    print("=" * 64)
    eci = ExtendibleChunkIndex([1, 1])
    history = [1, 0, 0, 1, 0, 1, 0]
    for dim in history:
        eci.extend(dim)
    grid = all_addresses(eci)
    part = BlockPartition(eci.bounds, 4, pgrid=(2, 2))
    owners = np.empty(eci.bounds, dtype=int)
    for i in range(eci.bounds[0]):
        for j in range(eci.bounds[1]):
            owners[i, j] = part.owner_of((i, j))
    print(f"growth: initial chunk 0, then extends along dims {history}")
    print(f"chunk grid {eci.bounds}; F*(4,2) = {eci.address((4, 2))} "
          f"(paper says 18)\n")
    print("address/zone of every chunk:")
    print(grid_text(grid, owners))
    print("\nper-process chunk maps (the listing's globalMap):")
    for r in range(4):
        from repro.core.mapping import f_star_many
        addrs = sorted(f_star_many(eci, part.chunks_of(r)).tolist())
        print(f"  P{r}: {addrs}")


def figure2() -> None:
    print()
    print("=" * 64)
    print("Fig. 2 — allocation orders on an 8x8 grid")
    print("=" * 64)
    schemes = [
        ("(a) row-major sequence order", RowMajorOrder((8, 8)).address),
        ("(b) Z (Morton) sequence order", ZOrder(2).address),
        ("(c) symmetric linear shell order", SymmetricShellOrder(2).address),
    ]
    eci = ExtendibleChunkIndex([1, 1])
    for _ in range(7):
        eci.extend(0)
        eci.extend(1)
    schemes.append(("(d) arbitrary linear shell (axial)", eci.address))
    for title, addr in schemes:
        print(f"\n{title}:")
        grid = np.array([[addr((i, j)) for j in range(8)]
                         for i in range(8)])
        print(grid_text(grid))


def figure3() -> None:
    print()
    print("=" * 64)
    print("Fig. 3 — 3-D extendible array A[4][3][1] grown 5 times")
    print("=" * 64)
    eci = ExtendibleChunkIndex([4, 3, 1])
    steps = [("D2", 2, 1), ("D2", 2, 1), ("D1", 1, 1),
             ("D0 by 2", 0, 2), ("D2", 2, 1)]
    for label, dim, by in steps:
        eci.extend(dim, by)
    print(f"final bounds {eci.bounds}, {eci.num_chunks} chunks")
    for check, want in [((2, 1, 0), 7), ((3, 1, 2), 34), ((4, 2, 2), 56)]:
        print(f"  A{list(check)} -> address {eci.address(check)} "
              f"(paper: {want})")
    print("\naxial vectors (dim: [start-index; start-address; coeffs]):")
    for v in eci.axial_vectors:
        recs = ", ".join(
            f"[{r.start_index}; {r.start_address}; "
            f"{' '.join(map(str, r.coeffs))}]" for r in v
        )
        print(f"  D{v.dim}: {recs}")
    print("\naddress layout, plane by plane (D2 slices):")
    grid = all_addresses(eci)
    for k in range(eci.bounds[2]):
        print(f"  D2 = {k}:")
        for row in grid[:, :, k]:
            print("    " + " ".join(f"{int(x):>3}" for x in row))


if __name__ == "__main__":
    figure1()
    figure2()
    figure3()
