#!/usr/bin/env python
"""An incrementally growing OLAP cube on an extendible array.

The axial-vector technique originated in statistical databases and OLAP
(the paper builds on Rotem & Zhao, "Extendible arrays for statistical
databases and OLAP applications", SSDBM '96): a sales cube indexed by
(day, store, product) must grow along *every* dimension — new days
arrive daily, stores open, products launch — and no reorganization is
affordable once the cube is out-of-core.

This example appends three "months" of synthetic sales, opening stores
and launching products along the way, then answers roll-up queries both
serially (DRX) and in parallel (DRX-MP + GA reductions).

Run:  python examples/olap_cube.py
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro.drx import DRXFile, describe
from repro.drxmp import DRXMPFile, GlobalArray, ga_dot, ga_fill
from repro.mpi import mpiexec
from repro.pfs import ParallelFileSystem

DAYS0, STORES0, PRODUCTS0 = 30, 4, 10
CHUNK = (10, 2, 5)


def sales_for(day0: int, days: int, stores: int,
              products: int) -> np.ndarray:
    """Deterministic synthetic sales (weekly seasonality + store size)."""
    d = np.arange(day0, day0 + days)[:, None, None]
    s = np.arange(stores)[None, :, None]
    p = np.arange(products)[None, None, :]
    base = 50 + 30 * np.sin(2 * np.pi * d / 7.0)
    return np.maximum(0, base * (1 + 0.3 * s) * (1 + 0.05 * p)).astype(float)


def build_cube(path: pathlib.Path) -> DRXFile:
    cube = DRXFile.create(path, (DAYS0, STORES0, PRODUCTS0), CHUNK)
    cube.attrs["measures"] = "units_sold"
    cube.attrs["dims"] = ["day", "store", "product"]
    cube.write((0, 0, 0), sales_for(0, DAYS0, STORES0, PRODUCTS0))

    # month 2: 30 more days and two new stores
    cube.extend(0, 30)
    cube.extend(1, 2)
    cube.write((30, 0, 0), sales_for(30, 30, 6, PRODUCTS0))

    # month 3: 30 more days and five product launches
    cube.extend(0, 30)
    cube.extend(2, 5)
    cube.write((60, 0, 0), sales_for(60, 30, 6, 15))
    cube.attrs["months_loaded"] = 3
    return cube


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="drx-olap-"))
    cube = build_cube(workdir / "sales")
    print(describe(workdir / "sales"))

    # ---- serial roll-ups --------------------------------------------------
    whole = cube.read()
    per_store = whole.sum(axis=(0, 2))
    print("\nserial roll-ups:")
    print(f"  total units: {whole.sum():,.0f}")
    print(f"  per store  : {np.array2string(per_store, precision=0)}")
    # a strided slab: every 7th day (same weekday) for product 0
    weekday = cube.read_slab((0, 0, 0), (7, 1, 1),
                             (whole.shape[0] // 7, whole.shape[1], 1))
    print(f"  same-weekday mean (product 0): {weekday[..., 0].mean():.1f}")
    cube.close()

    # ---- parallel analytics through DRX-MP + GA ---------------------------
    fs = ParallelFileSystem(nservers=4, stripe_size=32 * 1024)
    fs.create("sales.xmd").write(
        0, (workdir / "sales.xmd").read_bytes())
    fs.create("sales.xta").write(
        0, (workdir / "sales.xta").read_bytes())

    def analytics(comm):
        c = DRXMPFile.open(comm, fs, "sales")
        ga = GlobalArray.from_file(c)
        ones = GlobalArray(comm, c.meta.replicate(), c.partition())
        ga_fill(ones, 1.0)
        total = ga_dot(ga, ones)          # sum = <sales, 1>
        # per-store totals via slab gets (any rank can do any store)
        mine = {}
        for store in range(comm.rank, c.shape[1], comm.size):
            block = ga.get((0, store, 0),
                           (c.shape[0], store + 1, c.shape[2]))
            mine[store] = float(block.sum())
        per_store = comm.allgather(mine)
        merged = {}
        for d in per_store:
            merged.update(d)
        c.close()
        return total, tuple(merged[s] for s in sorted(merged))

    results = mpiexec(4, analytics)
    total, per_store_par = results[0]
    assert all(r == results[0] for r in results)
    assert np.isclose(total, whole.sum())
    assert np.allclose(per_store_par, per_store)
    print("\nparallel analytics (4 ranks) agree with serial roll-ups")
    print(f"  PFS totals: {fs.total_stats()}")
    print("OLAP cube example OK")


if __name__ == "__main__":
    main()
