#!/usr/bin/env python
"""Quickstart: serial DRX in five minutes.

Creates a dense extendible 2-D array file, writes a block, grows the
array along *both* dimensions (no reorganization), writes into the new
region, and reads everything back — in row-major and, at zero extra I/O
cost, in column-major order.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro.drx import DRXFile


def main() -> None:
    rng = np.random.default_rng(42)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="drx-quickstart-"))
    name = workdir / "demo"

    # -- create: 100x120 doubles, stored as 16x16 chunks -----------------
    with DRXFile.create(name, bounds=(100, 120), chunk_shape=(16, 16)) as a:
        print(f"created {a!r}")
        print(f"  files: {name}.xmd (meta-data) + {name}.xta (chunks)")

        block = rng.random((100, 120))
        a.write((0, 0), block)

        # -- grow along ANY dimension: nothing is rewritten --------------
        a.extend(dim=1, by=40)    # now 100 x 160
        a.extend(dim=0, by=20)    # now 120 x 160
        a.extend(dim=1, by=10)    # now 120 x 170
        print(f"  after three extends: shape = {a.shape}, "
              f"chunks on disk = {a.num_chunks}")

        # the original data did not move
        assert np.allclose(a.read((0, 0), (100, 120)), block)

        # write into the freshly grown region
        a.write((100, 0), rng.random((20, 170)))
        a.write((0, 120), rng.random((100, 50)))

        # -- element access (computed, hash-like: F* + in-chunk offset) --
        print(f"  a[7, 11]   = {a.get((7, 11)):.6f}")
        print(f"  a[119,169] = {a.get((119, 169)):.6f}")

        # -- read in either memory order, same I/O --------------------------
        c_order = a.read(order="C")
        f_order = a.read(order="F")
        assert np.allclose(c_order, f_order)
        assert f_order.flags["F_CONTIGUOUS"]
        print(f"  read whole array in C order {c_order.shape} and "
              f"F order (on-the-fly transposition)")
        print(f"  chunk cache: {a.cache_stats}")

    # -- reopen: everything persisted ------------------------------------
    with DRXFile.open(name) as b:
        print(f"reopened: shape={b.shape}, dtype={b.dtype}")
        assert b.shape == (120, 170)
    print("quickstart OK")


if __name__ == "__main__":
    main()
