#!/usr/bin/env python
"""Out-of-core distributed matrix multiply through the GA layer.

The workflow the paper targets: principal arrays live out-of-core in the
parallel file system; a parallel program loads them into distributed
memory as Global-Array-style structures, computes with GA operations
(here GA_Dgemm, plus a dot/norm sanity pass), and stores the result back
to an extendible array file — which can keep growing afterwards.

Run:  python examples/distributed_matmul.py
"""

from __future__ import annotations

import numpy as np

from repro.drxmp import (
    DRXMPFile,
    GlobalArray,
    ga_dot,
    ga_matmul,
    ga_norm2,
    ga_scale,
)
from repro.mpi import mpiexec
from repro.pfs import ParallelFileSystem

M, K, N = 48, 64, 40
CM, CK, CN = 8, 16, 8
NPROC = 4


def job(comm):
    fs = job.fs

    # ---- materialize A and B out-of-core (rank 0 writes, all open) ----
    fa = DRXMPFile.create(comm, fs, "A", (M, K), (CM, CK))
    fb = DRXMPFile.create(comm, fs, "B", (K, N), (CK, CN))
    fc = DRXMPFile.create(comm, fs, "C", (M, N), (CM, CN))
    rng = np.random.default_rng(99)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    if comm.rank == 0:
        fa.write((0, 0), A)
        fb.write((0, 0), B)
    comm.barrier()

    # ---- load into distributed memory --------------------------------
    ga_a = GlobalArray.from_file(fa)
    ga_b = GlobalArray.from_file(fb)
    ga_c = GlobalArray.from_file(fc)

    # ---- compute: C = 0.5 * (A @ B) -----------------------------------
    ga_matmul(ga_a, ga_b, ga_c)
    ga_scale(ga_c, 0.5)

    # ---- verify against NumPy on every rank ---------------------------
    got = ga_c.get((0, 0), (M, N))
    want = 0.5 * (A @ B)
    assert np.allclose(got, want), "distributed matmul mismatch"

    frob = ga_norm2(ga_c)
    trace_ish = ga_dot(ga_c, ga_c)
    if comm.rank == 0:
        print(f"  ||C||_F = {frob:.4f}  (numpy: "
              f"{np.linalg.norm(want):.4f})")
        assert np.isclose(trace_ish, float((want * want).sum()))

    # ---- persist C and keep it extendible ------------------------------
    ga_c.to_file(fc)
    fc.extend(0, CM)              # room for the next batch of rows
    if comm.rank == 0:
        back = fc.read((0, 0), (M, N))
        assert np.allclose(back, want)
        print(f"  C stored out-of-core, grown to {fc.shape} for the "
              f"next batch")
    fa.close(); fb.close(); fc.close()
    return frob


def main() -> None:
    fs = ParallelFileSystem(nservers=4, stripe_size=32 * 1024)
    job.fs = fs
    print(f"C = 0.5 * A({M}x{K}) @ B({K}x{N}) on {NPROC} ranks, "
          f"chunked {CM}x{CK} / {CK}x{CN}")
    results = mpiexec(NPROC, job)
    assert len(set(round(r, 9) for r in results)) == 1
    print(f"  PFS totals: {fs.total_stats()}")
    print("distributed matmul OK")


if __name__ == "__main__":
    main()
