#!/usr/bin/env python
"""Climate-model time series: the paper's motivating growth scenario.

A simulation produces one (lat x lon) temperature field per time step
and appends it to an out-of-core principal array — and occasionally the
model is *re-gridded*, growing the spatial dimensions too.  With
conventional formats only the time dimension can grow; DRX-MP grows all
three without reorganizing ("recent advances ... support the
incremental growth of array datasets over time").

Four "compute node" processes run the model, write their zones with
collective I/O, append time steps, and finally one process computes a
global time mean through the Global-Array layer.

Run:  python examples/climate_timeseries.py
"""

from __future__ import annotations

import numpy as np

from repro.drxmp import DRXMPFile, GlobalArray
from repro.mpi import mpiexec
from repro.pfs import ParallelFileSystem

NLAT, NLON = 24, 48          # initial grid
STEPS_PER_EPOCH = 4
CHUNKS = (2, 6, 12)          # (time, lat, lon) chunk shape


def temperature_field(step: int, lat0: int, lon0: int,
                      shape: tuple[int, int]) -> np.ndarray:
    """A deterministic synthetic field (waves drifting with time)."""
    lats = np.arange(lat0, lat0 + shape[0])[:, None]
    lons = np.arange(lon0, lon0 + shape[1])[None, :]
    return (15.0
            + 10.0 * np.cos(np.pi * lats / NLAT)
            + 3.0 * np.sin(2 * np.pi * (lons + 5 * step) / NLON))


def model(comm) -> float:
    fs = model.fs
    a = DRXMPFile.create(comm, fs, "climate", bounds=(STEPS_PER_EPOCH,
                                                      NLAT, NLON),
                         chunk_shape=CHUNKS)

    # ---- epoch 1: fill the initial time steps by zones -----------------
    part = a.partition(pgrid=(1, 2, 2))      # split space, not time
    mem = a.read_zone(part)
    (t0, la0, lo0), (t1, la1, lo1) = (mem.origin,
                                      tuple(o + s for o, s
                                            in zip(mem.origin,
                                                   mem.array.shape)))
    for t in range(t0, t1):
        mem.array[t - t0] = temperature_field(t, la0, lo0,
                                              (la1 - la0, lo1 - lo0))
    a.write_zone(mem)

    # ---- epoch 2: the run continues — append more time steps -----------
    a.extend(dim=0, by=STEPS_PER_EPOCH)
    part = a.partition(pgrid=(1, 2, 2))      # zones over the grown grid
    mem = a.read_zone(part)
    (t0, la0, lo0) = mem.origin
    for t in range(t0, t0 + mem.array.shape[0]):
        mem.array[t - t0] = temperature_field(t, la0, lo0,
                                              mem.array.shape[1:])
    a.write_zone(mem)

    # ---- re-gridding: the model doubles longitude resolution -----------
    a.extend(dim=2, by=NLON)                 # only DRX can do this cheaply
    if comm.rank == 0:
        print(f"  after append + re-grid: principal array = {a.shape}, "
              f"chunks = {a.meta.num_chunks}")
        # newly added longitudes read as zero until the model fills them
        fresh = a.read((0, 0, NLON), (1, NLAT, NLON + 4))
        assert np.all(fresh == 0.0)

    # ---- analysis through the Global-Array layer ------------------------
    ga = GlobalArray.from_file(a, a.partition(pgrid=(1, 2, 2)))
    total_steps = a.shape[0]
    field_sum = np.zeros((NLAT, NLON))
    if comm.rank == 0:
        for t in range(total_steps):
            field_sum += ga.get((t, 0, 0), (t + 1, NLAT, NLON))[0]
        mean = field_sum / total_steps
        print(f"  global time-mean temperature: "
              f"min={mean.min():.2f}C max={mean.max():.2f}C")
    ga.sync()
    a.close()
    # verify against the analytic expectation on every rank
    expect = np.mean([temperature_field(t, 0, 0, (NLAT, NLON))
                      for t in range(total_steps)], axis=0)
    return float(expect.mean())


def main() -> None:
    fs = ParallelFileSystem(nservers=4, stripe_size=16 * 1024)
    model.fs = fs
    print("running 4-process climate model on simulated PVFS "
          f"({fs.nservers} I/O servers, {fs.stripe_size // 1024} KiB stripes)")
    results = mpiexec(4, model)
    assert len(set(results)) == 1
    stats = fs.total_stats()
    print(f"  PFS totals: {stats}")
    print("climate example OK")


if __name__ == "__main__":
    main()
