"""``repro.mpi`` — an in-process MPI-2 substrate.

One thread per rank, launched with :func:`mpiexec`.  Provides the MPI-2
feature set the paper's library depends on: communicators with
point-to-point and collective operations, derived datatypes, MPI-IO with
file views and collective two-phase I/O over the simulated parallel file
system, and one-sided RMA windows.

The public names mirror mpi4py's ``MPI`` module where they overlap, so
the paper's code listing translates line for line (see
``tests/test_listing.py``).
"""

from .cart import PROC_NULL, Cartcomm
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    Intracomm,
    Op,
    World,
)
from .datatypes import (
    BYTE,
    COMPLEX,
    DOUBLE,
    FLOAT,
    INT,
    INT32,
    INT64,
    Datatype,
    from_numpy_dtype,
)
from .file import (
    MODE_APPEND,
    MODE_CREATE,
    MODE_DELETE_ON_CLOSE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
    File,
    FileView,
)
from .runner import SPMDFailure, mpiexec
from .status import Request, Status
from .win import LOCK_EXCLUSIVE, LOCK_SHARED, Win

__all__ = [
    "mpiexec",
    "SPMDFailure",
    "Intracomm",
    "Cartcomm",
    "PROC_NULL",
    "World",
    "Status",
    "Request",
    "Datatype",
    "from_numpy_dtype",
    "BYTE", "INT", "INT32", "INT64", "FLOAT", "DOUBLE", "COMPLEX",
    "File",
    "FileView",
    "Win",
    "Op",
    "SUM", "PROD", "MIN", "MAX", "LAND", "LOR", "BAND", "BOR",
    "ANY_SOURCE", "ANY_TAG",
    "MODE_RDONLY", "MODE_WRONLY", "MODE_RDWR", "MODE_CREATE",
    "MODE_EXCL", "MODE_APPEND", "MODE_DELETE_ON_CLOSE",
    "LOCK_EXCLUSIVE", "LOCK_SHARED",
]
