"""Cartesian process topologies (MPI_Cart_create and friends).

The paper's listing sketches ``/* Create cart topology of the processes */``
for its 2x2 process decomposition; this module completes the substrate
with :class:`Cartcomm`: grid creation (optionally with ``MPI_Dims_create``
via :func:`repro.drxmp.partition.dims_create`), rank<->coordinate maps,
neighbour shifts with or without periodic wraparound, and sub-grid
communicators (``MPI_Cart_sub``).
"""

from __future__ import annotations

from math import prod
from typing import Sequence

from ..core.errors import MPICommError
from .comm import Intracomm

__all__ = ["Cartcomm", "PROC_NULL"]

PROC_NULL = -2


class Cartcomm(Intracomm):
    """A communicator with an attached Cartesian grid."""

    def __init__(self, base: Intracomm, dims: Sequence[int],
                 periods: Sequence[bool]) -> None:
        super().__init__(base.world, base._shared, base.rank)
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)
        if prod(self.dims) != self.size:
            raise MPICommError(
                f"grid {self.dims} does not hold {self.size} processes"
            )
        if len(self.periods) != len(self.dims):
            raise MPICommError("dims/periods rank mismatch")

    # ------------------------------------------------------------------
    @classmethod
    def Create_cart(cls, comm: Intracomm, dims: Sequence[int],
                    periods: Sequence[bool] | None = None,
                    reorder: bool = False) -> "Cartcomm":
        """MPI_Cart_create (rank order is kept; ``reorder`` is advisory)."""
        del reorder
        periods = periods if periods is not None else [False] * len(dims)
        dup = comm.Dup()
        return cls(dup, dims, periods)

    # ------------------------------------------------------------------
    @property
    def ndims(self) -> int:
        return len(self.dims)

    def Get_coords(self, rank: int) -> tuple[int, ...]:
        """Row-major grid coordinates of ``rank`` (MPI_Cart_coords)."""
        if not 0 <= rank < self.size:
            raise MPICommError(f"rank {rank} outside size {self.size}")
        out = []
        for d in reversed(self.dims):
            rank, c = divmod(rank, d)
            out.append(c)
        return tuple(reversed(out))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        """Rank of grid ``coords`` (MPI_Cart_rank); periodic dimensions
        wrap, non-periodic out-of-range coordinates are an error."""
        if len(coords) != self.ndims:
            raise MPICommError("coordinate rank mismatch")
        norm = []
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                c %= d
            elif not 0 <= c < d:
                raise MPICommError(
                    f"coordinate {tuple(coords)} outside non-periodic grid "
                    f"{self.dims}"
                )
            norm.append(c)
        r = 0
        for c, d in zip(norm, self.dims):
            r = r * d + c
        return r

    @property
    def coords(self) -> tuple[int, ...]:
        return self.Get_coords(self.rank)

    # ------------------------------------------------------------------
    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, destination) ranks for a shift (MPI_Cart_shift).

        Non-periodic shifts off the edge return :data:`PROC_NULL`.
        """
        if not 0 <= direction < self.ndims:
            raise MPICommError(f"direction {direction} outside "
                               f"{self.ndims} dims")
        me = list(self.coords)

        def resolve(offset: int) -> int:
            c = list(me)
            c[direction] += offset
            try:
                return self.Get_cart_rank(c)
            except MPICommError:
                return PROC_NULL

        return resolve(-disp), resolve(+disp)

    def Sub(self, remain_dims: Sequence[bool]) -> "Cartcomm":
        """Slice the grid (MPI_Cart_sub): keep the dimensions flagged in
        ``remain_dims``, splitting off one sub-communicator per fixed
        combination of the dropped dimensions."""
        if len(remain_dims) != self.ndims:
            raise MPICommError("remain_dims rank mismatch")
        me = self.coords
        color = 0
        key = 0
        for c, d, keep in zip(me, self.dims, remain_dims):
            if keep:
                key = key * d + c
            else:
                color = color * d + c
        sub = self.Split(color, key)
        assert sub is not None
        kept_dims = [d for d, keep in zip(self.dims, remain_dims) if keep]
        kept_periods = [p for p, keep in zip(self.periods, remain_dims)
                        if keep]
        return Cartcomm(sub, kept_dims or [1], kept_periods or [False])
