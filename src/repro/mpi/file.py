"""MPI-IO: file views and independent/collective reads and writes.

This is the layer the paper's code listing exercises: open a file on the
parallel file system, ``Set_view`` with an indexed *filetype* built from
chunk addresses, then ``Read_all`` into a buffer through an indexed
*memtype* — the "irregular distributed array access" collective-I/O
method [Ching et al. 2003] cited by the paper.

A view ``(disp, etype, filetype)`` exposes the file's bytes as the data
bytes of ``filetype`` tiled from byte ``disp``; offsets and file pointers
are in ``etype`` units of that data stream.  Independent operations
(``Read_at``/``Write_at``/``Read``/``Write``) hit the PFS with one
vectored request per call; collective operations (``*_all``) aggregate
every rank's extents into coalesced server requests (two-phase I/O),
which is what experiment E3 measures against the independent path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import MPIFileError
from ..core.faultsites import crash_point
from ..pfs.filesystem import ParallelFileSystem
from ..pfs.pfile import PFSFile
from ..pfs.striping import Extent
from .comm import Intracomm, _pack_buf, _parse_bufspec, _unpack_buf
from .datatypes import BYTE, Datatype
from .status import Status

__all__ = ["File", "FileView",
           "MODE_RDONLY", "MODE_WRONLY", "MODE_RDWR", "MODE_CREATE",
           "MODE_EXCL", "MODE_APPEND", "MODE_DELETE_ON_CLOSE"]

MODE_RDONLY = 0x01
MODE_WRONLY = 0x02
MODE_RDWR = 0x04
MODE_CREATE = 0x08
MODE_EXCL = 0x10
MODE_APPEND = 0x20
MODE_DELETE_ON_CLOSE = 0x40


class FileView:
    """One rank's view of a file: ``(disp, etype, filetype)``."""

    def __init__(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Datatype | None = None) -> None:
        if disp < 0:
            raise MPIFileError(f"negative view displacement {disp}")
        filetype = filetype if filetype is not None else etype
        if etype.size == 0:
            raise MPIFileError("etype must have positive size")
        if filetype.size % etype.size:
            raise MPIFileError(
                f"filetype size {filetype.size} is not a multiple of etype "
                f"size {etype.size}"
            )
        if filetype.lb < 0:
            raise MPIFileError("filetype displacements must be non-negative")
        if filetype.num_runs > 1 and bool(
                np.any(filetype.offsets[1:] < filetype.offsets[:-1])):
            # MPI-2 requires a filetype's displacements to be monotonically
            # nondecreasing — this is why the paper's listing sorts the
            # chunk addresses into the filetype and permutes the *memory*
            # type instead (the inMemoryMap).
            raise MPIFileError(
                "filetype typemap must have monotonically nondecreasing "
                "offsets"
            )
        self.disp = disp
        self.etype = etype
        self.filetype = filetype

    def extents(self, data_offset: int, nbytes: int) -> list[Extent]:
        """Absolute file byte extents of ``nbytes`` of view data starting
        at view-data byte ``data_offset``, in data order."""
        if nbytes < 0 or data_offset < 0:
            raise MPIFileError(
                f"bad view range (offset {data_offset}, {nbytes} bytes)"
            )
        if nbytes == 0:
            return []
        ft = self.filetype
        tile_data = ft.size
        if tile_data == 0:
            raise MPIFileError("filetype holds no data")
        if ft.is_contiguous and ft.lb == 0:
            return [(self.disp + data_offset, nbytes)]
        out: list[Extent] = []
        cum = ft.cumlen                 # (runs+1,) data offset of each run
        offs = ft.offsets
        lens = ft.lengths
        pos = data_offset
        end = data_offset + nbytes
        while pos < end:
            tile, local = divmod(pos, tile_data)
            run = int(np.searchsorted(cum, local, side="right")) - 1
            run_data_start = int(cum[run])
            within = local - run_data_start
            take = min(int(lens[run]) - within, end - pos)
            phys = self.disp + tile * ft.extent + int(offs[run]) + within
            if out and out[-1][0] + out[-1][1] == phys:
                out[-1] = (out[-1][0], out[-1][1] + take)
            else:
                out.append((phys, take))
            pos += take
        return out


class File:
    """An open MPI file on the simulated parallel file system."""

    def __init__(self, comm: Intracomm, pfile: PFSFile, amode: int,
                 fs: ParallelFileSystem) -> None:
        self.comm = comm
        self._pfile = pfile
        self.amode = amode
        self._fs = fs
        self._view = FileView()
        self._fp = 0            # individual file pointer, in etype units
        self._open = True

    # ------------------------------------------------------------------
    # lifecycle (collective)
    # ------------------------------------------------------------------
    @classmethod
    def Open(cls, comm: Intracomm, filename: str, amode: int,
             fs: ParallelFileSystem) -> "File":
        """Collectively open ``filename`` on ``fs`` (MPI_File_open).

        All ranks must pass the same name and mode; rank 0 touches the
        namespace and the PFSFile object is shared by reference.
        """
        specs = comm.allgather((filename, amode))
        if any(s != specs[0] for s in specs):
            raise MPIFileError(f"File.Open arguments differ across ranks: {specs}")
        pfile: PFSFile | None = None
        error: str | None = None
        if comm.rank == 0:
            try:
                exists = fs.exists(filename)
                if amode & MODE_EXCL and exists:
                    raise MPIFileError(f"file exists: {filename!r}")
                if exists:
                    pfile = fs.open(filename)
                elif amode & MODE_CREATE:
                    pfile = fs.create(filename)
                else:
                    raise MPIFileError(f"no such file: {filename!r}")
            except MPIFileError as exc:
                error = str(exc)
        # allgather shares references (no pickling) — PFSFile holds locks
        shared = comm.allgather((pfile, error) if comm.rank == 0 else None)
        pfile, error = shared[0]
        if error is not None:
            raise MPIFileError(error)
        assert pfile is not None
        return cls(comm, pfile, amode, fs)

    def Close(self) -> None:
        """Collective close (MPI_File_close)."""
        self._require_open()
        self.comm.barrier()
        if self.amode & MODE_DELETE_ON_CLOSE and self.comm.rank == 0:
            self._fs.delete(self._pfile.name)
        self.comm.barrier()
        self._open = False

    def _require_open(self) -> None:
        if not self._open:
            raise MPIFileError("operation on a closed file")

    def _require_readable(self) -> None:
        if not self.amode & (MODE_RDONLY | MODE_RDWR):
            raise MPIFileError("file not opened for reading")

    def _require_writable(self) -> None:
        if not self.amode & (MODE_WRONLY | MODE_RDWR):
            raise MPIFileError("file not opened for writing")

    # ------------------------------------------------------------------
    # views and pointers
    # ------------------------------------------------------------------
    def Set_view(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Datatype | None = None,
                 datarep: str = "native", info=None) -> None:
        """Set this rank's file view and reset its file pointer.

        Each rank may pass a *different* filetype — that is the whole
        point of the irregular-access method.  MPI makes this call
        collective; the substrate relaxes it to a purely local operation
        (views are per-rank state here), so a rank doing independent I/O
        can retarget its view without synchronizing.  Collective
        operations still match through the ``*_all`` exchanges.
        """
        self._require_open()
        if datarep != "native":
            raise MPIFileError(f"only 'native' data representation "
                               f"supported, got {datarep!r}")
        if filetype is not None:
            filetype._check_usable()
        self._view = FileView(disp, etype, filetype)
        self._fp = 0

    def Get_view(self) -> tuple[int, Datatype, Datatype]:
        return self._view.disp, self._view.etype, self._view.filetype

    def Seek(self, offset: int, whence: int = 0) -> None:
        """Move the individual file pointer (offset in etype units)."""
        if whence == 0:
            self._fp = offset
        elif whence == 1:
            self._fp += offset
        else:
            raise MPIFileError(f"unsupported whence {whence}")
        if self._fp < 0:
            raise MPIFileError("file pointer moved before view start")

    def Get_position(self) -> int:
        return self._fp

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    def Get_size(self) -> int:
        return self._pfile.size

    def Set_size(self, size: int) -> None:
        self._require_open()
        self.comm.barrier()
        self._pfile.set_size(size)
        self.comm.barrier()

    def Preallocate(self, size: int) -> None:
        self.Set_size(max(size, self._pfile.size))

    def Sync(self) -> None:
        self.comm.barrier()

    # ------------------------------------------------------------------
    # independent I/O
    # ------------------------------------------------------------------
    def Read_at(self, offset: int, buf, status: Status | None = None) -> int:
        """Independent read at an explicit offset (etype units)."""
        self._require_open()
        self._require_readable()
        nbytes, _arr = _buf_nbytes(buf)
        extents = self._view.extents(offset * self._view.etype.size, nbytes)
        extents = _clamp_extents(extents, self._pfile.size)
        data, _t = self._pfile.readv(extents)
        _unpack_buf(buf, data)
        if status is not None:
            status.count = len(data)
        return len(data)

    def Read(self, buf, status: Status | None = None) -> int:
        n = self.Read_at(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    def Write_at(self, offset: int, buf, status: Status | None = None) -> int:
        """Independent write at an explicit offset (etype units)."""
        self._require_open()
        self._require_writable()
        data = _pack_buf(buf)
        extents = self._view.extents(offset * self._view.etype.size, len(data))
        self._pfile.writev(extents, data)
        if status is not None:
            status.count = len(data)
        return len(data)

    def Write(self, buf, status: Status | None = None) -> int:
        n = self.Write_at(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    # ------------------------------------------------------------------
    # collective I/O (two-phase)
    # ------------------------------------------------------------------
    def Read_at_all(self, offset: int, buf,
                    status: Status | None = None) -> int:
        """Collective read at explicit offsets (MPI_File_read_at_all)."""
        self._require_open()
        self._require_readable()
        nbytes, _arr = _buf_nbytes(buf)
        extents = _clamp_extents(
            self._view.extents(offset * self._view.etype.size, nbytes),
            self._pfile.size,
        )
        crash_point("server.kill.collective.entry")
        all_extents = self.comm.allgather(extents)
        # Rank 0 performs the aggregated access; results are shared by
        # reference through the board.
        if self.comm.rank == 0:
            crash_point("server.kill.collective.read")
            per_rank, _t = self._pfile.collective_readv(all_extents)
        else:
            per_rank = None
        shared = self.comm.allgather(per_rank)
        data = shared[0][self.comm.rank]
        _unpack_buf(buf, data)
        if status is not None:
            status.count = len(data)
        return len(data)

    def Read_all(self, buf, status: Status | None = None) -> int:
        n = self.Read_at_all(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    def Write_at_all(self, offset: int, buf,
                     status: Status | None = None) -> int:
        """Collective write at explicit offsets (MPI_File_write_at_all)."""
        self._require_open()
        self._require_writable()
        data = _pack_buf(buf)
        extents = self._view.extents(offset * self._view.etype.size, len(data))
        crash_point("server.kill.collective.entry")
        gathered = self.comm.allgather((extents, data))
        if self.comm.rank == 0:
            crash_point("server.kill.collective.write")
            self._pfile.collective_writev(
                [g[0] for g in gathered], [g[1] for g in gathered]
            )
        self.comm.barrier()
        if status is not None:
            status.count = len(data)
        return len(data)

    def Write_all(self, buf, status: Status | None = None) -> int:
        n = self.Write_at_all(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n


# ---------------------------------------------------------------------------

def _buf_nbytes(buf) -> tuple[int, object]:
    """Total data bytes a buffer spec describes."""
    arr, count, dtype = _parse_bufspec(buf)
    if dtype is not None:
        return dtype.size * (count if count is not None else 1), arr
    a = np.asarray(arr)
    return a.nbytes, arr


def _clamp_extents(extents: Sequence[Extent], file_size: int
                   ) -> list[Extent]:
    """Truncate read extents at EOF (MPI short-read semantics)."""
    out: list[Extent] = []
    for off, length in extents:
        if off >= file_size:
            break
        take = min(length, file_size - off)
        out.append((off, take))
        if take < length:
            break
    return out
