"""MPI-IO: file views and independent/collective reads and writes.

This is the layer the paper's code listing exercises: open a file on the
parallel file system, ``Set_view`` with an indexed *filetype* built from
chunk addresses, then ``Read_all`` into a buffer through an indexed
*memtype* — the "irregular distributed array access" collective-I/O
method [Ching et al. 2003] cited by the paper.

A view ``(disp, etype, filetype)`` exposes the file's bytes as the data
bytes of ``filetype`` tiled from byte ``disp``; offsets and file pointers
are in ``etype`` units of that data stream.  Independent operations
(``Read_at``/``Write_at``/``Read``/``Write``) go through *data sieving*
(:mod:`repro.mpi.collective`): hole-bearing extent runs are served by one
covering access instead of many small ones.  Collective operations
(``*_all``) run the ROMIO-style *two-phase* engine — ``cb_nodes``
aggregator ranks exchange data point-to-point and issue one large
vectored request per file domain per buffer window — which is what
experiment E3 measures against the independent path.  Both paths are
steered by MPI-IO hints (``Set_info`` / ``Open(..., info=...)`` /
``DRX_CB_*`` environment variables); see DESIGN.md §5f.

``status.count`` is always the byte count of *whole etype elements*
transferred (MPI semantics: a partial trailing element at EOF is not
counted), so ``Status.Get_count(etype)`` yields the element count on
independent and collective paths alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import MPIFileError
from ..core.faultsites import crash_point
from ..pfs.filesystem import ParallelFileSystem
from ..pfs.pfile import PFSFile
from ..pfs.striping import Extent
from . import collective
from .collective import CollectiveHints
from .comm import Intracomm, _pack_buf, _parse_bufspec, _unpack_buf
from .datatypes import BYTE, Datatype
from .status import Status

__all__ = ["File", "FileView",
           "MODE_RDONLY", "MODE_WRONLY", "MODE_RDWR", "MODE_CREATE",
           "MODE_EXCL", "MODE_APPEND", "MODE_DELETE_ON_CLOSE"]

MODE_RDONLY = 0x01
MODE_WRONLY = 0x02
MODE_RDWR = 0x04
MODE_CREATE = 0x08
MODE_EXCL = 0x10
MODE_APPEND = 0x20
MODE_DELETE_ON_CLOSE = 0x40


class FileView:
    """One rank's view of a file: ``(disp, etype, filetype)``."""

    def __init__(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Datatype | None = None) -> None:
        if disp < 0:
            raise MPIFileError(f"negative view displacement {disp}")
        filetype = filetype if filetype is not None else etype
        if etype.size == 0:
            raise MPIFileError("etype must have positive size")
        if filetype.size % etype.size:
            raise MPIFileError(
                f"filetype size {filetype.size} is not a multiple of etype "
                f"size {etype.size}"
            )
        if filetype.lb < 0:
            raise MPIFileError("filetype displacements must be non-negative")
        if filetype.num_runs > 1 and bool(
                np.any(filetype.offsets[1:] < filetype.offsets[:-1])):
            # MPI-2 requires a filetype's displacements to be monotonically
            # nondecreasing — this is why the paper's listing sorts the
            # chunk addresses into the filetype and permutes the *memory*
            # type instead (the inMemoryMap).
            raise MPIFileError(
                "filetype typemap must have monotonically nondecreasing "
                "offsets"
            )
        self.disp = disp
        self.etype = etype
        self.filetype = filetype

    def extents(self, data_offset: int, nbytes: int) -> list[Extent]:
        """Absolute file byte extents of ``nbytes`` of view data starting
        at view-data byte ``data_offset``, in data order."""
        if nbytes < 0 or data_offset < 0:
            raise MPIFileError(
                f"bad view range (offset {data_offset}, {nbytes} bytes)"
            )
        if nbytes == 0:
            return []
        ft = self.filetype
        tile_data = ft.size
        if tile_data == 0:
            raise MPIFileError("filetype holds no data")
        if ft.is_contiguous and ft.lb == 0:
            return [(self.disp + data_offset, nbytes)]
        out: list[Extent] = []
        cum = ft.cumlen                 # (runs+1,) data offset of each run
        offs = ft.offsets
        lens = ft.lengths
        pos = data_offset
        end = data_offset + nbytes
        while pos < end:
            tile, local = divmod(pos, tile_data)
            run = int(np.searchsorted(cum, local, side="right")) - 1
            run_data_start = int(cum[run])
            within = local - run_data_start
            take = min(int(lens[run]) - within, end - pos)
            phys = self.disp + tile * ft.extent + int(offs[run]) + within
            if out and out[-1][0] + out[-1][1] == phys:
                out[-1] = (out[-1][0], out[-1][1] + take)
            else:
                out.append((phys, take))
            pos += take
        return out


class File:
    """An open MPI file on the simulated parallel file system."""

    def __init__(self, comm: Intracomm, pfile: PFSFile, amode: int,
                 fs: ParallelFileSystem, info: dict | None = None) -> None:
        self.comm = comm
        self._pfile = pfile
        self.amode = amode
        self._fs = fs
        self._view = FileView()
        self._fp = 0            # individual file pointer, in etype units
        self._open = True
        self._info: dict = dict(info or {})
        # fail fast on malformed hints (and on an unknown hint name)
        self._hints()

    # ------------------------------------------------------------------
    # lifecycle (collective)
    # ------------------------------------------------------------------
    @classmethod
    def Open(cls, comm: Intracomm, filename: str, amode: int,
             fs: ParallelFileSystem, info: dict | None = None) -> "File":
        """Collectively open ``filename`` on ``fs`` (MPI_File_open).

        All ranks must pass the same name, mode, and hints; rank 0
        touches the namespace and the PFSFile object is shared by
        reference.
        """
        info_spec = tuple(sorted((info or {}).items()))
        specs = comm.allgather((filename, amode, info_spec))
        if any(s != specs[0] for s in specs):
            raise MPIFileError(f"File.Open arguments differ across ranks: {specs}")
        pfile: PFSFile | None = None
        error: str | None = None
        if comm.rank == 0:
            try:
                exists = fs.exists(filename)
                if amode & MODE_EXCL and exists:
                    raise MPIFileError(f"file exists: {filename!r}")
                if exists:
                    pfile = fs.open(filename)
                elif amode & MODE_CREATE:
                    pfile = fs.create(filename)
                else:
                    raise MPIFileError(f"no such file: {filename!r}")
            except MPIFileError as exc:
                error = str(exc)
        # allgather shares references (no pickling) — PFSFile holds locks
        shared = comm.allgather((pfile, error) if comm.rank == 0 else None)
        pfile, error = shared[0]
        if error is not None:
            raise MPIFileError(error)
        assert pfile is not None
        return cls(comm, pfile, amode, fs, info=info)

    def Close(self) -> None:
        """Collective close (MPI_File_close)."""
        self._require_open()
        self.comm.barrier()
        if self.amode & MODE_DELETE_ON_CLOSE and self.comm.rank == 0:
            self._fs.delete(self._pfile.name)
        self.comm.barrier()
        self._open = False

    def _require_open(self) -> None:
        if not self._open:
            raise MPIFileError("operation on a closed file")

    def _require_readable(self) -> None:
        if not self.amode & (MODE_RDONLY | MODE_RDWR):
            raise MPIFileError("file not opened for reading")

    def _require_writable(self) -> None:
        if not self.amode & (MODE_WRONLY | MODE_RDWR):
            raise MPIFileError("file not opened for writing")

    # ------------------------------------------------------------------
    # hints
    # ------------------------------------------------------------------
    def Set_info(self, info: dict | None) -> None:
        """Merge MPI-IO hints into the file (MPI_File_set_info).

        Like MPI, hints steer performance only — results are identical
        under any setting.  All ranks must set the same values (checked
        at the next collective operation).  Known hints and their
        ``DRX_*`` environment fallbacks are listed in
        :class:`~repro.mpi.collective.CollectiveHints`.
        """
        self._require_open()
        if info:
            merged = dict(self._info)
            merged.update(info)
            CollectiveHints.resolve(merged)     # validate before adopting
            self._info = merged

    def Get_info(self) -> dict:
        """The *effective* hints: env fallbacks + per-file overrides."""
        return self._hints().as_dict()

    def _hints(self) -> CollectiveHints:
        # resolved per operation so env changes (and monkeypatched tests)
        # take effect without reopening the file
        return CollectiveHints.resolve(self._info)

    # ------------------------------------------------------------------
    # views and pointers
    # ------------------------------------------------------------------
    def Set_view(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Datatype | None = None,
                 datarep: str = "native", info=None) -> None:
        """Set this rank's file view and reset its file pointer.

        Each rank may pass a *different* filetype — that is the whole
        point of the irregular-access method.  MPI makes this call
        collective; the substrate relaxes it to a purely local operation
        (views are per-rank state here), so a rank doing independent I/O
        can retarget its view without synchronizing.  Collective
        operations still match through the ``*_all`` exchanges.
        """
        self._require_open()
        if datarep != "native":
            raise MPIFileError(f"only 'native' data representation "
                               f"supported, got {datarep!r}")
        if filetype is not None:
            filetype._check_usable()
        self._view = FileView(disp, etype, filetype)
        self._fp = 0
        self.Set_info(info)

    def Get_view(self) -> tuple[int, Datatype, Datatype]:
        return self._view.disp, self._view.etype, self._view.filetype

    def Seek(self, offset: int, whence: int = 0) -> None:
        """Move the individual file pointer (offset in etype units)."""
        if whence == 0:
            self._fp = offset
        elif whence == 1:
            self._fp += offset
        else:
            raise MPIFileError(f"unsupported whence {whence}")
        if self._fp < 0:
            raise MPIFileError("file pointer moved before view start")

    def Get_position(self) -> int:
        return self._fp

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    def Get_size(self) -> int:
        return self._pfile.size

    def Set_size(self, size: int) -> None:
        self._require_open()
        self.comm.barrier()
        self._pfile.set_size(size)
        self.comm.barrier()

    def Preallocate(self, size: int) -> None:
        self.Set_size(max(size, self._pfile.size))

    def Sync(self) -> None:
        self.comm.barrier()

    # ------------------------------------------------------------------
    # independent I/O (data-sieved)
    # ------------------------------------------------------------------
    def Read_at(self, offset: int, buf, status: Status | None = None) -> int:
        """Independent read at an explicit offset (etype units)."""
        self._require_open()
        self._require_readable()
        nbytes, _arr = _buf_nbytes(buf)
        extents = self._view.extents(offset * self._view.etype.size, nbytes)
        extents = _clamp_extents(extents, self._pfile.size)
        data, _t = collective.sieved_readv(self._pfile, extents,
                                           self._hints())
        _unpack_buf(buf, data)
        return self._finish(status, len(data))

    def Read(self, buf, status: Status | None = None) -> int:
        n = self.Read_at(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    def Write_at(self, offset: int, buf, status: Status | None = None) -> int:
        """Independent write at an explicit offset (etype units)."""
        self._require_open()
        self._require_writable()
        data = _pack_buf(buf)
        extents = self._view.extents(offset * self._view.etype.size, len(data))
        _check_write_extents(extents, data)
        collective.sieved_writev(self._pfile, extents, data, self._hints())
        return self._finish(status, len(data))

    def Write(self, buf, status: Status | None = None) -> int:
        n = self.Write_at(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    # ------------------------------------------------------------------
    # collective I/O (two-phase)
    # ------------------------------------------------------------------
    def Read_at_all(self, offset: int, buf,
                    status: Status | None = None) -> int:
        """Collective read at explicit offsets (MPI_File_read_at_all)."""
        self._require_open()
        self._require_readable()
        nbytes, _arr = _buf_nbytes(buf)
        extents = _clamp_extents(
            self._view.extents(offset * self._view.etype.size, nbytes),
            self._pfile.size,
        )
        crash_point("server.kill.collective.entry")
        hints = self._hints()
        if hints.romio_cb_read == "legacy":
            data = self._legacy_read_all(extents)
        else:
            data = collective.two_phase_read(self.comm, self._pfile,
                                             extents, hints)
        _unpack_buf(buf, data)
        return self._finish(status, len(data))

    def _legacy_read_all(self, extents: list[Extent]) -> bytes:
        """The pre-engine path: rank 0 funnels the aggregated access and
        every rank's result is *broadcast to every rank* through the
        bulletin board — O(P**2) exchange bytes, kept (with honest
        accounting) as the baseline the two-phase benchmark beats."""
        all_extents = self.comm.allgather(extents)
        if self.comm.rank == 0:
            crash_point("server.kill.collective.read")
            per_rank, io_t = self._pfile.collective_readv(all_extents)
            collective.account(
                self._pfile, collectives=1, io_time=io_t,
                requests_before=sum(len(e) for e in all_extents),
                exchange_bytes=self.comm.size * sum(
                    len(b) for b in per_rank))
        else:
            per_rank = None
        shared = self.comm.allgather(per_rank)
        return shared[0][self.comm.rank]

    def Read_all(self, buf, status: Status | None = None) -> int:
        n = self.Read_at_all(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    def Write_at_all(self, offset: int, buf,
                     status: Status | None = None) -> int:
        """Collective write at explicit offsets (MPI_File_write_at_all).

        Unlike the legacy path, extents overlapping *across ranks* are
        legal and resolve in rank order (higher rank wins), matching the
        serial reference in which ranks write one after the other.
        """
        self._require_open()
        self._require_writable()
        data = _pack_buf(buf)
        extents = self._view.extents(offset * self._view.etype.size, len(data))
        _check_write_extents(extents, data)
        crash_point("server.kill.collective.entry")
        hints = self._hints()
        if hints.romio_cb_write == "legacy":
            self._legacy_write_all(extents, data)
        else:
            collective.two_phase_write(self.comm, self._pfile, extents,
                                       data, hints)
        return self._finish(status, len(data))

    def _legacy_write_all(self, extents: list[Extent],
                          data: bytes) -> None:
        """Pre-engine collective write: rank 0 funnels everything (and
        the allgather ships each rank's payload to *all* ranks —
        O(P**2) exchange bytes).  Overlapping writers are rejected."""
        gathered = self.comm.allgather((extents, data))
        if self.comm.rank == 0:
            crash_point("server.kill.collective.write")
            io_t = self._pfile.collective_writev(
                [g[0] for g in gathered], [g[1] for g in gathered])
            collective.account(
                self._pfile, collectives=1, io_time=io_t,
                requests_before=sum(len(g[0]) for g in gathered),
                exchange_bytes=self.comm.size * sum(
                    len(g[1]) for g in gathered))
        self.comm.barrier()

    def Write_all(self, buf, status: Status | None = None) -> int:
        n = self.Write_at_all(self._fp, buf, status)
        self._fp += _buf_nbytes(buf)[0] // self._view.etype.size
        return n

    # ------------------------------------------------------------------
    def _finish(self, status: Status | None, nbytes: int) -> int:
        """Set ``status.count`` to the bytes of *whole* etype elements
        transferred (MPI semantics: ``Get_count(etype)`` = elements, a
        partial trailing element at EOF is not counted) and return the
        raw byte count."""
        if status is not None:
            esize = self._view.etype.size
            status.count = (nbytes // esize) * esize
        return nbytes


# ---------------------------------------------------------------------------

def _buf_nbytes(buf) -> tuple[int, object]:
    """Total data bytes a buffer spec describes."""
    arr, count, dtype = _parse_bufspec(buf)
    if dtype is not None:
        return dtype.size * (count if count is not None else 1), arr
    a = np.asarray(arr)
    return a.nbytes, arr


def _clamp_extents(extents: Sequence[Extent], file_size: int
                   ) -> list[Extent]:
    """Truncate read extents at EOF (MPI short-read semantics)."""
    out: list[Extent] = []
    for off, length in extents:
        if off >= file_size:
            break
        take = min(length, file_size - off)
        out.append((off, take))
        if take < length:
            break
    return out


def _check_write_extents(extents: Sequence[Extent], data: bytes) -> None:
    """Validate a write's extents against its payload before anything
    touches the PFS (the write-side counterpart of ``_clamp_extents``:
    writes extend the file instead of clamping, so a view/buffer
    mismatch must fail loudly up front, not as a low-level PFSError
    halfway through a collective exchange)."""
    total = sum(n for _off, n in extents)
    if total != len(data):
        raise MPIFileError(
            f"write view covers {total} bytes but the buffer packs "
            f"{len(data)} bytes")
    for off, length in extents:
        if off < 0 or length < 0:
            raise MPIFileError(
                f"write extent ({off}, {length}) is negative")
