"""MPI derived datatypes, reduced to their essence: byte typemaps.

An MPI datatype is a recipe describing which bytes of a buffer (or of a
file, when used as a *filetype* in ``MPI_File_set_view``) carry data and
in what order.  We represent a committed datatype by

* a **typemap**: sorted, non-overlapping byte runs ``(offset, length)``
  relative to the datatype's origin, stored as NumPy arrays;
* a **size**: the number of data bytes (sum of run lengths);
* an **extent** and **lower bound**: the span the datatype occupies, used
  to tile it (``Create_contiguous``, file views, counts > 1).

Every standard constructor the paper's code listing needs is provided —
``Create_contiguous``, ``Create_vector``, ``Create_indexed`` (the listing
builds both its filetype and its memtype with ``MPI_Type_indexed``),
``Create_hindexed``, ``Create_indexed_block``, ``Create_subarray``,
``Create_struct`` and ``Create_resized`` — with MPI's extent semantics
(e.g. a subarray's extent is the full enclosing array, so tiling works).

``pack``/``unpack`` implement the gather/scatter between a typed buffer
and a contiguous data stream; they are what ``MPI_File_read_all`` uses to
honour the in-memory datatype ("inMemoryMap") of the paper's listing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from math import prod
from typing import Sequence

import numpy as np

from ..core.errors import MPIDatatypeError

__all__ = ["Datatype", "DatatypeStats", "DATATYPE_STATS", "BYTE", "INT",
           "INT32", "INT64", "FLOAT", "DOUBLE", "COMPLEX",
           "from_numpy_dtype"]


@dataclass
class DatatypeStats:
    """Process-wide cache counters for derived-datatype hot paths.

    Every repeated zone/box transfer re-tiles the same datatype with the
    same count; the memoized run tables and scatter indices turn that
    re-derivation into a dictionary hit.  The counters make the hit rate
    observable (tests pin it, the tuning advisor reads it).
    """

    tiled_hits: int = 0       #: memoized ``_tiled_runs`` reuses
    tiled_misses: int = 0     #: ``_tiled_runs`` built fresh
    index_hits: int = 0       #: memoized scatter/gather index reuses
    index_misses: int = 0     #: scatter/gather indices built fresh
    chunk_dt_hits: int = 0    #: ``chunk_datatype()`` cache reuses
    chunk_dt_misses: int = 0  #: ``chunk_datatype()`` built fresh
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def note(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> "DatatypeStats":
        return replace(self)


#: Process-wide datatype cache counters.
DATATYPE_STATS = DatatypeStats()

#: Memoized entries kept per datatype instance (counts in flight vary
#: little; the bound only guards pathological callers).
_TILE_CACHE_MAX = 8

#: Runs at or below this mean length use the expanded per-byte
#: scatter/gather index (the interpreter-bound regime); longer runs are
#: plain ``memmove``-sized slice copies where a Python loop is already
#: memory-bound.
_VECTOR_RUN_CUTOFF = 512


def _coalesce_runs(offsets: np.ndarray, lengths: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Merge consecutive adjacent byte runs, preserving data order.

    MPI typemaps are ordered: the i-th data byte of the type corresponds
    to walking the runs in map order, *not* in offset order (e.g.
    ``Type_indexed`` with decreasing displacements scatters consecutive
    data backwards through the buffer).  So we must never sort — only
    merge a run that starts exactly where its predecessor ends.
    Overlapping runs are rejected (illegal as receive/read targets,
    and unused by this library as send types).
    """
    keep = lengths > 0
    if not np.all(keep):
        offsets = offsets[keep]
        lengths = lengths[keep]
    if offsets.size == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    ends = offsets + lengths
    new_group = np.empty(offsets.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = offsets[1:] != ends[:-1]
    group = np.cumsum(new_group) - 1
    n = int(group[-1]) + 1
    out_off = offsets[new_group]
    out_len = np.zeros(n, dtype=np.int64)
    np.add.at(out_len, group, lengths)
    # overlap check on a sorted copy (order itself stays untouched)
    order = np.argsort(out_off, kind="stable")
    so = out_off[order]
    se = so + out_len[order]
    if np.any(so[1:] < se[:-1]):
        raise MPIDatatypeError("datatype typemap has overlapping runs")
    return out_off, out_len


class Datatype:
    """An (optionally derived) MPI datatype.  See module docstring."""

    __slots__ = ("offsets", "lengths", "lb", "extent", "name",
                 "_committed", "_freed", "_cumlen", "_tiled_cache",
                 "_index_cache")

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray,
                 lb: int, extent: int, name: str = "derived",
                 committed: bool = False) -> None:
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if self.offsets.shape != self.lengths.shape:
            raise MPIDatatypeError("offsets/lengths shape mismatch")
        if np.any(self.lengths < 0):
            raise MPIDatatypeError("negative run length")
        self.lb = int(lb)
        self.extent = int(extent)
        self.name = name
        self._committed = committed
        self._freed = False
        self._cumlen: np.ndarray | None = None
        #: count -> (offsets, lengths) of that many tiled instances
        self._tiled_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: count -> per-byte scatter/gather index (small-run regime)
        self._index_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of data bytes in one instance of the type."""
        return int(self.lengths.sum())

    @property
    def ub(self) -> int:
        return self.lb + self.extent

    @property
    def num_runs(self) -> int:
        return int(self.offsets.size)

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a single run starting at offset 0."""
        return (self.num_runs == 1 and int(self.offsets[0]) == 0
                and int(self.lengths[0]) == self.size == self.extent)

    @property
    def cumlen(self) -> np.ndarray:
        """Exclusive prefix sums of run lengths (data offset of each run)."""
        if self._cumlen is None:
            c = np.zeros(self.num_runs + 1, dtype=np.int64)
            np.cumsum(self.lengths, out=c[1:])
            self._cumlen = c
        return self._cumlen

    def Commit(self) -> "Datatype":
        """Mark the type usable in communication and I/O (MPI_Type_commit)."""
        self._check_alive()
        self._committed = True
        return self

    def Free(self) -> None:
        """Invalidate the type (MPI_Type_free)."""
        self._freed = True

    def _check_alive(self) -> None:
        if self._freed:
            raise MPIDatatypeError(f"datatype {self.name!r} has been freed")

    def _check_usable(self) -> None:
        self._check_alive()
        if not self._committed:
            raise MPIDatatypeError(
                f"datatype {self.name!r} used before Commit()"
            )

    def Get_size(self) -> int:
        return self.size

    def Get_extent(self) -> tuple[int, int]:
        return self.lb, self.extent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Datatype({self.name!r}, size={self.size}, "
                f"extent={self.extent}, runs={self.num_runs})")

    # ------------------------------------------------------------------
    # derived-type constructors
    # ------------------------------------------------------------------
    def Create_contiguous(self, count: int) -> "Datatype":
        """``count`` copies laid end to end (MPI_Type_contiguous)."""
        self._check_alive()
        if count < 0:
            raise MPIDatatypeError(f"negative count {count}")
        reps = np.arange(count, dtype=np.int64) * self.extent
        offsets = (self.offsets[None, :] + reps[:, None]).ravel()
        lengths = np.broadcast_to(self.lengths, (count, self.num_runs)).ravel()
        offsets, lengths = _coalesce_runs(offsets.copy(), lengths.copy())
        return Datatype(offsets, lengths, lb=self.lb,
                        extent=self.extent * count,
                        name=f"contig({count})x{self.name}")

    def Create_vector(self, count: int, blocklength: int,
                      stride: int) -> "Datatype":
        """``count`` blocks of ``blocklength`` items, ``stride`` items apart."""
        return self._strided(count, blocklength, stride * self.extent,
                             f"vector({count},{blocklength},{stride})")

    def Create_hvector(self, count: int, blocklength: int,
                       stride_bytes: int) -> "Datatype":
        """Like :meth:`Create_vector` but the stride is in bytes."""
        return self._strided(count, blocklength, stride_bytes,
                             f"hvector({count},{blocklength},{stride_bytes}B)")

    def _strided(self, count: int, blocklength: int, stride_bytes: int,
                 name: str) -> "Datatype":
        self._check_alive()
        if count < 0 or blocklength < 0:
            raise MPIDatatypeError("negative count/blocklength")
        block = self.Create_contiguous(blocklength)
        starts = np.arange(count, dtype=np.int64) * stride_bytes
        offsets = (block.offsets[None, :] + starts[:, None]).ravel()
        lengths = np.broadcast_to(
            block.lengths, (count, block.num_runs)).ravel()
        offsets, lengths = _coalesce_runs(offsets.copy(), lengths.copy())
        if count == 0:
            extent = 0
            lb = 0
        else:
            lb = min(int(starts[0]) + block.lb, int(starts[-1]) + block.lb)
            ub = max(int(s) + block.ub for s in (starts[0], starts[-1]))
            extent = ub - lb
        return Datatype(offsets, lengths, lb=lb, extent=extent,
                        name=f"{name}x{self.name}")

    def Create_indexed(self, blocklengths: Sequence[int],
                       displacements: Sequence[int]) -> "Datatype":
        """Blocks at item displacements (MPI_Type_indexed).

        This is the constructor the paper's listing uses twice: once with
        the sorted chunk linear addresses (the filetype) and once with the
        in-memory destination positions (the memtype).
        """
        disp_bytes = [d * self.extent for d in displacements]
        return self.Create_hindexed(blocklengths, disp_bytes)

    def Create_indexed_block(self, blocklength: int,
                             displacements: Sequence[int]) -> "Datatype":
        """Equal-length blocks at item displacements."""
        return self.Create_indexed([blocklength] * len(displacements),
                                   displacements)

    def Create_hindexed(self, blocklengths: Sequence[int],
                        displacements: Sequence[int]) -> "Datatype":
        """Blocks at byte displacements (MPI_Type_create_hindexed)."""
        self._check_alive()
        if len(blocklengths) != len(displacements):
            raise MPIDatatypeError(
                f"{len(blocklengths)} blocklengths vs "
                f"{len(displacements)} displacements"
            )
        all_off: list[np.ndarray] = []
        all_len: list[np.ndarray] = []
        lb = 0
        ub = 0
        for bl, disp in zip(blocklengths, displacements):
            if bl < 0:
                raise MPIDatatypeError(f"negative blocklength {bl}")
            block = self.Create_contiguous(bl)
            all_off.append(block.offsets + disp)
            all_len.append(block.lengths)
            lb = min(lb, disp + block.lb)
            ub = max(ub, disp + block.ub)
        offsets = np.concatenate(all_off) if all_off else np.empty(0, np.int64)
        lengths = np.concatenate(all_len) if all_len else np.empty(0, np.int64)
        offsets, lengths = _coalesce_runs(offsets, lengths)
        return Datatype(offsets, lengths, lb=lb, extent=ub - lb,
                        name=f"indexed({len(blocklengths)})x{self.name}")

    def Create_subarray(self, sizes: Sequence[int], subsizes: Sequence[int],
                        starts: Sequence[int], order: str = "C") -> "Datatype":
        """A k-dimensional sub-block of a k-dimensional array.

        The extent is the *full* array (MPI semantics), so consecutive
        counts tile whole arrays.  ``order`` is ``"C"`` (row-major) or
        ``"F"`` (column-major) and describes the *enclosing* array layout.
        """
        self._check_alive()
        k = len(sizes)
        if len(subsizes) != k or len(starts) != k:
            raise MPIDatatypeError("sizes/subsizes/starts rank mismatch")
        for n, s, st in zip(sizes, subsizes, starts):
            if n < 1 or s < 1 or st < 0 or st + s > n:
                raise MPIDatatypeError(
                    f"invalid subarray: sizes={tuple(sizes)} "
                    f"subsizes={tuple(subsizes)} starts={tuple(starts)}"
                )
        if order not in ("C", "F"):
            raise MPIDatatypeError(f"order must be 'C' or 'F', got {order!r}")
        if order == "F":
            sizes = list(reversed(sizes))
            subsizes = list(reversed(subsizes))
            starts = list(reversed(starts))
        # Row-major element offsets of the sub-block.
        idx = np.indices(subsizes, dtype=np.int64)
        idx = idx.reshape(k, -1)
        coeff = np.ones(k, dtype=np.int64)
        for j in range(k - 2, -1, -1):
            coeff[j] = coeff[j + 1] * sizes[j + 1]
        elem = ((idx + np.asarray(starts, dtype=np.int64)[:, None])
                * coeff[:, None]).sum(axis=0)
        offsets = np.sort(elem) * self.extent
        lengths = np.full(offsets.size, self.extent, dtype=np.int64)
        # add per-element inner runs if the base type is not contiguous
        if not self.is_contiguous:
            offsets = (offsets[:, None] + self.offsets[None, :]).ravel()
            lengths = np.broadcast_to(
                self.lengths, (elem.size, self.num_runs)).ravel().copy()
        offsets, lengths = _coalesce_runs(offsets, lengths)
        full = prod(sizes) * self.extent
        return Datatype(offsets, lengths, lb=0, extent=full,
                        name=f"subarray{tuple(subsizes)}x{self.name}")

    def Create_resized(self, lb: int, extent: int) -> "Datatype":
        """Override lower bound and extent (MPI_Type_create_resized)."""
        self._check_alive()
        return Datatype(self.offsets.copy(), self.lengths.copy(),
                        lb=lb, extent=extent, name=f"resized:{self.name}")

    @staticmethod
    def Create_struct(blocklengths: Sequence[int],
                      displacements: Sequence[int],
                      types: Sequence["Datatype"]) -> "Datatype":
        """Heterogeneous blocks (MPI_Type_create_struct)."""
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise MPIDatatypeError("struct argument length mismatch")
        all_off: list[np.ndarray] = []
        all_len: list[np.ndarray] = []
        lb = 0
        ub = 0
        for bl, disp, t in zip(blocklengths, displacements, types):
            t._check_alive()
            block = t.Create_contiguous(bl)
            all_off.append(block.offsets + disp)
            all_len.append(block.lengths)
            lb = min(lb, disp + block.lb)
            ub = max(ub, disp + block.ub)
        offsets = np.concatenate(all_off) if all_off else np.empty(0, np.int64)
        lengths = np.concatenate(all_len) if all_len else np.empty(0, np.int64)
        offsets, lengths = _coalesce_runs(offsets, lengths)
        return Datatype(offsets, lengths, lb=lb, extent=ub - lb,
                        name=f"struct({len(types)})")

    # ------------------------------------------------------------------
    # pack / unpack (typed buffer <-> contiguous data stream)
    # ------------------------------------------------------------------
    def _tiled_runs(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Runs of ``count`` tiled instances (byte offsets, lengths).

        Memoized per count: every transfer of the same (datatype, count)
        pair — the steady state of iterative zone workloads — reuses one
        run table instead of re-deriving it.
        """
        hit = self._tiled_cache.get(count)
        if hit is not None:
            DATATYPE_STATS.note("tiled_hits")
            return hit
        DATATYPE_STATS.note("tiled_misses")
        reps = np.arange(count, dtype=np.int64) * self.extent
        offs = (self.offsets[None, :] + reps[:, None]).ravel()
        lens = np.broadcast_to(self.lengths,
                               (count, self.num_runs)).ravel()
        if len(self._tiled_cache) >= _TILE_CACHE_MAX:
            self._tiled_cache.pop(next(iter(self._tiled_cache)))
        self._tiled_cache[count] = (offs, lens)
        return offs, lens

    def _scatter_index(self, count: int, offs: np.ndarray,
                       lens: np.ndarray, total: int) -> np.ndarray:
        """Per-byte buffer offsets of the typemap's data stream.

        ``idx[j]`` is the buffer byte holding data byte ``j``, so a pack
        is the single fancy gather ``buf[idx]`` and an unpack the single
        fancy scatter ``buf[idx] = data``.  Memoized per count (the
        index depends only on the immutable typemap).
        """
        hit = self._index_cache.get(count)
        if hit is not None:
            DATATYPE_STATS.note("index_hits")
            return hit
        DATATYPE_STATS.note("index_misses")
        starts = np.zeros(offs.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        idx = np.arange(total, dtype=np.int64)
        idx += np.repeat(offs - starts, lens)
        if len(self._index_cache) >= _TILE_CACHE_MAX:
            self._index_cache.pop(next(iter(self._index_cache)))
        self._index_cache[count] = idx
        return idx

    def _check_runs_fit(self, offs: np.ndarray, lens: np.ndarray,
                        nbuf: int, op: str) -> None:
        ends = offs + lens
        bad = np.flatnonzero(ends > nbuf)
        if bad.size:
            o = int(offs[bad[0]])
            e = int(ends[bad[0]])
            raise MPIDatatypeError(
                f"{op}: run [{o},{e}) beyond buffer of {nbuf} bytes"
            )

    def pack(self, buffer: np.ndarray | bytes | bytearray | memoryview,
             count: int = 1) -> bytes:
        """Gather the data bytes of ``count`` instances from ``buffer``.

        One C-level operation end to end: contiguous types slice the
        buffer directly; fragmented typemaps gather every byte with one
        memoized fancy index (small runs) or one slice copy per run
        (long runs, where ``memmove`` already dominates).  No
        intermediate ``bytes`` are materialized.
        """
        self._check_usable()
        mv = _as_bytes_view(buffer)
        if self.is_contiguous:
            end = count * self.size
            if end > len(mv):
                raise MPIDatatypeError(
                    f"pack: run [0,{end}) beyond buffer of {len(mv)} bytes"
                )
            return mv[:end].tobytes()
        offs, lens = self._tiled_runs(count)
        if offs.size == 0:
            return b""
        self._check_runs_fit(offs, lens, len(mv), "pack")
        total = int(lens.sum())
        src = np.frombuffer(mv, dtype=np.uint8)
        if total <= offs.size * _VECTOR_RUN_CUTOFF:
            idx = self._scatter_index(count, offs, lens, total)
            return src[idx].tobytes()
        out = np.empty(total, dtype=np.uint8)
        pos = 0
        for o, n in zip(offs.tolist(), lens.tolist()):
            out[pos:pos + n] = src[o:o + n]
            pos += n
        return out.tobytes()

    def unpack(self, buffer: np.ndarray | bytearray | memoryview,
               data: bytes, count: int = 1) -> int:
        """Scatter a contiguous data stream into ``buffer`` per typemap.

        Returns the number of bytes consumed.  ``data`` may be shorter
        than ``count * size`` (a short read); scattering stops when the
        stream is exhausted.  Like :meth:`pack` this is one fancy
        scatter (or one slice copy per long run) with no intermediate
        copies of ``data``.
        """
        self._check_usable()
        mv = _as_bytes_view(buffer, writable=True)
        if isinstance(data, np.ndarray):
            src = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        else:
            src = np.frombuffer(data, dtype=np.uint8)
        if self.is_contiguous:
            take = min(count * self.size, len(src))
            if take > len(mv):
                raise MPIDatatypeError(
                    f"unpack: run [0,{take}) beyond buffer of "
                    f"{len(mv)} bytes"
                )
            np.frombuffer(mv, dtype=np.uint8)[:take] = src[:take]
            return take
        offs, lens = self._tiled_runs(count)
        if offs.size == 0 or len(src) == 0:
            return 0
        total = int(lens.sum())
        take = min(total, len(src))
        # bound-check only the runs the stream actually reaches,
        # truncating the last one exactly as the historical loop did
        cum = np.zeros(offs.size + 1, dtype=np.int64)
        np.cumsum(lens, out=cum[1:])
        touched = int(np.searchsorted(cum[1:], take, side="left")) + 1
        t_offs = offs[:touched].copy()
        t_lens = lens[:touched].copy()
        t_lens[-1] = take - int(cum[touched - 1])
        self._check_runs_fit(t_offs, t_lens, len(mv), "unpack")
        dst = np.frombuffer(mv, dtype=np.uint8)
        if take <= touched * _VECTOR_RUN_CUTOFF:
            idx = self._scatter_index(count, offs, lens, total)
            dst[idx[:take]] = src[:take]
            return take
        pos = 0
        for o, n in zip(t_offs.tolist(), t_lens.tolist()):
            dst[o:o + n] = src[pos:pos + n]
            pos += n
        return take


def _as_bytes_view(buffer, writable: bool = False) -> memoryview:
    """A flat byte view of a NumPy array / bytes-like object."""
    if isinstance(buffer, np.ndarray):
        if buffer.size == 0:
            # memoryview cannot cast shapes containing zero; an empty
            # buffer is a legal (if trivial) message/IO target
            mv = memoryview(bytearray())
        elif buffer.flags["C_CONTIGUOUS"]:
            mv = memoryview(buffer).cast("B")
        elif buffer.flags["F_CONTIGUOUS"]:
            # same backing memory, viewed through its C-contiguous transpose
            mv = memoryview(buffer.T).cast("B")
        else:
            raise MPIDatatypeError("buffer must be contiguous")
    else:
        mv = memoryview(buffer).cast("B")
    if writable and mv.readonly:
        raise MPIDatatypeError("buffer is read-only")
    return mv


def _basic(nbytes: int, name: str) -> Datatype:
    return Datatype(np.array([0], dtype=np.int64),
                    np.array([nbytes], dtype=np.int64),
                    lb=0, extent=nbytes, name=name, committed=True)


#: Predefined basic datatypes (committed, like MPI's named types).
BYTE = _basic(1, "MPI_BYTE")
INT32 = _basic(4, "MPI_INT32_T")
INT = INT32
INT64 = _basic(8, "MPI_INT64_T")
FLOAT = _basic(4, "MPI_FLOAT")
DOUBLE = _basic(8, "MPI_DOUBLE")
COMPLEX = _basic(16, "MPI_C_DOUBLE_COMPLEX")

_NUMPY_MAP = {
    np.dtype(np.uint8): BYTE,
    np.dtype(np.int32): INT32,
    np.dtype(np.int64): INT64,
    np.dtype(np.float32): FLOAT,
    np.dtype(np.float64): DOUBLE,
    np.dtype(np.complex128): COMPLEX,
}


def from_numpy_dtype(dtype: np.dtype | type) -> Datatype:
    """The named basic datatype matching a NumPy dtype."""
    dt = np.dtype(dtype)
    try:
        return _NUMPY_MAP[dt]
    except KeyError:
        raise MPIDatatypeError(f"no basic MPI datatype for {dt}") from None
