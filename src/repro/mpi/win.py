"""One-sided communication (RMA): windows, epochs, Put/Get/Accumulate.

The paper's remote-element path ("an element can be accessed either
directly from the file or via a remote memory access of participating
and cooperating processes") uses MPI-2 RMA: each process exposes its
zone buffer in a window; any process computes the owner of an element
from the replicated meta-data and issues ``Get``/``Put``/``Accumulate``
against that rank.

Thread ranks share an address space, so the substrate's windows hold
direct references to each rank's NumPy buffer; what we faithfully keep
is the *access discipline* — operations are only legal inside an epoch
(``Fence``/``Fence`` or ``Lock``/``Unlock``), exclusive locks serialize
conflicting accesses, and ``Accumulate`` is atomic per element — the
semantics the Global-Array-style layer (:mod:`repro.drxmp.ga`) builds on.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.errors import MPIWinError
from .comm import Intracomm
from .datatypes import Datatype, from_numpy_dtype

__all__ = ["Win", "LOCK_EXCLUSIVE", "LOCK_SHARED"]

LOCK_EXCLUSIVE = 1
LOCK_SHARED = 2


class _WinShared:
    """Window state shared by all ranks: buffers, locks, disp units."""

    def __init__(self, size: int) -> None:
        self.buffers: list[np.ndarray | None] = [None] * size
        self.disp_units: list[int] = [1] * size
        self.locks = [threading.RLock() for _ in range(size)]


class Win:
    """An RMA window (MPI_Win)."""

    def __init__(self, comm: Intracomm, shared: _WinShared) -> None:
        self.comm = comm
        self._shared = shared
        self._fence_open = False
        self._held: set[int] = set()

    # ------------------------------------------------------------------
    @classmethod
    def Create(cls, local: np.ndarray | None, comm: Intracomm,
               disp_unit: int | None = None) -> "Win":
        """Collectively create a window exposing ``local`` on each rank.

        ``local`` may be None (a zero-size window, as rank != 0 passes in
        the mpi4py RMA tutorial).  ``disp_unit`` defaults to the array's
        item size (1 for None).
        """
        if local is not None:
            local = np.ascontiguousarray(local) if not local.flags["C_CONTIGUOUS"] else local
            unit = disp_unit if disp_unit is not None else local.dtype.itemsize
        else:
            unit = disp_unit if disp_unit is not None else 1
        entries = comm.allgather((comm.rank, local, unit))
        shared = _WinShared(comm.size)
        # all ranks build an identical shared view; buffers are references
        for r, buf, u in entries:
            shared.buffers[r] = buf
            shared.disp_units[r] = u
        # the *same* lock objects must be used by everyone: adopt rank 0's
        locks = comm.allgather(shared.locks if comm.rank == 0 else None)
        shared.locks = locks[0]
        return cls(comm, shared)

    def Free(self) -> None:
        self.comm.barrier()
        self._shared.buffers = [None] * self.comm.size

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def Fence(self, assertion: int = 0) -> None:
        """Open/continue a fence epoch (collective)."""
        self.comm.barrier()
        self._fence_open = True

    def Lock(self, rank: int, lock_type: int = LOCK_EXCLUSIVE,
             assertion: int = 0) -> None:
        """Open a passive-target epoch on ``rank``."""
        self._check_target(rank)
        if rank in self._held:
            raise MPIWinError(f"window already locked on rank {rank}")
        # Shared locks degrade to exclusive: correct (stricter) and
        # sufficient for the library's access patterns.
        self._shared.locks[rank].acquire()
        self._held.add(rank)

    def Unlock(self, rank: int) -> None:
        if rank not in self._held:
            raise MPIWinError(f"window not locked on rank {rank}")
        self._held.discard(rank)
        self._shared.locks[rank].release()

    def Lock_all(self) -> None:
        for r in range(self.comm.size):
            self.Lock(r)

    def Unlock_all(self) -> None:
        for r in sorted(self._held):
            self.Unlock(r)

    def _check_epoch(self, rank: int) -> None:
        if not self._fence_open and rank not in self._held:
            raise MPIWinError(
                f"RMA access to rank {rank} outside any epoch "
                f"(call Fence() or Lock(rank) first)"
            )

    def _check_target(self, rank: int) -> None:
        if not 0 <= rank < self.comm.size:
            raise MPIWinError(f"target rank {rank} outside size "
                              f"{self.comm.size}")

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def _target_view(self, target_rank: int, target,
                     origin: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Resolve the target region as flat (element-index array, buffer).

        ``target`` is ``None`` (offset 0), an int displacement, or a
        ``(disp, count, datatype)`` triple with the datatype's typemap
        selecting target elements.
        """
        buf = self._shared.buffers[target_rank]
        if buf is None:
            raise MPIWinError(f"rank {target_rank} exposes no memory")
        flat = buf.reshape(-1)
        unit = self._shared.disp_units[target_rank]
        itemsize = flat.dtype.itemsize
        n = origin.size
        if target is None:
            target = 0
        if isinstance(target, (int, np.integer)):
            start = int(target) * unit // itemsize
            idx = np.arange(start, start + n, dtype=np.int64)
        else:
            disp, count, dtype = target
            if not isinstance(dtype, Datatype):
                dtype = from_numpy_dtype(dtype)
            offs, lens = dtype._tiled_runs(count)
            byte_idx = np.concatenate([
                np.arange(o, o + l, itemsize, dtype=np.int64)
                for o, l in zip(offs.tolist(), lens.tolist())
            ]) if offs.size else np.empty(0, np.int64)
            idx = (int(disp) * unit + byte_idx) // itemsize
            if idx.size != n:
                raise MPIWinError(
                    f"target selects {idx.size} elements, origin has {n}"
                )
        if idx.size and (idx[0] < 0 or idx[-1] >= flat.size):
            raise MPIWinError(
                f"target region [{int(idx[0])}, {int(idx[-1])}] outside "
                f"window of {flat.size} elements on rank {target_rank}"
            )
        return idx, flat

    def Put(self, origin: np.ndarray, target_rank: int,
            target=None) -> None:
        """Write ``origin`` into the target window region."""
        self._check_target(target_rank)
        self._check_epoch(target_rank)
        src = np.ascontiguousarray(origin).reshape(-1)
        idx, flat = self._target_view(target_rank, target, src)
        with self._shared.locks[target_rank]:
            flat[idx] = src

    def Get(self, origin: np.ndarray, target_rank: int,
            target=None) -> None:
        """Read the target window region into ``origin``."""
        self._check_target(target_rank)
        self._check_epoch(target_rank)
        dst = origin.reshape(-1)
        if not dst.flags["C_CONTIGUOUS"]:
            raise MPIWinError("origin buffer must be contiguous")
        idx, flat = self._target_view(target_rank, target, dst)
        with self._shared.locks[target_rank]:
            dst[:] = flat[idx]

    def Accumulate(self, origin: np.ndarray, target_rank: int,
                   target=None, op=None) -> None:
        """Element-wise atomic update of the target region (default SUM)."""
        from .comm import SUM
        op = op if op is not None else SUM
        self._check_target(target_rank)
        self._check_epoch(target_rank)
        src = np.ascontiguousarray(origin).reshape(-1)
        idx, flat = self._target_view(target_rank, target, src)
        with self._shared.locks[target_rank]:
            flat[idx] = op(flat[idx], src)

    def Get_accumulate(self, origin: np.ndarray, result: np.ndarray,
                       target_rank: int, target=None, op=None) -> None:
        """Fetch-and-op: ``result`` gets the old value, target is updated."""
        from .comm import SUM
        op = op if op is not None else SUM
        self._check_target(target_rank)
        self._check_epoch(target_rank)
        src = np.ascontiguousarray(origin).reshape(-1)
        idx, flat = self._target_view(target_rank, target, src)
        with self._shared.locks[target_rank]:
            result.reshape(-1)[:] = flat[idx]
            flat[idx] = op(flat[idx], src)

    def Flush(self, rank: int) -> None:
        """No-op: thread ranks see stores immediately."""

    def Flush_all(self) -> None:
        """No-op: thread ranks see stores immediately."""
