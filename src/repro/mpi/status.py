"""Status and Request objects of the MPI substrate."""

from __future__ import annotations

from ..core.errors import MPIError

__all__ = ["Status", "Request", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class Status:
    """Receive status (MPI_Status): source, tag and byte count.

    ``count`` is always stored in bytes.  File operations set it to the
    bytes of *whole* etype elements transferred (a partial trailing
    element at EOF is not counted), so :meth:`Get_count` with the view's
    etype yields the element count on independent and collective paths
    alike — the MPI semantics, not a raw buffer length.
    """

    __slots__ = ("source", "tag", "count")

    def __init__(self) -> None:
        self.source = ANY_SOURCE
        self.tag = ANY_TAG
        self.count = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self, datatype=None) -> int:
        """Received element count (byte count when ``datatype`` is None)."""
        if datatype is None:
            return self.count
        size = datatype.Get_size()
        if size == 0:
            return 0
        if self.count % size:
            raise MPIError(
                f"received {self.count} bytes, not a multiple of "
                f"datatype size {size}"
            )
        return self.count // size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Status(source={self.source}, tag={self.tag}, count={self.count})"


class Request:
    """Handle of a non-blocking operation.

    The substrate's sends buffer eagerly, so send requests are born
    complete; receive requests match lazily in :meth:`test`/:meth:`wait`.
    """

    __slots__ = ("_wait_fn", "_done", "_result")

    def __init__(self, wait_fn=None, done: bool = False, result=None) -> None:
        self._wait_fn = wait_fn
        self._done = done
        self._result = result

    def Test(self, status: Status | None = None):
        """Non-blocking completion check; returns (flag, result)."""
        if self._done:
            return True, self._result
        assert self._wait_fn is not None
        ok, result = self._wait_fn(block=False, status=status)
        if ok:
            self._done = True
            self._result = result
        return ok, self._result

    def Wait(self, status: Status | None = None):
        """Block until complete; returns the received object (or None)."""
        if self._done:
            return self._result
        assert self._wait_fn is not None
        ok, result = self._wait_fn(block=True, status=status)
        assert ok
        self._done = True
        self._result = result
        return result

    # mpi4py-style lowercase aliases
    def test(self, status: Status | None = None):
        return self.Test(status)

    def wait(self, status: Status | None = None):
        return self.Wait(status)

    @staticmethod
    def Waitall(requests: list["Request"]) -> list:
        return [r.Wait() for r in requests]
