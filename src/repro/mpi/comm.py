"""Communicators: point-to-point and collective communication.

The substrate runs one *rank* per Python thread inside one process (see
:mod:`repro.mpi.runner`).  A communicator is a per-rank façade over a
shared structure holding the mailboxes (point-to-point), an abortable
barrier and a bulletin board (collectives).  Semantics follow MPI:

* ``Send``/``Recv`` match on (source, tag) with ``ANY_SOURCE``/``ANY_TAG``
  wildcards and preserve per-(source, dest) message order.  Sends buffer
  eagerly (always legal for an MPI implementation); the test suite's
  deadlock cases therefore use collectives, whose matching *is* strict.
* Upper-case methods move bytes of NumPy buffers (fast path, optionally
  through a derived :class:`~repro.mpi.datatypes.Datatype`); lower-case
  methods move pickled Python objects, exactly like mpi4py.
* Collectives are implemented with a deposit/barrier/read/barrier
  exchange on the shared board, so every rank must call every collective
  in the same order — mismatched collectives hang, and the runner's
  watchdog converts hangs into :class:`~repro.core.errors.MPIError`.
* ``Abort`` trips a shared event that every blocking wait polls, so one
  failing rank wakes all others with :class:`MPIAbort`.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

import numpy as np

from ..core.errors import MPIAbort, MPICommError
from .datatypes import Datatype, _as_bytes_view
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = ["Intracomm", "World", "Op", "SUM", "PROD", "MIN", "MAX",
           "LAND", "LOR", "BAND", "BOR", "ANY_SOURCE", "ANY_TAG"]

_POLL = 0.05  # seconds between abort checks while blocked


# ---------------------------------------------------------------------------
# reduction operators
# ---------------------------------------------------------------------------

class Op:
    """A reduction operator usable with Reduce/Allreduce/Scan."""

    def __init__(self, fn: Callable[[Any, Any], Any], name: str) -> None:
        self.fn = fn
        self.name = name

    def __call__(self, a, b):
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Op({self.name})"


SUM = Op(lambda a, b: a + b, "MPI_SUM")
PROD = Op(lambda a, b: a * b, "MPI_PROD")
MIN = Op(lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b), "MPI_MIN")
MAX = Op(lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b), "MPI_MAX")
LAND = Op(lambda a, b: np.logical_and(a, b), "MPI_LAND")
LOR = Op(lambda a, b: np.logical_or(a, b), "MPI_LOR")
BAND = Op(lambda a, b: a & b, "MPI_BAND")
BOR = Op(lambda a, b: a | b, "MPI_BOR")


# ---------------------------------------------------------------------------
# shared infrastructure
# ---------------------------------------------------------------------------

class _AbortableBarrier:
    """A reusable barrier whose waiters notice the world's abort event."""

    def __init__(self, n: int, abort_event: threading.Event) -> None:
        self._n = n
        self._abort = abort_event
        self._cond = threading.Condition()
        self._count = 0
        self._generation = 0

    def wait(self) -> None:
        with self._cond:
            gen = self._generation
            self._count += 1
            if self._count == self._n:
                self._count = 0
                self._generation += 1
                self._cond.notify_all()
                return
            while gen == self._generation:
                self._cond.wait(_POLL)
                if gen != self._generation:
                    break   # barrier completed; ignore a late abort here
                if self._abort.is_set():
                    raise MPIAbort("aborted while waiting at a barrier")


class _Mailbox:
    """Per-rank incoming message queue with (source, tag) matching."""

    def __init__(self, abort_event: threading.Event) -> None:
        self._abort = abort_event
        self._cond = threading.Condition()
        self._queue: deque[tuple[int, int, Any]] = deque()

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._queue.append((source, tag, payload))
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> int | None:
        for i, (s, t, _p) in enumerate(self._queue):
            if (source == ANY_SOURCE or s == source) and \
               (tag == ANY_TAG or t == tag):
                return i
        return None

    def get(self, source: int, tag: int, block: bool = True
            ) -> tuple[int, int, Any] | None:
        with self._cond:
            while True:
                i = self._match(source, tag)
                if i is not None:
                    item = self._queue[i]
                    del self._queue[i]
                    return item
                if not block:
                    return None
                if self._abort.is_set():
                    raise MPIAbort("aborted while waiting in Recv")
                self._cond.wait(_POLL)

    def probe(self, source: int, tag: int, block: bool = True
              ) -> tuple[int, int, Any] | None:
        with self._cond:
            while True:
                i = self._match(source, tag)
                if i is not None:
                    return self._queue[i]
                if not block:
                    return None
                if self._abort.is_set():
                    raise MPIAbort("aborted while waiting in Probe")
                self._cond.wait(_POLL)


class _CommShared:
    """State shared by all ranks of one communicator."""

    def __init__(self, comm_id: tuple, size: int,
                 abort_event: threading.Event) -> None:
        self.comm_id = comm_id
        self.size = size
        self.abort_event = abort_event
        self.mailboxes = [_Mailbox(abort_event) for _ in range(size)]
        self.barrier = _AbortableBarrier(size, abort_event)
        self.board: dict[int, dict[int, Any]] = {}
        self.board_lock = threading.Lock()
        #: pluggable topology: node id per rank (None = derive from the
        #: ``DRX_RANKS_PER_NODE`` environment, see Intracomm.node_map)
        self.node_map: list[int] | None = None


class World:
    """Process-global state of one SPMD run (one ``mpiexec`` call)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise MPICommError(f"world size must be >= 1, got {size}")
        self.size = size
        self.abort_event = threading.Event()
        self.world_shared = _CommShared(("world",), size, self.abort_event)
        self._registry: dict[tuple, _CommShared] = {
            ("world",): self.world_shared
        }
        self._registry_lock = threading.Lock()
        self.abort_reason: str | None = None
        #: (comm_id, rank) -> collective name, for every rank currently
        #: inside a collective exchange.  The runner's watchdog snapshots
        #: this to name the hung collective and its waiting ranks.
        self.in_collective: dict[tuple, str] = {}
        self.in_collective_lock = threading.Lock()

    def shared_for(self, comm_id: tuple, size: int) -> _CommShared:
        """Get-or-create the shared struct of a derived communicator.

        Every member rank computes the same deterministic ``comm_id``, so
        ``setdefault`` under the lock makes exactly one struct.
        """
        with self._registry_lock:
            sh = self._registry.get(comm_id)
            if sh is None:
                sh = _CommShared(comm_id, size, self.abort_event)
                self._registry[comm_id] = sh
            elif sh.size != size:
                raise MPICommError(
                    f"communicator {comm_id} size mismatch: "
                    f"{sh.size} vs {size}"
                )
            return sh

    def abort(self, reason: str = "MPI_Abort") -> None:
        self.abort_reason = self.abort_reason or reason
        self.abort_event.set()

    def blocked_collectives(self) -> dict[tuple, str]:
        """Snapshot of every rank currently inside a collective:
        ``(comm_id, rank) -> collective name`` (watchdog diagnostics)."""
        with self.in_collective_lock:
            return dict(self.in_collective)


# ---------------------------------------------------------------------------
# the communicator façade
# ---------------------------------------------------------------------------

class Intracomm:
    """One rank's view of a communicator."""

    def __init__(self, world: World, shared: _CommShared, rank: int) -> None:
        if not 0 <= rank < shared.size:
            raise MPICommError(f"rank {rank} outside communicator size "
                               f"{shared.size}")
        self.world = world
        self._shared = shared
        self._rank = rank
        self._coll_seq = 0
        self._split_seq = 0

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._shared.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._shared.size

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Intracomm(id={self._shared.comm_id}, rank={self._rank}"
                f"/{self.size})")

    # ------------------------------------------------------------------
    # error handling
    # ------------------------------------------------------------------
    def Abort(self, errorcode: int = 1) -> None:
        self.world.abort(f"rank {self._rank} called Abort({errorcode})")
        raise MPIAbort(f"rank {self._rank} called Abort({errorcode})")

    def _check_abort(self) -> None:
        if self.world.abort_event.is_set():
            raise MPIAbort(self.world.abort_reason or "aborted")

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise MPICommError(
                f"{what} rank {peer} outside communicator size {self.size}"
            )

    # ------------------------------------------------------------------
    # point-to-point: buffers
    # ------------------------------------------------------------------
    def Send(self, buf, dest: int, tag: int = 0) -> None:
        """Eagerly-buffered standard send of a NumPy buffer."""
        self._check_abort()
        self._check_peer(dest, "destination")
        data = _pack_buf(buf)
        self._shared.mailboxes[dest].put(self._rank, tag, ("B", data))

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> None:
        """Blocking receive into a NumPy buffer."""
        self._check_abort()
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        s, t, (kind, data) = self._shared.mailboxes[self._rank].get(source, tag)
        if kind != "B":
            raise MPICommError(
                "Recv matched a pickled-object message; use recv()"
            )
        _unpack_buf(buf, data)
        if status is not None:
            status.source, status.tag, status.count = s, t, len(data)

    def Sendrecv(self, sendbuf, dest: int, sendtag: int = 0,
                 recvbuf=None, source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG,
                 status: Status | None = None) -> None:
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag, status)

    def Isend(self, buf, dest: int, tag: int = 0) -> Request:
        self.Send(buf, dest, tag)
        return Request(done=True)

    def Irecv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG
              ) -> Request:
        mailbox = self._shared.mailboxes[self._rank]

        def wait_fn(block: bool, status: Status | None):
            item = mailbox.get(source, tag, block=block)
            if item is None:
                return False, None
            s, t, (kind, data) = item
            if kind != "B":
                raise MPICommError("Irecv matched a pickled-object message")
            _unpack_buf(buf, data)
            if status is not None:
                status.source, status.tag, status.count = s, t, len(data)
            return True, None

        return Request(wait_fn=wait_fn)

    def Probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Status | None = None) -> bool:
        item = self._shared.mailboxes[self._rank].probe(source, tag)
        if status is not None and item is not None:
            s, t, (_k, data) = item
            status.source, status.tag = s, t
            status.count = len(data) if isinstance(data, bytes) else 0
        return item is not None

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               status: Status | None = None) -> bool:
        item = self._shared.mailboxes[self._rank].probe(source, tag,
                                                        block=False)
        if status is not None and item is not None:
            s, t, (_k, data) = item
            status.source, status.tag = s, t
            status.count = len(data) if isinstance(data, bytes) else 0
        return item is not None

    # ------------------------------------------------------------------
    # point-to-point: pickled objects (lower-case, mpi4py style)
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_abort()
        self._check_peer(dest, "destination")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._shared.mailboxes[dest].put(self._rank, tag, ("P", payload))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> Any:
        self._check_abort()
        s, t, (kind, data) = self._shared.mailboxes[self._rank].get(source, tag)
        if kind != "P":
            raise MPICommError("recv matched a buffer message; use Recv()")
        if status is not None:
            status.source, status.tag, status.count = s, t, len(data)
        return pickle.loads(data)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        mailbox = self._shared.mailboxes[self._rank]

        def wait_fn(block: bool, status: Status | None):
            item = mailbox.get(source, tag, block=block)
            if item is None:
                return False, None
            s, t, (kind, data) = item
            if kind != "P":
                raise MPICommError("irecv matched a buffer message")
            if status is not None:
                status.source, status.tag, status.count = s, t, len(data)
            return True, pickle.loads(data)

        return Request(wait_fn=wait_fn)

    # ------------------------------------------------------------------
    # the collective exchange primitive
    # ------------------------------------------------------------------
    def _exchange(self, value: Any, name: str = "collective") -> list[Any]:
        """All-to-all bulletin-board exchange (the collective workhorse).

        Deposits ``value``, waits for everyone, reads all contributions,
        waits again (so nobody reads a board being torn down), and lets
        rank 0 garbage-collect the slot.  While blocked, the rank is
        registered in :attr:`World.in_collective` under ``name`` so the
        runner's watchdog can report *which* collective hung and who was
        waiting in it.
        """
        self._check_abort()
        sh = self._shared
        seq = self._coll_seq
        self._coll_seq += 1
        key = (sh.comm_id, self._rank)
        with self.world.in_collective_lock:
            self.world.in_collective[key] = name
        try:
            with sh.board_lock:
                sh.board.setdefault(seq, {})[self._rank] = value
            sh.barrier.wait()
            with sh.board_lock:
                slot = sh.board[seq]
                result = [slot[r] for r in range(self.size)]
            sh.barrier.wait()
            if self._rank == 0:
                with sh.board_lock:
                    sh.board.pop(seq, None)
            return result
        finally:
            with self.world.in_collective_lock:
                self.world.in_collective.pop(key, None)

    # ------------------------------------------------------------------
    # collectives: pickled objects
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self._exchange(None, "barrier")

    Barrier = barrier

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root, "root")
        vals = self._exchange(obj if self._rank == root else None,
                              "bcast")
        return pickle.loads(pickle.dumps(vals[root]))

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_peer(root, "root")
        vals = self._exchange(obj, "gather")
        return vals if self._rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        return self._exchange(obj, "allgather")

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_peer(root, "root")
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise MPICommError(
                    f"scatter needs {self.size} items at root, got "
                    f"{None if objs is None else len(objs)}"
                )
        vals = self._exchange(list(objs) if self._rank == root else None,
                              "scatter")
        return vals[root][self._rank]

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise MPICommError(
                f"alltoall needs {self.size} items, got {len(objs)}"
            )
        mat = self._exchange(list(objs), "alltoall")
        return [mat[src][self._rank] for src in range(self.size)]

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0) -> Any:
        self._check_peer(root, "root")
        vals = self._exchange(obj, "reduce")
        if self._rank != root:
            return None
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj: Any, op: Op = SUM) -> Any:
        vals = self._exchange(obj, "allreduce")
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    def scan(self, obj: Any, op: Op = SUM) -> Any:
        vals = self._exchange(obj, "scan")
        acc = vals[0]
        for v in vals[1:self._rank + 1]:
            acc = op(acc, v)
        return acc

    # ------------------------------------------------------------------
    # collectives: NumPy buffers
    # ------------------------------------------------------------------
    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        self._check_peer(root, "root")
        data = _pack_buf(buf) if self._rank == root else None
        vals = self._exchange(data, "Bcast")
        if self._rank != root:
            _unpack_buf(buf, vals[root])

    def Gather(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
               root: int = 0) -> None:
        self._check_peer(root, "root")
        vals = self._exchange(_pack_buf(sendbuf), "Gather")
        if self._rank == root:
            if recvbuf is None:
                raise MPICommError("root must supply recvbuf")
            _unpack_buf(recvbuf, b"".join(vals))

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        vals = self._exchange(_pack_buf(sendbuf), "Allgather")
        _unpack_buf(recvbuf, b"".join(vals))

    def Scatter(self, sendbuf: np.ndarray | None, recvbuf: np.ndarray,
                root: int = 0) -> None:
        self._check_peer(root, "root")
        if self._rank == root:
            if sendbuf is None:
                raise MPICommError("root must supply sendbuf")
            data = _pack_buf(sendbuf)
            n = len(data) // self.size
            parts = [data[i * n:(i + 1) * n] for i in range(self.size)]
        else:
            parts = None
        vals = self._exchange(parts, "Scatter")
        _unpack_buf(recvbuf, vals[root][self._rank])

    def Scatterv(self, sendspec, recvbuf: np.ndarray,
                 root: int = 0) -> None:
        """Vector scatter: ``sendspec = [buf, counts, displs, None]``
        (counts and displacements in elements of the send buffer; the
        mpi4py calling convention)."""
        self._check_peer(root, "root")
        if self._rank == root:
            if sendspec is None:
                raise MPICommError("root must supply the send spec")
            buf, counts, displs = sendspec[0], sendspec[1], sendspec[2]
            arr = np.ascontiguousarray(buf).reshape(-1)
            if len(counts) != self.size or len(displs) != self.size:
                raise MPICommError(
                    f"Scatterv needs {self.size} counts/displs"
                )
            parts = [bytes(_as_bytes_view(
                np.ascontiguousarray(arr[d:d + c])))
                for c, d in zip(counts, displs)]
        else:
            parts = None
        vals = self._exchange(parts, "Scatterv")
        _unpack_buf(recvbuf, vals[root][self._rank])

    def Gatherv(self, sendbuf: np.ndarray, recvspec,
                root: int = 0) -> None:
        """Vector gather: ``recvspec = [buf, counts, displs, None]``."""
        self._check_peer(root, "root")
        vals = self._exchange(_pack_buf(sendbuf), "Gatherv")
        if self._rank == root:
            if recvspec is None:
                raise MPICommError("root must supply the recv spec")
            buf, counts, displs = recvspec[0], recvspec[1], recvspec[2]
            if not buf.flags["C_CONTIGUOUS"]:
                raise MPICommError("Gatherv recv buffer must be contiguous")
            if len(counts) != self.size or len(displs) != self.size:
                raise MPICommError(
                    f"Gatherv needs {self.size} counts/displs"
                )
            item = buf.dtype.itemsize
            mv = _as_bytes_view(buf, writable=True)
            for r, data in enumerate(vals):
                if len(data) != counts[r] * item:
                    raise MPICommError(
                        f"rank {r} sent {len(data)} bytes, expected "
                        f"{counts[r] * item}"
                    )
                start = displs[r] * item
                mv[start:start + len(data)] = data

    def Allgatherv(self, sendbuf: np.ndarray, recvspec) -> None:
        """Vector allgather: ``recvspec = [buf, counts, displs, None]``."""
        vals = self._exchange(_pack_buf(sendbuf), "Allgatherv")
        buf, counts, displs = recvspec[0], recvspec[1], recvspec[2]
        arr = buf.reshape(-1)
        if not arr.flags["C_CONTIGUOUS"]:
            raise MPICommError("Allgatherv recv buffer must be contiguous")
        item = arr.dtype.itemsize
        mv = _as_bytes_view(arr, writable=True)
        for r, data in enumerate(vals):
            if len(data) != counts[r] * item:
                raise MPICommError(
                    f"rank {r} sent {len(data)} bytes, expected "
                    f"{counts[r] * item}"
                )
            start = displs[r] * item
            mv[start:start + len(data)] = data

    def Alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        data = _pack_buf(sendbuf)
        n = len(data) // self.size
        parts = [data[i * n:(i + 1) * n] for i in range(self.size)]
        mat = self._exchange(parts, "Alltoall")
        _unpack_buf(recvbuf, b"".join(mat[src][self._rank]
                                      for src in range(self.size)))

    def Reduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
               op: Op = SUM, root: int = 0) -> None:
        self._check_peer(root, "root")
        vals = self._exchange(_np_copy(sendbuf), "Reduce")
        if self._rank == root:
            if recvbuf is None:
                raise MPICommError("root must supply recvbuf")
            acc = vals[0]
            for v in vals[1:]:
                acc = op(acc, v)
            np.copyto(recvbuf, acc)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op: Op = SUM) -> None:
        vals = self._exchange(_np_copy(sendbuf), "Allreduce")
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        np.copyto(recvbuf, acc)

    def Scan(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
             op: Op = SUM) -> None:
        vals = self._exchange(_np_copy(sendbuf), "Scan")
        acc = vals[0]
        for v in vals[1:self._rank + 1]:
            acc = op(acc, v)
        np.copyto(recvbuf, acc)

    # ------------------------------------------------------------------
    # topology (simulated node placement)
    # ------------------------------------------------------------------
    def Set_node_map(self, node_of_rank: Sequence[int]) -> None:
        """Declare which simulated *node* each rank runs on.

        The substrate's ranks are threads of one process, so physical
        placement is a simulation parameter: the collective-I/O engine
        uses it to place one aggregator per node (ROMIO's
        ``cb_config_list`` idiom).  All ranks share the map (it lives on
        the communicator's shared struct); call it identically
        everywhere, like any other collective configuration.
        """
        nm = [int(n) for n in node_of_rank]
        if len(nm) != self.size:
            raise MPICommError(
                f"node map has {len(nm)} entries for {self.size} ranks")
        self._shared.node_map = nm

    def node_map(self) -> list[int]:
        """Node id per rank.  Defaults to ``rank // DRX_RANKS_PER_NODE``
        (everything on one node when the variable is unset, which keeps
        the default aggregator count at one)."""
        nm = self._shared.node_map
        if nm is not None:
            return list(nm)
        try:
            rpn = int(os.environ.get("DRX_RANKS_PER_NODE", "0"))
        except ValueError:
            rpn = 0
        if rpn <= 0:
            rpn = self.size
        return [r // rpn for r in range(self.size)]

    # ------------------------------------------------------------------
    # point-to-point exchange (O(sent + received), not O(P^2))
    # ------------------------------------------------------------------
    def exchange_p2p(self, payloads: dict[int, Any],
                     sources: Sequence[int], tag: int) -> dict[int, Any]:
        """Send ``payloads[dest]`` to each destination, then collect one
        message from every rank in ``sources``, returning them keyed by
        source.

        Unlike the bulletin-board :meth:`_exchange`, traffic is only
        what is actually addressed — the phase-A primitive of two-phase
        collective I/O, where every rank ships requests to a handful of
        aggregators rather than publishing them to all P ranks.  Sends
        buffer eagerly, so the send loop never blocks; (source, tag)
        mailbox matching makes the receive order deterministic.
        """
        for dest in sorted(payloads):
            self.send(payloads[dest], dest, tag)
        return {src: self.recv(source=src, tag=tag) for src in sources}

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def Split(self, color: int = 0, key: int = 0) -> "Intracomm | None":
        """Partition the communicator by ``color``, order ranks by ``key``.

        Returns the new communicator (or None for ``color < 0``, MPI's
        MPI_UNDEFINED convention).
        """
        seq = self._split_seq
        self._split_seq += 1
        triples = self._exchange((color, key, self._rank), "Split")
        if color < 0:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        ranks = [r for _k, r in members]
        new_rank = ranks.index(self._rank)
        comm_id = (*self._shared.comm_id, "split", seq, color)
        shared = self.world.shared_for(comm_id, len(ranks))
        return Intracomm(self.world, shared, new_rank)

    def Dup(self) -> "Intracomm":
        out = self.Split(0, self._rank)
        assert out is not None
        return out

    def Free(self) -> None:
        """No-op (shared structs are garbage-collected with the world)."""

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    @staticmethod
    def Wtime() -> float:
        return time.perf_counter()

    def Get_processor_name(self) -> str:
        return f"thread-rank-{self._rank}"


# ---------------------------------------------------------------------------
# buffer helpers
# ---------------------------------------------------------------------------

def _parse_bufspec(buf) -> tuple[Any, int | None, Datatype | None]:
    """Accept mpi4py-style buffer specs.

    ``buf`` | ``[buf, datatype]`` | ``[buf, count, datatype]``.
    """
    if isinstance(buf, (list, tuple)):
        if len(buf) == 2:
            return buf[0], None, buf[1]
        if len(buf) == 3:
            return buf[0], int(buf[1]), buf[2]
        raise MPICommError(f"bad buffer spec of length {len(buf)}")
    return buf, None, None


def _pack_buf(buf) -> bytes:
    arr, count, dtype = _parse_bufspec(buf)
    if dtype is not None:
        return dtype.pack(arr, count if count is not None else 1)
    return bytes(_as_bytes_view(arr))


def _unpack_buf(buf, data: bytes) -> None:
    arr, count, dtype = _parse_bufspec(buf)
    if dtype is not None:
        dtype.unpack(arr, data, count if count is not None else 1)
        return
    mv = _as_bytes_view(arr, writable=True)
    if len(data) > len(mv):
        raise MPICommError(
            f"message of {len(data)} bytes overflows buffer of {len(mv)}"
        )
    mv[:len(data)] = data


def _np_copy(a: np.ndarray):
    """Deep copy for reduction inputs (keeps dtype/shape semantics)."""
    arr = np.asarray(a)
    return arr.copy()
