"""The SPMD launcher: ``mpiexec`` for thread ranks.

``mpiexec(nprocs, fn, *args)`` runs ``fn(comm, *args)`` once per rank,
each in its own thread, and returns the per-rank results as a list —
the in-process analogue of ``mpiexec -n 4 python script.py``.

Failure semantics: the first exception in any rank aborts the world
(waking every blocked rank), and is re-raised to the caller annotated
with its rank.  A watchdog converts deadlocks (mismatched collectives,
missing sends) into a diagnostic :class:`MPIError` after ``timeout``
seconds instead of hanging the test suite.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable

from ..core.errors import MPIAbort, MPIError
from .comm import Intracomm, World

__all__ = ["mpiexec", "SPMDFailure"]


class SPMDFailure(MPIError):
    """One or more ranks raised; carries every rank's traceback text."""

    def __init__(self, failures: dict[int, BaseException],
                 tracebacks: dict[int, str]) -> None:
        self.failures = failures
        self.tracebacks = tracebacks
        first_rank = min(failures)
        first = failures[first_rank]
        detail = "\n".join(
            f"--- rank {r} ---\n{tracebacks[r]}" for r in sorted(failures)
        )
        super().__init__(
            f"{len(failures)} rank(s) failed; first: rank {first_rank}: "
            f"{first!r}\n{detail}"
        )


def mpiexec(nprocs: int, fn: Callable[..., Any], *args: Any,
            timeout: float = 120.0, **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` thread ranks.

    Returns ``[result_of_rank_0, ..., result_of_rank_{n-1}]``.

    Parameters
    ----------
    timeout:
        Watchdog limit in seconds.  If any rank is still alive after
        this long the world is aborted and :class:`MPIError` raised —
        a deadlock diagnostic, not a performance knob.
    """
    world = World(nprocs)
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    lock = threading.Lock()

    def body(rank: int) -> None:
        comm = Intracomm(world, world.world_shared, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except MPIAbort as exc:
            # Secondary casualty of another rank's failure: record only
            # if nobody else failed (a genuine Abort call).
            with lock:
                failures.setdefault(rank, exc)
                tracebacks.setdefault(rank, traceback.format_exc())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
            world.abort(f"rank {rank} raised {exc!r}")

    threads = [
        threading.Thread(target=body, args=(r,), name=f"mpi-rank-{r}",
                         daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    stuck = [t.name for t in threads if t.is_alive()]
    if stuck:
        world.abort("watchdog timeout")
        for t in threads:
            t.join(5.0)
        raise MPIError(
            f"deadlock suspected: ranks still blocked after {timeout}s: "
            f"{', '.join(stuck)}"
        )

    real = {r: e for r, e in failures.items() if not isinstance(e, MPIAbort)}
    if real:
        raise SPMDFailure(real, {r: tracebacks[r] for r in real})
    if failures:
        # every failure was an MPIAbort: someone called Abort() directly
        raise SPMDFailure(failures, tracebacks)
    return results
