"""The SPMD launcher: ``mpiexec`` for thread ranks.

``mpiexec(nprocs, fn, *args)`` runs ``fn(comm, *args)`` once per rank,
each in its own thread, and returns the per-rank results as a list —
the in-process analogue of ``mpiexec -n 4 python script.py``.

Failure semantics: the first exception in any rank aborts the world
(waking every blocked rank), and is re-raised to the caller annotated
with its rank.  A watchdog converts deadlocks (mismatched collectives,
missing sends) into a diagnostic :class:`MPIError` after ``timeout``
seconds instead of hanging the test suite; the default comes from the
``DRX_MPI_TIMEOUT`` environment variable (seconds, fallback 120), and
the error names every collective the hung ranks were blocked in.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Any, Callable

from ..core.errors import MPIAbort, MPIError
from ..core.watchdog import default_watchdog
from .comm import Intracomm, World

__all__ = ["mpiexec", "SPMDFailure", "DEFAULT_TIMEOUT_ENV"]

#: environment variable holding the default watchdog timeout in seconds
DEFAULT_TIMEOUT_ENV = "DRX_MPI_TIMEOUT"


class SPMDFailure(MPIError):
    """One or more ranks raised; carries every rank's traceback text."""

    def __init__(self, failures: dict[int, BaseException],
                 tracebacks: dict[int, str]) -> None:
        self.failures = failures
        self.tracebacks = tracebacks
        first_rank = min(failures)
        first = failures[first_rank]
        detail = "\n".join(
            f"--- rank {r} ---\n{tracebacks[r]}" for r in sorted(failures)
        )
        super().__init__(
            f"{len(failures)} rank(s) failed; first: rank {first_rank}: "
            f"{first!r}\n{detail}"
        )


def _default_timeout() -> float:
    raw = os.environ.get(DEFAULT_TIMEOUT_ENV, "")
    try:
        value = float(raw)
    except ValueError:
        return 120.0
    return value if value > 0 else 120.0


def _describe_blocked(blocked: dict[tuple, str]) -> str:
    """Group a ``(comm_id, rank) -> collective`` snapshot into readable
    ``name@comm[ranks]`` clauses for the watchdog diagnostic."""
    if not blocked:
        return "no rank was inside a collective (point-to-point wait?)"
    groups: dict[tuple[tuple, str], list[int]] = {}
    for (comm_id, rank), name in blocked.items():
        groups.setdefault((comm_id, name), []).append(rank)
    clauses = []
    for (comm_id, name), ranks in sorted(groups.items(),
                                         key=lambda kv: str(kv[0])):
        comm = "/".join(str(p) for p in comm_id)
        clauses.append(f"{name} on comm {comm} "
                       f"(ranks {sorted(ranks)})")
    return "hung collective(s): " + "; ".join(clauses)


def mpiexec(nprocs: int, fn: Callable[..., Any], *args: Any,
            timeout: float | None = None, **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` thread ranks.

    Returns ``[result_of_rank_0, ..., result_of_rank_{n-1}]``.

    Parameters
    ----------
    timeout:
        Watchdog limit in seconds.  If any rank is still alive after
        this long the world is aborted and :class:`MPIError` raised —
        a deadlock diagnostic, not a performance knob.  ``None`` (the
        default) reads ``DRX_MPI_TIMEOUT`` from the environment,
        falling back to 120 s.
    """
    if timeout is None:
        timeout = _default_timeout()
    world = World(nprocs)
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    lock = threading.Lock()

    def body(rank: int) -> None:
        comm = Intracomm(world, world.world_shared, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except MPIAbort as exc:
            # Secondary casualty of another rank's failure: record only
            # if nobody else failed (a genuine Abort call).
            with lock:
                failures.setdefault(rank, exc)
                tracebacks.setdefault(rank, traceback.format_exc())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
            world.abort(f"rank {rank} raised {exc!r}")

    threads = [
        threading.Thread(target=body, args=(r,), name=f"mpi-rank-{r}",
                         daemon=True)
        for r in range(nprocs)
    ]

    # The deadlock watchdog rides the process-wide shared watchdog
    # thread (repro.core.watchdog — the same machinery the serve daemon
    # uses for request deadlines).  The callback snapshots who was
    # blocked in what BEFORE the abort wakes them, then aborts the
    # world so every hung rank unwinds.
    fired: dict[str, Any] = {}

    def on_expire() -> None:
        fired["stuck"] = [t.name for t in threads if t.is_alive()]
        fired["blocked"] = world.blocked_collectives()
        world.abort("watchdog timeout")

    for t in threads:
        t.start()
    handle = default_watchdog().schedule(timeout, on_expire)
    try:
        # grace past the watchdog instant: aborted ranks need a moment
        # to unwind, and genuinely-finished ranks join immediately
        limit = time.monotonic() + timeout + 10.0
        for t in threads:
            t.join(max(0.0, limit - time.monotonic()))
    finally:
        default_watchdog().cancel(handle)
    if fired and fired["stuck"]:
        raise MPIError(
            f"deadlock suspected: ranks still blocked after {timeout}s: "
            f"{', '.join(fired['stuck'])}; "
            f"{_describe_blocked(fired['blocked'])}"
        )

    real = {r: e for r, e in failures.items() if not isinstance(e, MPIAbort)}
    if real:
        raise SPMDFailure(real, {r: tracebacks[r] for r in real})
    if failures:
        # every failure was an MPIAbort: someone called Abort() directly
        raise SPMDFailure(failures, tracebacks)
    return results
