"""The ROMIO-style collective-I/O engine: data sieving + two-phase I/O.

This module implements the two optimizations of Thakur, Gropp & Lusk,
"Data Sieving and Collective I/O in ROMIO" (see PAPERS.md), on top of
the simulated parallel file system:

**Data sieving** (independent noncontiguous access).  A strided or
indexed file view turns one ``Read_at``/``Write_at`` into many small
extents separated by holes.  Instead of issuing them one by one, the
engine reads a single *covering* extent per hole-bearing run group and
extracts the requested pieces in memory; writes become an atomic
read-modify-write of the covering extent (:meth:`PFSFile.sieve_writev`
holds the file lock across the read and the write-back, so concurrent
sieved writers cannot clobber each other).  The price is *wasted* hole
bytes, so merging is gated by a hole-size threshold
(``romio_ds_read``/``romio_ds_write`` = ``auto``) or unleashed up to the
independent buffer size (``enable``).

**Two-phase collective buffering** (``Read_at_all``/``Write_at_all``).
The aggregate byte range of all ranks is partitioned into contiguous,
stripe-aligned *file domains*, each owned by one *aggregator* rank
(``cb_nodes`` of them, placed one per simulated node via the pluggable
:meth:`Intracomm.node_map`).  Phase A exchanges requests and data
point-to-point — O(total data) bytes, not the O(P x data) of a
bulletin-board broadcast — so only aggregators ever touch the PFS.
Phase B issues one large vectored request per aggregator per
``cb_buffer_size`` window, data-sieving hole-bearing windows.
Overlapping collective writers are legal and resolved in rank order
(the higher rank's bytes win, matching the serial reference in which
ranks write one after the other).

Aggregator PFS calls funnel through :meth:`PFSFile.readv`/``writev``
and therefore through the ``pfs``-tier :class:`~repro.core.executor.
IOExecutor`; under an armed fault plan the aggregators additionally
serialize phase B in aggregator order through a token chain, extending
the established serial-fallback-under-armed-faults rule to the fan-out.

Everything is accounted in :class:`~repro.pfs.stats.CollectiveStats`
(``PFSFile.cstats``): requests before/after aggregation, sieve covering
reads and read-modify-writes, wasted hole bytes, phase-A exchange
bytes and time, phase-B simulated I/O time.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_right
from dataclasses import dataclass, fields
from typing import Any, Iterable, Iterator, Sequence

from ..core.errors import MPIFileError
from ..core.faultsites import crash_point
from ..pfs.pfile import PFSFile
from ..pfs.striping import Extent, coalesce_extents

__all__ = ["CollectiveHints", "HINT_KEYS", "account",
           "choose_aggregators", "file_domains",
           "sieved_readv", "sieved_writev",
           "two_phase_read", "two_phase_write"]

#: phase-A mailbox tags (collectives are globally ordered per
#: communicator, and (source, tag) matching is FIFO per pair, so fixed
#: tags cannot mismatch across consecutive collective operations)
TAG_REQ = 0x7E01     # requests (reads) / requests + data (writes)
TAG_DATA = 0x7E02    # read replies, aggregator -> requester
TAG_TOKEN = 0x7E03   # aggregator serialization under armed faults

#: hint name -> environment fallback variable
_ENV = {
    "cb_nodes": "DRX_CB_NODES",
    "cb_buffer_size": "DRX_CB_BUFFER_SIZE",
    "ind_rd_buffer_size": "DRX_IND_RD_BUFFER_SIZE",
    "ind_wr_buffer_size": "DRX_IND_WR_BUFFER_SIZE",
    "romio_cb_read": "DRX_CB_READ",
    "romio_cb_write": "DRX_CB_WRITE",
    "romio_ds_read": "DRX_DS_READ",
    "romio_ds_write": "DRX_DS_WRITE",
    "ds_hole_threshold": "DRX_DS_HOLE_THRESHOLD",
}

HINT_KEYS = tuple(_ENV)

_CB_MODES = ("enable", "disable", "auto", "legacy")
_DS_MODES = ("enable", "disable", "auto")


@dataclass(frozen=True)
class CollectiveHints:
    """Resolved MPI-IO hints (ROMIO names, ``DRX_*`` env fallbacks)."""

    #: number of aggregator ranks; None = one per simulated node
    cb_nodes: int | None = None
    #: bytes an aggregator moves per phase-B window
    cb_buffer_size: int = 4 << 20
    #: covering-extent cap for independent sieved reads
    ind_rd_buffer_size: int = 4 << 20
    #: covering-extent cap for independent sieved writes
    ind_wr_buffer_size: int = 512 << 10
    #: two-phase on reads: enable | disable | auto | legacy
    romio_cb_read: str = "auto"
    #: two-phase on writes: enable | disable | auto | legacy
    romio_cb_write: str = "auto"
    #: data sieving on reads: enable | disable | auto
    romio_ds_read: str = "auto"
    #: data sieving on writes: enable | disable | auto
    romio_ds_write: str = "auto"
    #: largest hole ``auto`` sieving will read through
    ds_hole_threshold: int = 4096

    @classmethod
    def resolve(cls, info: dict | None = None) -> "CollectiveHints":
        """Build hints from the environment, overridden by ``info``."""
        raw: dict[str, Any] = {}
        for key, env in _ENV.items():
            val = os.environ.get(env)
            if val is not None and val != "":
                raw[key] = val
        if info:
            for key, val in info.items():
                if key not in _ENV:
                    raise MPIFileError(
                        f"unknown hint {key!r} (known: {sorted(_ENV)})")
                raw[key] = val
        vals: dict[str, Any] = {}
        for key, val in raw.items():
            if key.startswith("romio_"):
                mode = str(val).lower()
                allowed = _CB_MODES if "cb" in key else _DS_MODES
                if mode not in allowed:
                    raise MPIFileError(
                        f"hint {key}={val!r} not in {allowed}")
                vals[key] = mode
            else:
                try:
                    n = int(val)
                except (TypeError, ValueError):
                    raise MPIFileError(
                        f"hint {key}={val!r} is not an integer") from None
                if key == "ds_hole_threshold":
                    if n < 0:
                        raise MPIFileError(f"hint {key}={n} must be >= 0")
                elif n < 1:
                    raise MPIFileError(f"hint {key}={n} must be >= 1")
                vals[key] = n
        return cls(**vals)

    def digest(self) -> tuple:
        """Comparable fingerprint for cross-rank consistency checks."""
        return tuple(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


# ---------------------------------------------------------------------------
# stats plumbing
# ---------------------------------------------------------------------------

def account(pfile: PFSFile, **deltas: Any) -> None:
    """Accumulate counter deltas into the file's shared CollectiveStats."""
    with pfile.cstats_lock:
        cs = pfile.cstats
        for key, val in deltas.items():
            setattr(cs, key, getattr(cs, key) + val)


# ---------------------------------------------------------------------------
# aggregator placement and file domains
# ---------------------------------------------------------------------------

def choose_aggregators(comm, hints: CollectiveHints) -> list[int]:
    """Pick the aggregator ranks, topology-aware.

    One aggregator per simulated node first (nodes in order of their
    first rank), then a second rank per node, and so on until
    ``cb_nodes`` aggregators are chosen.  With the default node map
    (every rank on one node) and no ``cb_nodes`` hint this degenerates
    to the single rank-0 aggregator of the legacy path.
    """
    node_of = comm.node_map()
    by_node: dict[int, list[int]] = {}
    node_order: list[int] = []
    for rank, node in enumerate(node_of):
        if node not in by_node:
            by_node[node] = []
            node_order.append(node)
        by_node[node].append(rank)
    want = hints.cb_nodes if hints.cb_nodes is not None else len(node_order)
    want = max(1, min(int(want), comm.size))
    aggs: list[int] = []
    sweep = 0
    while len(aggs) < want:
        added = False
        for node in node_order:
            ranks = by_node[node]
            if sweep < len(ranks):
                aggs.append(ranks[sweep])
                added = True
                if len(aggs) == want:
                    break
        sweep += 1
        if not added:       # pragma: no cover - want is capped at size
            break
    return sorted(aggs)


def file_domains(lo: int, hi: int, ndomains: int, align: int) -> list[int]:
    """Split ``[lo, hi)`` into ``ndomains`` contiguous domains.

    Returns the ``ndomains + 1`` boundary offsets.  Interior boundaries
    are aligned down to a stripe boundary so one stripe never straddles
    two aggregators; a boundary collapsing onto its neighbour simply
    leaves that domain empty.
    """
    span = hi - lo
    bounds = [lo]
    for i in range(1, ndomains):
        b = lo + (span * i) // ndomains
        b -= b % align
        bounds.append(min(hi, max(b, bounds[-1])))
    bounds.append(hi)
    return bounds


def _domain_splits(extents: Sequence[Extent], bounds: list[int]
                   ) -> list[list[tuple[int, int, int]]]:
    """Chop data-ordered extents at the domain boundaries.

    Returns, per domain, ``(offset, length, data_position)`` pieces in
    data order — the third element locates the piece in the rank's flat
    data buffer, which is how replies are stitched back (reads) and how
    payloads are carved out (writes).
    """
    ndom = len(bounds) - 1
    out: list[list[tuple[int, int, int]]] = [[] for _ in range(ndom)]
    pos = 0
    for off, length in extents:
        cur = off
        end = off + length
        while cur < end:
            d = min(bisect_right(bounds, cur) - 1, ndom - 1)
            stop = min(end, bounds[d + 1])
            out[d].append((cur, stop - cur, pos + (cur - off)))
            cur = stop
        pos += length
    return out


# ---------------------------------------------------------------------------
# sieve planning
# ---------------------------------------------------------------------------

def _ds_threshold(mode: str, auto_threshold: int, buffer_cap: int) -> int:
    """Largest hole sieving may read through (-1 = sieving off)."""
    if mode == "disable":
        return -1
    if mode == "enable":
        return buffer_cap
    return auto_threshold        # auto


def _plan_groups(runs: list[Extent], max_hole: int, max_cover: int
                 ) -> list[tuple[int, int, int, int, int, int]]:
    """Merge coalesced runs across holes into covering groups.

    ``runs`` must be sorted and disjoint (``coalesce_extents`` output).
    Returns ``(start, end, holes, useful_bytes, first_run, end_run)``
    groups: holes no larger than ``max_hole`` are merged as long as the
    covering extent stays within ``max_cover``.
    """
    groups: list[tuple[int, int, int, int, int, int]] = []
    for i, (off, length) in enumerate(runs):
        if groups:
            s, e, holes, useful, i0, _i1 = groups[-1]
            gap = off - e
            if 0 < gap <= max_hole and (off + length) - s <= max_cover:
                groups[-1] = (s, off + length, holes + 1,
                              useful + length, i0, i + 1)
                continue
        groups.append((off, off + length, 0, length, i, i + 1))
    return groups


def _windows(groups: Iterable[tuple], cap: int) -> Iterator[list[tuple]]:
    """Batch covering groups into collective-buffer-size windows."""
    win: list[tuple] = []
    size = 0
    for g in groups:
        glen = g[1] - g[0]
        if win and size + glen > cap:
            yield win
            win, size = [], 0
        win.append(g)
        size += glen
    if win:
        yield win


def _extract(starts: list[int], blobs: list[bytes],
             off: int, length: int) -> bytes:
    """Carve ``[off, off+length)`` out of covering blobs (may span
    several consecutive covering extents)."""
    out = bytearray()
    pos = off
    end = off + length
    i = bisect_right(starts, pos) - 1
    while pos < end:
        s = starts[i]
        b = blobs[i]
        take = min(end, s + len(b)) - pos
        out += b[pos - s:pos - s + take]
        pos += take
        i += 1
    return bytes(out)


# ---------------------------------------------------------------------------
# independent data sieving
# ---------------------------------------------------------------------------

def sieved_readv(pfile: PFSFile, extents: list[Extent],
                 hints: CollectiveHints) -> tuple[bytes, float]:
    """Independent vectored read with data sieving.

    Falls through to the historical ``pfile.readv(extents)`` — byte- and
    stats-identical — whenever sieving is disabled or no hole gets
    merged; otherwise issues one vectored read of the covering extents
    and extracts the pieces in memory.
    """
    max_hole = _ds_threshold(hints.romio_ds_read, hints.ds_hole_threshold,
                             hints.ind_rd_buffer_size)
    if not extents or max_hole < 0:
        return pfile.readv(extents)
    runs = coalesce_extents(extents)
    groups = _plan_groups(runs, max_hole, hints.ind_rd_buffer_size)
    if all(g[2] == 0 for g in groups):
        return pfile.readv(extents)
    covering = [(s, e - s) for s, e, _h, _u, _i0, _i1 in groups]
    blob, elapsed = pfile.readv(covering)
    starts: list[int] = []
    blobs: list[bytes] = []
    pos = 0
    for s, e, _h, _u, _i0, _i1 in groups:
        starts.append(s)
        blobs.append(blob[pos:pos + e - s])
        pos += e - s
    out = b"".join(_extract(starts, blobs, off, n) for off, n in extents)
    account(pfile,
            sieve_reads=sum(1 for g in groups if g[2]),
            wasted_bytes=sum((e - s) - u for s, e, _h, u, *_ in groups),
            requests_before=len(extents),
            requests_after=len(covering))
    return out, elapsed


def sieved_writev(pfile: PFSFile, extents: list[Extent], data: bytes,
                  hints: CollectiveHints) -> float:
    """Independent vectored write with data sieving.

    Hole-free behavior is the historical ``pfile.writev``; hole-bearing
    run groups become atomic read-modify-writes of the covering extent
    (see :meth:`PFSFile.sieve_writev` for why that is concurrency-safe).
    """
    max_hole = _ds_threshold(hints.romio_ds_write, hints.ds_hole_threshold,
                             hints.ind_wr_buffer_size)
    if not extents or max_hole < 0:
        return pfile.writev(extents, data)
    runs = coalesce_extents(extents)
    groups = _plan_groups(runs, max_hole, hints.ind_wr_buffer_size)
    if all(g[2] == 0 for g in groups):
        return pfile.writev(extents, data)
    run_starts = [s for s, _n in runs]
    bufs = [bytearray(n) for _s, n in runs]
    pos = 0
    for off, length in extents:
        i = bisect_right(run_starts, off) - 1
        at = off - run_starts[i]
        bufs[i][at:at + length] = data[pos:pos + length]
        pos += length
    direct_ext: list[Extent] = []
    direct_data = bytearray()
    rmw: list[tuple[int, int, list[tuple[int, bytes]]]] = []
    waste = 0
    for s, e, holes, useful, i0, i1 in groups:
        if holes == 0:          # hole-free group is exactly one run
            direct_ext.append((s, e - s))
            direct_data += bufs[i0]
        else:
            pieces = [(run_starts[i], bytes(bufs[i])) for i in range(i0, i1)]
            rmw.append((s, e - s, pieces))
            waste += (e - s) - useful
    elapsed = pfile.sieve_writev((direct_ext, bytes(direct_data)), rmw)
    account(pfile,
            sieve_rmw=len(rmw),
            wasted_bytes=waste,
            requests_before=len(extents),
            requests_after=len(direct_ext) + len(rmw))
    return elapsed


# ---------------------------------------------------------------------------
# two-phase collective read
# ---------------------------------------------------------------------------

def _check_hints_agree(meta: list[tuple]) -> None:
    digests = {m[3] for m in meta}
    if len(digests) > 1:
        raise MPIFileError(
            "collective I/O hints differ across ranks; set them "
            "identically (File.Set_info is collective configuration)")


def two_phase_read(comm, pfile: PFSFile, extents: list[Extent],
                   hints: CollectiveHints) -> bytes:
    """Collective read through two-phase buffering; returns this rank's
    bytes, concatenated in data order.  ``extents`` must be clamped."""
    total = sum(n for _o, n in extents)
    lo = min(o for o, _n in extents) if extents else None
    hi = max(o + n for o, n in extents) if extents else None
    t0 = time.perf_counter()
    meta = comm.allgather((lo, hi, len(extents), hints.digest()))
    _check_hints_agree(meta)
    if comm.rank == 0:
        account(pfile, collectives=1,
                requests_before=sum(m[2] for m in meta))
    if hints.romio_cb_read == "disable":
        # every rank accesses the PFS itself (sieved); the allgather
        # above already provided the collective synchronization
        data, _t = sieved_readv(pfile, extents, hints)
        return data
    los = [m[0] for m in meta if m[0] is not None]
    if not los:
        return b""
    agg_lo = min(los)
    agg_hi = max(m[1] for m in meta if m[1] is not None)
    aggs = choose_aggregators(comm, hints)
    bounds = file_domains(agg_lo, agg_hi, len(aggs),
                          pfile.layout.stripe_size)
    mine = _domain_splits(extents, bounds)
    crash_point("server.kill.collective.exchange")
    requests = {agg: [(off, n) for off, n, _p in mine[d]]
                for d, agg in enumerate(aggs)}
    incoming = comm.exchange_p2p(
        requests,
        range(comm.size) if comm.rank in aggs else (),
        TAG_REQ)
    replies: dict[int, bytes] = {}
    if comm.rank in aggs:
        account(pfile, exchange_time=time.perf_counter() - t0)
        my_idx = aggs.index(comm.rank)
        serialize = pfile.faults_armed() and len(aggs) > 1
        if serialize and my_idx > 0:
            comm.recv(source=aggs[my_idx - 1], tag=TAG_TOKEN)
        crash_point("server.kill.collective.read")
        starts, blobs = _serve_read_domain(pfile, incoming, comm.size,
                                           hints)
        if serialize and my_idx + 1 < len(aggs):
            comm.send(None, aggs[my_idx + 1], tag=TAG_TOKEN)
        xbytes = 0
        for src in range(comm.size):
            reply = b"".join(_extract(starts, blobs, off, n)
                             for off, n in incoming[src])
            replies[src] = reply
            xbytes += len(reply)
        account(pfile, exchange_bytes=xbytes)
    parts = comm.exchange_p2p(replies, aggs, TAG_DATA)
    out = bytearray(total)
    for d, agg in enumerate(aggs):
        reply = parts[agg]
        cur = 0
        for _off, n, data_pos in mine[d]:
            out[data_pos:data_pos + n] = reply[cur:cur + n]
            cur += n
    return bytes(out)


def _serve_read_domain(pfile: PFSFile,
                       reqs_by_rank: dict[int, list[Extent]],
                       size: int, hints: CollectiveHints
                       ) -> tuple[list[int], list[bytes]]:
    """Phase B of a read: serve this aggregator's file domain with one
    vectored request per collective-buffer window, sieving hole-bearing
    windows.  Returns the covering ``(starts, blobs)`` index."""
    flat = [e for src in range(size) for e in reqs_by_rank[src]]
    if not flat:
        return [], []
    runs = coalesce_extents(flat)
    max_hole = _ds_threshold(hints.romio_ds_read, hints.ds_hole_threshold,
                             hints.cb_buffer_size)
    groups = _plan_groups(runs, max_hole, hints.cb_buffer_size)
    starts: list[int] = []
    blobs: list[bytes] = []
    io_t = 0.0
    after = sieve_n = waste = 0
    for window in _windows(groups, hints.cb_buffer_size):
        if any(g[2] for g in window):
            crash_point("server.kill.collective.sieve")
        covering = [(s, e - s) for s, e, *_ in window]
        blob, t = pfile.readv(covering)
        io_t += t
        after += len(covering)
        pos = 0
        for s, e, holes, useful, _i0, _i1 in window:
            starts.append(s)
            blobs.append(blob[pos:pos + e - s])
            pos += e - s
            sieve_n += 1 if holes else 0
            waste += (e - s) - useful
    account(pfile, sieve_reads=sieve_n, wasted_bytes=waste,
            requests_after=after, io_time=io_t)
    return starts, blobs


# ---------------------------------------------------------------------------
# two-phase collective write
# ---------------------------------------------------------------------------

def two_phase_write(comm, pfile: PFSFile, extents: list[Extent],
                    data: bytes, hints: CollectiveHints) -> None:
    """Collective write through two-phase buffering.  Overlapping
    writers are resolved in rank order (higher rank wins)."""
    lo = min(o for o, _n in extents) if extents else None
    hi = max(o + n for o, n in extents) if extents else None
    t0 = time.perf_counter()
    meta = comm.allgather((lo, hi, len(extents), hints.digest()))
    _check_hints_agree(meta)
    if comm.rank == 0:
        account(pfile, collectives=1,
                requests_before=sum(m[2] for m in meta))
    if hints.romio_cb_write == "disable":
        sieved_writev(pfile, extents, data, hints)
        comm.barrier()
        return
    los = [m[0] for m in meta if m[0] is not None]
    if not los:
        comm.barrier()
        return
    agg_lo = min(los)
    agg_hi = max(m[1] for m in meta if m[1] is not None)
    aggs = choose_aggregators(comm, hints)
    bounds = file_domains(agg_lo, agg_hi, len(aggs),
                          pfile.layout.stripe_size)
    mine = _domain_splits(extents, bounds)
    crash_point("server.kill.collective.exchange")
    payloads: dict[int, tuple[list[Extent], bytes]] = {}
    xbytes = 0
    for d, agg in enumerate(aggs):
        ext_d = [(off, n) for off, n, _p in mine[d]]
        buf_d = b"".join(data[p:p + n] for _off, n, p in mine[d])
        payloads[agg] = (ext_d, buf_d)
        xbytes += len(buf_d)
    account(pfile, exchange_bytes=xbytes)
    incoming = comm.exchange_p2p(
        payloads,
        range(comm.size) if comm.rank in aggs else (),
        TAG_REQ)
    if comm.rank in aggs:
        account(pfile, exchange_time=time.perf_counter() - t0)
        my_idx = aggs.index(comm.rank)
        serialize = pfile.faults_armed() and len(aggs) > 1
        if serialize and my_idx > 0:
            comm.recv(source=aggs[my_idx - 1], tag=TAG_TOKEN)
        crash_point("server.kill.collective.write")
        _serve_write_domain(pfile, incoming, comm.size, hints)
        if serialize and my_idx + 1 < len(aggs):
            comm.send(None, aggs[my_idx + 1], tag=TAG_TOKEN)
    comm.barrier()


def _serve_write_domain(pfile: PFSFile,
                        incoming: dict[int, tuple[list[Extent], bytes]],
                        size: int, hints: CollectiveHints) -> None:
    """Phase B of a write: assemble every rank's pieces into the
    coalesced runs of this file domain (rank order — higher rank wins
    overlaps), then flush per collective-buffer window: hole-free runs
    in one vectored write, hole-bearing groups as read-modify-writes."""
    flat = [e for src in range(size) for e in incoming[src][0]]
    if not flat:
        return
    runs = coalesce_extents(flat)
    run_starts = [s for s, _n in runs]
    bufs = [bytearray(n) for _s, n in runs]
    for src in range(size):
        exts, payload = incoming[src]
        pos = 0
        for off, length in exts:
            i = bisect_right(run_starts, off) - 1
            at = off - run_starts[i]
            bufs[i][at:at + length] = payload[pos:pos + length]
            pos += length
    max_hole = _ds_threshold(hints.romio_ds_write, hints.ds_hole_threshold,
                             hints.cb_buffer_size)
    groups = _plan_groups(runs, max_hole, hints.cb_buffer_size)
    io_t = 0.0
    after = rmw_n = waste = 0
    for window in _windows(groups, hints.cb_buffer_size):
        direct_ext: list[Extent] = []
        direct_data = bytearray()
        rmw: list[tuple[int, int, list[tuple[int, bytes]]]] = []
        for s, e, holes, useful, i0, i1 in window:
            if holes == 0:      # hole-free group is exactly one run
                direct_ext.append((s, e - s))
                direct_data += bufs[i0]
            else:
                pieces = [(run_starts[i], bytes(bufs[i]))
                          for i in range(i0, i1)]
                rmw.append((s, e - s, pieces))
                waste += (e - s) - useful
        if rmw:
            crash_point("server.kill.collective.sieve")
        io_t += pfile.sieve_writev((direct_ext, bytes(direct_data)), rmw)
        after += len(direct_ext) + len(rmw)
        rmw_n += len(rmw)
    account(pfile, sieve_rmw=rmw_n, wasted_bytes=waste,
            requests_after=after, io_time=io_t)
