"""The client stub for the array service daemon.

:class:`DRXClient` wraps one TCP connection to a :class:`DRXServer`
with the retry discipline the rest of the stack already uses:

* **Transient vs fatal.**  Connection loss, protocol desync, socket
  timeouts, ``RETRY_LATER`` backpressure and server errors whose
  ``transient`` flag is set (the server-side
  :func:`~repro.drx.resilience.is_transient` classification shipped in
  the ``ERR`` frame) are retried; everything else raises immediately.
* **Backoff.**  Retries sleep per the shared
  :class:`~repro.drx.resilience.BackoffPolicy` — bounded exponential
  backoff with deterministic seeded jitter, the exact policy
  :class:`~repro.drx.resilience.RetryingByteStore` applies to store
  faults, so client behaviour replays identically for a given seed.
* **Deadlines.**  The caller's budget is owned client-side as a
  :class:`~repro.core.watchdog.Deadline`; each attempt ships the
  *remaining* budget to the server (which enforces it mid-flight) and
  bounds its own socket waits with it.  A ``DEADLINE`` reply — or local
  expiry between retries — raises
  :class:`~repro.core.errors.DeadlineError`; the budget is spent, so
  the stub never retries past it.
* **Reconnect-with-resume, exactly once.**  Mutating verbs
  (:data:`~repro.serve.protocol.KEYED_VERBS`) are stamped with an
  idempotency key — ``(client_id, sid, seq)``, where ``sid`` is this
  stub instance's opaque session token and ``seq`` its monotonic
  request counter — assigned **once** per logical request, before the
  first attempt, and re-sent verbatim on every retry and reconnect.  A
  retry whose original OK frame was lost (torn wire, daemon kill
  between apply and send) is answered from the server's dedup table,
  so the mutation is applied exactly once no matter how many times the
  wire failed.

Each request counts its ``attempt`` number in the header, so the
daemon's per-client QoS records show how often this client was forced
to retry.

Retry accounting (pinned by a regression test): ``max_retries=N``
means **N + 1 total attempts** — one initial try plus N retries.  The
attempt counter increments *before* the give-up check and the backoff
sleep, so the loop raises after attempt ``N + 1`` fails (``attempt >
max_retries`` with ``attempt == N + 1``) and the first sleep is
``BackoffPolicy.delay(1)`` — the policy's base delay, not the doubled
``delay(2)`` an off-by-one would produce.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
import uuid

import numpy as np

from ..core.errors import DeadlineError, ServeError
from ..core.watchdog import Deadline
from ..drx.resilience import BackoffPolicy
from .protocol import (
    DEADLINE,
    ERR,
    KEYED_VERBS,
    MAX_FRAME,
    OK,
    REQ,
    RETRY_LATER,
    ConnectionClosed,
    ProtocolError,
    decode_error,
    recv_frame,
    send_frame,
)

__all__ = ["DRXClient"]

#: Slack added to the socket timeout over the request deadline, so the
#: server-side DEADLINE frame (sent *at* expiry) can still arrive.
_SOCKET_GRACE = 1.0
#: Socket timeout for requests without a deadline.
_DEFAULT_SOCKET_TIMEOUT = 30.0


class DRXClient:
    """A retrying, deadline-aware connection to one array daemon."""

    def __init__(self, address: tuple[str, int], client_id: str = "anon",
                 timeout: float | None = None, max_retries: int = 8,
                 backoff: BackoffPolicy | None = None, seed: int = 0,
                 max_frame: int = MAX_FRAME,
                 sleep=time.sleep, socket_wrapper=None) -> None:
        self.address = (address[0], int(address[1]))
        self.client_id = client_id
        self.timeout = timeout          #: default per-request budget
        self.max_retries = max_retries
        self.backoff = backoff if backoff is not None \
            else BackoffPolicy(base_delay=0.005, max_delay=0.25, seed=seed)
        self.max_frame = max_frame
        self._sleep = sleep
        #: test hook: wraps each fresh connection (fault injection)
        self._socket_wrapper = socket_wrapper
        self._sock: socket.socket | None = None
        #: idempotency-key state: a session token unique to this stub
        #: instance (two stubs sharing a client_id must not collide)
        #: plus a monotonic per-request counter
        self.session = uuid.uuid4().hex[:12]
        self._seq = itertools.count(1)
        self._seq_lock = threading.Lock()
        #: lifetime counters mirrored client-side
        self.retries = 0
        self.retry_later_seen = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "DRXClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _connection(self, budget: float | None) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                self.address,
                timeout=budget + _SOCKET_GRACE if budget is not None
                else _DEFAULT_SOCKET_TIMEOUT)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._socket_wrapper is not None:
                sock = self._socket_wrapper(sock)
            self._sock = sock
        return self._sock

    # ------------------------------------------------------------------
    def request(self, verb: str, header: dict | None = None,
                payload: bytes = b"",
                timeout: float | None = None) -> tuple[dict, bytes]:
        """Issue one request, retrying transient failures with backoff.

        Returns ``(header, payload)`` of the ``OK`` reply.  Raises
        :class:`DeadlineError` when the budget runs out (server- or
        client-side), :class:`ServeError` for fatal server errors.
        """
        deadline = Deadline(timeout if timeout is not None
                            else self.timeout)
        # the idempotency key is fixed BEFORE the attempt loop: every
        # retry — including reconnect-with-resume after a daemon
        # restart — re-issues the in-flight request under the same
        # (client, sid, seq), so the server dedups replays exactly-once
        idem = None
        if verb in KEYED_VERBS and "seq" not in (header or {}):
            with self._seq_lock:
                idem = next(self._seq)
        attempt = 0
        last: Exception | None = None
        while True:
            budget = deadline.remaining()
            if budget is not None and budget <= 0:
                raise DeadlineError(
                    f"deadline exceeded during {verb} request"
                    + (f" (last failure: {last})" if last else ""))
            req = dict(header or {})
            req["verb"] = verb
            req["client"] = self.client_id
            req["attempt"] = attempt
            if idem is not None:
                req["sid"] = self.session
                req["seq"] = idem
            if budget is not None:
                req["timeout"] = budget
            try:
                sock = self._connection(budget)
                sock.settimeout(budget + _SOCKET_GRACE
                                if budget is not None
                                else _DEFAULT_SOCKET_TIMEOUT)
                send_frame(sock, REQ, req, payload)
                kind, rhdr, rpayload = recv_frame(sock, self.max_frame)
            except socket.timeout as exc:
                self._drop_connection()
                last = exc
            except (ConnectionClosed, ProtocolError, OSError) as exc:
                # a dying/restarting daemon or a torn frame: reconnect
                self._drop_connection()
                last = exc
            else:
                if kind == OK:
                    return rhdr, rpayload
                if kind == DEADLINE:
                    raise DeadlineError(
                        rhdr.get("message", "deadline exceeded"))
                if kind == RETRY_LATER:
                    self.retry_later_seen += 1
                    last = ServeError(
                        f"server busy: {rhdr.get('reason', '?')}",
                        kind="RetryLater", transient=True)
                elif kind == ERR:
                    err = decode_error(rhdr)
                    if not err.transient:
                        raise err
                    last = err
                else:
                    self._drop_connection()
                    last = ProtocolError(f"unexpected reply kind {kind}")
            # accounting contract (see module docstring): attempt is
            # incremented before the give-up check, so max_retries=N
            # yields N+1 total attempts and the first sleep is delay(1)
            attempt += 1
            if attempt > self.max_retries:
                raise last if last is not None else ServeError(
                    f"{verb} failed after {self.max_retries} retries")
            self.retries += 1
            self._sleep(self.backoff.delay(attempt))

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def ping(self, echo=None, timeout: float | None = None) -> dict:
        return self.request("ping", {"echo": echo}, timeout=timeout)[0]

    def open(self, name: str, timeout: float | None = None) -> dict:
        return self.request("open", {"name": name}, timeout=timeout)[0]

    def create(self, name: str, bounds, chunk, dtype: str = "<f8",
               checksums: bool = False, codec: str = "none",
               exists_ok: bool = False,
               timeout: float | None = None) -> dict:
        return self.request("create", {
            "name": name, "bounds": list(bounds), "chunk": list(chunk),
            "dtype": dtype, "checksums": checksums, "codec": codec,
            "exists_ok": exists_ok}, timeout=timeout)[0]

    def read(self, name: str, lo, hi,
             timeout: float | None = None) -> np.ndarray:
        hdr, payload = self.request(
            "read", {"name": name, "lo": list(lo), "hi": list(hi)},
            timeout=timeout)
        arr = np.frombuffer(payload, dtype=hdr["dtype"])
        return arr.reshape(hdr["shape"]).copy()

    def write(self, name: str, lo, values,
              timeout: float | None = None, _delay: float = 0.0) -> dict:
        values = np.ascontiguousarray(values)
        header = {"name": name, "lo": list(lo),
                  "shape": list(values.shape),
                  "dtype": values.dtype.str}
        if _delay:
            header["_delay"] = _delay
        return self.request("write", header, values.tobytes(),
                            timeout=timeout)[0]

    def extend(self, name: str, dim: int | None = None,
               by: int | None = None, to=None,
               timeout: float | None = None) -> dict:
        if to is not None:
            header = {"name": name, "to": list(to)}
        else:
            header = {"name": name, "dim": int(dim), "by": int(by)}
        return self.request("extend", header, timeout=timeout)[0]

    def flush(self, name: str, timeout: float | None = None) -> dict:
        return self.request("flush", {"name": name}, timeout=timeout)[0]

    def snapshot(self, name: str, dest: str,
                 timeout: float | None = None) -> dict:
        return self.request("snapshot", {"name": name, "dest": dest},
                            timeout=timeout)[0]

    def scrub(self, name: str, timeout: float | None = None) -> dict:
        return self.request("scrub", {"name": name}, timeout=timeout)[0]

    def stats(self, timeout: float | None = None) -> dict:
        return self.request("stats", timeout=timeout)[0]

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> dict:
        return self.request("shutdown", {"drain": drain},
                            timeout=timeout)[0]
