"""The client stub for the array service daemon.

:class:`DRXClient` wraps one TCP connection to a :class:`DRXServer`
with the retry discipline the rest of the stack already uses:

* **Transient vs fatal.**  Connection loss, protocol desync, socket
  timeouts, ``RETRY_LATER`` backpressure and server errors whose
  ``transient`` flag is set (the server-side
  :func:`~repro.drx.resilience.is_transient` classification shipped in
  the ``ERR`` frame) are retried; everything else raises immediately.
* **Backoff.**  Retries sleep per the shared
  :class:`~repro.drx.resilience.BackoffPolicy` — bounded exponential
  backoff with deterministic seeded jitter, the exact policy
  :class:`~repro.drx.resilience.RetryingByteStore` applies to store
  faults, so client behaviour replays identically for a given seed.
* **Deadlines.**  The caller's budget is owned client-side as a
  :class:`~repro.core.watchdog.Deadline`; each attempt ships the
  *remaining* budget to the server (which enforces it mid-flight) and
  bounds its own socket waits with it.  A ``DEADLINE`` reply — or local
  expiry between retries — raises
  :class:`~repro.core.errors.DeadlineError`; the budget is spent, so
  the stub never retries past it.
* **Reconnect-with-resume, exactly once.**  Mutating verbs
  (:data:`~repro.serve.protocol.KEYED_VERBS`) are stamped with an
  idempotency key — ``(client_id, sid, seq)``, where ``sid`` is this
  stub instance's opaque session token and ``seq`` its monotonic
  request counter — assigned **once** per logical request, before the
  first attempt, and re-sent verbatim on every retry and reconnect.  A
  retry whose original OK frame was lost (torn wire, daemon kill
  between apply and send) is answered from the server's dedup table,
  so the mutation is applied exactly once no matter how many times the
  wire failed.

Each request counts its ``attempt`` number in the header, so the
daemon's per-client QoS records show how often this client was forced
to retry.

Retry accounting (pinned by a regression test): ``max_retries=N``
means **N + 1 total attempts** — one initial try plus N retries.  The
attempt counter increments *before* the give-up check and the backoff
sleep, so the loop raises after attempt ``N + 1`` fails (``attempt >
max_retries`` with ``attempt == N + 1``) and the first sleep is
``BackoffPolicy.delay(1)`` — the policy's base delay, not the doubled
``delay(2)`` an off-by-one would produce.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
import uuid

import numpy as np

from ..core.errors import DeadlineError, ServeError
from ..core.watchdog import Deadline
from ..drx.resilience import BackoffPolicy
from .protocol import (
    BATCHABLE_VERBS,
    DEADLINE,
    ERR,
    KEYED_VERBS,
    MAX_FRAME,
    MAX_PIPELINE_DEPTH,
    OK,
    REQ,
    RETRY_LATER,
    ConnectionClosed,
    ProtocolError,
    decode_error,
    recv_frame,
    send_frame,
    split_payload,
)

__all__ = ["DRXClient", "Pipeline", "PendingReply"]

#: Slack added to the socket timeout over the request deadline, so the
#: server-side DEADLINE frame (sent *at* expiry) can still arrive.
_SOCKET_GRACE = 1.0
#: Socket timeout for requests without a deadline.
_DEFAULT_SOCKET_TIMEOUT = 30.0


def _decode_array(hdr: dict, payload) -> np.ndarray:
    """A read reply's payload as a writable zero-copy ndarray (the
    payload buffer is private to its reply frame, so mutating the
    array is safe and cannot alias another reply's data)."""
    arr = np.frombuffer(payload, dtype=hdr["dtype"])
    return arr.reshape(hdr["shape"])


class DRXClient:
    """A retrying, deadline-aware connection to one array daemon."""

    def __init__(self, address: tuple[str, int], client_id: str = "anon",
                 timeout: float | None = None, max_retries: int = 8,
                 backoff: BackoffPolicy | None = None, seed: int = 0,
                 max_frame: int = MAX_FRAME,
                 sleep=time.sleep, socket_wrapper=None,
                 resolver=None) -> None:
        self.address = (address[0], int(address[1]))
        #: optional ``() -> (host, port)`` consulted before every fresh
        #: connection — a routing layer (the shard ring) owns the
        #: address, so a reconnect after a shard failure re-resolves
        #: instead of pinning the dead endpoint
        self.resolver = resolver
        self.client_id = client_id
        self.timeout = timeout          #: default per-request budget
        self.max_retries = max_retries
        self.backoff = backoff if backoff is not None \
            else BackoffPolicy(base_delay=0.005, max_delay=0.25, seed=seed)
        self.max_frame = max_frame
        self._sleep = sleep
        #: test hook: wraps each fresh connection (fault injection)
        self._socket_wrapper = socket_wrapper
        self._sock: socket.socket | None = None
        #: idempotency-key state: a session token unique to this stub
        #: instance (two stubs sharing a client_id must not collide)
        #: plus a monotonic per-request counter
        self.session = uuid.uuid4().hex[:12]
        self._seq = itertools.count(1)
        self._seq_lock = threading.Lock()
        #: lifetime counters mirrored client-side
        self.retries = 0
        self.retry_later_seen = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "DRXClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _new_socket(self, budget: float | None) -> socket.socket:
        """One fresh connection: resolver-refreshed address, NODELAY,
        wrapped by the fault-injection hook.  Shared by the synchronous
        path and :class:`Pipeline`."""
        if self.resolver is not None:
            host, port = self.resolver()
            self.address = (host, int(port))
        sock = socket.create_connection(
            self.address,
            timeout=budget + _SOCKET_GRACE if budget is not None
            else _DEFAULT_SOCKET_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self._socket_wrapper is not None:
            sock = self._socket_wrapper(sock)
        return sock

    def _connection(self, budget: float | None) -> socket.socket:
        if self._sock is None:
            self._sock = self._new_socket(budget)
        return self._sock

    # ------------------------------------------------------------------
    def request(self, verb: str, header: dict | None = None,
                payload: bytes = b"",
                timeout: float | None = None) -> tuple[dict, bytes]:
        """Issue one request, retrying transient failures with backoff.

        Returns ``(header, payload)`` of the ``OK`` reply.  Raises
        :class:`DeadlineError` when the budget runs out (server- or
        client-side), :class:`ServeError` for fatal server errors.
        """
        deadline = Deadline(timeout if timeout is not None
                            else self.timeout)
        # the idempotency key is fixed BEFORE the attempt loop: every
        # retry — including reconnect-with-resume after a daemon
        # restart — re-issues the in-flight request under the same
        # (client, sid, seq), so the server dedups replays exactly-once
        idem = None
        if verb in KEYED_VERBS and "seq" not in (header or {}):
            with self._seq_lock:
                idem = next(self._seq)
        attempt = 0
        last: Exception | None = None
        while True:
            budget = deadline.remaining()
            if budget is not None and budget <= 0:
                raise DeadlineError(
                    f"deadline exceeded during {verb} request"
                    + (f" (last failure: {last})" if last else ""))
            req = dict(header or {})
            req["verb"] = verb
            req["client"] = self.client_id
            req["attempt"] = attempt
            if idem is not None:
                req["sid"] = self.session
                req["seq"] = idem
            if budget is not None:
                req["timeout"] = budget
            try:
                sock = self._connection(budget)
                sock.settimeout(budget + _SOCKET_GRACE
                                if budget is not None
                                else _DEFAULT_SOCKET_TIMEOUT)
                send_frame(sock, REQ, req, payload)
                kind, rhdr, rpayload = recv_frame(sock, self.max_frame)
            except socket.timeout as exc:
                self._drop_connection()
                last = exc
            except (ConnectionClosed, ProtocolError, OSError) as exc:
                # a dying/restarting daemon or a torn frame: reconnect
                self._drop_connection()
                last = exc
            else:
                if kind == OK:
                    return rhdr, rpayload
                if kind == DEADLINE:
                    raise DeadlineError(
                        rhdr.get("message", "deadline exceeded"))
                if kind == RETRY_LATER:
                    self.retry_later_seen += 1
                    last = ServeError(
                        f"server busy: {rhdr.get('reason', '?')}",
                        kind="RetryLater", transient=True)
                elif kind == ERR:
                    err = decode_error(rhdr)
                    if not err.transient:
                        raise err
                    last = err
                else:
                    self._drop_connection()
                    last = ProtocolError(f"unexpected reply kind {kind}")
            # accounting contract (see module docstring): attempt is
            # incremented before the give-up check, so max_retries=N
            # yields N+1 total attempts and the first sleep is delay(1)
            attempt += 1
            if attempt > self.max_retries:
                raise last if last is not None else ServeError(
                    f"{verb} failed after {self.max_retries} retries")
            self.retries += 1
            self._sleep(self.backoff.delay(attempt))

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def ping(self, echo=None, timeout: float | None = None) -> dict:
        return self.request("ping", {"echo": echo}, timeout=timeout)[0]

    def open(self, name: str, timeout: float | None = None) -> dict:
        return self.request("open", {"name": name}, timeout=timeout)[0]

    def create(self, name: str, bounds, chunk, dtype: str = "<f8",
               checksums: bool = False, codec: str = "none",
               exists_ok: bool = False,
               timeout: float | None = None) -> dict:
        return self.request("create", {
            "name": name, "bounds": list(bounds), "chunk": list(chunk),
            "dtype": dtype, "checksums": checksums, "codec": codec,
            "exists_ok": exists_ok}, timeout=timeout)[0]

    def read(self, name: str, lo, hi,
             timeout: float | None = None) -> np.ndarray:
        """Read the box ``[lo, hi)``.

        Zero-copy: the returned array is a view over the received
        reply's payload buffer (``np.frombuffer``, no copy).  The
        buffer is writable and private to this reply, so callers may
        mutate the result in place exactly as they could when ``read``
        returned a copy.
        """
        hdr, payload = self.request(
            "read", {"name": name, "lo": list(lo), "hi": list(hi)},
            timeout=timeout)
        return _decode_array(hdr, payload)

    def write(self, name: str, lo, values,
              timeout: float | None = None, _delay: float = 0.0) -> dict:
        values = np.ascontiguousarray(values)
        header = {"name": name, "lo": list(lo),
                  "shape": list(values.shape),
                  "dtype": values.dtype.str}
        if _delay:
            header["_delay"] = _delay
        return self.request("write", header, values.tobytes(),
                            timeout=timeout)[0]

    def extend(self, name: str, dim: int | None = None,
               by: int | None = None, to=None,
               timeout: float | None = None) -> dict:
        if to is not None:
            header = {"name": name, "to": list(to)}
        else:
            header = {"name": name, "dim": int(dim), "by": int(by)}
        return self.request("extend", header, timeout=timeout)[0]

    def flush(self, name: str, timeout: float | None = None) -> dict:
        return self.request("flush", {"name": name}, timeout=timeout)[0]

    def snapshot(self, name: str, dest: str,
                 timeout: float | None = None) -> dict:
        return self.request("snapshot", {"name": name, "dest": dest},
                            timeout=timeout)[0]

    def scrub(self, name: str, timeout: float | None = None) -> dict:
        return self.request("scrub", {"name": name}, timeout=timeout)[0]

    def stats(self, timeout: float | None = None) -> dict:
        return self.request("stats", timeout=timeout)[0]

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> dict:
        return self.request("shutdown", {"drain": drain},
                            timeout=timeout)[0]

    # ------------------------------------------------------------------
    # batching and pipelining
    # ------------------------------------------------------------------
    def _stamp_key(self, header: dict) -> None:
        """Assign the idempotency key for a keyed verb, once, before
        the first transmission — retries re-send it verbatim."""
        if header.get("verb") in KEYED_VERBS and "seq" not in header:
            with self._seq_lock:
                header["sid"] = self.session
                header["seq"] = next(self._seq)

    def batch(self, ops, timeout: float | None = None,
              return_exceptions: bool = False) -> list:
        """Run several operations in one request frame (one round trip).

        ``ops`` is a list of dicts, each carrying a ``verb`` (one of
        :data:`~repro.serve.protocol.BATCHABLE_VERBS`), its verb
        parameters, and optionally ``payload`` (raw bytes — a write's
        array data).  Idempotency keys are stamped per keyed op before
        the first transmission; a transport-level retry (or a partial
        re-issue after per-op ``RETRY_LATER``) re-sends the original
        keys, so mutations stay exactly-once even when a batch is torn
        mid-wire.

        Returns a list aligned with ``ops``: ``(header, payload)`` per
        successful op (``payload`` is a zero-copy slice of the reply
        frame).  Failed ops raise — or, with
        ``return_exceptions=True``, appear as exception objects in the
        returned list instead.
        """
        deadline = Deadline(timeout if timeout is not None
                            else self.timeout)
        prepared: list[tuple[dict, bytes]] = []
        for op in ops:
            oh = dict(op)
            payload = bytes(oh.pop("payload", b""))
            if oh.get("verb") not in BATCHABLE_VERBS:
                raise ServeError(
                    f"verb {oh.get('verb')!r} not allowed in a batch")
            self._stamp_key(oh)
            oh["nbytes"] = len(payload)
            prepared.append((oh, payload))
        outcomes: list = [None] * len(prepared)
        pending = list(range(len(prepared)))
        attempt = 0
        while pending:
            hdrs = [prepared[i][0] for i in pending]
            body = b"".join(prepared[i][1] for i in pending)
            rhdr, rpayload = self.request(
                "batch", {"ops": hdrs}, body,
                timeout=deadline.remaining())
            results = rhdr["results"]
            if len(results) != len(pending):
                raise ProtocolError(
                    f"batch reply carries {len(results)} results for "
                    f"{len(pending)} ops")
            pieces = split_payload(results, rpayload)
            retry: list[int] = []
            last: Exception | None = None
            for idx, res, piece in zip(pending, results, pieces):
                kind, h = int(res["kind"]), res["header"]
                if kind == OK:
                    outcomes[idx] = (h, piece)
                elif kind == DEADLINE:
                    outcomes[idx] = DeadlineError(
                        h.get("message", "deadline exceeded"))
                elif kind == RETRY_LATER:
                    self.retry_later_seen += 1
                    last = ServeError(
                        f"server busy: {h.get('reason', '?')}",
                        kind="RetryLater", transient=True)
                    retry.append(idx)
                else:
                    err = decode_error(h)
                    if err.transient:
                        last = err
                        retry.append(idx)
                    else:
                        outcomes[idx] = err
            if retry:
                attempt += 1
                if attempt > self.max_retries:
                    for idx in retry:
                        outcomes[idx] = last
                    retry = []
                else:
                    self.retries += 1
                    self._sleep(self.backoff.delay(attempt))
            pending = retry
        if not return_exceptions:
            for out in outcomes:
                if isinstance(out, BaseException):
                    raise out
        return outcomes

    def pipeline(self, depth: int = 64) -> "Pipeline":
        """A pipelined connection: many requests in flight, responses
        matched by sequence id (see :class:`Pipeline`)."""
        return Pipeline(self, depth=depth)


class PendingReply:
    """The eventual reply to one pipelined request."""

    __slots__ = ("verb", "rid", "_event", "_value", "_error", "_decode",
                 "_deadline")

    def __init__(self, verb: str, rid: int, deadline: Deadline,
                 decode=None) -> None:
        self.verb = verb
        self.rid = rid
        self._deadline = deadline
        self._decode = decode
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block until the reply lands; raises the transported failure.

        The wait is bounded by the request's own deadline (raising
        :class:`DeadlineError` on expiry) and, optionally, by
        ``timeout`` seconds (raising :class:`TimeoutError`).
        """
        while not self._event.is_set():
            budget = self._deadline.remaining()
            if budget is not None and budget <= 0:
                raise DeadlineError(
                    f"deadline exceeded waiting for {self.verb} reply")
            wait = _WAIT_POLL if budget is None else min(
                _WAIT_POLL, budget)
            if timeout is not None:
                if timeout <= 0:
                    raise TimeoutError(
                        f"timed out waiting for {self.verb} reply")
                wait = min(wait, timeout)
                timeout -= wait
            self._event.wait(wait + _SOCKET_GRACE
                             if wait == budget else wait)
        if self._error is not None:
            raise self._error
        if self._decode is not None:
            value, self._decode = self._decode(*self._value), None
            self._value = value
        return self._value

    # internal — called by the pipeline's receiver machinery
    def _fulfill(self, hdr: dict, payload) -> None:
        self._value = (hdr, payload)
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()


#: Poll slice for PendingReply.result — bounds how late a deadline
#: expiry with no server reply is noticed.
_WAIT_POLL = 0.05


class _PendingState:
    """Pipeline-internal bookkeeping for one in-flight request."""

    __slots__ = ("header", "payload", "deadline", "attempt", "last",
                 "reply")

    def __init__(self, header: dict, payload: bytes, deadline: Deadline,
                 reply: PendingReply) -> None:
        self.header = header
        self.payload = payload
        self.deadline = deadline
        self.attempt = 0
        self.last: BaseException | None = None
        self.reply = reply


class Pipeline:
    """Many requests in flight on one connection, replies matched by id.

    Each :meth:`submit` stamps the request with a connection-unique
    ``rid`` and returns a :class:`PendingReply` immediately; a receiver
    thread matches the server's (possibly out-of-order) replies back by
    ``rid``.  The retry discipline mirrors :meth:`DRXClient.request`:

    * **Reconnect-with-resume.**  A torn connection (daemon restart,
      injected fault) fails nothing by itself: the receiver reconnects
      — re-resolving the address through the owning client's
      ``resolver``, so a shard that moved is found at its new home —
      and re-sends every outstanding request in ``rid`` order under
      its **original idempotency key**; the server's dedup table keeps
      re-applied mutations exactly-once.
    * **Per-request backpressure.**  ``RETRY_LATER`` (and transient
      ERR) replies re-send just that request after the shared backoff,
      leaving the rest of the window in flight.
    * **Deadlines.**  Each request owns its budget; the remaining
      budget ships with every (re)transmission and bounds the caller's
      :meth:`PendingReply.result` wait.

    Ordering: requests in one pipeline may *execute* in any order —
    callers who need op B to observe op A must wait for A's reply
    before submitting B (or put both in one ``batch`` frame, which
    executes in list order).

    ``depth`` bounds the in-flight window: past it, :meth:`submit`
    blocks until a reply frees a slot.  It is clamped to
    :data:`~repro.serve.protocol.MAX_PIPELINE_DEPTH` — the wire-level
    cap the server's dedup window is sized against, so every request
    this pipeline could re-send after a torn connection still has its
    result cached (exactly-once needs the whole window covered).
    """

    def __init__(self, client: DRXClient, depth: int = 64) -> None:
        self.client = client
        self.depth = max(1, min(int(depth), MAX_PIPELINE_DEPTH))
        self._slots = threading.BoundedSemaphore(self.depth)
        self._state = threading.Lock()   # outstanding dict + socket ref
        self._send = threading.Lock()    # wire writes stay whole-frame
        self._rid = itertools.count(1)
        self._outstanding: dict[int, _PendingState] = {}
        self._sock: socket.socket | None = None
        self._recv: threading.Thread | None = None
        self._closed = False
        self._round = 0                  #: consecutive failed reconnects
        self.resends = 0                 #: requests re-transmitted

    # ------------------------------------------------------------------
    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(drain=exc_type is None)

    def submit(self, verb: str, header: dict | None = None,
               payload: bytes = b"", timeout: float | None = None,
               decode=None) -> PendingReply:
        """Send one request without waiting; returns its
        :class:`PendingReply`."""
        if self._closed:
            raise ServeError("pipeline is closed")
        self._slots.acquire()
        try:
            deadline = Deadline(timeout if timeout is not None
                                else self.client.timeout)
            hdr = dict(header or {})
            hdr["verb"] = verb
            hdr["client"] = self.client.client_id
            self.client._stamp_key(hdr)
            with self._state:
                rid = next(self._rid)
                hdr["rid"] = rid
                st = _PendingState(hdr, bytes(payload), deadline,
                                   PendingReply(verb, rid, deadline,
                                                decode))
                self._outstanding[rid] = st
                sock = self._sock
        except BaseException:
            self._slots.release()
            raise
        # connect/send BEFORE waking the receiver: a receiver that saw
        # "no socket + outstanding" mid-first-connect would burn a
        # spurious retry round on a request that never failed
        if sock is None:
            sock = self._try_connect()
            if sock is None:
                st.last = ConnectionClosed("connect failed")
        if sock is not None:
            try:
                self._send_state(sock, st)
            except (OSError, ProtocolError) as exc:
                st.last = exc
                self._connection_lost(sock)
        with self._state:
            self._ensure_receiver()
        # not sent yet?  The receiver's retry round re-sends it.
        return st.reply

    # ------------------------------------------------------------------
    # convenience verbs (mirror DRXClient, returning PendingReply)
    # ------------------------------------------------------------------
    def ping(self, echo=None, timeout=None) -> PendingReply:
        return self.submit("ping", {"echo": echo}, timeout=timeout,
                           decode=lambda h, p: h)

    def read(self, name: str, lo, hi, timeout=None) -> PendingReply:
        return self.submit(
            "read", {"name": name, "lo": list(lo), "hi": list(hi)},
            timeout=timeout, decode=_decode_array)

    def write(self, name: str, lo, values, timeout=None,
              _delay: float = 0.0) -> PendingReply:
        values = np.ascontiguousarray(values)
        header = {"name": name, "lo": list(lo),
                  "shape": list(values.shape),
                  "dtype": values.dtype.str}
        if _delay:
            header["_delay"] = _delay
        return self.submit("write", header, values.tobytes(),
                           timeout=timeout, decode=lambda h, p: h)

    def extend(self, name: str, dim=None, by=None, to=None,
               timeout=None) -> PendingReply:
        if to is not None:
            header = {"name": name, "to": list(to)}
        else:
            header = {"name": name, "dim": int(dim), "by": int(by)}
        return self.submit("extend", header, timeout=timeout,
                           decode=lambda h, p: h)

    def flush(self, name: str, timeout=None) -> PendingReply:
        return self.submit("flush", {"name": name}, timeout=timeout,
                           decode=lambda h, p: h)

    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted request has its reply (or has
        failed); per-reply failures surface from their own
        :meth:`PendingReply.result` calls, not here."""
        with self._state:
            replies = [st.reply for st in self._outstanding.values()]
        for reply in replies:
            try:
                reply.result(timeout=timeout)
            except (DeadlineError, ServeError, ProtocolError, OSError,
                    TimeoutError):
                pass

    def close(self, drain: bool = True,
              timeout: float | None = None) -> None:
        if drain and not self._closed:
            self.drain(timeout=timeout)
        with self._state:
            self._closed = True
            sock, self._sock = self._sock, None
            for st in list(self._outstanding.values()):
                self._finish_locked(
                    st, error=st.last if st.last is not None
                    else ConnectionClosed("pipeline closed"))
            recv = self._recv
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if recv is not None and recv is not threading.current_thread():
            recv.join(timeout=2.0)

    @property
    def outstanding(self) -> int:
        with self._state:
            return len(self._outstanding)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_receiver(self) -> None:
        # caller holds self._state
        if self._recv is None or not self._recv.is_alive():
            self._recv = threading.Thread(
                target=self._recv_loop, name="drx-pipeline-recv",
                daemon=True)
            self._recv.start()

    def _try_connect(self) -> socket.socket | None:
        """Connect (resolver-refreshed) and install the socket; returns
        ``None`` on failure — the retry machinery takes over."""
        try:
            sock = self.client._new_socket(None)
        except OSError:
            return None
        with self._state:
            if self._closed:
                pass
            elif self._sock is None:
                self._sock = sock
                return sock
            else:
                sock, installed = self._sock, sock
                try:
                    installed.close()       # lost the race: keep first
                except OSError:
                    pass
                return sock
        try:
            sock.close()
        except OSError:
            pass
        return None

    def _send_state(self, sock: socket.socket, st: _PendingState) -> None:
        hdr = dict(st.header)
        hdr["attempt"] = st.attempt
        budget = st.deadline.remaining()
        if budget is not None:
            hdr["timeout"] = max(0.0, budget)
        with self._send:
            send_frame(sock, REQ, hdr, st.payload)

    def _connection_lost(self,
                         failed: socket.socket | None = None) -> None:
        """Tear down after a send/recv failure on ``failed``.  The
        installed socket is cleared only while it is still the one
        that failed: a concurrent retry round may have already swapped
        in a fresh, healthy connection, which must survive — killing
        it would force another reconnect round for nothing."""
        with self._state:
            if failed is not None and self._sock is not failed:
                sock = failed        # stale snapshot: close it alone
            else:
                sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _finish_locked(self, st: _PendingState, result=None,
                       error=None) -> None:
        # caller holds self._state
        if self._outstanding.pop(st.header["rid"], None) is None:
            return
        if error is not None:
            st.reply._fail(error)
        else:
            st.reply._fulfill(*result)
        self._slots.release()

    def _finish(self, st: _PendingState, result=None, error=None) -> None:
        with self._state:
            self._finish_locked(st, result, error)

    def _recv_loop(self) -> None:
        while True:
            with self._state:
                if self._closed and not self._outstanding:
                    return
                sock = self._sock
                idle = not self._outstanding
            if sock is None:
                if idle and not self._closed:
                    # nothing to recover: go dormant, submit() restarts
                    with self._state:
                        if not self._outstanding:
                            self._recv = None
                            return
                    continue
                if not self._retry_round():
                    return
                continue
            try:
                kind, hdr, payload = recv_frame(sock,
                                                self.client.max_frame)
            except (ConnectionClosed, ProtocolError, OSError,
                    socket.timeout) as exc:
                with self._state:
                    for st in self._outstanding.values():
                        st.last = exc
                self._connection_lost(sock)
                continue
            self._deliver(sock, kind, hdr, payload)

    def _retry_round(self) -> bool:
        """One reconnect + resend-all round; ``False`` ends the
        receiver."""
        with self._state:
            if self._closed:
                for st in list(self._outstanding.values()):
                    self._finish_locked(
                        st, error=st.last if st.last is not None else
                        ConnectionClosed("pipeline closed"))
                return False
            states = list(self._outstanding.values())
            # cull requests out of budget before burning a reconnect
            survivors = []
            for st in states:
                st.attempt += 1
                remaining = st.deadline.remaining()
                if remaining is not None and remaining <= 0:
                    self._finish_locked(st, error=DeadlineError(
                        f"deadline exceeded during {st.header['verb']} "
                        f"retry" + (f" (last failure: {st.last})"
                                    if st.last else "")))
                elif st.attempt > self.client.max_retries:
                    self._finish_locked(
                        st, error=st.last if st.last is not None else
                        ServeError(f"{st.header['verb']} failed after "
                                   f"{self.client.max_retries} retries"))
                else:
                    survivors.append(st)
        if not survivors:
            return True          # loop re-checks: idle exit or closed
        self._round += 1
        self.client.retries += len(survivors)
        self.resends += len(survivors)
        self.client._sleep(self.client.backoff.delay(
            min(self._round, 16)))
        sock = self._try_connect()
        if sock is None:
            exc = ConnectionClosed("reconnect failed")
            with self._state:
                for st in survivors:
                    if st.header["rid"] in self._outstanding:
                        st.last = exc
            return True
        self._round = 0
        # re-send in rid order under the ORIGINAL idempotency keys —
        # the server answers already-applied mutations from its dedup
        # table, so the wire failure is invisible in the array
        for st in sorted(survivors, key=lambda s: s.header["rid"]):
            with self._state:
                if st.header["rid"] not in self._outstanding:
                    continue
            try:
                self._send_state(sock, st)
            except (OSError, ProtocolError):
                self._connection_lost(sock)
                return True
        return True

    def _deliver(self, sock: socket.socket, kind: int, hdr: dict,
                 payload) -> None:
        rid = hdr.get("rid")
        with self._state:
            st = self._outstanding.get(rid)
        if st is None:
            return          # late reply for an abandoned request: drop
        if kind == OK:
            self._finish(st, result=(hdr, payload))
        elif kind == DEADLINE:
            self._finish(st, error=DeadlineError(
                hdr.get("message", "deadline exceeded")))
        elif kind == RETRY_LATER:
            self.client.retry_later_seen += 1
            self._resend_later(st, ServeError(
                f"server busy: {hdr.get('reason', '?')}",
                kind="RetryLater", transient=True))
        elif kind == ERR:
            err = decode_error(hdr)
            if err.transient:
                self._resend_later(st, err)
            else:
                self._finish(st, error=err)
        else:
            with self._state:
                for s in self._outstanding.values():
                    s.last = ProtocolError(
                        f"unexpected reply kind {kind}")
            self._connection_lost(sock)

    def _resend_later(self, st: _PendingState, exc: Exception) -> None:
        """Schedule one request's re-transmission after backoff, off
        the receiver thread so other replies keep draining."""
        st.last = exc
        st.attempt += 1
        if st.attempt > self.client.max_retries:
            self._finish(st, error=exc)
            return
        remaining = st.deadline.remaining()
        if remaining is not None and remaining <= 0:
            self._finish(st, error=DeadlineError(
                f"deadline exceeded during {st.header['verb']} retry "
                f"(last failure: {exc})"))
            return
        self.client.retries += 1
        self.resends += 1
        delay = self.client.backoff.delay(st.attempt)
        timer = threading.Timer(delay, self._resend_one, args=(st,))
        timer.daemon = True
        timer.start()

    def _resend_one(self, st: _PendingState) -> None:
        with self._state:
            if st.header["rid"] not in self._outstanding:
                return
            sock = self._sock
        if sock is None:
            return           # the reconnect round will carry it
        try:
            self._send_state(sock, st)
        except (OSError, ProtocolError):
            self._connection_lost(sock)
