"""Per-array write-ahead journal for the serve daemon.

Durability gap this closes: PR 7's daemon keeps acknowledged writes
only in the shared Mpool until the next ``flush``; an abrupt ``kill
-9`` between the chunk writes and the ``.xmd`` commit loses them.  The
journal records every mutating request *before* it touches the Mpool
and fsyncs *before* the OK frame leaves the daemon, so a restart can
replay exactly the acknowledged mutations (see
:mod:`repro.serve.recovery`).

Record framing (all integers big-endian)::

    +-----------+---------+-------+--------------+--------+---------+
    | body_len  | crc32   | rtype | header_len   | header | payload |
    | uint32    | uint32  | uint8 | uint32       | JSON   | raw     |
    +-----------+---------+-------+--------------+--------+---------+

``body_len`` counts everything after the CRC field; the CRC covers the
same bytes, so recovery validates each record independently and stops
at the first record whose length or CRC does not check out — the torn
tail a crash mid-append leaves behind.

Record types, one mutation = one *transaction*:

``BEGIN``
    The intent: verb, target box / shape, dtype, and the request's
    ``(client, sid, seq)`` idempotency key.  Appended (with ``DATA``)
    **before** the mutation touches the Mpool — redo logging.
``DATA``
    The raw payload bytes of a ``write`` (omitted for ``extend``).
``COMMIT``
    The transaction's result header (sequence number, shape).  Appended
    after the in-memory apply succeeded; a transaction is *committed*
    iff its COMMIT record is present.  COMMIT records double as the
    durable dedup table: recovery re-seeds ``key → result`` from them,
    so a retry replayed after a crash is answered from cache instead of
    re-applied.
``ABORT``
    Cancels an already-committed transaction whose apply then failed
    in the live process (deadline, store fault).  The client was
    answered with an error, so recovery must neither replay the
    mutation nor seed the dedup table with a success result — the
    ``extend`` path journals its COMMIT *before* applying (see the
    ordering note there) and appends ABORT on apply failure.
``CHECKPOINT``
    Written alone by :meth:`Journal.rotate` after the array itself was
    flushed: everything the journal recorded is now durable in the
    array, so the journal restarts from just this record, which carries
    the dedup-table snapshot forward.

**Ordering rules** (what makes replay correct):

1. ``BEGIN``/``DATA`` are appended while the request holds its range
   locks, so for any two *conflicting* mutations the journal append
   order equals the lock-serialization order — replay in record order
   reproduces the order clients observed.
2. ``COMMIT`` is appended before the locks are released.
3. The fsync (:meth:`Journal.sync`) happens after lock release — many
   requests' records batch under one physical ``fsync`` (*group
   commit*), and only after its covering sync returns does a request
   send OK.  A crash before the sync may lose the COMMIT: the request
   was never acknowledged, the client retries, and either the recovered
   dedup table answers it (COMMIT survived) or the mutation is simply
   re-applied (it did not) — exactly once either way.

The journal bypasses the Mpool entirely: it appends straight to its
own :class:`~repro.drx.storage.ByteStore` (``<name>.xj`` next to the
``.xmd``/``.xta`` pair), so abandoning the buffer cache on kill cannot
touch it.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from collections import OrderedDict

from ..core.watchdog import CancelScope
from ..drx.storage import ByteStore
from .locks import _wait

__all__ = [
    "BEGIN", "DATA", "COMMIT", "CHECKPOINT", "ABORT", "RTYPE_NAMES",
    "JOURNAL_SUFFIX", "Journal", "JournalStats", "DedupTable",
    "encode_record", "decode_record",
]

BEGIN = 1
DATA = 2
COMMIT = 3
CHECKPOINT = 4
ABORT = 5

RTYPE_NAMES = {BEGIN: "BEGIN", DATA: "DATA", COMMIT: "COMMIT",
               CHECKPOINT: "CHECKPOINT", ABORT: "ABORT"}

#: The journal file lives next to the array's ``.xmd``/``.xta`` pair.
JOURNAL_SUFFIX = ".xj"

_PREFIX = struct.Struct("!II")      # body_len, crc32
_BODY_HEAD = struct.Struct("!BI")   # rtype, header_len


def encode_record(rtype: int, header: dict,
                  payload: bytes | memoryview = b"") -> bytes:
    """One length-prefixed, CRC32-framed journal record."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body = _BODY_HEAD.pack(rtype, len(raw)) + raw + bytes(payload)
    return _PREFIX.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_record(blob: bytes, offset: int):
    """Decode the record at ``offset``; ``None`` if the bytes there are
    truncated or fail the CRC (the torn tail — recovery stops here).

    Returns ``(rtype, header, payload, next_offset)``.
    """
    end = len(blob)
    if offset + _PREFIX.size > end:
        return None
    body_len, crc = _PREFIX.unpack_from(blob, offset)
    body_start = offset + _PREFIX.size
    if body_len < _BODY_HEAD.size or body_start + body_len > end:
        return None
    body = blob[body_start:body_start + body_len]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    rtype, header_len = _BODY_HEAD.unpack_from(body, 0)
    if rtype not in RTYPE_NAMES or _BODY_HEAD.size + header_len > body_len:
        return None
    try:
        header = json.loads(
            body[_BODY_HEAD.size:_BODY_HEAD.size + header_len]
            .decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(header, dict):
        return None
    payload = bytes(body[_BODY_HEAD.size + header_len:])
    return rtype, header, payload, body_start + body_len


class JournalStats:
    """Counters one journal accumulates (JSON-able via :meth:`snapshot`)."""

    __slots__ = ("records", "bytes_appended", "sync_requests", "syncs",
                 "batched_syncs", "rotations", "recovered_txns",
                 "discarded_txns", "torn_bytes")

    def __init__(self) -> None:
        self.records = 0            #: records appended this incarnation
        self.bytes_appended = 0
        self.sync_requests = 0      #: logical "make my LSN durable" calls
        self.syncs = 0              #: physical fsyncs issued
        self.batched_syncs = 0      #: requests satisfied by another's fsync
        self.rotations = 0          #: checkpoint rewrites
        self.recovered_txns = 0     #: committed txns replayed at open
        self.discarded_txns = 0     #: uncommitted txns dropped at open
        self.torn_bytes = 0         #: torn-tail bytes discarded at open

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Journal:
    """Append-only redo journal over one :class:`ByteStore`.

    ``start`` is where appending resumes — the valid end the recovery
    scan reported.  All appends serialize under one lock (record order
    is the replay order); :meth:`sync` implements leader/follower group
    commit: the first waiter becomes the leader and fsyncs once for
    every record appended up to that instant, concurrent requesters
    whose LSN that sync covers never touch the store.
    """

    def __init__(self, store: ByteStore, *, start: int = 0,
                 start_txn: int = 0, group_window: float = 0.0,
                 stats: JournalStats | None = None) -> None:
        self._store = store
        self._append_lock = threading.Lock()
        self._sync_cond = threading.Condition()
        self._end = int(start)          #: append offset == next LSN
        self._synced = int(start)       #: highest durable LSN
        self._sync_leader = False
        self._rot_epoch = 0             #: bumped by every rotate()
        self.group_window = float(group_window)
        self.stats = stats if stats is not None else JournalStats()
        self._txn = int(start_txn)      #: resume above recovered txn ids
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes of journal currently live (appended this incarnation
        plus whatever it started from)."""
        with self._append_lock:
            return self._end

    def _append(self, blob: bytes, nrecords: int) -> int:
        with self._append_lock:
            if self._closed:
                raise ValueError("journal is closed")
            self._store.write(self._end, blob)
            self._end += len(blob)
            self.stats.records += nrecords
            self.stats.bytes_appended += len(blob)
            return self._end

    # ------------------------------------------------------------------
    def begin(self, verb: str, key, fields: dict,
              payload: bytes | memoryview = b"") -> int:
        """Append BEGIN (+DATA when ``payload`` is non-empty) for a new
        transaction; returns the transaction id.  Call while holding
        the mutation's range locks, *before* touching the Mpool."""
        with self._append_lock:
            self._txn += 1
            txn = self._txn
        header = dict(fields)
        header["txn"] = txn
        header["verb"] = verb
        if key is not None:
            header["key"] = list(key)
        blob = encode_record(BEGIN, header)
        n = 1
        if len(payload):
            blob += encode_record(DATA, {"txn": txn}, payload)
            n += 1
        self._append(blob, n)
        return txn

    def commit(self, txn: int, key, result: dict) -> int:
        """Append COMMIT; returns the LSN to pass to :meth:`sync`.
        Call before releasing the mutation's range locks."""
        header = {"txn": txn, "result": dict(result)}
        if key is not None:
            header["key"] = list(key)
        return self._append(encode_record(COMMIT, header), 1)

    def abort(self, txn: int) -> int:
        """Append ABORT for a committed-but-failed transaction; returns
        the LSN to pass to :meth:`sync` so the cancellation is durable
        before the error reaches the client."""
        return self._append(encode_record(ABORT, {"txn": txn}), 1)

    def sync(self, lsn: int) -> None:
        """Group commit: return once every byte up to ``lsn`` is
        durable, issuing at most one fsync per leader round.

        A leader round advances ``_synced`` only when its own flush
        succeeded *and* no :meth:`rotate` intervened: a rotation
        truncates the journal and resets the offsets, so the round's
        captured ``end`` is stale — advancing to it would mark
        fresh post-rotation appends durable without any fsync.  The
        round still *returns* success after a rotation, because rotate
        is only called once the array itself was flushed, which makes
        every pre-rotation transaction durable in the array.
        """
        with self._sync_cond:
            self.stats.sync_requests += 1
            while True:
                if self._synced >= lsn:
                    self.stats.batched_syncs += 1
                    return
                if not self._sync_leader:
                    self._sync_leader = True
                    break
                self._sync_cond.wait(0.05)
            epoch = self._rot_epoch
        flushed = False
        try:
            if self.group_window > 0.0:
                # let concurrent committers pile on before paying the
                # fsync — the batch-size lever the bench sweeps
                import time
                time.sleep(self.group_window)
            with self._append_lock:
                end = self._end
            self._store.flush()
            flushed = True
        finally:
            with self._sync_cond:
                self._sync_leader = False
                self.stats.syncs += 1
                if flushed and epoch == self._rot_epoch \
                        and self._synced < end:
                    self._synced = end
                # a failed flush leaves _synced put: a woken follower
                # takes over the leader role and retries the fsync,
                # while this caller sees the error and never acks
                self._sync_cond.notify_all()

    # ------------------------------------------------------------------
    def rotate(self, dedup_snapshot: dict, epoch: int) -> None:
        """Truncate to a single CHECKPOINT record carrying the dedup
        table.  Call only after the array itself was flushed — the
        checkpoint asserts every journaled mutation is durable in the
        array.  ``replace`` keeps the rewrite crash-safe on POSIX
        (old-or-new); replaying a stale journal is idempotent anyway."""
        blob = encode_record(CHECKPOINT, {"epoch": int(epoch),
                                          "dedup": dedup_snapshot})
        with self._append_lock:
            if self._closed:
                return
            self._store.replace(blob)
            self._store.flush()
            self._end = len(blob)
            new_end = self._end
        with self._sync_cond:
            # invalidate any in-flight sync leader round: its captured
            # pre-rotation end no longer names these bytes, so it must
            # not advance _synced past the checkpoint
            self._rot_epoch += 1
            self._synced = new_end
            self._sync_cond.notify_all()
        self.stats.rotations += 1

    def close(self) -> None:
        """Close the backing store *without* fsync — what survives is
        whatever :meth:`sync` already made durable, exactly the
        kill -9 contract."""
        with self._append_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._store.close()
        except Exception:       # noqa: BLE001 - best-effort on teardown
            pass


class DedupTable:
    """Exactly-once bookkeeping: ``(client, sid, seq) → result``.

    :meth:`claim` is the single entry point for a keyed mutation: it
    returns the cached result for a replayed retry, blocks (scope-aware)
    while *another* attempt with the same key is mid-flight — the
    reconnect-while-still-executing race — and returns ``None`` when
    the caller owns the key and must apply the mutation, then call
    :meth:`fulfill` (success) or :meth:`abandon` (failure: a later
    retry re-executes).

    Entries are bounded per client (LRU on insertion order): a client
    only ever retries its in-flight requests, so the tail of history is
    dead weight.  The bound is a correctness parameter, not a tuning
    knob — it must cover the largest set of keyed mutations a client
    can legally have retryable at once, or a torn batch/pipeline
    window's re-sent tail finds its oldest fulfilled entries evicted
    and re-applies them.  The server sizes it with
    :data:`~repro.serve.protocol.DEDUP_WINDOW` (one maximal batch
    frame plus a full pipeline window); the small default here is for
    unit tests that exercise the eviction itself.
    """

    def __init__(self, per_client: int = 128) -> None:
        self.per_client = int(per_client)
        self._cond = threading.Condition()
        self._done: dict[str, OrderedDict[str, dict]] = {}
        self._inflight: set[tuple[str, str]] = set()
        self.hits = 0

    @staticmethod
    def _split(key) -> tuple[str, str]:
        client = str(key[0])
        return client, json.dumps(list(key)[1:], separators=(",", ":"))

    def claim(self, key, scope: CancelScope | None = None) -> dict | None:
        client, rest = self._split(key)
        with self._cond:
            while (client, rest) in self._inflight:
                _wait(self._cond, scope, "duplicate-request wait")
            cached = self._done.get(client, {}).get(rest)
            if cached is not None:
                self.hits += 1
                return dict(cached)
            self._inflight.add((client, rest))
            return None

    def fulfill(self, key, result: dict) -> None:
        client, rest = self._split(key)
        with self._cond:
            self._inflight.discard((client, rest))
            bucket = self._done.setdefault(client, OrderedDict())
            bucket[rest] = dict(result)
            while len(bucket) > self.per_client:
                bucket.popitem(last=False)
            self._cond.notify_all()

    def abandon(self, key) -> None:
        client, rest = self._split(key)
        with self._cond:
            self._inflight.discard((client, rest))
            self._cond.notify_all()

    def seed(self, snapshot: dict) -> None:
        """Load a recovered / checkpointed ``snapshot`` (oldest first)."""
        with self._cond:
            for client, entries in snapshot.items():
                bucket = self._done.setdefault(str(client), OrderedDict())
                for rest, result in entries:
                    bucket[str(rest)] = dict(result)
                while len(bucket) > self.per_client:
                    bucket.popitem(last=False)

    def snapshot(self) -> dict:
        """JSON-able ``{client: [[key_rest, result], ...]}``."""
        with self._cond:
            return {client: [[rest, dict(result)]
                             for rest, result in bucket.items()]
                    for client, bucket in self._done.items()}

    def __len__(self) -> int:
        with self._cond:
            return sum(len(b) for b in self._done.values())
