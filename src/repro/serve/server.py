"""The multi-tenant array service daemon.

:class:`DRXServer` listens on a TCP socket, speaks the
:mod:`repro.serve.protocol` framing, and multiplexes many concurrent
clients onto **shared** substrate: one set of open
:class:`~repro.drx.drxfile.DRXFile` handles (each with its Mpool buffer
cache and executor wiring), optionally one shared
:class:`~repro.pfs.filesystem.ParallelFileSystem`.  The design
commitments, in the order a request meets them:

*Pipelining.*  A request carrying a ``rid`` is dispatched onto the
connection's reusable worker pool (threads grown on demand, bounded,
never created per-request once warm) and answered **out of order**
(the reply echoes the ``rid``); the per-connection fan-out is capped by
``max_conn_inflight`` (reader-side backpressure past it) and the
work itself still funnels through admission control below.  Rid-less
requests keep the legacy one-at-a-time in-order contract, which is
also the path taken whenever chaos fault plans are armed — so kill
schedules replay deterministically.  A ``batch`` frame carries many
operations in one round trip; each passes through admission, QoS,
deadline, and locking individually (see
:mod:`repro.serve.protocol`).

*Admission control.*  A request first claims an in-flight slot —
bounded per client and globally.  Waiters park on a condition variable
in a **bounded** queue; when the queue itself is full (or the daemon is
draining) the request is refused with an explicit ``RETRY_LATER`` frame
instead of buffering without bound.  Queue wait is charged to the
request's deadline and to the client's QoS record.

*Deadlines.*  The client ships its remaining budget with each request;
the daemon turns it into a :class:`~repro.core.watchdog.CancelScope`
and schedules one entry on the process-wide
:func:`~repro.core.watchdog.default_watchdog` — the same monitor thread
the MPI deadlock watchdog uses — whose callback cancels the scope.
Every blocking point (admission wait, lock wait, store operation via
:class:`CancelGateStore`, simulated computation) checkpoints the scope,
so expiry aborts the request mid-flight rather than after the fact.  A
mutation cancelled mid-apply is rolled back from its pre-image before
the ``DEADLINE`` frame is sent.

*Range locking.*  Data-plane verbs take the array's
:class:`~repro.serve.locks.ArrayRWLock` shared plus exclusive
:class:`~repro.serve.locks.ChunkLocks` on exactly the chunks their box
covers, in ascending linear-address order; structural verbs (extend,
flush, snapshot, scrub) take the array lock exclusive.  Disjoint
writers proceed concurrently; overlapping writers serialize, and each
applied mutation gets a per-array sequence number so clients can
observe the serialization order.

*Durability and exactly-once.*  Every mutating request (``write`` /
``extend``) is journaled: its intent (BEGIN/DATA records) is appended
to the array's write-ahead journal (:mod:`repro.serve.journal`)
*before* the mutation touches the Mpool, its COMMIT record — carrying
the result and the request's idempotency key — before the range locks
drop, and the journal is group-commit fsynced before the OK frame is
sent.  Restart recovery (:mod:`repro.serve.recovery`) replays committed
transactions and re-seeds the dedup table, so a ``kill -9`` at any
fault site loses no acknowledged write, and a client retrying a request
whose OK frame was lost is answered from cache instead of re-applied.
A watchdog-driven checkpoint (``checkpoint_interval``) — and every
explicit ``flush`` — truncates the journal once the array itself is
durable.

*Graceful drain.*  ``shutdown(drain=True)`` (also SIGTERM) stops
accepting, refuses new admissions with ``RETRY_LATER``, lets in-flight
requests finish or deadline out, then flushes and closes every array —
acknowledged writes are durable.  :meth:`DRXServer.kill` is the abrupt
path: scopes cancelled, sockets torn down, arrays *abandoned* (dirty
cache dropped, no flush) — the crash the chaos suite recovers from;
only the journal (already appended, synced per acknowledgement)
survives it, which is the whole point.

*Chaos.*  The ``server.kill.daemon.*`` fault sites of
:data:`~repro.core.faultsites.DAEMON_SITES` fire at the request
life-cycle boundaries (admitted / locked / journaled / applied /
drain.flush), and the ``serve.net.*`` sites of
:data:`~repro.core.faultsites.NET_SITES` at the network boundary
(request received / reply not yet sent); a
:class:`~repro.drx.resilience.FaultPlan` crash rule at any of them
makes the daemon die abruptly at that instant via :meth:`kill`.
"""

from __future__ import annotations

import functools
import queue
import re
import socket
import threading
import time
from typing import Callable, Sequence

import numpy as np

from ..core import faultsites
from ..core.errors import (
    CrashError,
    DeadlineError,
    DRXError,
    DRXFileError,
    RetryLater,
    ServeError,
)
from ..core.executor import IOExecutor
from ..core.faultsites import crash_point
from ..core.watchdog import CancelScope, Deadline, Watchdog, default_watchdog
from ..drx.drxfile import DRXFile
from ..drx.storage import ByteStore, PFSByteStore, PosixByteStore
from .journal import JOURNAL_SUFFIX, DedupTable, Journal
from .locks import ArrayRWLock, ChunkLocks, _wait
from .protocol import (
    BATCHABLE_VERBS,
    DEADLINE,
    DEDUP_WINDOW,
    ERR,
    MAX_BATCH_OPS,
    MAX_FRAME,
    OK,
    REQ,
    RETRY_LATER,
    VERBS,
    ConnectionClosed,
    ProtocolError,
    encode_error,
    recv_frame,
    send_frame,
    split_payload,
)
from .qos import QoSRegistry
from .recovery import recover

__all__ = ["DRXServer", "CancelGateStore", "current_scope"]

#: Array names are identifiers, never paths: first character
#: alphanumeric, then alphanumerics plus ``._-`` — no separators, so a
#: root-directory server cannot be walked out of its root.
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}\Z")

#: Verbs answered without claiming an admission slot: they are cheap,
#: must work while the daemon is saturated (that is their whole point),
#: and never touch array data.
_CONTROL_VERBS = frozenset({"ping", "stats", "shutdown"})

#: Slice length for simulated request computation (``_delay`` header),
#: short enough that cancellation lands promptly.
_DELAY_SLICE = 0.005

_scope_local = threading.local()


def current_scope() -> CancelScope | None:
    """The :class:`CancelScope` of the request running on this thread
    (``None`` outside a request — e.g. Mpool background write-behind)."""
    return getattr(_scope_local, "value", None)


class CancelGateStore(ByteStore):
    """A :class:`ByteStore` decorator that checkpoints the current
    request's :class:`CancelScope` before every transfer.

    This is how a deadline propagates *into* the storage stack: the
    daemon opens every array with this wrapper, the request's scope is
    installed thread-locally for the duration of the handler, and any
    store operation issued after expiry raises
    :class:`~repro.core.errors.DeadlineError` instead of doing the I/O.
    Operations issued from background threads (read-ahead, write-behind)
    carry no scope and pass through ungated.
    """

    def __init__(self, inner: ByteStore, role: str = "data") -> None:
        super().__init__()
        self._inner = inner
        self.role = role
        self.stats = inner.stats
        self.deterministic_only = getattr(inner, "deterministic_only", False)

    def _gate(self, what: str) -> None:
        scope = current_scope()
        if scope is not None:
            scope.check(f"{self.role} store {what}")

    def read(self, offset: int, length: int) -> bytes:
        self._gate("read")
        return self._inner.read(offset, length)

    def write(self, offset: int, data) -> None:
        self._gate("write")
        self._inner.write(offset, data)

    def readv(self, extents) -> bytes:
        self._gate("readv")
        return self._inner.readv(extents)

    def writev(self, extents, data) -> None:
        self._gate("writev")
        self._inner.writev(extents, data)

    def replace(self, data) -> None:
        # deliberately ungated: replace() is the crash-consistent
        # meta-data commit — once entered it must complete, a deadline
        # must not tear a commit in half
        self._inner.replace(data)

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        return self._inner.read_alternates(offset, length)

    def repair(self, offset: int, data) -> None:
        self._inner.repair(offset, data)

    @property
    def size(self) -> int:
        return self._inner.size

    def truncate(self, size: int) -> None:
        self._inner.truncate(size)

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()


class Admission:
    """Bounded in-flight slots with a bounded wait queue.

    ``admit`` returns the queue wait in seconds; it raises
    :class:`RetryLater` when the queue is full or the daemon is
    draining, and :class:`DeadlineError` when the request's scope
    expires while parked.
    """

    def __init__(self, qos: QoSRegistry, max_inflight: int,
                 max_inflight_per_client: int, max_queue: int) -> None:
        self.qos = qos
        self.max_inflight = max(1, int(max_inflight))
        self.max_per_client = max(1, int(max_inflight_per_client))
        self.max_queue = max(0, int(max_queue))
        self._cond = threading.Condition()
        self._inflight = 0
        self._per_client: dict[str, int] = {}
        self._queued = 0
        self.draining = False

    def admit(self, client: str, scope: CancelScope | None) -> float:
        t0 = time.monotonic()
        with self._cond:
            if self.draining:
                raise RetryLater("server draining")
            must_wait = (self._inflight >= self.max_inflight
                         or self._per_client.get(client, 0)
                         >= self.max_per_client)
            if must_wait and self._queued >= self.max_queue:
                raise RetryLater(
                    f"admission queue full ({self._queued} waiting)")
            if must_wait:
                # only genuine waiters count toward the queue bound — a
                # request sailing straight into a free slot must not
                # transiently inflate the depth high-water mark
                self._queued += 1
                self.qos.note_queue_depth(self._queued)
                try:
                    while (self._inflight >= self.max_inflight
                           or self._per_client.get(client, 0)
                           >= self.max_per_client):
                        if self.draining:
                            raise RetryLater("server draining")
                        _wait(self._cond, scope, "admission wait")
                finally:
                    self._queued -= 1
            self._inflight += 1
            self._per_client[client] = self._per_client.get(client, 0) + 1
            self.qos.note_inflight(self._inflight)
        return time.monotonic() - t0

    def release(self, client: str) -> None:
        with self._cond:
            self._inflight -= 1
            n = self._per_client.get(client, 0) - 1
            if n <= 0:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = n
            # one release frees one global slot plus one unit of this
            # client's budget, so at most a couple of waiters can
            # become admissible — waking the whole queue is a
            # thundering herd that costs more CPU than the requests
            # themselves once hundreds of pipelined waiters park here.
            # Waking too few is safe: admission waits poll on a
            # bounded slice, so a missed wakeup self-heals.
            self._cond.notify(8)

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    def start_draining(self) -> None:
        with self._cond:
            self.draining = True
            self._cond.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Wait for every in-flight request to finish; True on idle."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(0.05, remaining))
            return True


class _ConnWorkers:
    """A lazily-grown, bounded worker pool for one connection's
    pipelined requests.

    Threads are created on demand up to ``cap`` — the same bound as the
    connection's inflight semaphore, so once warm the throughput path
    never pays per-request thread creation — and reused across
    requests.  Jobs are bounded by the caller's semaphore, so the queue
    never holds more than ``cap`` entries.  A worker survives any job
    failure; ``close()`` wakes every worker to exit, letting in-flight
    handlers finish first.
    """

    _STOP = object()

    def __init__(self, cap: int, name: str) -> None:
        self.cap = max(1, int(cap))
        self.name = name
        self._q: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._closed = False

    def submit(self, fn: Callable[[], None]) -> None:
        """Queue ``fn``, growing the pool when no worker may be free.
        Raises only when the job can never run — thread creation failed
        and the pool is empty — *without* having queued it, so the
        caller can fall back to running inline."""
        with self._lock:
            if self._closed:
                raise RuntimeError("connection worker pool is closed")
            if len(self._threads) < self.cap:
                t = threading.Thread(target=self._run, name=self.name,
                                     daemon=True)
                try:
                    t.start()
                except RuntimeError:
                    # thread limit: fine if workers exist (they will
                    # drain the queue), fatal-to-this-job otherwise —
                    # and the job is NOT queued, so no double run
                    if not self._threads:
                        raise
                else:
                    self._threads.append(t)
            self._q.put(fn)

    def _run(self) -> None:
        while True:
            fn = self._q.get()
            if fn is self._STOP:
                return
            try:
                fn()
            except Exception:   # noqa: BLE001 - job owns its errors
                pass            # a worker must outlive any single job

    def close(self) -> None:
        with self._lock:
            self._closed = True
            n = len(self._threads)
        for _ in range(n):
            self._q.put(self._STOP)


class _ArrayEntry:
    """One open array plus its service-layer state."""

    def __init__(self, name: str, file: DRXFile) -> None:
        self.name = name
        self.file = file
        self.rw = ArrayRWLock()
        self.chunks = ChunkLocks()
        self.journal: Journal | None = None
        # the dedup window must cover every keyed mutation a client
        # could still retry — a maximal batch frame plus a full
        # pipeline window — or a torn batch's re-sent tail re-applies
        # mutations whose entries were evicted (a double extend)
        self.dedup = DedupTable(per_client=DEDUP_WINDOW)
        self.recovery: dict | None = None    #: last recovery summary
        self._seq = 0
        self._seq_lock = threading.Lock()

    def next_seq(self) -> int:
        """Per-array apply sequence number, claimed while the mutation's
        chunk locks are still held — the serialization order overlapping
        writers observe."""
        with self._seq_lock:
            self._seq += 1
            return self._seq


def _box_addresses(file: DRXFile, lo: Sequence[int],
                   hi: Sequence[int]) -> list[int]:
    """Linear addresses of every chunk the box ``[lo, hi)`` touches."""
    from itertools import product

    if any(h <= l for l, h in zip(lo, hi)):
        return []
    ranges = [range(l // c, (h - 1) // c + 1)
              for l, h, c in zip(lo, hi, file.chunk_shape)]
    return [file.meta.eci.address(ci) for ci in product(*ranges)]


class DRXServer:
    """A thread-per-connection array service over shared DRX state.

    Exactly one of ``root`` (a host directory of ``.xmd``/``.xta``
    pairs) or ``fs`` (a shared
    :class:`~repro.pfs.filesystem.ParallelFileSystem`) backs the
    arrays.  ``port=0`` binds an ephemeral port — read it back from
    :attr:`address` after :meth:`start`.
    """

    RUNNING, DRAINING, DEAD = "running", "draining", "dead"

    def __init__(self, root=None, fs=None, host: str = "127.0.0.1",
                 port: int = 0, max_inflight: int = 8,
                 max_inflight_per_client: int = 4,
                 max_queue: int = 16, max_frame: int = MAX_FRAME,
                 cache_pages: int = 64, drain_timeout: float = 10.0,
                 watchdog: Watchdog | None = None,
                 use_executor: bool = True, journal: bool = True,
                 journal_window: float = 0.0,
                 checkpoint_interval: float | None = None,
                 max_conn_inflight: int = 32) -> None:
        if (root is None) == (fs is None):
            raise ServeError("exactly one of root= or fs= must be given")
        self.root = root
        self.fs = fs
        self.host = host
        self._port = port
        self.max_frame = max_frame
        #: per-connection pipelined fan-out cap (reader-side
        #: backpressure past it); admission still bounds actual work
        self.max_conn_inflight = max(1, int(max_conn_inflight))
        self.cache_pages = cache_pages
        self.drain_timeout = drain_timeout
        self.journal_enabled = bool(journal)
        self.journal_window = float(journal_window)
        self.checkpoint_interval = checkpoint_interval
        self._ckpt_handle = None
        self.checkpoints = 0
        self.qos = QoSRegistry()
        self.admission = Admission(self.qos, max_inflight,
                                   max_inflight_per_client, max_queue)
        self._watchdog = watchdog if watchdog is not None \
            else default_watchdog()
        #: the "serve" executor tier: admitted requests execute here,
        #: sized to the global in-flight limit so an admitted request
        #: never waits for a worker (see the tier note in
        #: :mod:`repro.core.executor`)
        self._exec: IOExecutor | None = (
            IOExecutor(max_inflight, name="serve") if use_executor else None)
        self._arrays: dict[str, _ArrayEntry] = {}
        self._arrays_lock = threading.Lock()
        self._state = self.RUNNING
        self._state_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._conn_socks: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._scopes: set[CancelScope] = set()
        self._scopes_lock = threading.Lock()
        self._handlers: dict[str, Callable] = {
            "open": self._op_open, "create": self._op_create,
            "read": self._op_read, "write": self._op_write,
            "extend": self._op_extend, "flush": self._op_flush,
            "snapshot": self._op_snapshot, "scrub": self._op_scrub,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DRXServer":
        """Bind, listen, and start accepting in a background thread."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="drx-serve-accept", daemon=True)
        self._accept_thread.start()
        self._schedule_checkpoint()
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self._port)

    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    def install_signal_handlers(self) -> None:
        """SIGTERM / SIGINT → graceful drain (main thread only)."""
        import signal

        def on_signal(signum, frame):
            threading.Thread(target=self.shutdown,
                             kwargs={"drain": True},
                             name="drx-serve-drain", daemon=True).start()

        signal.signal(signal.SIGTERM, on_signal)
        signal.signal(signal.SIGINT, on_signal)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the daemon is dead; True if it is."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.state != self.DEAD:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    def shutdown(self, drain: bool = True,
                 drain_timeout: float | None = None) -> None:
        """Stop the daemon.

        ``drain=True`` is the graceful path: stop accepting, refuse new
        admissions with ``RETRY_LATER``, let in-flight requests finish
        (or deadline out, bounded by ``drain_timeout``), fire the
        ``server.kill.daemon.drain.flush`` chaos site, then flush and
        close every array so acknowledged writes are durable.
        ``drain=False`` delegates to :meth:`kill`.
        """
        if not drain:
            self.kill()
            return
        with self._state_lock:
            if self._state != self.RUNNING:
                return
            self._state = self.DRAINING
        self.admission.start_draining()
        self._close_listener()
        budget = self.drain_timeout if drain_timeout is None \
            else drain_timeout
        if not self.admission.wait_idle(budget):
            # deadline-out the stragglers: cancel their scopes and give
            # them a moment to unwind through their checkpoints
            self._cancel_all_scopes("server draining")
            self.admission.wait_idle(1.0)
        self._cancel_checkpoint()
        try:
            crash_point("server.kill.daemon.drain.flush")
        except CrashError:
            self.kill()
            return
        with self._arrays_lock:
            entries = list(self._arrays.values())
            self._arrays.clear()
        for entry in entries:
            entry.file.close()
            if entry.journal is not None:
                # everything journaled is now durable in the array —
                # leave a clean checkpoint carrying the dedup table
                entry.journal.rotate(entry.dedup.snapshot(),
                                     entry.file.commit_epoch)
                entry.journal.close()
        if self._exec is not None:
            self._exec.shutdown(wait=True)
        with self._state_lock:
            self._state = self.DEAD
        self._close_connections()

    def kill(self) -> None:
        """Abrupt death: no flush, no goodbye.

        Scopes are cancelled (in-flight work aborts at its next
        checkpoint), queued-but-unstarted executor work is dropped,
        sockets are torn down mid-frame, and every array is *abandoned*
        — dirty cached pages vanish exactly as they would in a process
        kill.  What this leaves on disk is whatever the store protocols
        had committed: the chaos suite restarts a fresh daemon on the
        same substrate and asserts recovery.
        """
        with self._state_lock:
            if self._state == self.DEAD:
                return
            self._state = self.DEAD
        self.admission.start_draining()
        self._cancel_checkpoint()
        self._cancel_all_scopes("server killed")
        self._close_listener()
        self._close_connections()
        if self._exec is not None:
            self._exec.shutdown(wait=False, cancel_futures=True)
        with self._arrays_lock:
            entries = list(self._arrays.values())
            self._arrays.clear()
        for entry in entries:
            entry.file.abandon()
            if entry.journal is not None:
                # no rotate, no fsync: the journal keeps exactly what
                # sync() already made durable — recovery's input
                entry.journal.close()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def _close_connections(self) -> None:
        with self._conn_lock:
            socks = list(self._conn_socks)
        for s in socks:
            try:
                s.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                s.close()
            except OSError:
                pass

    def _cancel_all_scopes(self, reason: str) -> None:
        with self._scopes_lock:
            scopes = list(self._scopes)
        for scope in scopes:
            scope.cancel(reason)

    # ------------------------------------------------------------------
    # journal checkpointing
    # ------------------------------------------------------------------
    def _schedule_checkpoint(self) -> None:
        if not self.journal_enabled or not self.checkpoint_interval:
            return
        if self.state != self.RUNNING:
            return

        def fire():
            # watchdog callbacks must stay brief: hand the flush work
            # to a throwaway thread, which reschedules when done
            threading.Thread(target=self._checkpoint_fired,
                             name="drx-serve-ckpt", daemon=True).start()

        self._ckpt_handle = self._watchdog.schedule(
            float(self.checkpoint_interval), fire)

    def _cancel_checkpoint(self) -> None:
        handle, self._ckpt_handle = self._ckpt_handle, None
        if handle is not None:
            self._watchdog.cancel(handle)

    def _checkpoint_fired(self) -> None:
        try:
            if self.state == self.RUNNING:
                self.checkpoint()
        except Exception:  # noqa: BLE001
            # shutdown/kill can close files under a mid-flight
            # checkpoint; the watchdog thread must survive that
            pass
        finally:
            if self.state == self.RUNNING:
                self._schedule_checkpoint()

    def checkpoint(self) -> dict:
        """Flush every open array and truncate its journal down to one
        CHECKPOINT record (carrying the dedup table forward).

        Runs under each array's exclusive lock, so no mutation is
        between its journal append and its apply while the journal
        rewrites.  Returns ``{name: journal bytes dropped}``.
        """
        dropped: dict[str, int] = {}
        with self._arrays_lock:
            entries = list(self._arrays.values())
        for entry in entries:
            if entry.journal is None:
                continue
            if self.state not in (self.RUNNING, self.DRAINING):
                break
            entry.rw.acquire_exclusive()
            try:
                before = entry.journal.size
                try:
                    entry.file.flush()
                    entry.journal.rotate(entry.dedup.snapshot(),
                                         entry.file.commit_epoch)
                except (DRXError, OSError, ValueError):
                    # a watchdog checkpoint racing shutdown/kill finds
                    # the file closed (or abandoned) under it — skip
                    # the entry; durability is the closer's problem now
                    continue
                dropped[entry.name] = before - entry.journal.size
            finally:
                entry.rw.release_exclusive()
        self.checkpoints += 1
        return dropped

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self.state == self.RUNNING:
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._conn_lock:
                if self.state != self.RUNNING:
                    sock.close()
                    return
                self._conn_socks.add(sock)
                t = threading.Thread(target=self._serve_connection,
                                     args=(sock,),
                                     name="drx-serve-conn", daemon=True)
                self._conn_threads.append(t)
            t.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        owner = object()     # lock-ownership token for disconnect cleanup
        send_lock = threading.Lock()    # interleaved replies stay framed
        inflight = threading.Semaphore(self.max_conn_inflight)
        workers: _ConnWorkers | None = None
        try:
            while self.state != self.DEAD:
                kind, header, payload = recv_frame(sock, self.max_frame)
                # lost-request window: frame received (CRC-verified),
                # nothing dispatched — a kill here must be invisible
                # after the client re-issues under the same key
                crash_point("serve.net.recv.request")
                if kind != REQ:
                    raise ProtocolError(
                        f"expected REQ, got kind {kind}")
                rid = header.get("rid")
                if rid is None or faultsites.any_active():
                    # legacy in-order contract — also the deterministic
                    # path while chaos is armed, so kill-site schedules
                    # replay exactly as scripted
                    reply = self._dispatch(header, payload, owner)
                    # lost-ack window: mutation applied and journal-
                    # synced, OK not yet on the wire — the retry must be
                    # answered from the dedup table, never re-applied
                    crash_point("serve.net.send.reply")
                    self._send_reply(sock, send_lock, rid, reply)
                else:
                    # pipelined: decode/dispatch/respond out of order.
                    # The semaphore caps this connection's in-flight
                    # fan-out; past the cap the reader parks here and
                    # TCP backpressure does the rest.  Requests run on
                    # the connection's reusable worker pool — no
                    # per-request thread creation on the hot path.
                    if workers is None:
                        workers = _ConnWorkers(self.max_conn_inflight,
                                               "drx-serve-op")
                    inflight.acquire()
                    job = functools.partial(
                        self._pipelined_request, sock, send_lock,
                        inflight, header, payload, rid)
                    try:
                        workers.submit(job)
                    except RuntimeError:
                        # no worker could ever run it: give the slot
                        # back and degrade to inline (in-order) — the
                        # window must not shrink permanently
                        inflight.release()
                        reply = self._dispatch(header, payload, owner)
                        self._send_reply(sock, send_lock, rid, reply)
        except ConnectionClosed:
            pass                      # client went away — normal
        except (ProtocolError, OSError):
            pass                      # garbage or torn socket: drop it
        except CrashError:
            self.kill()               # chaos site fired: die abruptly
        finally:
            if workers is not None:
                workers.close()
            self._release_owner(owner)
            with self._conn_lock:
                self._conn_socks.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _pipelined_request(self, sock: socket.socket,
                           send_lock: threading.Lock,
                           inflight: threading.Semaphore,
                           header: dict, payload: bytes,
                           rid) -> None:
        """One rid-tagged request on its own worker thread: dispatch,
        then reply out of order under the connection's send lock.  The
        request gets a *private* owner token — its own locks release in
        the handler's ``finally``; the backstop here reclaims whatever
        a torn-down worker still held, without touching the locks of
        sibling requests on the same connection."""
        owner = object()
        try:
            reply = self._dispatch(header, payload, owner)
            try:
                self._send_reply(sock, send_lock, rid, reply)
            except (ProtocolError, OSError):
                # connection died under a completed request: the op is
                # applied (and journaled) — the client's retry will be
                # answered from the dedup table
                pass
        except CrashError:
            self.kill()
        finally:
            self._release_owner(owner)
            inflight.release()

    @staticmethod
    def _send_reply(sock: socket.socket, send_lock: threading.Lock,
                    rid, reply: tuple[int, dict, bytes]) -> None:
        kind, hdr, payload = reply
        if rid is not None:
            hdr = dict(hdr)
            hdr["rid"] = rid
        with send_lock:
            send_frame(sock, kind, hdr, payload)

    def _dispatch(self, header: dict, payload: bytes,
                  owner: object) -> tuple[int, dict, bytes]:
        if header.get("verb") == "batch":
            return self._handle_batch(header, payload, owner)
        return self._handle_request(header, payload, owner)

    def _handle_batch(self, header: dict, payload: bytes,
                      owner: object) -> tuple[int, dict, bytes]:
        """Execute a batch frame: each op in list order, each passing
        through admission, QoS, deadlines, and locking as if it had
        arrived alone — except that the frame's ``timeout`` is one
        shared budget, not a per-op allowance.  Per-op failures are
        carried in the ``results`` list — only a malformed batch
        envelope fails the frame."""
        client = str(header.get("client", "anon"))
        ops = header.get("ops")
        if not isinstance(ops, list) or not ops:
            return (ERR, encode_error(
                ServeError("batch needs a non-empty ops list")), b"")
        if len(ops) > MAX_BATCH_OPS:
            return (ERR, encode_error(ServeError(
                f"batch of {len(ops)} ops exceeds the "
                f"{MAX_BATCH_OPS}-op cap")), b"")
        try:
            pieces = split_payload(ops, payload)
        except ProtocolError as exc:
            return (ERR, encode_error(exc), b"")
        self.qos.client(client).bump(batches=1)
        # ONE deadline for the whole frame: every sub-op is dispatched
        # with the batch's *remaining* budget, so N serially-executed
        # ops share one timeout instead of each restarting it (an op
        # that starts after expiry deadline-misses immediately through
        # the normal path, with its QoS counters intact)
        deadline = Deadline(float(header["timeout"])) \
            if header.get("timeout") is not None else None
        results: list[dict] = []
        out: list[bytes] = []
        for op, piece in zip(ops, pieces):
            oh = dict(op)
            oh.pop("nbytes", None)
            oh.setdefault("client", client)
            if deadline is not None:
                budget = deadline.remaining()
                own = oh.get("timeout")
                oh["timeout"] = budget if own is None \
                    else min(float(own), budget)
            if "attempt" in header:
                oh.setdefault("attempt", header["attempt"])
            verb = oh.get("verb")
            if verb not in BATCHABLE_VERBS:
                k, h, p = (ERR, encode_error(ServeError(
                    f"verb {verb!r} not allowed in a batch")), b"")
            else:
                k, h, p = self._handle_request(oh, bytes(piece), owner)
            results.append({"kind": k, "header": h, "nbytes": len(p)})
            out.append(p)
        return (OK, {"results": results}, b"".join(out))

    def _release_owner(self, owner: object) -> None:
        """Abrupt-disconnect cleanup: drop any chunk locks *and* array
        RW holds the connection still owns (normal paths release via
        finally; this is the backstop for a thread torn down between
        acquiring the array lock and its chunk locks)."""
        with self._arrays_lock:
            entries = list(self._arrays.values())
        for entry in entries:
            entry.chunks.release_owner(owner)
            entry.rw.release_owner(owner)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _handle_request(self, header: dict, payload: bytes,
                        owner: object) -> tuple[int, dict, bytes]:
        verb = header.get("verb")
        client = str(header.get("client", "anon"))
        if verb not in VERBS:
            return (ERR, encode_error(
                ServeError(f"unknown verb {verb!r}")), b"")
        if verb in _CONTROL_VERBS:
            try:
                hdr, pl = self._control(verb, header)
                return (OK, hdr, pl)
            except Exception as exc:   # noqa: BLE001 - transported
                return (ERR, encode_error(exc), b"")

        qos = self.qos.client(client)
        qos.bump(requests=1)
        if int(header.get("attempt", 0)) > 0:
            qos.bump(retries=1)
        timeout = header.get("timeout")
        scope = CancelScope(Deadline(timeout))
        wd_handle = None
        if timeout is not None:
            wd_handle = self._watchdog.schedule(
                float(timeout),
                lambda: scope.cancel("deadline exceeded"))
        with self._scopes_lock:
            self._scopes.add(scope)
        admitted = False
        try:
            t_adm = time.monotonic()
            try:
                wait = self.admission.admit(client, scope)
            except RetryLater as exc:
                qos.bump(retry_later=1)
                return (RETRY_LATER, {"reason": exc.reason}, b"")
            except DeadlineError as exc:
                # the whole budget was spent parked in the queue —
                # charge it so the operator sees *where* time went
                qos.bump(deadline_misses=1,
                         queue_wait=time.monotonic() - t_adm)
                return (DEADLINE, {"message": str(exc)}, b"")
            admitted = True
            qos.bump(queue_wait=wait)
            qos.enter_inflight()
            try:
                crash_point("server.kill.daemon.admitted")
                hdr, pl = self._execute(verb, header, payload, owner,
                                        scope)
                qos.bump(ok=1,
                         bytes_read=len(pl) if verb == "read" else 0,
                         bytes_written=(len(payload)
                                        if verb == "write" else 0))
                return (OK, hdr, pl)
            except DeadlineError as exc:
                qos.bump(deadline_misses=1)
                return (DEADLINE, {"message": str(exc)}, b"")
            except CrashError:
                raise
            except Exception as exc:   # noqa: BLE001 - transported
                qos.bump(errors=1)
                return (ERR, encode_error(exc), b"")
        finally:
            if admitted:
                qos.exit_inflight()
                self.admission.release(client)
            with self._scopes_lock:
                self._scopes.discard(scope)
            if wd_handle is not None:
                self._watchdog.cancel(wd_handle)

    def _execute(self, verb: str, header: dict, payload: bytes,
                 owner: object, scope: CancelScope) -> tuple[dict, bytes]:
        """Run one admitted request on the serve executor tier (inline
        while a fault plan is armed, to keep chaos schedules
        deterministic)."""
        def run() -> tuple[dict, bytes]:
            _scope_local.value = scope
            try:
                scope.check(f"{verb} dispatch")
                return self._handlers[verb](header, payload, owner, scope)
            finally:
                _scope_local.value = None

        if self._exec is None or faultsites.any_active():
            return run()
        return self._exec.result(self._exec.submit(run))

    @staticmethod
    def _simulate_delay(header: dict, scope: CancelScope) -> None:
        """Test hook: a ``_delay`` header simulates slow server-side
        work *inside the request's locked region*, sliced so deadline
        cancellation lands mid-way.  Read/write run it while holding
        their chunk locks — how the suite makes lock overlap, admission
        saturation, and mid-mutation deadlines observable."""
        delay = float(header.get("_delay", 0.0))
        end = time.monotonic() + delay
        while time.monotonic() < end:
            scope.check("simulated computation")
            time.sleep(min(_DELAY_SLICE, max(0.0, end - time.monotonic())))

    # ------------------------------------------------------------------
    # control-plane verbs (no admission slot)
    # ------------------------------------------------------------------
    def _control(self, verb: str, header: dict) -> tuple[dict, bytes]:
        if verb == "ping":
            return ({"pong": True, "state": self.state,
                     "echo": header.get("echo")}, b"")
        if verb == "stats":
            return (self.stats_snapshot(), b"")
        # shutdown: acknowledge first, then drain in the background so
        # the requesting client gets its reply before the socket dies
        drain = bool(header.get("drain", True))
        threading.Thread(target=self.shutdown, kwargs={"drain": drain},
                         name="drx-serve-shutdown", daemon=True).start()
        return ({"stopping": True, "drain": drain}, b"")

    def stats_snapshot(self) -> dict:
        """JSON-able daemon-wide statistics (the ``stats`` verb)."""
        with self._arrays_lock:
            names = sorted(self._arrays)
            locks_held = sum(e.chunks.held()
                             for e in self._arrays.values())
            entries = list(self._arrays.values())
        journal = {}
        for e in entries:
            if e.journal is None:
                continue
            journal[e.name] = {
                "size": e.journal.size,
                "stats": e.journal.stats.snapshot(),
                "dedup_entries": len(e.dedup),
                "dedup_hits": e.dedup.hits,
                "recovery": e.recovery,
            }
        snap = {
            "state": self.state,
            "address": list(self.address),
            "arrays": names,
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "chunk_locks_held": locks_held,
            "limits": {
                "max_inflight": self.admission.max_inflight,
                "max_inflight_per_client": self.admission.max_per_client,
                "max_queue": self.admission.max_queue,
            },
            "journal": journal,
            "checkpoints": self.checkpoints,
            "qos": self.qos.snapshot(),
            "watchdog": {
                "scheduled": self._watchdog.stats.scheduled,
                "fired": self._watchdog.stats.fired,
                "cancelled": self._watchdog.stats.cancelled,
            },
        }
        if self.fs is not None:
            snap["pfs"] = self.fs.stats_summary()
        return snap

    # ------------------------------------------------------------------
    # array table
    # ------------------------------------------------------------------
    def _check_name(self, name) -> str:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ServeError(f"invalid array name {name!r}")
        return name

    def _store_wrapper(self, store: ByteStore, role: str) -> ByteStore:
        return CancelGateStore(store, role)

    def _journal_store(self, name: str) -> ByteStore:
        """Open (or create) the array's ``.xj`` journal store — raw, not
        Mpool-buffered and not deadline-gated: journal appends for an
        acknowledged mutation must land even if the *next* request's
        scope has expired, and abandoning the buffer cache on
        :meth:`kill` must not touch what :meth:`Journal.sync` already
        made durable."""
        if self.fs is not None:
            return PFSByteStore(
                self.fs.open_or_create(name + JOURNAL_SUFFIX))
        import pathlib
        path = pathlib.Path(self.root) / (name + JOURNAL_SUFFIX)
        try:
            return PosixByteStore(path, "r+")
        except DRXFileError:
            return PosixByteStore(path, "x+")

    def _attach_journal(self, entry: _ArrayEntry) -> None:
        """Recover then journal ``entry`` (the daemon-open path): scan
        the journal, replay committed-but-unapplied transactions,
        re-seed the dedup table, and restart the journal from a clean
        checkpoint so each crash's records replay exactly once."""
        if not self.journal_enabled:
            return
        store = self._journal_store(entry.name)
        report = recover(entry.file, store)
        entry.dedup.seed(report.dedup)
        entry.journal = Journal(store, start=report.valid_end,
                                start_txn=report.max_txn,
                                group_window=self.journal_window)
        entry.journal.stats.recovered_txns = report.replayed
        entry.journal.stats.discarded_txns = report.discarded_txns
        entry.journal.stats.torn_bytes = report.torn_bytes
        entry.journal.rotate(entry.dedup.snapshot(),
                             entry.file.commit_epoch)
        entry.recovery = report.snapshot()

    def _entry(self, name: str) -> _ArrayEntry:
        """The open-array entry for ``name``, opening lazily (which runs
        crash recovery on the array's journal first)."""
        name = self._check_name(name)
        with self._arrays_lock:
            entry = self._arrays.get(name)
            if entry is not None:
                return entry
            if self.fs is not None:
                if not self.fs.exists(name + DRXFile.XMD_SUFFIX):
                    # a PFSError would read as transient to the client;
                    # a missing array is permanent — fail fatally
                    raise ServeError(f"no array named {name!r}",
                                     kind="DRXFileNotFoundError")
                file = DRXFile.open_pfs(
                    self.fs, name, "r+", cache_pages=self.cache_pages,
                    store_wrapper=self._store_wrapper)
            else:
                import pathlib
                file = DRXFile.open(
                    pathlib.Path(self.root) / name, "r+",
                    cache_pages=self.cache_pages,
                    store_wrapper=self._store_wrapper)
            entry = _ArrayEntry(name, file)
            self._attach_journal(entry)
            self._arrays[name] = entry
            return entry

    def recover_all(self) -> dict:
        """Eagerly open — and thereby crash-recover — every array in
        the backing store (``drx-serve --recover``).  Returns
        ``{name: recovery summary}``."""
        if self.fs is not None:
            names = [n[:-len(DRXFile.XMD_SUFFIX)]
                     for n in self.fs.listdir()
                     if n.endswith(DRXFile.XMD_SUFFIX)]
        else:
            import pathlib
            names = [p.name[:-len(DRXFile.XMD_SUFFIX)]
                     for p in pathlib.Path(self.root).glob(
                         "*" + DRXFile.XMD_SUFFIX)]
        return {name: dict(self._entry(name).recovery or {})
                for name in sorted(names)}

    def _info(self, entry: _ArrayEntry) -> dict:
        f = entry.file
        return {
            "name": entry.name,
            "shape": list(f.shape),
            "chunk_shape": list(f.chunk_shape),
            "dtype": f.dtype.str,
            "num_chunks": f.num_chunks,
            "codec": f.codec,
            "checksums": f.checksums_enabled,
            "commit_epoch": f.commit_epoch,
        }

    # ------------------------------------------------------------------
    # data-plane verbs
    # ------------------------------------------------------------------
    def _op_open(self, header, payload, owner, scope):
        return (self._info(self._entry(header["name"])), b"")

    def _op_create(self, header, payload, owner, scope):
        name = self._check_name(header["name"])
        with self._arrays_lock:
            exists = name in self._arrays
        if not exists:
            if self.fs is not None:
                exists = self.fs.exists(name + DRXFile.XMD_SUFFIX)
            else:
                import pathlib
                p = pathlib.Path(self.root) / name
                exists = p.with_name(p.name + DRXFile.XMD_SUFFIX).exists()
        if exists:
            if header.get("exists_ok"):
                return (self._info(self._entry(name)), b"")
            raise ServeError(f"array {name!r} already exists",
                             kind="DRXFileExistsError")
        bounds = [int(b) for b in header["bounds"]]
        chunk = [int(c) for c in header["chunk"]]
        kwargs = dict(dtype=header.get("dtype", "<f8"),
                      checksums=bool(header.get("checksums", False)),
                      codec=header.get("codec", "none"),
                      cache_pages=self.cache_pages,
                      store_wrapper=self._store_wrapper)
        if self.fs is not None:
            file = DRXFile.create_pfs(self.fs, name, bounds, chunk,
                                      **kwargs)
        else:
            import pathlib
            file = DRXFile.create(pathlib.Path(self.root) / name,
                                  bounds, chunk, **kwargs)
        entry = _ArrayEntry(name, file)
        self._attach_journal(entry)
        with self._arrays_lock:
            self._arrays[name] = entry
        return (self._info(entry), b"")

    @staticmethod
    def _idem_key(header: dict) -> tuple[str, str, int] | None:
        """The request's ``(client, sid, seq)`` idempotency key, or
        ``None`` for an unkeyed (pre-exactly-once) client."""
        if "sid" in header and "seq" in header:
            return (str(header.get("client", "anon")),
                    str(header["sid"]), int(header["seq"]))
        return None

    def _dedup_claim(self, entry: _ArrayEntry, key, header: dict,
                     scope: CancelScope) -> dict | None:
        """Claim ``key`` for this attempt; returns the cached result
        when this is a replayed retry (counted in ``dedup_hits``)."""
        if key is None:
            return None
        cached = entry.dedup.claim(key, scope)
        if cached is not None:
            self.qos.client(str(header.get("client", "anon"))).bump(
                dedup_hits=1)
        return cached

    def _op_read(self, header, payload, owner, scope):
        entry = self._entry(header["name"])
        lo = [int(x) for x in header["lo"]]
        hi = [int(x) for x in header["hi"]]
        entry.rw.acquire_shared(scope, owner)
        try:
            taken = entry.chunks.acquire(
                _box_addresses(entry.file, lo, hi), owner, scope)
            try:
                data = entry.file.read(lo, hi)
                self._simulate_delay(header, scope)
            finally:
                entry.chunks.release(taken)
        finally:
            entry.rw.release_shared(owner)
        return ({"shape": list(data.shape), "dtype": data.dtype.str},
                data.tobytes())

    def _op_write(self, header, payload, owner, scope):
        entry = self._entry(header["name"])
        lo = [int(x) for x in header["lo"]]
        shape = [int(x) for x in header["shape"]]
        values = np.frombuffer(payload, dtype=header["dtype"])
        values = values.reshape(shape)
        hi = [l + s for l, s in zip(lo, shape)]
        key = self._idem_key(header)
        cached = self._dedup_claim(entry, key, header, scope)
        if cached is not None:
            return (cached, b"")
        done = False
        try:
            lsn = None
            entry.rw.acquire_shared(scope, owner)
            try:
                taken = entry.chunks.acquire(
                    _box_addresses(entry.file, lo, hi), owner, scope)
                try:
                    crash_point("server.kill.daemon.locked")
                    if entry.journal is not None:
                        # redo logging: intent + payload hit the journal
                        # before the Mpool sees the mutation
                        txn = entry.journal.begin(
                            "write", key,
                            {"lo": lo, "shape": shape,
                             "dtype": header["dtype"]}, payload)
                    crash_point("server.kill.daemon.journaled")
                    # pre-image for rollback: a deadline that fires
                    # before the mutation is acknowledged must not leave
                    # a half-applied (or applied-but-unacked) box behind
                    pre = entry.file.read(lo, hi)
                    try:
                        entry.file.write(lo, values)
                        self._simulate_delay(header, scope)
                    except DeadlineError:
                        # no COMMIT record: recovery discards the txn
                        self._rollback(entry, lo, pre)
                        raise
                    seq = entry.next_seq()
                    result = {"seq": seq, "nbytes": len(payload)}
                    if entry.journal is not None:
                        lsn = entry.journal.commit(txn, key, result)
                    crash_point("server.kill.daemon.applied")
                finally:
                    entry.chunks.release(taken)
            finally:
                entry.rw.release_shared(owner)
            if lsn is not None:
                # group commit *after* the locks drop, *before* OK
                entry.journal.sync(lsn)
            if key is not None:
                # only after the covering sync: a replayed retry must
                # never be acked from cache before its COMMIT is durable
                entry.dedup.fulfill(key, result)
            done = True
            return (result, b"")
        finally:
            if not done and key is not None:
                entry.dedup.abandon(key)

    @staticmethod
    def _rollback(entry: _ArrayEntry, lo, pre) -> None:
        """Restore a mutation's pre-image, immune to the (already
        expired) request scope."""
        saved = current_scope()
        _scope_local.value = None
        try:
            entry.file.write(lo, pre)
        finally:
            _scope_local.value = saved

    def _op_extend(self, header, payload, owner, scope):
        entry = self._entry(header["name"])
        key = self._idem_key(header)
        cached = self._dedup_claim(entry, key, header, scope)
        if cached is not None:
            return (cached, b"")
        done = False
        try:
            entry.rw.acquire_exclusive(scope, owner)
            try:
                crash_point("server.kill.daemon.locked")
                # validate the target fully *before* journaling: once
                # the COMMIT is durable, recovery will replay it, so a
                # request that cannot apply must be rejected while the
                # journal is still untouched
                if "to" in header:
                    # absolute-shape form: idempotent as given
                    to = [int(x) for x in header["to"]]
                    if len(to) != entry.file.rank:
                        raise ServeError(
                            f"extend to= rank {len(to)} != "
                            f"{entry.file.rank}")
                    if any(t < 0 for t in to):
                        raise ServeError(
                            f"extend to= has negative bound: {to}")
                else:
                    # relative form: resolved to an absolute target
                    # under the exclusive lock, so the journaled intent
                    # — and any retry answered from the dedup table —
                    # is idempotent even though dim/by is not
                    dim = int(header["dim"])
                    if not 0 <= dim < entry.file.rank:
                        raise ServeError(
                            f"extend dim {dim} out of range for rank "
                            f"{entry.file.rank}")
                    to = list(entry.file.shape)
                    to[dim] += int(header["by"])
                seq = entry.next_seq()
                result = {"seq": seq,
                          "shape": [max(s, t) for s, t
                                    in zip(entry.file.shape, to)]}
                if entry.journal is not None:
                    # intent logging, not redo: extend's apply is itself
                    # an immediate durable metadata commit, so the
                    # journal COMMIT must be durable *first* — a crash
                    # in between replays the (idempotent) absolute
                    # target and answers the retry from the recovered
                    # dedup table, never re-extends
                    txn = entry.journal.begin("extend", key, {"to": to})
                    entry.journal.sync(
                        entry.journal.commit(txn, key, result))
                crash_point("server.kill.daemon.journaled")
                try:
                    for d, target in enumerate(to):
                        by = target - entry.file.shape[d]
                        if by > 0:
                            entry.file.extend(d, by)
                except Exception:
                    # the COMMIT is already durable but the client will
                    # see an error: journal a durable ABORT so recovery
                    # neither replays the failed extend nor answers a
                    # post-restart retry "ok" from the dedup cache (the
                    # journal store is raw — not deadline-gated — so
                    # this works even when a fired scope killed the
                    # apply)
                    if entry.journal is not None:
                        try:
                            entry.journal.sync(
                                entry.journal.abort(txn))
                        except Exception:  # noqa: BLE001
                            pass  # journal torn down by a racing kill
                    raise
                crash_point("server.kill.daemon.applied")
            finally:
                entry.rw.release_exclusive()
            if key is not None:
                entry.dedup.fulfill(key, result)
            done = True
            return (result, b"")
        finally:
            if not done and key is not None:
                entry.dedup.abandon(key)

    def _op_flush(self, header, payload, owner, scope):
        entry = self._entry(header["name"])
        entry.rw.acquire_exclusive(scope, owner)
        try:
            entry.file.flush()
            if entry.journal is not None:
                # the array is durable: truncate the journal to a clean
                # checkpoint (carrying the dedup table forward)
                entry.journal.rotate(entry.dedup.snapshot(),
                                     entry.file.commit_epoch)
        finally:
            entry.rw.release_exclusive()
        return ({"commit_epoch": entry.file.commit_epoch}, b"")

    def _op_snapshot(self, header, payload, owner, scope):
        entry = self._entry(header["name"])
        dest = self._check_name(header["dest"])
        entry.rw.acquire_exclusive(scope)
        try:
            src = entry.file
            src.flush()
            kwargs = dict(dtype=src.dtype,
                          checksums=src.checksums_enabled,
                          codec=src.codec,
                          cache_pages=self.cache_pages,
                          store_wrapper=self._store_wrapper)
            if self.fs is not None:
                copy = DRXFile.create_pfs(self.fs, dest, src.shape,
                                          src.chunk_shape, **kwargs)
            else:
                import pathlib
                copy = DRXFile.create(pathlib.Path(self.root) / dest,
                                      src.shape, src.chunk_shape,
                                      **kwargs)
            try:
                copy.write([0] * src.rank, src.read_all())
            finally:
                copy.close()
        finally:
            entry.rw.release_exclusive()
        return ({"dest": dest, "shape": list(entry.file.shape)}, b"")

    def _op_scrub(self, header, payload, owner, scope):
        entry = self._entry(header["name"])
        entry.rw.acquire_exclusive(scope)
        try:
            report = entry.file.scrub()
        finally:
            entry.rw.release_exclusive()
        return ({"total_chunks": report.total_chunks,
                 "checked": report.checked,
                 "corrupt": list(report.corrupt),
                 "unverified": report.unverified,
                 "ok": report.ok}, b"")
