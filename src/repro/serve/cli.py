"""``drx-serve`` — run the array service daemon, or query one.

Serve a directory of ``.xmd``/``.xta`` pairs::

    drx-serve --root /data/arrays --port 7870

Serve a fresh simulated parallel file system (demos, soak rigs)::

    drx-serve --pfs 4 --port 7870

Query a running daemon's QoS / substrate counters as JSON::

    drx-serve --host 127.0.0.1 --port 7870 --dump-stats

Observe a *shard set* as one system — pass several ``host:port``
addresses and get each shard's snapshot plus the merged aggregate
(summed QoS counters, max high-water marks, totalled journal gauges)::

    drx-serve --dump-stats 127.0.0.1:7870 127.0.0.1:7871 127.0.0.1:7872

Recover eagerly after a crash (every array's journal is scanned,
committed transactions replayed, the summary printed) instead of
lazily on first open::

    drx-serve --root /data/arrays --recover

Durability knobs: ``--no-journal`` trades crash durability for write
latency, ``--journal-window`` batches group commits, and
``--checkpoint-interval`` bounds journal growth between flushes.

The daemon drains gracefully on SIGTERM / SIGINT: it stops accepting,
answers queued admissions with ``RETRY_LATER``, finishes (or
deadlines-out) in-flight requests, flushes every array, rotates every
journal, and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="drx-serve",
        description="multi-tenant DRX array service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed on start)")
    backend = p.add_mutually_exclusive_group()
    backend.add_argument("--root", metavar="DIR",
                         help="serve the .xmd/.xta arrays in DIR")
    backend.add_argument("--pfs", type=int, metavar="NSERVERS",
                         help="serve a fresh in-memory parallel file "
                              "system with NSERVERS I/O servers")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="global in-flight request limit")
    p.add_argument("--per-client", type=int, default=4,
                   help="per-client in-flight request limit")
    p.add_argument("--max-queue", type=int, default=16,
                   help="admission queue depth before RETRY_LATER")
    p.add_argument("--no-journal", action="store_true",
                   help="disable the write-ahead journal (acknowledged "
                        "writes may be lost on kill -9)")
    p.add_argument("--journal-window", type=float, default=0.0,
                   metavar="SECONDS",
                   help="group-commit window: how long a sync leader "
                        "waits for more committers before fsyncing")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="periodically flush arrays and truncate their "
                        "journals (default: only on flush/drain)")
    p.add_argument("--recover", action="store_true",
                   help="recover every array in the backing store at "
                        "startup (replay journals eagerly) and print "
                        "the per-array summary")
    p.add_argument("--dump-stats", action="store_true",
                   help="query RUNNING daemon(s) and print stats as "
                        "JSON: one daemon at --host/--port, or several "
                        "shards via positional host:port addresses "
                        "(merged per-shard + aggregate snapshot)")
    p.add_argument("addresses", nargs="*", metavar="HOST:PORT",
                   help="shard addresses for --dump-stats (merged view)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="request deadline for --dump-stats")
    return p


def _parse_address(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad address {text!r} (want HOST:PORT)")
    return (host or "127.0.0.1", int(port))


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.dump_stats:
        from .client import DRXClient
        if args.addresses:
            try:
                targets = [_parse_address(a) for a in args.addresses]
            except ValueError as exc:
                print(f"drx-serve: {exc}", file=sys.stderr)
                return 2
        elif args.port != 0:
            targets = [(args.host, args.port)]
        else:
            print("drx-serve: --dump-stats needs --port or HOST:PORT "
                  "addresses", file=sys.stderr)
            return 2
        snaps = []
        for address in targets:
            with DRXClient(address, client_id="drx-serve-cli",
                           timeout=args.timeout) as client:
                snaps.append(client.stats())
        if len(snaps) == 1:
            print(json.dumps(snaps[0], indent=2, sort_keys=True))
        else:
            from .shard import merge_stats
            print(json.dumps(merge_stats(snaps), indent=2,
                             sort_keys=True))
        return 0

    if args.addresses:
        print("drx-serve: positional addresses only apply to "
              "--dump-stats", file=sys.stderr)
        return 2

    from .server import DRXServer
    kwargs = dict(host=args.host, port=args.port,
                  max_inflight=args.max_inflight,
                  max_inflight_per_client=args.per_client,
                  max_queue=args.max_queue,
                  journal=not args.no_journal,
                  journal_window=args.journal_window,
                  checkpoint_interval=args.checkpoint_interval)
    if args.pfs is not None:
        from ..pfs import ParallelFileSystem
        server = DRXServer(fs=ParallelFileSystem(nservers=args.pfs),
                           **kwargs)
    else:
        root = args.root if args.root is not None else "."
        server = DRXServer(root=root, **kwargs)
    server.install_signal_handlers()
    server.start()
    if args.recover:
        summary = server.recover_all()
        print(json.dumps({"recovered": summary}, indent=2,
                         sort_keys=True), flush=True)
    host, port = server.address
    print(f"drx-serve: listening on {host}:{port}", flush=True)
    server.wait()
    print("drx-serve: drained, bye", flush=True)
    return 0


if __name__ == "__main__":      # pragma: no cover - module smoke entry
    raise SystemExit(main())
