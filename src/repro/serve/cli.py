"""``drx-serve`` — run the array service daemon, or query one.

Serve a directory of ``.xmd``/``.xta`` pairs::

    drx-serve --root /data/arrays --port 7870

Serve a fresh simulated parallel file system (demos, soak rigs)::

    drx-serve --pfs 4 --port 7870

Query a running daemon's QoS / substrate counters as JSON::

    drx-serve --host 127.0.0.1 --port 7870 --dump-stats

The daemon drains gracefully on SIGTERM / SIGINT: it stops accepting,
answers queued admissions with ``RETRY_LATER``, finishes (or
deadlines-out) in-flight requests, flushes every array, and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="drx-serve",
        description="multi-tenant DRX array service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed on start)")
    backend = p.add_mutually_exclusive_group()
    backend.add_argument("--root", metavar="DIR",
                         help="serve the .xmd/.xta arrays in DIR")
    backend.add_argument("--pfs", type=int, metavar="NSERVERS",
                         help="serve a fresh in-memory parallel file "
                              "system with NSERVERS I/O servers")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="global in-flight request limit")
    p.add_argument("--per-client", type=int, default=4,
                   help="per-client in-flight request limit")
    p.add_argument("--max-queue", type=int, default=16,
                   help="admission queue depth before RETRY_LATER")
    p.add_argument("--dump-stats", action="store_true",
                   help="query a RUNNING daemon at --host/--port and "
                        "print its stats snapshot as JSON")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="request deadline for --dump-stats")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.dump_stats:
        from .client import DRXClient
        if args.port == 0:
            print("drx-serve: --dump-stats needs --port", file=sys.stderr)
            return 2
        with DRXClient((args.host, args.port), client_id="drx-serve-cli",
                       timeout=args.timeout) as client:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0

    from .server import DRXServer
    if args.pfs is not None:
        from ..pfs import ParallelFileSystem
        server = DRXServer(fs=ParallelFileSystem(nservers=args.pfs),
                           host=args.host, port=args.port,
                           max_inflight=args.max_inflight,
                           max_inflight_per_client=args.per_client,
                           max_queue=args.max_queue)
    else:
        root = args.root if args.root is not None else "."
        server = DRXServer(root=root, host=args.host, port=args.port,
                           max_inflight=args.max_inflight,
                           max_inflight_per_client=args.per_client,
                           max_queue=args.max_queue)
    server.install_signal_handlers()
    server.start()
    host, port = server.address
    print(f"drx-serve: listening on {host}:{port}", flush=True)
    server.wait()
    print("drx-serve: drained, bye", flush=True)
    return 0


if __name__ == "__main__":      # pragma: no cover - module smoke entry
    raise SystemExit(main())
